"""Fig. 14c: cumulative-optimization speedups vs Graphicionado on LJ.

Paper GM: WE 1.39x, WEA 1.57x, WEAU 1.8x.  Shape requirements: the curve
is monotonically non-decreasing; AO helps PR and CC most (their
throughput produces the most RAW conflicts per cycle); US adds nothing for
PR (it updates every vertex anyway).
"""

from conftest import run_once

from repro.harness import figure14c


def test_fig14c_ablation(benchmark):
    result = run_once(benchmark, lambda: figure14c("LJ"))
    print()
    print(result.render())

    rows = {row[0]: row[1:] for row in result.rows}
    wb, we, wea, weau = rows["GM"]
    # Monotone improvement with the paper's ordering.
    assert wb <= we <= wea <= weau * 1.001
    assert 1.2 < we < 2.2, f"WE {we}"
    assert 1.4 < wea < 2.3, f"WEA {wea}"
    assert 1.5 < weau < 2.5, f"WEAU {weau}"

    # AO's contribution is largest for PR.
    ao_gain = {
        algo: vals[2] / vals[1]
        for algo, vals in rows.items()
        if algo != "GM"
    }
    assert max(ao_gain, key=ao_gain.get) in ("PR", "CC")
    # US adds (almost) nothing for PR.
    pr = rows["PR"]
    assert pr[3] <= pr[2] * 1.02
