"""Fig. 14a: scheduling-operation reduction from coarse-grained dispatch.

Paper: workload balancing reduces scheduling operations ~94% on LJ (whole
small lists and eThreshold-sized sub-lists instead of per-edge streaming),
with no performance loss despite using 16 DEs instead of 128.
"""

from conftest import run_once

from repro.harness import figure14a


def test_fig14a_sched_reduction(benchmark):
    result = run_once(benchmark, lambda: figure14a("LJ"))
    print()
    print(result.render())

    gm_reduction = result.rows[-1][3]
    assert 85.0 < gm_reduction < 99.0, f"GM reduction {gm_reduction}%"
    for row in result.rows[:-1]:
        assert row[2] < row[1], row  # coarse ops < per-edge ops
        assert row[3] > 80.0, row
