"""Table 1: which system alleviates which irregularity.

Paper: GPU solutions need expensive preprocessing for all three;
Graphicionado solves traversal (partially) only; GraphDynS solves all.
"""

from conftest import run_once

from repro.harness import table1


def test_table1_coverage(benchmark):
    result = run_once(benchmark, table1)
    print()
    print(result.render())
    rows = {row[0]: row for row in result.rows}
    assert all("solved" in rows[k][3] for k in ("Workload", "Traversal", "Update"))
    assert "unsolved" in rows["Workload"][2]
    assert "unsolved" in rows["Update"][2]
