"""Fig. 6: speedup over Gunrock, 5 algorithms x 6 real-world graphs.

Paper: GraphDynS 4.4x GM (with half the GPU's memory bandwidth);
Graphicionado in between; CC shows the smallest speedups because Gunrock's
online filtering prunes CC work; PR shows the largest.
"""

from conftest import run_once

from repro.harness import figure6, geomean


def test_fig6_speedup(benchmark, suite):
    result = run_once(benchmark, lambda: figure6(suite))
    print()
    print(result.render())

    gm = result.rows[-1]
    gio_gm, gds_gm = gm[2], gm[3]
    # Shape: GraphDynS GM in the paper's band, above Graphicionado, above 1.
    assert 3.0 < gds_gm < 7.0, f"GraphDynS GM speedup {gds_gm}"
    assert 1.0 < gio_gm < gds_gm

    by_algo = {}
    for row in result.rows[:-1]:
        by_algo.setdefault(row[0], []).append(row[3])
    algo_gm = {algo: geomean(vals) for algo, vals in by_algo.items()}
    assert min(algo_gm, key=algo_gm.get) == "CC"
    top_two = sorted(algo_gm, key=algo_gm.get)[-2:]
    assert "PR" in top_two, algo_gm
