"""Phase breakdown from the span recorder (the Fig. 8 discussion).

One traced GraphDynS run; the per-stage table is built entirely from
recorded spans (``scatter``, ``scatter.dispatch``, ``scatter.prefetch``,
``scatter.reduce``, ``apply``) and must reconcile *float-for-float* with
the run report's :class:`~repro.metrics.counters.PhaseBreakdown` sums --
the spans are stamped from the same values in the same order.
"""

from conftest import run_once

from repro.backends import create
from repro.graph import datasets
from repro.harness.io import render_table
from repro.obs import TraceRecorder, use_recorder
from repro.vcpm.algorithms import get_algorithm

ALGO, GRAPH = "SSSP", "LJ"


def _traced_run():
    recorder = TraceRecorder()
    graph = datasets.load(GRAPH)
    with use_recorder(recorder):
        _, report = create("graphdyns").run(graph, get_algorithm(ALGO))
    recorder.finish()
    return recorder, report


def test_phase_breakdown_reconciles(benchmark):
    recorder, report = run_once(benchmark, _traced_run)
    main = recorder.span_totals(track="GraphDynS")
    compute = recorder.span_totals(track="GraphDynS.compute")
    memory = recorder.span_totals(track="GraphDynS.memory")
    update = recorder.span_totals(track="GraphDynS.update")

    rows = [
        ["scatter", *main["scatter"], f"{report.scatter_cycles_total():,.0f}"],
        [
            "scatter.dispatch",
            *compute["scatter.dispatch"],
            f"{sum(p.scatter_compute_cycles for p in report.phases):,.0f}",
        ],
        [
            "scatter.prefetch",
            *memory["scatter.prefetch"],
            f"{sum(p.scatter_memory_cycles for p in report.phases):,.0f}",
        ],
        [
            "scatter.reduce",
            *update["scatter.reduce"],
            f"{sum(p.scatter_update_cycles for p in report.phases):,.0f}",
        ],
        ["apply", *main["apply"], f"{report.apply_cycles_total():,.0f}"],
    ]
    print()
    print(
        render_table(
            ["stage", "spans", "cycles (trace)", "cycles (report)"],
            [[r[0], r[1], f"{r[2]:,.0f}", r[3]] for r in rows],
            title=f"{ALGO} on {GRAPH} (GraphDynS) stage cycles from spans",
        )
    )

    # Exact reconciliation: span durations are the PhaseBreakdown values,
    # summed in the same (recording) order.
    assert main["scatter"][1] == report.scatter_cycles_total()
    assert main["apply"][1] == report.apply_cycles_total()
    assert compute["scatter.dispatch"][1] == sum(
        p.scatter_compute_cycles for p in report.phases
    )
    assert memory["scatter.prefetch"][1] == sum(
        p.scatter_memory_cycles for p in report.phases
    )
    assert update["scatter.reduce"][1] == sum(
        p.scatter_update_cycles for p in report.phases
    )
    # One span per iteration per stage.
    assert main["scatter"][0] == report.iterations
    assert main["apply"][0] == report.iterations
