"""Per-region traffic breakdown (the Fig. 12 discussion, quantified).

The rows come from the observability layer: one traced run of the cell,
with every byte read off the per-system ``hbm.<system>.bytes.<region>``
counters that :meth:`repro.memory.hbm.HBMModel.service` records.  The
recorder totals are reconciled against each report's
:class:`~repro.memory.traffic.TrafficLedger` (they must agree exactly --
all traffic flows through ``service``), then the paper's narrative
points are asserted on the recorder-derived rows:

* GraphDynS "accesses offset array additionally in each iteration" yet
  still moves the least data overall;
* Graphicionado's edge traffic exceeds GraphDynS's (src_vid: the paper
  measures 1.65x);
* Gunrock's destination-property gathers (sector-granular) plus its
  preprocessing metadata dominate its total.
"""

from conftest import run_once

from repro.graph import datasets
from repro.harness.io import render_table
from repro.harness.service import execute_cell
from repro.memory.request import Region
from repro.obs import TraceRecorder, use_recorder

SYSTEMS = ["Gunrock", "Graphicionado", "GraphDynS"]


def _traced_cell():
    recorder = TraceRecorder()
    graph = datasets.load("LJ")
    with use_recorder(recorder):
        cell = execute_cell(graph, "SSSP", graph_key="LJ")
    recorder.finish()
    return recorder, cell


def test_traffic_breakdown(benchmark):
    recorder, cell = run_once(benchmark, _traced_cell)
    snapshot = recorder.instruments.snapshot()

    def counter(name):
        return snapshot.get(name, {"value": 0})["value"]

    rows = {
        region.value: [
            counter(f"hbm.{system}.bytes.{region.value}")
            for system in SYSTEMS
        ]
        for region in Region
    }
    rows["TOTAL"] = [counter(f"hbm.{system}.bytes") for system in SYSTEMS]

    print()
    print(
        render_table(
            ["region", *SYSTEMS],
            [
                [name, *(f"{b / 1e6:.2f}" for b in values)]
                for name, values in rows.items()
            ],
            title="SSSP on LJ traffic by region (MB, from hbm counters)",
        )
    )

    # The recorder counters must agree exactly with each report's ledger:
    # every byte of modeled traffic flows through HBMModel.service.
    for column, system in enumerate(SYSTEMS):
        ledger = cell.reports[system].traffic
        assert rows["TOTAL"][column] == ledger.total
        for region in Region:
            assert rows[region.value][column] == ledger.region_total(region)

    gun, gio, gds = range(3)
    # GraphDynS pays offset traffic the others avoid or amortize...
    assert rows["offset"][gds] > 0
    # ...but wins on edges (no src_vid, exact prefetch; paper: 1.65x).
    assert 1.3 < rows["edge"][gio] / rows["edge"][gds] < 2.0
    # Gunrock's gathers + metadata dwarf everything.
    gather_and_meta = rows["temp_prop"][gun] + rows["metadata"][gun]
    assert gather_and_meta > rows["TOTAL"][gds]
    # Totals reproduce the Fig. 12 ordering.
    assert rows["TOTAL"][gds] < rows["TOTAL"][gio] < rows["TOTAL"][gun]
