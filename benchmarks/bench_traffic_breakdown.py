"""Per-region traffic breakdown (the Fig. 12 discussion, quantified).

Paper narrative points checked:
* GraphDynS "accesses offset array additionally in each iteration" yet
  still moves the least data overall;
* Graphicionado's edge traffic exceeds GraphDynS's (src_vid: the paper
  measures 1.65x);
* Gunrock's destination-property gathers (sector-granular) plus its
  preprocessing metadata dominate its total.
"""

from conftest import run_once

from repro.harness.figures import traffic_breakdown


def test_traffic_breakdown(benchmark, suite):
    result = run_once(benchmark, lambda: traffic_breakdown(suite, "SSSP", "LJ"))
    print()
    print(result.render())

    rows = {row[0]: row[1:] for row in result.rows}
    gun, gio, gds = range(3)

    # GraphDynS pays offset traffic the others avoid or amortize...
    assert rows["offset"][gds] > 0
    # ...but wins on edges (no src_vid, exact prefetch; paper: 1.65x).
    assert 1.3 < rows["edge"][gio] / rows["edge"][gds] < 2.0
    # Gunrock's gathers + metadata dwarf everything.
    gather_and_meta = rows["temp_prop"][gun] + rows["metadata"][gun]
    assert gather_and_meta > rows["TOTAL"][gds]
    # Totals reproduce the Fig. 12 ordering.
    assert rows["TOTAL"][gds] < rows["TOTAL"][gio] < rows["TOTAL"][gun]
