#!/usr/bin/env python
"""Out-of-core sharded execution benchmarks -> ``BENCH_sharding.json``.

Measures, for the paper-scale RMAT datasets (``RM18-FULL``,
``RM22-FULL``...), the memory footprint and wall-clock of the two
execution modes the storage/sharding tier offers::

    memory-unsharded   in-memory CSR, single-shard Scatter (historical path)
    mmap-sharded       spilled + memory-mapped CSR, 4-way destination shards

Each mode runs in its own spawned subprocess so ``ru_maxrss`` is an
honest per-mode peak, and each child returns a digest of the result
properties — the byte-identical invariant is asserted *at paper scale*,
not just on the tier-1 proxies.  The matching Table 4 proxy (e.g. RM12
for RM22-FULL) is timed alongside as the scale-gap baseline::

    PYTHONPATH=src python benchmarks/bench_sharding.py --quick          # RM18
    PYTHONPATH=src python benchmarks/bench_sharding.py --datasets RM22-FULL
    PYTHONPATH=src python benchmarks/bench_sharding.py --check --budget-mb 6144

``--check`` exits non-zero unless (a) both modes produced bitwise equal
properties, (b) the mmap-sharded peak RSS is under ``--budget-mb``, and
(c) it undercuts the in-memory peak — the CI smoke gate for the
out-of-core tier.

Run standalone; not collected by pytest (no ``test_`` functions).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing as mp
import platform
import resource
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro import __version__
from repro.graph import datasets

DEFAULT_OUTPUT = "BENCH_sharding.json"
DEFAULT_SHARDS = 4
BENCH_ALGO = "BFS"


def _rss_mb() -> float:
    """Peak resident set of this process, in MiB (Linux ru_maxrss is KiB)."""
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        peak_kb /= 1024
    return peak_kb / 1024.0


def _measure_child(conn, key: str, storage: str, shards: int) -> None:
    """Subprocess body: load ``key`` under ``storage``, run one cell.

    The source is the hottest vertex (max out-degree) so the BFS actually
    traverses the giant component — vertex 0 of a permuted RMAT graph is
    usually isolated.
    """
    from repro.vcpm import ALGORITHMS, run_vcpm_partitioned

    try:
        t0 = time.perf_counter()
        graph = datasets.load(key, use_cache=False, storage=storage)
        load_s = time.perf_counter() - t0
        hub = int(np.argmax(np.diff(graph.offsets))) if graph.num_vertices else 0
        t0 = time.perf_counter()
        result = run_vcpm_partitioned(
            graph, ALGORITHMS[BENCH_ALGO], shards=shards, source=hub
        )
        run_s = time.perf_counter() - t0
        conn.send(
            {
                "rss_mb": round(_rss_mb(), 1),
                "load_s": round(load_s, 3),
                "run_s": round(run_s, 3),
                "iterations": len(result.iterations),
                "source": hub,
                "prop_sha": hashlib.sha256(
                    result.properties.tobytes()
                ).hexdigest(),
            }
        )
    except BaseException as exc:  # surfaced by the parent as a failure
        conn.send({"error": repr(exc)})
    finally:
        conn.close()


def measure(key: str, storage: str, shards: int) -> Dict:
    """Run one (dataset, storage, shards) cell in a fresh subprocess."""
    ctx = mp.get_context("spawn")
    parent, child = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_measure_child, args=(child, key, storage, shards))
    proc.start()
    child.close()
    try:
        payload = parent.recv()
    except EOFError:
        payload = {"error": f"subprocess died (exit {proc.exitcode})"}
    proc.join()
    if "error" in payload:
        raise RuntimeError(
            f"measurement ({key}, {storage}, shards={shards}) failed: "
            f"{payload['error']}"
        )
    payload.update(
        {
            "name": f"{storage}-{'sharded' if shards > 1 else 'unsharded'}",
            "dataset": key,
            "storage": storage,
            "shards": shards,
            "algo": BENCH_ALGO,
        }
    )
    return payload


def proxy_key_for(full_key: str) -> Optional[str]:
    """Table 4 proxy row matching a paper-scale ``*-FULL`` key, if any."""
    candidate = full_key[: -len("-FULL")] if full_key.endswith("-FULL") else None
    return candidate if candidate in datasets.DATASETS else None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=["RM18-FULL", "RM22-FULL"],
        choices=[s.key for s in datasets.RMAT_PAPER],
        help="paper-scale keys to benchmark (default: RM18-FULL RM22-FULL)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="RM18-FULL only (CI-friendly smoke run)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=DEFAULT_SHARDS,
        help=f"shard count of the out-of-core mode (default: {DEFAULT_SHARDS})",
    )
    parser.add_argument(
        "--budget-mb",
        type=float,
        default=6144.0,
        help="--check fails if the mmap-sharded peak RSS exceeds this",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless results match bitwise and mmap stays in budget",
    )
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    keys = ["RM18-FULL"] if args.quick else args.datasets
    entries: List[Dict] = []
    failures: List[str] = []

    for key in keys:
        in_memory = measure(key, "memory", 1)
        out_of_core = measure(key, "mmap", args.shards)
        entries.extend([in_memory, out_of_core])
        spec = datasets.PAPER_DATASETS[key]
        print(
            f"{key}: V={spec.proxy_vertices:,} E={spec.proxy_edges:,}  "
            f"memory {in_memory['rss_mb']:.0f} MB / "
            f"{in_memory['load_s'] + in_memory['run_s']:.1f}s  ->  "
            f"mmap x{args.shards} {out_of_core['rss_mb']:.0f} MB / "
            f"{out_of_core['load_s'] + out_of_core['run_s']:.1f}s"
        )
        if in_memory["prop_sha"] != out_of_core["prop_sha"]:
            failures.append(f"{key}: modes disagree (byte-identity violated)")
        if out_of_core["rss_mb"] > args.budget_mb:
            failures.append(
                f"{key}: mmap-sharded peak {out_of_core['rss_mb']:.0f} MB "
                f"exceeds budget {args.budget_mb:.0f} MB"
            )
        if out_of_core["rss_mb"] >= in_memory["rss_mb"]:
            failures.append(
                f"{key}: mmap-sharded peak {out_of_core['rss_mb']:.0f} MB "
                f"not below in-memory peak {in_memory['rss_mb']:.0f} MB"
            )

        proxy = proxy_key_for(key)
        if proxy is not None:
            proxy_entry = measure(proxy, "memory", 1)
            proxy_entry["name"] = "proxy-baseline"
            entries.append(proxy_entry)
            scale = spec.proxy_vertices // datasets.DATASETS[proxy].proxy_vertices
            print(
                f"  proxy {proxy} ({scale}x smaller): "
                f"{proxy_entry['rss_mb']:.0f} MB / "
                f"{proxy_entry['load_s'] + proxy_entry['run_s']:.2f}s"
            )

    payload = {
        "schema": 1,
        "package_version": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "algo": BENCH_ALGO,
        "budget_mb": args.budget_mb,
        "datasets": {
            key: {
                "vertices": datasets.PAPER_DATASETS[key].proxy_vertices,
                "edges": datasets.PAPER_DATASETS[key].proxy_edges,
            }
            for key in keys
        },
        "benchmarks": entries,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output} ({len(entries)} measurements)")

    if args.check:
        if failures:
            for line in failures:
                print(f"CHECK FAILED: {line}", file=sys.stderr)
            return 1
        print(
            "check ok: modes bitwise equal, out-of-core peak under "
            f"{args.budget_mb:.0f} MB"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
