#!/usr/bin/env python
"""Scalar-vs-vectorized kernel benchmarks -> ``BENCH_kernels.json``.

Times every retained scalar reference against its vectorized kernel on
Table 4 RMAT proxies and records the speedups, so the performance
trajectory of the simulation hot paths is tracked in-repo from the PR
that introduced the kernel layer onward::

    PYTHONPATH=src python benchmarks/bench_kernels.py                # RM22
    PYTHONPATH=src python benchmarks/bench_kernels.py --datasets RM22 RM23
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick --check

Each benchmark asserts the two renderings produce identical results
before timing them (a wrong kernel must never produce a speedup
number).  ``--check`` exits non-zero unless every vectorized kernel is
at least as fast as its scalar reference -- the CI smoke gate.

Run standalone; not collected by pytest (no ``test_`` functions).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Callable, Dict, List

import numpy as np

from repro import __version__
from repro.core import StallingReducePipeline, ZeroStallReducePipeline
from repro.graph import datasets
from repro.graphdyns.config import GraphDynSConfig
from repro.graphdyns.micro import simulate_scatter_microarch
from repro.kernels import (
    simulate_scatter_microarch_vectorized,
    split_ops,
    stalling_run,
    zero_stall_run,
)
from repro.memory.hbm import HBM1_512GBS, HBMModel
from repro.memory.request import AccessPattern, Region
from repro.vcpm import ALGORITHMS, run_optimized
from repro.vcpm.spec import ReduceOp

DEFAULT_OUTPUT = "BENCH_kernels.json"


def _best_of(fn: Callable[[], object], repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _entry(name, dataset, scalar_s, vectorized_s, detail):
    return {
        "name": name,
        "dataset": dataset,
        "scalar_s": round(scalar_s, 6),
        "vectorized_s": round(vectorized_s, 6),
        "speedup": round(scalar_s / max(vectorized_s, 1e-9), 2),
        "equal": True,  # asserted before timing
        "detail": detail,
    }


def bench_reduce_pipelines(key: str, repeat: int) -> List[Dict]:
    """Both Reduce Pipeline cycle models over the proxy's edge stream."""
    graph = datasets.load(key)
    ops = list(zip(graph.edges.tolist(), graph.weights.tolist()))
    addrs, values = split_ops(ops)
    entries = []
    for label, op, scalar_cls, kernel in (
        ("reduce_zero_stall", ReduceOp.SUM, ZeroStallReducePipeline, zero_stall_run),
        ("reduce_stalling", ReduceOp.MIN, StallingReducePipeline, stalling_run),
    ):
        pipeline = scalar_cls(op)
        reference = pipeline.run(ops)
        result = kernel(addrs, values, op)
        assert (
            reference.cycles,
            reference.stall_cycles,
            reference.vb,
        ) == (result.cycles, result.stall_cycles, result.vb), label
        scalar_s = _best_of(lambda: pipeline.run(ops), repeat)
        vector_s = _best_of(lambda: kernel(addrs, values, op), repeat)
        entries.append(
            _entry(
                label,
                key,
                scalar_s,
                vector_s,
                f"{len(ops)} store-reduce ops, {op.value} fold",
            )
        )
    return entries


def bench_algorithm2(key: str, repeat: int) -> List[Dict]:
    """Algorithm 2 end to end: scalar processing loops vs batched."""
    graph = datasets.load(key)
    entries = []
    for algo in ("BFS", "SSSP"):
        spec = ALGORITHMS[algo]
        scalar = run_optimized(graph, spec, source=0)
        batched = run_optimized(graph, spec, source=0, kernel="batched")
        assert np.array_equal(
            np.nan_to_num(scalar.properties, posinf=1e30),
            np.nan_to_num(batched.properties, posinf=1e30),
        ), algo
        assert (
            scalar.num_iterations,
            scalar.edges_processed,
            scalar.scatter_dispatches,
            scalar.apply_dispatches,
        ) == (
            batched.num_iterations,
            batched.edges_processed,
            batched.scatter_dispatches,
            batched.apply_dispatches,
        ), algo
        scalar_s = _best_of(lambda: run_optimized(graph, spec, source=0), repeat)
        vector_s = _best_of(
            lambda: run_optimized(graph, spec, source=0, kernel="batched"),
            repeat,
        )
        entries.append(
            _entry(
                f"algorithm2_{algo.lower()}",
                key,
                scalar_s,
                vector_s,
                f"{scalar.edges_processed} edges over "
                f"{scalar.num_iterations} iterations",
            )
        )
    return entries


def bench_micro_drain(key: str, repeat: int) -> List[Dict]:
    """Event-driven Scatter replay vs the closed-form drain schedule."""
    graph = datasets.load(key)
    config = GraphDynSConfig(num_pes=16, n_simt=8, num_ues=128)
    streams = np.array_split(graph.edges, config.num_pes)
    depth = 256  # roomy FIFOs: the pure closed-form drain regime
    event = simulate_scatter_microarch(streams, config, ue_queue_depth=depth)
    fast = simulate_scatter_microarch_vectorized(
        streams, config, ue_queue_depth=depth
    )
    assert event == fast
    scalar_s = _best_of(
        lambda: simulate_scatter_microarch(streams, config, ue_queue_depth=depth),
        repeat,
    )
    vector_s = _best_of(
        lambda: simulate_scatter_microarch_vectorized(
            streams, config, ue_queue_depth=depth
        ),
        repeat,
    )
    return [
        _entry(
            "micro_drain",
            key,
            scalar_s,
            vector_s,
            f"{int(sum(s.size for s in streams))} edge results, "
            f"{config.num_pes} PEs x {config.num_ues} UEs",
        )
    ]


def bench_hbm_service(key: str, repeat: int) -> List[Dict]:
    """Per-pattern HBM servicing vs the batched kernel."""
    graph = datasets.load(key)
    degrees = np.maximum(graph.out_degree(), 1)
    regions = list(Region)
    patterns = [
        AccessPattern(
            region=regions[int(v) % len(regions)],
            total_bytes=int(d) * 8,
            run_bytes=float(min(int(d) * 8, 256)),
            is_write=bool(v % 2),
        )
        for v, d in enumerate(degrees)
    ]
    scalar_model = HBMModel(HBM1_512GBS)
    batch_model = HBMModel(HBM1_512GBS)
    ref = scalar_model.service_scalar(patterns)
    got = batch_model.service(patterns)
    assert ref.cycles == got.cycles
    assert ref.bytes_by_region == got.bytes_by_region
    model = HBMModel(HBM1_512GBS)
    scalar_s = _best_of(lambda: model.service_scalar(patterns), repeat)
    vector_s = _best_of(lambda: model.service(patterns), repeat)
    return [
        _entry(
            "hbm_service",
            key,
            scalar_s,
            vector_s,
            f"{len(patterns)} access patterns",
        )
    ]


BENCHES = [
    bench_reduce_pipelines,
    bench_algorithm2,
    bench_micro_drain,
    bench_hbm_service,
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=["RM22"],
        choices=[s.key for s in datasets.RMAT_SCALING],
        help="RMAT proxy keys to benchmark (default: RM22)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smallest proxy only, single timing round (CI smoke)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless every vectorized kernel is <= its scalar time",
    )
    parser.add_argument("--repeat", type=int, default=3, help="best-of rounds")
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    keys = ["RM22"] if args.quick else args.datasets
    repeat = 1 if args.quick else max(args.repeat, 1)

    entries: List[Dict] = []
    for key in keys:
        for bench in BENCHES:
            entries.extend(bench(key, repeat))

    payload = {
        "schema": 1,
        "package_version": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "datasets": {
            key: {
                "vertices": datasets.DATASETS[key].proxy_vertices,
                "edges": datasets.DATASETS[key].proxy_edges,
            }
            for key in keys
        },
        "benchmarks": entries,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    width = max(len(e["name"]) for e in entries)
    for e in entries:
        print(
            f"{e['name']:<{width}}  {e['dataset']}  "
            f"scalar {e['scalar_s'] * 1e3:9.2f} ms  "
            f"vectorized {e['vectorized_s'] * 1e3:8.2f} ms  "
            f"{e['speedup']:8.1f}x"
        )
    print(f"wrote {args.output} ({len(entries)} benchmarks)")

    if args.check:
        slow = [e for e in entries if e["vectorized_s"] > e["scalar_s"]]
        if slow:
            for e in slow:
                print(
                    f"CHECK FAILED: {e['name']} vectorized slower than scalar "
                    f"({e['vectorized_s']:.4f}s > {e['scalar_s']:.4f}s)",
                    file=sys.stderr,
                )
            return 1
        print("check ok: every vectorized kernel <= scalar reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
