#!/usr/bin/env python
"""Scalar-vs-vectorized-vs-compiled kernel benchmarks -> ``BENCH_kernels.json``.

Times every retained scalar reference against its vectorized kernel on
Table 4 RMAT proxies and records the speedups, so the performance
trajectory of the simulation hot paths is tracked in-repo from the PR
that introduced the kernel layer onward::

    PYTHONPATH=src python benchmarks/bench_kernels.py                # RM22
    PYTHONPATH=src python benchmarks/bench_kernels.py --datasets RM22 RM23
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick --check
    PYTHONPATH=src python benchmarks/bench_kernels.py --tier compiled --full-row

``--tier compiled`` adds a third timing column for the native kernels
(numba or cffi, whichever provider loads) on the three compiled hot
loops: the stalling reduce recurrence, the exact drain event loop under
FIFO back-pressure, and per-cell Algorithm 2.  ``--full-row`` appends a
paper-scale out-of-core row (RM22-FULL via mmap storage) for the
stalling reduce, where the ``np.unique`` sort inside the vectorized fold
dominates and the single-pass native hash table pays off.

Each benchmark asserts the renderings produce identical results before
timing them (a wrong kernel must never produce a speedup number).  The
paper-scale row cannot afford its scalar replay, so its ``equal`` is
asserted against the vectorized kernel -- itself oracle-proven equal to
the scalar reference at proxy scale.  ``--check`` exits non-zero unless
every vectorized kernel is at least as fast as its scalar reference and
every compiled kernel at least as fast as its vectorized one -- the CI
smoke gate.

Run standalone; not collected by pytest (no ``test_`` functions).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
import warnings
from typing import Callable, Dict, List, Optional

import numpy as np

from repro import __version__
from repro.core import StallingReducePipeline, ZeroStallReducePipeline
from repro.graph import datasets
from repro.graphdyns.config import GraphDynSConfig
from repro.graphdyns.micro import simulate_scatter_microarch
from repro.kernels import (
    compiled_available,
    compiled_provider_name,
    simulate_scatter_microarch_vectorized,
    split_ops,
    stalling_run,
    zero_stall_run,
)
from repro.memory.hbm import HBM1_512GBS, HBMModel
from repro.memory.request import AccessPattern, Region
from repro.vcpm import ALGORITHMS, run_optimized
from repro.vcpm.spec import ReduceOp

DEFAULT_OUTPUT = "BENCH_kernels.json"


def _best_of(fn: Callable[[], object], repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _entry(
    name,
    dataset,
    scalar_s,
    vectorized_s,
    detail,
    compiled_s=None,
    equal_vs="scalar",
):
    entry = {
        "name": name,
        "dataset": dataset,
        "scalar_s": round(scalar_s, 6) if scalar_s is not None else None,
        "vectorized_s": round(vectorized_s, 6),
        "speedup": (
            round(scalar_s / max(vectorized_s, 1e-9), 2)
            if scalar_s is not None
            else None
        ),
        "equal": True,  # asserted before timing
        "equal_vs": equal_vs,
        "detail": detail,
    }
    if compiled_s is not None:
        entry["compiled_s"] = round(compiled_s, 6)
        entry["compiled_speedup_vs_vectorized"] = round(
            vectorized_s / max(compiled_s, 1e-9), 2
        )
        if scalar_s is not None:
            entry["compiled_speedup_vs_scalar"] = round(
                scalar_s / max(compiled_s, 1e-9), 2
            )
    return entry


def bench_reduce_pipelines(key: str, repeat: int, tier: str) -> List[Dict]:
    """Both Reduce Pipeline cycle models over the proxy's edge stream."""
    graph = datasets.load(key)
    ops = list(zip(graph.edges.tolist(), graph.weights.tolist()))
    addrs, values = split_ops(ops)
    entries = []
    for label, op, scalar_cls, kernel in (
        ("reduce_zero_stall", ReduceOp.SUM, ZeroStallReducePipeline, zero_stall_run),
        ("reduce_stalling", ReduceOp.MIN, StallingReducePipeline, stalling_run),
    ):
        pipeline = scalar_cls(op)
        reference = pipeline.run(ops)
        result = kernel(addrs, values, op)
        assert (
            reference.cycles,
            reference.stall_cycles,
            reference.vb,
        ) == (result.cycles, result.stall_cycles, result.vb), label
        compiled_s: Optional[float] = None
        if tier == "compiled":
            native = kernel(addrs, values, op, tier="compiled")
            assert (
                reference.cycles,
                reference.stall_cycles,
                reference.vb,
            ) == (native.cycles, native.stall_cycles, native.vb), label
            compiled_s = _best_of(
                lambda: kernel(addrs, values, op, tier="compiled"), repeat
            )
        scalar_s = _best_of(lambda: pipeline.run(ops), repeat)
        vector_s = _best_of(lambda: kernel(addrs, values, op), repeat)
        entries.append(
            _entry(
                label,
                key,
                scalar_s,
                vector_s,
                f"{len(ops)} store-reduce ops, {op.value} fold",
                compiled_s=compiled_s,
            )
        )
    return entries


def bench_stalling_outofcore(repeat: int, tier: str) -> List[Dict]:
    """Paper-scale stalling reduce over RM22-FULL's mmap edge stream.

    The scalar pipeline would replay 67M Python tuples, so the equality
    basis here is the vectorized kernel (oracle-proven equal to the
    scalar reference at proxy scale by ``tests/test_kernels_equivalence``).
    """
    graph = datasets.load("RM22-FULL", storage="mmap")
    addrs = np.ascontiguousarray(graph.edges, dtype=np.int64)
    values = np.ascontiguousarray(graph.weights, dtype=np.float64)
    op = ReduceOp.MIN
    reference = stalling_run(addrs, values, op)
    compiled_s: Optional[float] = None
    if tier == "compiled":
        native = stalling_run(addrs, values, op, tier="compiled")
        assert (
            reference.cycles,
            reference.stall_cycles,
            reference.vb,
        ) == (native.cycles, native.stall_cycles, native.vb)
        compiled_s = _best_of(
            lambda: stalling_run(addrs, values, op, tier="compiled"), repeat
        )
    vector_s = _best_of(lambda: stalling_run(addrs, values, op), repeat)
    return [
        _entry(
            "reduce_stalling_outofcore",
            "RM22-FULL",
            None,
            vector_s,
            f"{addrs.size} store-reduce ops, min fold, mmap storage",
            compiled_s=compiled_s,
            equal_vs="vectorized",
        )
    ]


def bench_algorithm2(key: str, repeat: int, tier: str) -> List[Dict]:
    """Algorithm 2 end to end: scalar processing loops vs batched/native."""
    graph = datasets.load(key)
    entries = []
    for algo in ("BFS", "SSSP"):
        spec = ALGORITHMS[algo]
        scalar = run_optimized(graph, spec, source=0)
        batched = run_optimized(graph, spec, source=0, kernel="batched")

        def _assert_same(other, label):
            assert np.array_equal(
                np.nan_to_num(scalar.properties, posinf=1e30),
                np.nan_to_num(other.properties, posinf=1e30),
            ), label
            assert (
                scalar.num_iterations,
                scalar.edges_processed,
                scalar.scatter_dispatches,
                scalar.apply_dispatches,
            ) == (
                other.num_iterations,
                other.edges_processed,
                other.scatter_dispatches,
                other.apply_dispatches,
            ), label

        _assert_same(batched, algo)
        compiled_s: Optional[float] = None
        if tier == "compiled":
            native = run_optimized(graph, spec, source=0, kernel="compiled")
            _assert_same(native, f"{algo} compiled")
            compiled_s = _best_of(
                lambda: run_optimized(graph, spec, source=0, kernel="compiled"),
                repeat,
            )
        scalar_s = _best_of(lambda: run_optimized(graph, spec, source=0), repeat)
        vector_s = _best_of(
            lambda: run_optimized(graph, spec, source=0, kernel="batched"),
            repeat,
        )
        entries.append(
            _entry(
                f"algorithm2_{algo.lower()}",
                key,
                scalar_s,
                vector_s,
                f"{scalar.edges_processed} edges over "
                f"{scalar.num_iterations} iterations",
                compiled_s=compiled_s,
            )
        )
    return entries


def bench_micro_drain(key: str, repeat: int, tier: str) -> List[Dict]:
    """Event-driven Scatter replay vs the closed-form drain schedule."""
    graph = datasets.load(key)
    config = GraphDynSConfig(num_pes=16, n_simt=8, num_ues=128)
    streams = np.array_split(graph.edges, config.num_pes)
    depth = 256  # roomy FIFOs: the pure closed-form drain regime
    event = simulate_scatter_microarch(streams, config, ue_queue_depth=depth)
    fast = simulate_scatter_microarch_vectorized(
        streams, config, ue_queue_depth=depth
    )
    assert event == fast
    scalar_s = _best_of(
        lambda: simulate_scatter_microarch(streams, config, ue_queue_depth=depth),
        repeat,
    )
    vector_s = _best_of(
        lambda: simulate_scatter_microarch_vectorized(
            streams, config, ue_queue_depth=depth
        ),
        repeat,
    )
    entries = [
        _entry(
            "micro_drain",
            key,
            scalar_s,
            vector_s,
            f"{int(sum(s.size for s in streams))} edge results, "
            f"{config.num_pes} PEs x {config.num_ues} UEs",
        )
    ]
    if tier == "compiled":
        # Shallow FIFOs force real back-pressure: the closed form is
        # invalid and the exact event loop must run -- the regime the
        # compiled drain kernel exists for.  The "vectorized" column is
        # that tier's honest cost here (its Python event-loop fallback).
        depth_bp = 2
        bp_event = simulate_scatter_microarch(
            streams, config, ue_queue_depth=depth_bp
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            bp_fallback = simulate_scatter_microarch_vectorized(
                streams, config, ue_queue_depth=depth_bp
            )
            bp_native = simulate_scatter_microarch_vectorized(
                streams, config, ue_queue_depth=depth_bp,
                event_engine="compiled",
            )
        assert bp_event == bp_fallback == bp_native
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            scalar_bp = _best_of(
                lambda: simulate_scatter_microarch(
                    streams, config, ue_queue_depth=depth_bp
                ),
                repeat,
            )
            vector_bp = _best_of(
                lambda: simulate_scatter_microarch_vectorized(
                    streams, config, ue_queue_depth=depth_bp
                ),
                repeat,
            )
            compiled_bp = _best_of(
                lambda: simulate_scatter_microarch_vectorized(
                    streams, config, ue_queue_depth=depth_bp,
                    event_engine="compiled",
                ),
                repeat,
            )
        bp_entry = _entry(
            "micro_drain_backpressure",
            key,
            scalar_bp,
            vector_bp,
            f"{int(sum(s.size for s in streams))} edge results, "
            f"FIFO depth {depth_bp} (closed form invalid)",
            compiled_s=compiled_bp,
        )
        # In this regime the vectorized tier *is* the scalar event loop
        # (plus a failed closed-form attempt), so the vectorized<=scalar
        # gate does not apply -- only the compiled<=vectorized one does.
        bp_entry["vectorized_is_fallback"] = True
        entries.append(bp_entry)
    return entries


def bench_hbm_service(key: str, repeat: int, tier: str) -> List[Dict]:
    """Per-pattern HBM servicing vs the batched kernel."""
    graph = datasets.load(key)
    degrees = np.maximum(graph.out_degree(), 1)
    regions = list(Region)
    patterns = [
        AccessPattern(
            region=regions[int(v) % len(regions)],
            total_bytes=int(d) * 8,
            run_bytes=float(min(int(d) * 8, 256)),
            is_write=bool(v % 2),
        )
        for v, d in enumerate(degrees)
    ]
    scalar_model = HBMModel(HBM1_512GBS)
    batch_model = HBMModel(HBM1_512GBS)
    ref = scalar_model.service_scalar(patterns)
    got = batch_model.service(patterns)
    assert ref.cycles == got.cycles
    assert ref.bytes_by_region == got.bytes_by_region
    model = HBMModel(HBM1_512GBS)
    scalar_s = _best_of(lambda: model.service_scalar(patterns), repeat)
    vector_s = _best_of(lambda: model.service(patterns), repeat)
    return [
        _entry(
            "hbm_service",
            key,
            scalar_s,
            vector_s,
            f"{len(patterns)} access patterns",
        )
    ]


BENCHES = [
    bench_reduce_pipelines,
    bench_algorithm2,
    bench_micro_drain,
    bench_hbm_service,
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=["RM22"],
        choices=[s.key for s in datasets.RMAT_SCALING],
        help="RMAT proxy keys to benchmark (default: RM22)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smallest proxy only, single timing round (CI smoke)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless every vectorized kernel is <= its scalar time",
    )
    parser.add_argument("--repeat", type=int, default=3, help="best-of rounds")
    parser.add_argument(
        "--tier",
        choices=("vectorized", "compiled"),
        default="vectorized",
        help="top tier to benchmark: 'compiled' adds a native-kernel "
        "column on the three compiled hot loops (default: vectorized)",
    )
    parser.add_argument(
        "--full-row",
        action="store_true",
        help="append the RM22-FULL out-of-core stalling reduce row "
        "(mmap storage; no scalar replay at this scale)",
    )
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    keys = ["RM22"] if args.quick else args.datasets
    repeat = 1 if args.quick else max(args.repeat, 1)

    tier = args.tier
    if tier == "compiled" and not compiled_available():
        print(
            "warning: no compiled-tier provider (numba/cffi) available; "
            "emitting scalar/vectorized rows only",
            file=sys.stderr,
        )
        tier = "vectorized"

    entries: List[Dict] = []
    for key in keys:
        for bench in BENCHES:
            entries.extend(bench(key, repeat, tier))
    if args.full_row:
        entries.extend(bench_stalling_outofcore(repeat, tier))

    payload = {
        "schema": 2,
        "package_version": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "kernel_tier": tier,
        "compiled_provider": (
            compiled_provider_name() if tier == "compiled" else None
        ),
        "datasets": {
            key: {
                "vertices": datasets.DATASETS[key].proxy_vertices,
                "edges": datasets.DATASETS[key].proxy_edges,
            }
            for key in keys
        },
        "benchmarks": entries,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    width = max(len(e["name"]) for e in entries)
    for e in entries:
        scalar_col = (
            f"scalar {e['scalar_s'] * 1e3:9.2f} ms"
            if e["scalar_s"] is not None
            else "scalar       --    "
        )
        speedup_col = (
            f"{e['speedup']:8.1f}x" if e["speedup"] is not None else "      --"
        )
        line = (
            f"{e['name']:<{width}}  {e['dataset']}  {scalar_col}  "
            f"vectorized {e['vectorized_s'] * 1e3:8.2f} ms  {speedup_col}"
        )
        if "compiled_s" in e:
            line += (
                f"  compiled {e['compiled_s'] * 1e3:8.2f} ms  "
                f"{e['compiled_speedup_vs_vectorized']:6.1f}x vs vec"
            )
        print(line)
    print(f"wrote {args.output} ({len(entries)} benchmarks)")

    if args.check:
        slow = [
            e
            for e in entries
            if e["scalar_s"] is not None
            and not e.get("vectorized_is_fallback")
            and e["vectorized_s"] > e["scalar_s"]
        ]
        slow_native = [
            e
            for e in entries
            if e.get("compiled_s") is not None
            and e["compiled_s"] > e["vectorized_s"]
        ]
        for e in slow:
            print(
                f"CHECK FAILED: {e['name']} vectorized slower than scalar "
                f"({e['vectorized_s']:.4f}s > {e['scalar_s']:.4f}s)",
                file=sys.stderr,
            )
        for e in slow_native:
            print(
                f"CHECK FAILED: {e['name']} compiled slower than vectorized "
                f"({e['compiled_s']:.4f}s > {e['vectorized_s']:.4f}s)",
                file=sys.stderr,
            )
        if slow or slow_native:
            return 1
        print("check ok: every kernel tier <= the tier below it")
    return 0


if __name__ == "__main__":
    sys.exit(main())
