"""Fig. 14e: performance vs number of Updating Elements on LJ.

Paper: PR and CC slow down 53% and 20% going from 128 to 32 UEs -- the
high-throughput algorithms contend for UEs; BFS/SSSP/SSWP are bound
elsewhere and barely notice.  256 UEs buy little over 128.
"""

from conftest import run_once

from repro.harness import figure14e


def test_fig14e_ue_scaling(benchmark):
    result = run_once(benchmark, lambda: figure14e("LJ"))
    print()
    print(result.render())

    rows = {row[0]: dict(zip(result.headers[1:], row[1:])) for row in result.rows}
    # 128 UEs is the normalization point.
    for algo, vals in rows.items():
        assert vals["128"] == 100.0

    # High-throughput algorithms degrade most at 32 UEs.
    drop = {algo: 100.0 - vals["32"] for algo, vals in rows.items()}
    assert drop["PR"] > drop["SSSP"]
    assert drop["CC"] > drop["SSSP"]
    assert drop["PR"] > 25.0, drop
    # Doubling beyond 128 is a small effect.
    for algo, vals in rows.items():
        assert vals["256"] < 130.0
