"""Fig. 7: throughput in GTEPS (ideal peak 128).

Paper GM: Gunrock 8, Graphicionado 21, GraphDynS 43; GraphDynS PR reaches
the highest throughput (paper: 87.5 GTEPS average for PR); nothing reaches
the 128 GTEPS peak because DRAM refresh and vertex traffic consume
bandwidth.
"""

from conftest import run_once

from repro.harness import figure7, geomean


def test_fig7_throughput(benchmark, suite):
    result = run_once(benchmark, lambda: figure7(suite))
    print()
    print(result.render())

    gm = result.rows[-1]
    gun_gm, gio_gm, gds_gm = gm[2], gm[3], gm[4]
    assert 4.0 < gun_gm < 16.0, f"Gunrock GM {gun_gm}"
    assert 12.0 < gio_gm < 40.0, f"Graphicionado GM {gio_gm}"
    assert 30.0 < gds_gm < 75.0, f"GraphDynS GM {gds_gm}"
    assert gun_gm < gio_gm < gds_gm

    # No cell exceeds the 128 edges/cycle hardware ceiling.
    for row in result.rows[:-1]:
        assert row[4] < 128.0

    # PR is GraphDynS's best algorithm.
    pr = geomean([row[4] for row in result.rows[:-1] if row[0] == "PR"])
    others = geomean([row[4] for row in result.rows[:-1] if row[0] != "PR"])
    assert pr > others
