"""Table 2: the five algorithms' VCPM functions, executed end to end.

Beyond printing the function table, this bench runs every algorithm on the
FR proxy and checks bit-exact agreement with independent references -- the
table is only reproduced if the functions *behave* as specified.
"""

import numpy as np
from conftest import run_once

from repro.graph import datasets
from repro.harness import table2
from repro.vcpm import ALGORITHMS, reference, run_vcpm


def _verify_all():
    graph = datasets.load("FR")
    results = {}
    checks = {
        "BFS": lambda: reference.bfs_levels(graph, 0),
        "SSSP": lambda: reference.sssp_distances(graph, 0),
        "CC": lambda: reference.cc_labels(graph),
        "SSWP": lambda: reference.sswp_widths(graph, 0),
        "PR": lambda: reference.pagerank_scores(graph, iterations=10),
    }
    for name, make_expected in checks.items():
        spec = ALGORITHMS[name]
        kwargs = dict(max_iterations=10, pr_tolerance=0.0) if name == "PR" else {}
        result = run_vcpm(graph, spec, source=0, **kwargs)
        expected = make_expected()
        got = np.nan_to_num(result.properties, posinf=1e30)
        want = np.nan_to_num(expected, posinf=1e30)
        results[name] = bool(np.allclose(got, want))
    return results


def test_table2_algorithms(benchmark):
    verified = run_once(benchmark, _verify_all)
    print()
    print(table2().render())
    print(f"reference agreement on FR proxy: {verified}")
    assert all(verified.values())
