"""Fig. 11: maximum off-chip storage normalized to Gunrock.

Paper GM: GraphDynS 35%, Graphicionado 63%.  GraphDynS stores no src_vid
and no preprocessing metadata; Graphicionado adds src_vid per edge;
Gunrock stores >2x the base graph in preprocessing metadata.
"""

from conftest import run_once

from repro.harness import figure11


def test_fig11_storage(benchmark, suite):
    result = run_once(benchmark, lambda: figure11(suite))
    print()
    print(result.render())

    gm = result.rows[-1]
    gio_pct, gds_pct = gm[2], gm[3]
    assert 25.0 < gds_pct < 45.0, f"GraphDynS storage {gds_pct}%"
    assert 45.0 < gio_pct < 75.0, f"Graphicionado storage {gio_pct}%"
    assert gds_pct < gio_pct

    # Weighted algorithms widen the gap (src_vid is a third field instead
    # of a half).
    for row in result.rows[:-1]:
        assert row[2] < 100.0 and row[3] < 100.0
