#!/usr/bin/env python
"""Evolving-graph benchmarks -> ``BENCH_dynamic.json``.

Measures what the incremental engine buys on churning graphs: for each
(dataset, algorithm, churn rate) cell, a converged baseline absorbs a
trace of insert-only batches, and every batch is recomputed twice —
once through :func:`repro.vcpm.run_vcpm_incremental` (frontier deltas
seeded from the inserted-edge sources) and once through the retained
full-rerun reference.  The ratio of those times is the speedup column;
the *bit-identity* of their property arrays is the correctness gate::

    PYTHONPATH=src python benchmarks/bench_dynamic.py              # RM22
    PYTHONPATH=src python benchmarks/bench_dynamic.py --quick --check
    PYTHONPATH=src python benchmarks/bench_dynamic.py --datasets RM22 RM23

``--check`` exits non-zero unless every incremental result is
byte-identical to its full rerun AND every insert-only batch of a
monotone algorithm actually took the delta path (a silent fallback
would fake correctness while voiding the benchmark's premise).  Mixed
insert/delete traces are benchmarked too — their rows document the
fallback cost rather than a win.

Run standalone; not collected by pytest (no ``test_`` functions).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, List

import numpy as np

from repro import __version__
from repro.graph import datasets
from repro.graph.dynamic import DynamicGraph, churn_batches
from repro.metrics.counters import ChurnStats
from repro.vcpm import get_algorithm, run_vcpm
from repro.vcpm.incremental import run_vcpm_incremental

DEFAULT_OUTPUT = "BENCH_dynamic.json"

#: Batch size as a fraction of the dataset's edge count.
CHURN_RATES = (0.001, 0.01, 0.05)

MONOTONE_ALGORITHMS = ("BFS", "SSSP")


def bench_cell(
    graph_key: str,
    algorithm: str,
    churn_rate: float,
    num_batches: int,
    insert_fraction: float,
    seed: int = 42,
) -> Dict:
    """One (dataset, algorithm, churn-rate) row of the report."""
    base = datasets.load(graph_key)
    spec = get_algorithm(algorithm)
    batch_edges = max(1, int(round(base.num_edges * churn_rate)))
    dynamic = DynamicGraph(base, key=f"BENCH-{graph_key}")

    previous = run_vcpm(dynamic.graph, spec, source=0)
    stats = ChurnStats()
    incremental_s = 0.0
    full_s = 0.0
    bit_identical = True
    for batch in churn_batches(
        dynamic.graph,
        num_batches=num_batches,
        batch_edges=batch_edges,
        insert_fraction=insert_fraction,
        seed=seed,
    ):
        dynamic.apply(batch)
        stats.record_batch(batch)

        start = time.perf_counter()
        outcome = run_vcpm_incremental(
            dynamic.graph, spec, batch, previous, source=0
        )
        incremental_s += time.perf_counter() - start
        stats.record(outcome)

        start = time.perf_counter()
        reference = run_vcpm(dynamic.graph, spec, source=0)
        full_s += time.perf_counter() - start

        if (
            outcome.result.properties.tobytes()
            != reference.properties.tobytes()
        ):
            bit_identical = False
        previous = outcome.result

    return {
        "dataset": graph_key,
        "algorithm": algorithm,
        "churn_rate": churn_rate,
        "batch_edges": batch_edges,
        "batches": num_batches,
        "insert_fraction": insert_fraction,
        "delta_runs": stats.delta_runs,
        "full_runs": stats.full_runs,
        "delta_fraction": round(stats.delta_fraction, 4),
        "edges_inserted": stats.edges_inserted,
        "edges_deleted": stats.edges_deleted,
        "delta_iterations": stats.delta_iterations,
        "full_iterations": stats.full_iterations,
        "incremental_s": round(incremental_s, 6),
        "full_rerun_s": round(full_s, 6),
        "speedup": (
            round(full_s / incremental_s, 3) if incremental_s > 0 else None
        ),
        "bit_identical": bit_identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=["RM22"],
        choices=sorted(datasets.available()),
        help="dataset keys to benchmark (default: RM22)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smallest proxy, fewest batches (CI smoke)",
    )
    parser.add_argument(
        "--batches",
        type=int,
        default=8,
        help="churn batches per cell (default: 8)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 on any bit divergence or any insert-only batch of a "
        "monotone algorithm that failed to take the delta path",
    )
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    keys = ["RM22"] if args.quick else args.datasets
    num_batches = 4 if args.quick else max(1, args.batches)

    entries: List[Dict] = []
    for key in keys:
        for algorithm in MONOTONE_ALGORITHMS:
            for rate in CHURN_RATES:
                entries.append(
                    bench_cell(
                        key, algorithm, rate, num_batches,
                        insert_fraction=1.0,
                    )
                )
        # One mixed-trace row: documents the full-rerun fallback cost.
        entries.append(
            bench_cell(
                key, "SSSP", CHURN_RATES[1], num_batches,
                insert_fraction=0.5,
            )
        )

    payload = {
        "schema": 1,
        "package_version": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "datasets": {
            key: {
                "vertices": datasets.get_spec(key).proxy_vertices,
                "edges": datasets.get_spec(key).proxy_edges,
            }
            for key in keys
        },
        "benchmarks": entries,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    for e in entries:
        speedup = f"{e['speedup']:8.2f}x" if e["speedup"] else "      --"
        print(
            f"{e['dataset']}  {e['algorithm']:<5} "
            f"rate={e['churn_rate']:<6} "
            f"delta {e['delta_runs']}/{e['delta_runs'] + e['full_runs']}  "
            f"incr {e['incremental_s'] * 1e3:9.2f} ms  "
            f"full {e['full_rerun_s'] * 1e3:9.2f} ms  {speedup}  "
            f"{'bit-identical' if e['bit_identical'] else 'DIVERGED'}"
        )

    if args.check:
        failures = []
        for e in entries:
            if not e["bit_identical"]:
                failures.append(
                    f"{e['dataset']}/{e['algorithm']}@{e['churn_rate']}: "
                    "incremental result diverged from full rerun"
                )
            if e["insert_fraction"] >= 1.0 and e["full_runs"] > 0:
                failures.append(
                    f"{e['dataset']}/{e['algorithm']}@{e['churn_rate']}: "
                    f"{e['full_runs']} insert-only batch(es) fell back "
                    "to full rerun"
                )
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("check passed: all cells bit-identical, delta path held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
