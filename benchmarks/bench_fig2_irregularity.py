"""Fig. 2: irregularity characterization (SSSP on Flickr).

Paper observations reproduced in shape:
* active-vertex degrees within one iteration span from 1 to >64
  (workload irregularity);
* most iterations update a small fraction of the vertex set
  (update irregularity -- the paper reports 76% of iterations updating
  <10% of vertices).
"""

from conftest import run_once

from repro.graph import datasets
from repro.harness import figure2


def test_fig2_irregularity(benchmark):
    result = run_once(benchmark, lambda: figure2("FR", "SSSP", 25))
    print()
    print(result.render())

    graph = datasets.load("FR")
    # Workload irregularity: some iteration has active vertices both in the
    # [1,2] band and in the >64 band.
    wide = [row for row in result.rows if row[2] > 0 and row[8] > 0]
    assert wide, "no iteration shows the paper's degree spread"

    # Update irregularity: many iterations update under 10% of vertices.
    # (The paper reports 76% of iterations on the full-size Flickr; the 64x
    # proxy has a relatively wider frontier mid-run, so the sparse share is
    # smaller but still substantial -- see EXPERIMENTS.md.)
    sparse = [
        row for row in result.rows if row[-1] < 0.10 * graph.num_vertices
    ]
    assert len(sparse) >= 0.33 * len(result.rows)
    # And some iterations update almost nothing (the long tail).
    assert min(row[-1] for row in result.rows) < 0.01 * graph.num_vertices
