#!/usr/bin/env python
"""Serving-daemon smoke drill -> ``BENCH_serve.json``.

End-to-end battery against a real ``python -m repro serve`` subprocess,
exercising the durability claims the daemon makes:

1. **baseline** — start a daemon, submit a 2-cell matrix (BFS+CC on
   RM22) over HTTP, poll to completion, fetch the canonical reports.
2. **crash/resume** — start a second daemon with ``kill-daemon:2``
   injected (the host ``os._exit(86)``'s at the 2nd cell start — a
   deterministic ``kill -9`` mid-matrix), submit the same job, watch the
   process die, restart against the same journal + cache, and require
   the resumed job's reports to be **byte-identical** to the baseline.
3. **drain** — SIGTERM the restarted daemon and require a clean exit
   (code 0) plus a journal that folds with nothing left unfinished.

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py --check
    PYTHONPATH=src python benchmarks/serve_smoke.py --output BENCH_serve.json

``--check`` exits non-zero unless every invariant above holds — the CI
gate for the serving tier.

Run standalone; not collected by pytest (no ``test_`` functions).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(_HERE, "..", "src")
sys.path.insert(0, _SRC)

from repro import __version__  # noqa: E402
from repro.harness.serve import (  # noqa: E402
    fetch_result,
    http_json,
    submit_job,
    wait_for_job,
)

ALGORITHMS = ["BFS", "CC"]
GRAPHS = ["RM22"]
WAIT_S = 180.0


def start_daemon(
    workdir: str, inject: Tuple[str, ...] = ()
) -> Tuple[subprocess.Popen, str]:
    """Launch ``repro serve`` on an ephemeral port; return (proc, url)."""
    announce = os.path.join(workdir, "announce.json")
    if os.path.exists(announce):
        os.remove(announce)
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0",
        "--journal", os.path.join(workdir, "jobs.jsonl"),
        "--cache-dir", os.path.join(workdir, "cache"),
        "--announce", announce,
        "--drain-timeout", "5",
    ]
    for fault in inject:
        cmd += ["--inject", fault]
    env = dict(os.environ, PYTHONPATH=os.path.abspath(_SRC))
    proc = subprocess.Popen(cmd, env=env, cwd=workdir)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"daemon exited early: rc={proc.returncode}")
        if os.path.exists(announce):
            try:
                with open(announce) as handle:
                    return proc, json.load(handle)["url"]
            except (ValueError, KeyError):
                pass  # torn announce write; retry
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("daemon never announced its port")


def terminate(proc: subprocess.Popen) -> int:
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=5)
    return proc.returncode


def run_baseline(root: str) -> Dict[str, object]:
    workdir = os.path.join(root, "baseline")
    os.makedirs(workdir)
    t0 = time.perf_counter()
    proc, url = start_daemon(workdir)
    try:
        _, _, body = submit_job(url, ALGORITHMS, GRAPHS, client="smoke")
        job_id = body["job"]["id"]
        final = wait_for_job(url, job_id, timeout=WAIT_S)
        status, reports = fetch_result(url, job_id)
        return {
            "state": final["state"],
            "result_status": status,
            "reports": reports,
            "digest": final.get("result_digest"),
            "wall_s": round(time.perf_counter() - t0, 2),
        }
    finally:
        terminate(proc)


def run_crash_resume(root: str, baseline: Dict[str, object]) -> Dict[str, object]:
    workdir = os.path.join(root, "crash")
    os.makedirs(workdir)
    t0 = time.perf_counter()

    # Phase 1: the daemon dies at the 2nd cell start, mid-matrix.
    proc, url = start_daemon(workdir, inject=("kill-daemon:2",))
    _, _, body = submit_job(url, ALGORITHMS, GRAPHS, client="smoke")
    job_id = body["job"]["id"]
    crash_rc = proc.wait(timeout=120)

    # Phase 2: restart against the same journal + cache; the job must
    # resume (journal folds to started-but-unfinished), finished cells
    # replay from the persistent cache, and the reports must match the
    # uninterrupted baseline byte for byte.
    proc, url = start_daemon(workdir)
    try:
        _, _, stats = http_json(url + "/v1/stats")
        final = wait_for_job(url, job_id, timeout=WAIT_S)
        status, reports = fetch_result(url, job_id)
        drain_rc = terminate(proc)
    finally:
        terminate(proc)

    # Phase 3: one more boot proves the drained journal folds clean.
    proc, url = start_daemon(workdir)
    try:
        _, _, stats_after = http_json(url + "/v1/stats")
    finally:
        terminate(proc)

    return {
        "crash_exit_code": crash_rc,
        "resumed_jobs": stats.get("resumed"),
        "state": final["state"],
        "resumed_flag": final.get("resumed"),
        "result_status": status,
        "byte_identical": reports == baseline["reports"],
        "drain_exit_code": drain_rc,
        "resumed_after_drain": stats_after.get("resumed"),
        "wall_s": round(time.perf_counter() - t0, 2),
    }


def check(baseline: Dict[str, object], crash: Dict[str, object]) -> List[str]:
    failures = []
    if baseline["state"] != "done":
        failures.append(f"baseline state {baseline['state']!r} != 'done'")
    if crash["crash_exit_code"] != 86:
        failures.append(
            f"injected kill exited {crash['crash_exit_code']} != 86"
        )
    if crash["resumed_jobs"] != 1:
        failures.append(f"resumed {crash['resumed_jobs']} jobs != 1")
    if crash["state"] != "done" or crash["resumed_flag"] is not True:
        failures.append("resumed job did not finish with resumed=True")
    if not crash["byte_identical"]:
        failures.append("resumed reports differ from the baseline bytes")
    if crash["drain_exit_code"] != 0:
        failures.append(
            f"SIGTERM drain exited {crash['drain_exit_code']} != 0"
        )
    if crash["resumed_after_drain"] != 0:
        failures.append("drained journal left unfinished jobs behind")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_serve.json")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless every durability invariant holds",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as root:
        baseline = run_baseline(root)
        print(
            f"baseline: {baseline['state']} in {baseline['wall_s']}s "
            f"(digest {baseline['digest']})"
        )
        crash = run_crash_resume(root, baseline)
        print(
            f"crash/resume: kill rc={crash['crash_exit_code']}, "
            f"resumed={crash['resumed_jobs']}, "
            f"byte_identical={crash['byte_identical']}, "
            f"drain rc={crash['drain_exit_code']} in {crash['wall_s']}s"
        )

    payload = {
        "version": __version__,
        "algorithms": ALGORITHMS,
        "graphs": GRAPHS,
        "baseline": {k: v for k, v in baseline.items() if k != "reports"},
        "crash_resume": crash,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"wrote {args.output}")

    if args.check:
        failures = check(baseline, crash)
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
