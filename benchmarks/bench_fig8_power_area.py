"""Fig. 8: power and area breakdown of GraphDynS.

Paper: 3.38 W and 12.08 mm^2 total; Dispatcher+Prefetcher cost ~5% power
and ~2% area; Processor 59% power / 8% area; Updater 36% power / 90% area
(its 32 MB eDRAM plus the crossbar).  GraphDynS uses 68% of
Graphicionado's power and 57% of its area.
"""

import pytest
from conftest import run_once

from repro.energy import GRAPHDYNS_BUDGET, GRAPHICIONADO_BUDGET
from repro.harness import figure8


def test_fig8_power_area(benchmark):
    result = run_once(benchmark, figure8)
    print()
    print(result.render())

    rows = {row[0]: row for row in result.rows}
    assert rows["TOTAL"][1] == pytest.approx(3.38)
    assert rows["TOTAL"][3] == pytest.approx(12.08)
    assert rows["Processor"][2] == pytest.approx(59.0)
    assert rows["Updater"][4] == pytest.approx(89.5)
    assert rows["Dispatcher"][2] + rows["Prefetcher"][2] == pytest.approx(5.0)

    assert (
        GRAPHDYNS_BUDGET.total_power_w / GRAPHICIONADO_BUDGET.total_power_w
        == pytest.approx(0.68)
    )
    assert (
        GRAPHDYNS_BUDGET.total_area_mm2 / GRAPHICIONADO_BUDGET.total_area_mm2
        == pytest.approx(0.57)
    )
