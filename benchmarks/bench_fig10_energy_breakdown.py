"""Fig. 10: GraphDynS energy breakdown.

Paper: ~92.2% of energy goes to HBM (graph analytics has an extremely low
compute-to-communication ratio); the Processor consumes ~4%, the Updater
~3%, everything else under 0.8%.
"""

from conftest import run_once

from repro.harness import figure10


def test_fig10_energy_breakdown(benchmark, suite):
    result = run_once(benchmark, lambda: figure10(suite))
    print()
    print(result.render())

    mean = result.rows[-1]
    components = dict(zip(result.headers[2:], mean[2:]))
    assert components["HBM"] > 70.0, components
    assert components["HBM"] < 99.0
    # On-chip components are each small relative to HBM.
    for name in ("Prefetcher", "Dispatcher", "Processor", "Updater"):
        assert components[name] < 15.0, (name, components[name])
    # Shares are a valid partition.
    assert abs(sum(components.values()) - 100.0) < 1.0
