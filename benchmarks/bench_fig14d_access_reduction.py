"""Fig. 14d: off-chip access reduction from EP and US on LJ.

Paper: exact prefetching removes ~30% of HBM traffic on average (no
over-fetch, no offset chasing); update scheduling removes ~18% more (BFS
up to 55%, PR exactly 0 because it updates everything).
"""

from conftest import run_once

from repro.harness import figure14d


def test_fig14d_access_reduction(benchmark):
    result = run_once(benchmark, lambda: figure14d("LJ"))
    print()
    print(result.render())

    rows = {row[0]: row[1:] for row in result.rows}
    ep_mean, us_mean = rows["MEAN"]
    assert 5.0 < ep_mean < 45.0, f"EP mean reduction {ep_mean}%"
    assert 5.0 < us_mean < 30.0, f"US mean reduction {us_mean}%"

    # BFS benefits most from US (its Apply phase dominates); PR not at all.
    us = {algo: vals[1] for algo, vals in rows.items() if algo != "MEAN"}
    assert max(us, key=us.get) == "BFS"
    assert us["PR"] == 0.0
    # EP reduces traffic for every algorithm.
    ep = {algo: vals[0] for algo, vals in rows.items() if algo != "MEAN"}
    assert all(v > 0 for v in ep.values())
