"""Fig. 14f: PR throughput across the five RMAT scaling graphs.

Paper: GraphDynS throughput declines slightly at the largest scales once
graphs must be sliced (each slice re-reads the active vertices);
Graphicionado declines more gradually because its eDRAM caches twice the
temporary properties, so slicing starts one scale later.  Both systems
"scale well" overall, and GraphDynS stays faster throughout.
"""

from conftest import run_once

from repro.harness import figure14f


def test_fig14f_rmat_scaling(benchmark):
    result = run_once(benchmark, figure14f)
    print()
    print(result.render())

    gds = [row[3] for row in result.rows]
    gio = [row[4] for row in result.rows]
    gds_slices = [row[5] for row in result.rows]
    gio_slices = [row[6] for row in result.rows]

    # GraphDynS faster than Graphicionado at every scale.
    assert all(a > b for a, b in zip(gds, gio))
    # Slicing kicks in as graphs grow, and later for Graphicionado.
    assert gds_slices[-1] > gds_slices[0]
    assert gds_slices[-1] >= 2 * gio_slices[-1] / 2  # GIO never slices more
    assert all(g <= d for g, d in zip(gio_slices, gds_slices))
    # GraphDynS declines from its unsliced peak at the deepest slicing.
    unsliced_peak = max(
        t for t, s in zip(gds, gds_slices) if s == min(gds_slices)
    )
    assert gds[-1] < unsliced_peak
    # But still "scales well": the decline is bounded.
    assert gds[-1] > 0.4 * unsliced_peak
