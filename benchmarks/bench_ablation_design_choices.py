"""Ablation: the configuration choices of Section 5.1.3.

The paper sets nSIMT=8, eThreshold=128, and 1 bitmap bit per 256 vertices
with one-line justifications; these sweeps regenerate the trade-off curves
behind each choice and assert that the paper's operating points sit where
the justifications say they do.
"""

from conftest import run_once

from repro.harness.sweeps import (
    sweep_bandwidth,
    sweep_bitmap_block,
    sweep_e_threshold,
    sweep_n_simt,
)


def test_e_threshold_choice(benchmark):
    result = run_once(benchmark, lambda: sweep_e_threshold("LJ", "SSSP"))
    print()
    print(result.render())
    rows = {row[0]: row for row in result.rows}
    # Larger thresholds always cost fewer scheduling operations...
    ops = [rows[t][1] for t in (16, 32, 64, 128, 256, 512)]
    assert all(a >= b for a, b in zip(ops, ops[1:]))
    # ...but imbalance grows with the threshold; at 128 it is still mild
    # while the op count has dropped substantially vs aggressive splitting.
    assert rows[512][2] > rows[16][2]
    assert rows[128][2] < 1.8
    assert rows[128][1] < 0.75 * rows[16][1]


def test_n_simt_choice(benchmark):
    result = run_once(benchmark, lambda: sweep_n_simt("LJ", "SSSP"))
    print()
    print(result.render())
    rows = {row[0]: row for row in result.rows}
    # Lane efficiency decreases with width (short lists idle lanes) --
    # but thanks to combining, 8 lanes keep >90% efficiency.
    effs = [rows[n][1] for n in (2, 4, 8, 16, 32)]
    assert all(a >= b - 1e-9 for a, b in zip(effs, effs[1:]))
    assert rows[8][1] > 0.9
    # Effective lanes (efficiency x peak) keep growing to 8 and beyond.
    assert rows[8][3] > rows[4][3] > rows[2][3]


def test_bitmap_block_choice(benchmark):
    result = run_once(benchmark, lambda: sweep_bitmap_block("LJ", "BFS"))
    print()
    print(result.render())
    rows = {row[0]: row for row in result.rows}
    # Coarser blocks -> more slack (extra scheduled work), smaller bitmap.
    slacks = [rows[b][2] for b in (32, 64, 128, 256, 512, 1024)]
    assert all(a <= b for a, b in zip(slacks, slacks[1:]))
    bits = [rows[b][3] for b in (32, 64, 128, 256, 512, 1024)]
    assert all(a >= b for a, b in zip(bits, bits[1:]))
    # The paper's 256 still eliminates a large share of Apply work on BFS.
    assert rows[256][4] > 30.0


def test_bandwidth_scaling(benchmark):
    result = run_once(benchmark, lambda: sweep_bandwidth("LJ", "PR"))
    print()
    print(result.render())
    gteps = [row[1] for row in result.rows]
    # More bandwidth never hurts, and the curve flattens (compute/crossbar
    # bound) rather than scaling linearly -- why 512 GB/s suffices against
    # a 900 GB/s GPU.
    assert all(a <= b * 1.001 for a, b in zip(gteps, gteps[1:]))
    low_gain = gteps[1] / gteps[0]   # 128 -> 256 GB/s
    high_gain = gteps[-1] / gteps[-2]  # 512 -> 1024 GB/s
    assert low_gain > high_gain
