"""Fig. 14b: per-PE workload balance in the heaviest iterations.

Paper: SSWP on LJ, normalized per-PE workloads sit within ~1% of the ideal
1.0 across the heaviest iterations once balanced dispatch is on.
"""

import numpy as np
from conftest import run_once

from repro.harness import figure14b


def test_fig14b_balance(benchmark):
    result = run_once(benchmark, lambda: figure14b("LJ", "SSWP"))
    print()
    print(result.render())

    assert result.rows, "no iterations captured"
    loads = np.array([row[1:] for row in result.rows], dtype=float)
    # Every PE in every heavy iteration within 15% of the mean; the very
    # heaviest iterations essentially perfectly balanced.
    assert loads.max() < 1.15
    assert loads.min() > 0.85
    heaviest = loads[0]
    assert abs(heaviest - 1.0).max() < 0.05
