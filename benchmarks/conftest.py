"""Shared state for the benchmark harness.

One :class:`~repro.harness.experiments.ExperimentSuite` is shared by every
benchmark in the session so the 5-algorithm x 6-graph matrix is executed
once; individual benchmarks then regenerate their table/figure from the
memoized cells.  Each benchmark prints the reproduced rows so `pytest
benchmarks/ --benchmark-only -s` doubles as the paper-reproduction report.
"""

import pytest

from repro.harness import ExperimentSuite


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    return ExperimentSuite()


def run_once(benchmark, fn):
    """Benchmark a regenerator with a single timed round.

    Figure regenerators run full accelerator models (seconds to minutes);
    statistical repetition would add nothing but wall-clock.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
