"""Shared state for the benchmark harness.

One :class:`~repro.harness.experiments.ExperimentSuite` is shared by every
benchmark in the session so the 5-algorithm x 6-graph matrix is executed
once; individual benchmarks then regenerate their table/figure from the
memoized cells.  The suite is additionally backed by one *persistent*
run-service cache (``benchmarks/.run_cache`` by default, override with
``REPRO_BENCH_CACHE_DIR``), so a second benchmark invocation replays the
matrix from disk instead of re-simulating it; ``REPRO_BENCH_JOBS``
controls parallel fan-out of cold cells.  Each benchmark prints the
reproduced rows so `pytest benchmarks/ --benchmark-only -s` doubles as
the paper-reproduction report.
"""

import os

import pytest

from repro.harness import ExperimentSuite

_CACHE_DIR = os.environ.get(
    "REPRO_BENCH_CACHE_DIR",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), ".run_cache"),
)
_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    shared = ExperimentSuite(cache_dir=_CACHE_DIR, jobs=_JOBS)
    yield shared
    stats = shared.service.stats
    if stats.requests:
        print(
            f"\n[run-service cache] dir={shared.service.cache_dir} "
            f"hits={stats.hits} misses={stats.misses} "
            f"memory_hits={stats.memory_hits} stores={stats.stores} "
            f"hit_rate={stats.hit_rate:.0%}"
        )


def run_once(benchmark, fn):
    """Benchmark a regenerator with a single timed round.

    Figure regenerators run full accelerator models (seconds to minutes);
    statistical repetition would add nothing but wall-clock.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
