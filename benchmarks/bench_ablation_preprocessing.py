"""Ablation: GPU-style preprocessing vs GraphDynS's runtime scheduling.

Table 1 and Section 1 argue that GPU solutions regularize irregularity
with *preprocessing* (reordering/partitioning), whose cost "usually
offsets its benefits" unless the static graph is reused many times --
while GraphDynS balances at runtime for free.  This bench quantifies
exactly that trade on the LJ proxy:

* degree-sorting the graph *does* improve naive hash-dispatch balance,
* but costs a full graph rewrite, which at the accelerator's own bandwidth
  takes longer than the imbalance it removes for a single run,
* while GraphDynS's balanced dispatch achieves better balance with zero
  preprocessing.
"""

import numpy as np
from conftest import run_once

from repro.core import balanced_dispatch, hash_dispatch
from repro.graph import datasets, sort_by_degree
from repro.harness import render_table
from repro.vcpm import ALGORITHMS, run_vcpm


class _HeaviestFrontier:
    """Captures the active set of the busiest SSSP iteration."""

    def __init__(self):
        self.active_ids = None
        self.best_edges = -1

    def on_iteration(self, data):
        if data.num_edges > self.best_edges:
            self.best_edges = data.num_edges
            self.active_ids = data.active_ids.copy()


def _measure():
    graph = datasets.load("LJ")
    probe = _HeaviestFrontier()
    run_vcpm(graph, ALGORITHMS["SSSP"], source=0, observers=[probe])
    active = probe.active_ids
    degrees = (graph.offsets[active + 1] - graph.offsets[active])

    # Preprocessing regularizes by degree-sorting the whole graph; the same
    # frontier maps to new ids, and the hash scheduler sees its relabeled
    # degree stream.
    sorted_graph, cost = sort_by_degree(graph)
    deg_all = graph.out_degree()
    order = np.argsort(-deg_all, kind="stable")
    permutation = np.empty(graph.num_vertices, dtype=np.int64)
    permutation[order] = np.arange(graph.num_vertices)
    relabeled_active = np.sort(permutation[active])
    relabeled_degrees = (
        sorted_graph.offsets[relabeled_active + 1]
        - sorted_graph.offsets[relabeled_active]
    )

    naive = hash_dispatch(active, degrees)
    preprocessed = hash_dispatch(relabeled_active, relabeled_degrees)
    runtime_balanced = balanced_dispatch(degrees)

    bandwidth = 512e9  # the accelerator's own HBM feeding the rewrite
    preprocess_seconds = cost.seconds_at(bandwidth)
    # One Scatter pass over all edges at 128 edges/cycle, 1 GHz.
    single_run_seconds = graph.num_edges / 128 / 1e9
    return {
        "naive": naive,
        "preprocessed": preprocessed,
        "runtime": runtime_balanced,
        "preprocess_seconds": preprocess_seconds,
        "single_run_seconds": single_run_seconds,
    }


def test_preprocessing_tradeoff(benchmark):
    out = run_once(benchmark, _measure)
    rows = [
        ["hash dispatch (no preprocessing)", f"{out['naive'].imbalance:.2f}", "0"],
        [
            "hash dispatch + degree sort",
            f"{out['preprocessed'].imbalance:.2f}",
            f"{out['preprocess_seconds'] * 1e6:.1f}",
        ],
        [
            "GraphDynS balanced dispatch",
            f"{out['runtime'].imbalance:.2f}",
            "0",
        ],
    ]
    print()
    print(render_table(["strategy", "PE imbalance", "preprocess_us"], rows))
    print(f"one full Scatter pass: {out['single_run_seconds'] * 1e6:.1f} us")

    # Preprocessing helps the naive scheme...
    assert out["preprocessed"].imbalance <= out["naive"].imbalance
    # ...but runtime balancing beats both without any preprocessing...
    assert out["runtime"].imbalance <= out["preprocessed"].imbalance
    # ...and the preprocessing alone costs more than a whole Scatter pass
    # (the paper's "overhead usually offsets its benefits").
    assert out["preprocess_seconds"] > out["single_run_seconds"]
