"""Table 4: the eleven evaluation graphs (paper scale vs proxy scale).

The bench also materializes every proxy and checks its structural contract:
exact vertex/edge counts and a heavy-tailed degree distribution.
"""

from conftest import run_once

from repro.graph import DATASETS, datasets, gini_coefficient
from repro.harness import table4


def _build_all():
    stats = {}
    for key in datasets.available():
        graph = datasets.load(key)
        stats[key] = (
            graph.num_vertices,
            graph.num_edges,
            gini_coefficient(graph.out_degree()),
        )
    return stats


def test_table4_datasets(benchmark):
    stats = run_once(benchmark, _build_all)
    print()
    print(table4().render())
    for key, (v, e, gini) in stats.items():
        spec = DATASETS[key]
        assert v == spec.proxy_vertices, key
        assert e == spec.proxy_edges, key
        assert gini > 0.3, f"{key} degree distribution not skewed"
    print(f"degree gini per proxy: "
          f"{ {k: round(s[2], 2) for k, s in stats.items()} }")
