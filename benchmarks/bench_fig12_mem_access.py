"""Fig. 12: total off-chip data accessed, normalized to Gunrock.

Paper GM: GraphDynS 36% (64% reduction), Graphicionado 53% (47% less than
Gunrock); Graphicionado's excess over GraphDynS is the per-edge src_vid
(1.65x edge traffic) and full-vertex Apply traffic.
"""

from conftest import run_once

from repro.harness import figure12


def test_fig12_mem_access(benchmark, suite):
    result = run_once(benchmark, lambda: figure12(suite))
    print()
    print(result.render())

    gm = result.rows[-1]
    gio_pct, gds_pct = gm[2], gm[3]
    assert 20.0 < gds_pct < 50.0, f"GraphDynS accesses {gds_pct}%"
    assert gds_pct < gio_pct < 75.0

    # Per-cell: GraphDynS never accesses more than Graphicionado.
    for row in result.rows[:-1]:
        assert row[3] <= row[2], row
