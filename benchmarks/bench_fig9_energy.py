"""Fig. 9: energy consumption normalized to Gunrock (including HBM).

Paper: GraphDynS cuts energy 91.4% vs Gunrock (GM normalized ~8.6%) and
45% vs Graphicionado.
"""

from conftest import run_once

from repro.harness import figure9


def test_fig9_energy(benchmark, suite):
    result = run_once(benchmark, lambda: figure9(suite))
    print()
    print(result.render())

    gm = result.rows[-1]
    gio_pct, gds_pct = gm[2], gm[3]
    assert 4.0 < gds_pct < 20.0, f"GraphDynS normalized energy {gds_pct}%"
    assert gds_pct < gio_pct < 40.0
    # vs Graphicionado: a substantial reduction (paper: 45%).
    assert gds_pct / gio_pct < 0.8

    # Every single cell is an energy win over the GPU.
    for row in result.rows[:-1]:
        assert row[3] < 100.0, row
