"""Table 3: system configurations of GraphDynS and the two baselines."""

from conftest import run_once

from repro.graphdyns.config import DEFAULT_CONFIG
from repro.graphicionado.config import GRAPHICIONADO_CONFIG
from repro.gpu.config import V100_GUNROCK
from repro.harness import table3


def test_table3_systems(benchmark):
    result = run_once(benchmark, table3)
    print()
    print(result.render())
    # Table 3 invariants.
    assert DEFAULT_CONFIG.total_lanes == 128
    assert DEFAULT_CONFIG.vb_total_bytes == 32 * 1024 * 1024
    assert GRAPHICIONADO_CONFIG.edram_bytes == 64 * 1024 * 1024
    assert GRAPHICIONADO_CONFIG.num_streams == 128
    assert V100_GUNROCK.num_cores == 5120
    assert DEFAULT_CONFIG.hbm.peak_bytes_per_cycle == 512.0
