"""Fig. 13: average memory bandwidth utilization.

Paper GM: Gunrock 31% (random accesses), Graphicionado and GraphDynS both
around 56% -- Graphicionado's extra src_vid bytes stream sequentially, so
its raw utilization is comparable even though GraphDynS uses the bandwidth
more *usefully*.
"""

from conftest import run_once

from repro.harness import figure13


def test_fig13_bandwidth(benchmark, suite):
    result = run_once(benchmark, lambda: figure13(suite))
    print()
    print(result.render())

    gm = result.rows[-1]
    gun_pct, gio_pct, gds_pct = gm[2], gm[3], gm[4]
    assert 15.0 < gun_pct < 45.0, f"Gunrock utilization {gun_pct}%"
    assert 40.0 < gio_pct < 85.0, f"Graphicionado utilization {gio_pct}%"
    assert 40.0 < gds_pct < 90.0, f"GraphDynS utilization {gds_pct}%"
    # Both accelerators sit well above the GPU.
    assert gun_pct < gio_pct
    assert gun_pct < gds_pct
