#!/usr/bin/env python
"""Define and run a custom algorithm on GraphDynS.

The public extension point is :class:`repro.vcpm.AlgorithmSpec`: provide a
``Process_Edge``, pick a ``Reduce`` (one of MIN/MAX/SUM -- the single-
instruction folds the zero-stall Reduce Pipeline supports), and an
``Apply``.  Here we build *k-hop domination*: how many vertices each vertex
can reach within k hops, approximated by k rounds of frontier counting.

    python examples/custom_algorithm.py
"""

import numpy as np

from repro import GraphDynS, power_law_graph
from repro.vcpm import AlgorithmSpec, ReduceOp, run_vcpm


def make_khop_reach(k: int) -> AlgorithmSpec:
    """Reach-within-k-hops indicator from a source (k frontier rounds).

    Property: the hop at which the vertex was first reached (like BFS),
    but capped at k iterations, so ``isfinite(prop)`` marks the k-hop
    neighbourhood.
    """
    return AlgorithmSpec(
        name=f"REACH{k}",
        process_edge=lambda u_prop, weight: u_prop + 1.0,
        reduce_op=ReduceOp.MIN,
        apply=lambda prop, t_prop, c_prop: np.minimum(prop, t_prop),
        initial_prop=lambda n, source: _source_init(n, source),
        uses_weights=False,
        default_max_iterations=k,
    )


def _source_init(num_vertices: int, source):
    prop = np.full(num_vertices, np.inf)
    if source is not None:
        prop[source] = 0.0
    return prop


def main() -> None:
    graph = power_law_graph(20_000, 240_000, seed=9, name="custom")
    accelerator = GraphDynS()

    print(f"graph: {graph}\n")
    print("k-hop neighbourhood growth from vertex 0 (modeled on GraphDynS):")
    for k in (1, 2, 3, 4, 5):
        spec = make_khop_reach(k)
        result, report = accelerator.run(graph, spec, source=0)
        reached = int(np.isfinite(result.properties).sum())
        print(
            f"  k={k}: {reached:6d} vertices reached | "
            f"{report.cycles:9,.0f} cycles | {report.gteps:5.1f} GTEPS"
        )

    # The functional engine alone also runs custom specs (no hardware
    # model), e.g. for algorithm prototyping:
    spec = make_khop_reach(3)
    result = run_vcpm(graph, spec, source=0)
    print(
        f"\nfunctional-only 3-hop run: {result.num_iterations} iterations, "
        f"{result.total_edges_processed:,} edges processed"
    )


if __name__ == "__main__":
    main()
