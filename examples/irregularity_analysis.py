#!/usr/bin/env python
"""Characterize the three irregularities of Section 3.1 on a dataset.

Reproduces the analysis behind Fig. 2 (degree-skew of active vertices and
update sparsity per iteration) and quantifies what each GraphDynS technique
has to work with:

* workload irregularity -- per-PE imbalance with and without balanced
  dispatch;
* traversal irregularity -- edge-list locality and RAW-conflict density;
* update irregularity -- fraction of vertices actually updated.

    python examples/irregularity_analysis.py [GRAPH] [ALGO]
"""

import sys

import numpy as np

from repro.core import balanced_dispatch, hash_dispatch
from repro.graph import cacheline_locality, datasets, gini_coefficient
from repro.harness import figure2, render_table
from repro.memory.crossbar import grouped_duplicate_count
from repro.vcpm import get_algorithm, run_vcpm


class IrregularityProbe:
    """Observer collecting irregularity statistics per iteration."""

    def __init__(self):
        self.rows = []

    def on_iteration(self, data):
        if data.num_edges == 0:
            return
        balanced = balanced_dispatch(data.active_degrees)
        hashed = hash_dispatch(data.active_ids, data.active_degrees)
        conflicts = grouped_duplicate_count(data.edge_dst, 128)
        self.rows.append(
            [
                data.iteration + 1,
                data.num_active,
                data.num_edges,
                hashed.imbalance,
                balanced.imbalance,
                100.0 * conflicts / data.num_edges,
                100.0 * data.num_modified / data.num_vertices,
            ]
        )


def main() -> None:
    graph_key = sys.argv[1] if len(sys.argv) > 1 else "FR"
    algorithm = sys.argv[2] if len(sys.argv) > 2 else "SSSP"

    graph = datasets.load(graph_key)
    degrees = graph.out_degree()
    print(f"{graph_key} proxy: V={graph.num_vertices:,} E={graph.num_edges:,}")
    print(f"degree gini coefficient: {gini_coefficient(degrees):.3f} "
          f"(0 = uniform, 1 = maximally skewed)")
    print(f"max degree: {degrees.max()} (mean {degrees.mean():.1f})")
    print(f"edge lists fitting one 64B cacheline: "
          f"{cacheline_locality(graph):.0%}  <- why exact prefetch matters")

    probe = IrregularityProbe()
    run_vcpm(graph, get_algorithm(algorithm), source=0, observers=[probe])
    print()
    print(
        render_table(
            [
                "iter", "#active", "#edges", "hash_imbal",
                "balanced_imbal", "raw_conflict_%", "updated_%",
            ],
            probe.rows[:20],
            title=f"{algorithm} irregularity per iteration (first 20)",
        )
    )

    print()
    print(figure2(graph_key, algorithm, max_iterations=15).render())


if __name__ == "__main__":
    main()
