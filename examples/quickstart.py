#!/usr/bin/env python
"""Quickstart: run one algorithm on one graph through GraphDynS.

Builds a small power-law graph, runs SSSP through the GraphDynS model,
verifies the result against a textbook Dijkstra, and prints the modeled
hardware report.

    python examples/quickstart.py
"""

import numpy as np

from repro import GraphDynS, get_algorithm, power_law_graph
from repro.vcpm import reference


def main() -> None:
    # A 10k-vertex power-law graph, the degree profile that makes graph
    # analytics irregular in the first place.
    graph = power_law_graph(
        num_vertices=10_000, num_edges=120_000, seed=42, name="quickstart"
    )
    print(f"graph: {graph}  (mean degree {graph.edge_to_vertex_ratio:.1f})")

    accelerator = GraphDynS()
    spec = get_algorithm("SSSP")
    result, report = accelerator.run(graph, spec, source=0)

    # The functional result is bit-exact: check it against Dijkstra.
    expected = reference.sssp_distances(graph, 0)
    assert np.array_equal(result.properties, expected), "SSSP mismatch!"
    reachable = int(np.isfinite(result.properties).sum())
    print(f"SSSP converged in {result.num_iterations} iterations; "
          f"{reachable}/{graph.num_vertices} vertices reachable")

    # The timing model's hardware view of the same run.
    print(f"modeled cycles:        {report.cycles:,.0f}")
    print(f"modeled time:          {report.seconds * 1e6:.1f} us @ 1 GHz")
    print(f"throughput:            {report.gteps:.1f} GTEPS")
    print(f"bandwidth utilization: {report.bandwidth_utilization:.0%}")
    print(f"off-chip traffic:      {report.total_traffic_bytes / 1e6:.1f} MB")
    print(f"scheduling operations: {report.scheduling_ops:,} "
          f"(vs {report.edges_processed:,} edges)")


if __name__ == "__main__":
    main()
