#!/usr/bin/env python
"""Push vs pull execution of the same algorithms.

GraphDynS is push-based; GPU PageRank is typically pull-based.  Both reach
the same fixpoints but do different amounts of edge work -- push touches
only active out-edges, pull re-gathers every in-edge each iteration.  This
example runs both modes and shows where each wins.

    python examples/push_vs_pull.py [GRAPH]
"""

import sys

import numpy as np

from repro.graph import datasets
from repro.harness import render_table
from repro.vcpm import ALGORITHMS, run_vcpm, run_vcpm_pull


def main() -> None:
    graph_key = sys.argv[1] if len(sys.argv) > 1 else "FR"
    graph = datasets.load(graph_key)
    print(f"{graph_key} proxy: V={graph.num_vertices:,} E={graph.num_edges:,}\n")

    rows = []
    for name in ("BFS", "SSSP", "CC", "SSWP", "PR"):
        spec = ALGORITHMS[name]
        kwargs = (
            dict(max_iterations=10, pr_tolerance=0.0) if name == "PR" else {}
        )
        push = run_vcpm(graph, spec, source=0, **kwargs)
        pull = run_vcpm_pull(graph, spec, source=0, **kwargs)
        same = np.allclose(
            np.nan_to_num(push.properties, posinf=1e30, neginf=-1e30),
            np.nan_to_num(pull.properties, posinf=1e30, neginf=-1e30),
        )
        rows.append(
            [
                name,
                push.num_iterations,
                pull.num_iterations,
                push.total_edges_processed,
                pull.total_edges_processed,
                f"{pull.total_edges_processed / max(push.total_edges_processed, 1):.2f}x",
                "yes" if same else "NO",
            ]
        )
    print(
        render_table(
            [
                "algo", "push_iters", "pull_iters",
                "push_edges", "pull_edges", "pull_overhead", "same_result",
            ],
            rows,
        )
    )
    print(
        "\nPush wins when frontiers are sparse (BFS/SSSP tails); pull's"
        "\natomic-free gathers only pay off for dense, all-active"
        "\nalgorithms like PageRank -- which is why GraphDynS removes the"
        "\natomic cost instead (zero-stall Reduce Pipeline) and stays"
        "\npush-based."
    )


if __name__ == "__main__":
    main()
