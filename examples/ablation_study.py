#!/usr/bin/env python
"""Ablation: switch GraphDynS's four optimizations on one at a time.

Reproduces the methodology of Fig. 14c on any dataset: start from a
Graphicionado-like baseline and add Workload Balancing, Exact Prefetching,
Atomic Optimization, and Update Scheduling cumulatively, printing each
step's speedup and traffic.

    python examples/ablation_study.py [GRAPH]
"""

import sys

from repro.graph import datasets
from repro.graphdyns import GraphDynSTimingModel
from repro.graphdyns.config import DEFAULT_CONFIG
from repro.graphicionado import GraphicionadoTimingModel
from repro.harness import render_table
from repro.harness.figures import ABLATION_STEPS
from repro.vcpm import algorithm_names, get_algorithm, run_vcpm


def main() -> None:
    graph_key = sys.argv[1] if len(sys.argv) > 1 else "LJ"
    graph = datasets.load(graph_key)
    print(f"ablation on {graph_key} proxy "
          f"(V={graph.num_vertices:,} E={graph.num_edges:,})\n")

    for algorithm in algorithm_names():
        spec = get_algorithm(algorithm)
        baseline = GraphicionadoTimingModel(graph, spec)
        steps = {
            label: GraphDynSTimingModel(
                graph, spec, DEFAULT_CONFIG.with_ablation(**switches)
            )
            for label, switches in ABLATION_STEPS
        }
        run_vcpm(
            graph, spec, source=0, observers=[baseline, *steps.values()]
        )
        base_report = baseline.report()
        rows = [
            [
                "Graphicionado", 1.0,
                base_report.total_traffic_bytes / 1e6,
                base_report.stall_cycles,
            ]
        ]
        for label, _ in ABLATION_STEPS:
            report = steps[label].report()
            rows.append(
                [
                    label,
                    report.speedup_over(base_report),
                    report.total_traffic_bytes / 1e6,
                    report.stall_cycles,
                ]
            )
        print(
            render_table(
                ["config", "speedup", "traffic_MB", "stall_cycles"],
                rows,
                title=f"{algorithm}",
            )
        )
        print()


if __name__ == "__main__":
    main()
