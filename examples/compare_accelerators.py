#!/usr/bin/env python
"""Head-to-head: GraphDynS vs Graphicionado vs Gunrock on one dataset.

Reproduces a single column of Figs. 6/7/9 -- pick a Table 4 proxy graph and
an algorithm, run all three system models on the identical functional
execution, and print speedup, throughput, traffic, and energy.

    python examples/compare_accelerators.py [GRAPH] [ALGO]
    python examples/compare_accelerators.py HO PR
"""

import sys

from repro.graph import datasets
from repro.harness import render_table, run_cell


def main() -> None:
    graph_key = sys.argv[1] if len(sys.argv) > 1 else "LJ"
    algorithm = sys.argv[2] if len(sys.argv) > 2 else "SSSP"

    graph = datasets.load(graph_key)
    spec_row = datasets.DATASETS[graph_key]
    print(
        f"{spec_row.full_name} proxy: V={graph.num_vertices:,} "
        f"E={graph.num_edges:,} (paper: V={spec_row.paper_vertices/1e6:.2f}M "
        f"E={spec_row.paper_edges/1e6:.1f}M)"
    )

    cell = run_cell(graph, algorithm, graph_key)
    gunrock = cell.reports["Gunrock"]

    rows = []
    for system in ("Gunrock", "Graphicionado", "GraphDynS"):
        report = cell.reports[system]
        energy = cell.energy[system]
        rows.append(
            [
                system,
                report.gteps,
                report.speedup_over(gunrock),
                report.total_traffic_bytes / 1e6,
                100.0 * report.bandwidth_utilization,
                energy.total_j * 1e3,
                100.0 * energy.normalized_to(cell.energy["Gunrock"]),
            ]
        )
    print(
        render_table(
            [
                "system", "GTEPS", "speedup", "traffic_MB",
                "bw_util_%", "energy_mJ", "energy_vs_GUN_%",
            ],
            rows,
            title=f"\n{algorithm} on {graph_key}",
        )
    )
    gds = cell.reports["GraphDynS"]
    print(
        f"\nGraphDynS stats: {gds.iterations} iterations, "
        f"{gds.scheduling_ops:,} scheduling ops, "
        f"{gds.update_operations:,} update ops "
        f"(of {gds.iterations * graph.num_vertices:,} naive)"
    )


if __name__ == "__main__":
    main()
