#!/usr/bin/env python
"""Scaling studies with terminal plots: UEs, bandwidth, graph size.

Reproduces the Section 7.2 scalability analysis interactively:

* performance vs Updating Element count (Fig. 14e) -- PR and CC are
  UE-bound, the frontier algorithms are not;
* performance vs HBM bandwidth -- why 512 GB/s suffices;
* PR throughput vs RMAT scale (Fig. 14f) -- where slicing bends the curve.

    python examples/scaling_study.py
"""

from repro.harness import figure14e, figure14f, line_series, sweep_bandwidth


def main() -> None:
    print("=== Performance vs #UEs (Fig. 14e, % of 128-UE config) ===\n")
    ue_result = figure14e("LJ")
    x_labels = ue_result.headers[1:]
    series = {row[0]: [float(v) for v in row[1:]] for row in ue_result.rows}
    print(line_series(x_labels, series, height=10))

    print("\n=== GraphDynS PR throughput vs HBM bandwidth ===\n")
    bw_result = sweep_bandwidth("LJ", "PR")
    print(bw_result.render())
    series = {"GTEPS": [float(row[1]) for row in bw_result.rows]}
    print()
    print(
        line_series(
            [str(row[0]) for row in bw_result.rows], series, height=8
        )
    )

    print("\n=== PR throughput over RMAT scaling (Fig. 14f) ===\n")
    rmat_result = figure14f()
    print(rmat_result.render())
    series = {
        "GraphDynS": [float(row[3]) for row in rmat_result.rows],
        "Xicionado": [float(row[4]) for row in rmat_result.rows],
    }
    print()
    print(
        line_series(
            [row[0] for row in rmat_result.rows], series, height=10
        )
    )


if __name__ == "__main__":
    main()
