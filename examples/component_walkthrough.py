#!/usr/bin/env python
"""Walk one BFS iteration through the explicit hardware components.

Shows the Fig. 3 datapath stage by stage on a tiny graph: active-vertex
records -> Dispatcher workloads -> Prefetcher plan / EPB layout ->
Processor edge results -> crossbar -> Updating Elements (zero-stall reduce,
bitmap, coalesced activation), then validates the full run against the
vectorized engine.

    python examples/component_walkthrough.py
"""

import numpy as np

from repro import GraphDynS, get_algorithm, power_law_graph
from repro.graphdyns import Dispatcher, Prefetcher, Processor, Updater
from repro.vcpm import run_vcpm
from repro.vcpm.optimized import dispatch_scatter


def main() -> None:
    graph = power_law_graph(64, 320, seed=7, name="walkthrough")
    spec = get_algorithm("BFS")
    source = 0

    prop = spec.initial_prop(graph.num_vertices, source)
    active = np.asarray([source], dtype=np.int64)

    # S1: the Apply phase of the previous iteration produced
    # (prop, offset, edgeCnt) records -- the decoupled datapath's currency.
    records = dispatch_scatter(prop, graph.offsets, active)
    print(f"active vertex records: {records}")

    # S2: the Dispatcher balances edge workloads across the 16 PEs.
    dispatcher = Dispatcher()
    workloads = dispatcher.dispatch_scatter(records)
    print(f"dispatched {len(workloads)} workload(s): {workloads[:4]}")
    print(f"per-PE edge loads: {dispatcher.pe_loads(workloads).tolist()}")

    # The Prefetcher turns the same records into exact access patterns.
    prefetcher = Prefetcher()
    plan = prefetcher.plan(records, weighted=spec.uses_weights)
    for pattern in plan.patterns:
        print(f"prefetch: {pattern.region.value:14s} "
              f"{pattern.total_bytes:5d} B in runs of {pattern.run_bytes:.0f} B")

    # S3/S4: PEs execute Process_Edge over the EPB contents.
    processor = Processor(spec)
    results = processor.process_scatter(graph, workloads)
    print(f"edge results (dst, value): "
          f"{[(r.dst, r.value) for r in results[:8]]} ...")

    # S5: the crossbar routes results to UEs; Reduce Pipelines fold them
    # with zero stalls; the bitmap records ready-to-update vertices.
    updater = Updater(graph.num_vertices, spec)
    modified = updater.scatter_update(results)
    print(f"modified vertices (bitmap marks): {modified.tolist()}")
    print(f"bitmap blocks set: {updater.bitmap.blocks_set}")

    # Full-run validation: component path == vectorized engine, bit for bit.
    accelerator = GraphDynS()
    component = accelerator.run_component_level(graph, spec, source=source)
    functional = run_vcpm(graph, spec, source=source)
    assert np.array_equal(component.properties, functional.properties)
    print(f"\nfull component-level run matches the vectorized engine "
          f"({component.num_iterations} iterations, "
          f"{component.edges_processed} edges).")


if __name__ == "__main__":
    main()
