"""S2V vectorization and exact-prefetch planner tests."""

import numpy as np
import pytest

from repro.core import (
    EDGE_BYTES_EXACT,
    EDGE_BYTES_WITH_SRC,
    coalesced_run_lengths,
    plan_baseline_fetch,
    plan_exact_prefetch,
    simt_issue_slots,
    vectorize_workloads,
)
from repro.memory import Region


class TestVectorize:
    def test_exact_multiple_full_efficiency(self):
        stats = vectorize_workloads([8, 16, 24], n_simt=8)
        assert stats.issue_slots == 6
        assert stats.lane_efficiency == 1.0

    def test_combining_packs_remainders(self):
        # Four 3-edge lists: combined they need 2 slots, not 4.
        combined = vectorize_workloads([3, 3, 3, 3], n_simt=8)
        naive = vectorize_workloads([3, 3, 3, 3], n_simt=8, combine_small=False)
        assert combined.issue_slots == 2
        assert naive.issue_slots == 4
        assert combined.lane_efficiency > naive.lane_efficiency

    def test_empty(self):
        stats = vectorize_workloads([], n_simt=8)
        assert stats.issue_slots == 0
        assert stats.lane_efficiency == 1.0

    def test_zero_sized_lists_free(self):
        stats = vectorize_workloads([0, 0, 8], n_simt=8)
        assert stats.issue_slots == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            vectorize_workloads([-1])

    def test_compute_cycles_alias(self):
        stats = vectorize_workloads([16], n_simt=8)
        assert stats.compute_cycles == stats.issue_slots == 2

    def test_closed_form_slots(self):
        assert simt_issue_slots(64, 1.0, 8) == 8
        assert simt_issue_slots(64, 0.5, 8) == 16
        assert simt_issue_slots(0, 1.0, 8) == 0


class TestCoalescedRuns:
    def test_adjacent_extents_merge(self):
        runs = coalesced_run_lengths(np.array([0, 5, 10]), np.array([5, 5, 5]))
        assert runs.tolist() == [15]

    def test_gap_breaks_run(self):
        runs = coalesced_run_lengths(np.array([0, 8]), np.array([5, 5]))
        assert runs.tolist() == [5, 5]

    def test_zero_count_vertices_skipped(self):
        runs = coalesced_run_lengths(np.array([0, 5, 5]), np.array([5, 0, 5]))
        assert runs.tolist() == [10]

    def test_unsorted_offsets_handled(self):
        runs = coalesced_run_lengths(np.array([10, 0]), np.array([5, 10]))
        assert runs.tolist() == [15]

    def test_empty(self):
        assert coalesced_run_lengths(np.array([]), np.array([])).size == 0

    def test_total_preserved(self):
        rng = np.random.default_rng(3)
        counts = rng.integers(0, 20, size=100)
        offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
        keep = rng.random(100) < 0.5
        runs = coalesced_run_lengths(offsets[keep], counts[keep])
        assert runs.sum() == counts[keep].sum()


class TestExactPrefetch:
    def test_edge_bytes_exact(self):
        plan = plan_exact_prefetch(np.array([0]), np.array([10]), weighted=True)
        edge = next(p for p in plan.patterns if p.region is Region.EDGE)
        assert edge.total_bytes == 10 * EDGE_BYTES_EXACT

    def test_unweighted_halves_edge_bytes(self):
        plan = plan_exact_prefetch(np.array([0]), np.array([10]), weighted=False)
        edge = next(p for p in plan.patterns if p.region is Region.EDGE)
        assert edge.total_bytes == 10 * 4

    def test_no_offset_region_traffic(self):
        plan = plan_exact_prefetch(np.array([0, 10]), np.array([10, 5]))
        assert all(p.region is not Region.OFFSET for p in plan.patterns)

    def test_adjacent_lists_coalesce_into_one_run(self):
        plan = plan_exact_prefetch(np.array([0, 10]), np.array([10, 10]))
        assert plan.coalesced_runs == 1

    def test_empty_frontier(self):
        plan = plan_exact_prefetch(np.array([]), np.array([]))
        assert plan.patterns == []
        assert plan.total_bytes == 0


class TestBaselineFetch:
    def test_src_vid_inflates_edge_bytes(self):
        exact = plan_exact_prefetch(np.array([0]), np.array([100]))
        base = plan_baseline_fetch(np.array([0]), np.array([100]))
        edge_e = next(p for p in exact.patterns if p.region is Region.EDGE)
        edge_b = next(p for p in base.patterns if p.region is Region.EDGE)
        assert base.edge_bytes == EDGE_BYTES_WITH_SRC
        # 12B records + one sentinel edge.
        assert edge_b.total_bytes == 101 * 12
        assert edge_b.total_bytes > 1.4 * edge_e.total_bytes

    def test_sentinel_reads_per_vertex(self):
        base = plan_baseline_fetch(np.array([0, 5, 9]), np.array([5, 4, 7]))
        edge = next(p for p in base.patterns if p.region is Region.EDGE)
        assert edge.total_bytes == (16 + 3) * 12

    def test_offset_traffic_when_not_cached(self):
        base = plan_baseline_fetch(
            np.array([0]), np.array([5]), offset_cached_on_chip=False
        )
        assert any(p.region is Region.OFFSET for p in base.patterns)

    def test_offset_free_when_cached(self):
        base = plan_baseline_fetch(
            np.array([0]), np.array([5]), offset_cached_on_chip=True
        )
        assert all(p.region is not Region.OFFSET for p in base.patterns)

    def test_empty_frontier(self):
        base = plan_baseline_fetch(np.array([]), np.array([]))
        assert base.total_bytes == 0
