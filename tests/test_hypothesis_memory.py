"""Property-based tests for the memory substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    AccessPattern,
    HBM1_512GBS,
    HBMModel,
    Region,
    TrafficLedger,
)
from repro.sim import Port


class TestHBMProperties:
    @given(
        st.integers(1, 1 << 24),
        st.floats(8.0, 1 << 20),
    )
    @settings(max_examples=80, deadline=None)
    def test_cycles_at_least_ideal(self, total_bytes, run_bytes):
        hbm = HBMModel(HBM1_512GBS)
        pattern = AccessPattern(Region.EDGE, total_bytes, run_bytes)
        cycles = hbm.pattern_cycles(pattern)
        assert cycles >= hbm.ideal_cycles(total_bytes) * 0.999

    @given(st.integers(1, 1 << 22))
    @settings(max_examples=50, deadline=None)
    def test_longer_runs_never_slower(self, total_bytes):
        hbm = HBMModel(HBM1_512GBS)
        short = hbm.pattern_cycles(
            AccessPattern(Region.EDGE, total_bytes, 8.0)
        )
        longer = hbm.pattern_cycles(
            AccessPattern(Region.EDGE, total_bytes, float(total_bytes))
        )
        assert longer <= short

    @given(
        st.lists(
            st.tuples(st.integers(0, 1 << 16), st.booleans()),
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_service_accounting_consistent(self, specs):
        hbm = HBMModel(HBM1_512GBS)
        patterns = [
            AccessPattern(Region.EDGE, nbytes, max(float(nbytes), 8.0),
                          is_write=write)
            for nbytes, write in specs
        ]
        hbm.service(patterns)
        assert hbm.total_bytes == sum(n for n, _ in specs)
        assert hbm.write_bytes == sum(n for n, w in specs if w)
        assert hbm.energy_pj == pytest.approx(hbm.total_bytes * 8 * 7.0)

    @given(st.integers(0, 1 << 20), st.integers(0, 1 << 20))
    @settings(max_examples=50, deadline=None)
    def test_service_additive_in_patterns(self, a, b):
        one = HBMModel(HBM1_512GBS)
        split = one.service(
            [
                AccessPattern(Region.EDGE, a, max(float(a), 8.0)),
                AccessPattern(Region.OFFSET, b, max(float(b), 8.0)),
            ]
        )
        two = HBMModel(HBM1_512GBS)
        first = two.service([AccessPattern(Region.EDGE, a, max(float(a), 8.0))])
        second = two.service(
            [AccessPattern(Region.OFFSET, b, max(float(b), 8.0))]
        )
        assert split.cycles == pytest.approx(first.cycles + second.cycles)


class TestLedgerProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(list(Region)),
                st.integers(0, 1 << 20),
                st.booleans(),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_totals_partition(self, entries):
        ledger = TrafficLedger()
        for region, nbytes, write in entries:
            ledger.add(
                AccessPattern(region, nbytes, max(float(nbytes), 1.0), write)
            )
        assert ledger.total == ledger.total_read + ledger.total_write
        assert ledger.total == sum(
            ledger.region_total(region) for region in Region
        )


class TestPortProperties:
    @given(
        st.lists(st.tuples(st.integers(0, 100), st.integers(0, 64)), max_size=30),
        st.integers(1, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_fcfs_never_reorders(self, requests, width):
        port = Port(width)
        done = 0
        for cycle, items in requests:
            finished = port.request(cycle, items)
            assert finished >= cycle
            if items > 0:
                # Real work completes in issue order (FCFS); zero-item
                # queries are free and don't advance the horizon.
                assert finished >= done
                done = finished
