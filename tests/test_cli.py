"""CLI tests (direct main() invocation; no subprocesses)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.graph == "LJ"
        assert args.algo == "SSSP"
        assert args.system == "graphdyns"

    def test_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--system", "tpu"])

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_service_flags(self):
        args = build_parser().parse_args(
            ["figure", "fig8", "--jobs", "4",
             "--cache-dir", "/tmp/x", "--no-cache"]
        )
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/x"
        assert args.no_cache is True

    def test_service_flag_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.jobs == 1
        assert args.cache_dir is None
        assert args.no_cache is False
        assert args.executor == "thread"

    def test_executor_flag(self):
        args = build_parser().parse_args(
            ["figure", "fig6", "--jobs", "2", "--executor", "process"]
        )
        assert args.executor == "process"

    def test_rejects_unknown_executor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--executor", "fiber"])

    def test_profile_flag(self):
        assert build_parser().parse_args(["run"]).profile is False
        assert build_parser().parse_args(["run", "--profile"]).profile is True

    def test_matrix_defaults(self):
        args = build_parser().parse_args(["matrix"])
        assert args.algorithms is None
        assert args.graphs is None
        assert args.retries == 3
        assert args.timeout is None
        assert args.backoff == 0.05
        assert args.checkpoint is None
        assert args.resume is None
        assert args.inject == []
        assert args.output is None

    def test_matrix_inject_is_repeatable(self):
        args = build_parser().parse_args(
            ["matrix", "--inject", "crash:1", "--inject", "flaky-store:1"]
        )
        assert args.inject == ["crash:1", "flaky-store:1"]

    def test_matrix_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["matrix", "--algorithms", "DFS"])

    def test_matrix_shares_service_flags(self):
        args = build_parser().parse_args(
            ["matrix", "--jobs", "2", "--executor", "process", "--no-cache"]
        )
        assert args.jobs == 2
        assert args.executor == "process"
        assert args.no_cache is True

    def test_sharding_flag_defaults(self):
        for argv in (["run"], ["matrix"], ["trace", "bfs", "FR"]):
            args = build_parser().parse_args(argv)
            assert args.storage == "memory"
            assert args.shards == 1

    def test_sharding_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "--storage", "mmap", "--shards", "4"]
        )
        assert args.storage == "mmap"
        assert args.shards == 4

    def test_rejects_unknown_storage(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--storage", "tape"])

    def test_matrix_accepts_sharding_flags(self):
        args = build_parser().parse_args(
            ["matrix", "--storage", "mmap", "--shards", "2", "--jobs", "2"]
        )
        assert args.storage == "mmap"
        assert args.shards == 2


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "LiveJournal" in out
        assert "RMAT scale 26" in out

    def test_datasets_lists_aliases_and_paper_scale(self, capsys):
        # S1: alias and *-FULL spellings are discoverable from the CLI.
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "RM12" in out
        assert "proxy-scale RMAT alias" in out
        assert "RM22-FULL" in out
        assert "paper scale" in out

    def test_run_sharded_mmap_matches_default(self, capsys):
        assert main(["run", "--graph", "FR", "--algo", "BFS"]) == 0
        baseline = capsys.readouterr().out
        assert main(
            ["run", "--graph", "FR", "--algo", "BFS",
             "--storage", "mmap", "--shards", "3"]
        ) == 0
        assert capsys.readouterr().out == baseline

    def test_run_graphdyns(self, capsys):
        assert main(["run", "--graph", "FR", "--algo", "BFS"]) == 0
        out = capsys.readouterr().out
        assert "GraphDynS" in out
        assert "GTEPS" in out

    def test_run_profiled(self, capsys):
        assert main(
            ["run", "--graph", "FR", "--algo", "BFS", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "GTEPS" in out  # the normal report still prints
        assert "cumulative" in out  # plus the cProfile table

    def test_run_baseline_system(self, capsys):
        assert main(
            ["run", "--graph", "FR", "--algo", "CC", "--system", "gunrock"]
        ) == 0
        assert "Gunrock" in capsys.readouterr().out

    def test_compare(self, capsys, tmp_path):
        assert main(
            ["compare", "--graph", "FR", "--algo", "BFS",
             "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        for system in ("Gunrock", "Graphicionado", "GraphDynS"):
            assert system in out

    def test_compare_second_run_served_from_cache(self, capsys, tmp_path):
        argv = ["compare", "--graph", "FR", "--algo", "BFS",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        assert main(argv) == 0
        assert list(tmp_path.glob("*.json")), "no cache entry written"

    def test_backends_lists_registered_systems(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for system in ("GraphDynS", "Graphicionado", "Gunrock"):
            assert system in out

    def test_figure_static(self, capsys):
        assert main(["figure", "fig8", "table2"]) == 0
        out = capsys.readouterr().out
        assert "power/area" in out
        assert "Process_Edge" in out


class TestChurnCommand:
    def test_churn_defaults_parse(self):
        args = build_parser().parse_args(["churn"])
        assert args.graph == "FR"
        assert args.algo == "BFS"
        assert args.batches == 8
        assert args.insert_fraction == 0.5

    def test_insert_only_session_stays_on_delta_path(self, capsys):
        rc = main(
            ["churn", "--graph", "FR", "--algo", "SSSP", "--batches", "3",
             "--batch-edges", "16", "--insert-fraction", "1.0"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "delta path on 3/3 steps" in out
        assert "False" not in out  # every row bit-identical
        assert "ERROR" not in out

    def test_mixed_session_reports_fallbacks(self, capsys):
        rc = main(
            ["churn", "--graph", "FR", "--algo", "BFS", "--batches", "2",
             "--batch-edges", "8", "--insert-fraction", "0.5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "full" in out
        assert "ERROR" not in out

    def test_churn_key_cleaned_up_after_session(self):
        from repro.graph import dynamic

        assert main(["churn", "--batches", "1", "--batch-edges", "4"]) == 0
        assert not dynamic.is_registered("FR-CHURN")


class TestMatrixCommand:
    _BASE = ["matrix", "--algorithms", "BFS", "CC", "--graphs", "FR",
             "--backoff", "0"]

    def test_injected_crash_output_matches_clean_run(self, capsys, tmp_path):
        clean = tmp_path / "clean.json"
        faulted = tmp_path / "faulted.json"
        assert main(
            self._BASE + ["--no-cache", "-o", str(clean)]
        ) == 0
        assert main(
            self._BASE
            + ["--no-cache", "--inject", "crash:1", "-o", str(faulted)]
        ) == 0
        assert clean.read_bytes() == faulted.read_bytes()
        out = capsys.readouterr().out
        assert "retries" in out

    def test_checkpoint_then_resume(self, capsys, tmp_path):
        manifest = tmp_path / "sweep.jsonl"
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert main(
            self._BASE + cache
            + ["--checkpoint", str(manifest), "-o", str(first)]
        ) == 0
        assert manifest.exists()
        assert main(
            self._BASE + cache
            + ["--resume", str(manifest), "-o", str(second)]
        ) == 0
        assert first.read_bytes() == second.read_bytes()
        out = capsys.readouterr().out
        assert f"checkpoint manifest: {manifest}" in out


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8177
        assert args.journal == "repro-jobs.jsonl"
        assert args.capacity == 64
        assert args.rate is None
        assert args.max_running == 1
        assert args.executor == "thread"
        assert args.inject == []
        assert args.announce is None

    def test_serve_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--journal", "w.jsonl",
             "--capacity", "8", "--rate", "2.5", "--burst", "4",
             "--max-running", "2", "--executor", "process",
             "--deadline", "30", "--inject", "kill-daemon:2",
             "--inject", "queue-overflow:1:1", "--announce", "a.json",
             "--storage", "mmap", "--shards", "4"]
        )
        assert args.port == 0
        assert args.capacity == 8
        assert args.rate == 2.5
        assert args.executor == "process"
        assert args.inject == ["kill-daemon:2", "queue-overflow:1:1"]
        assert args.announce == "a.json"
        assert args.storage == "mmap" and args.shards == 4

    def test_serve_rejects_unknown_executor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--executor", "gpu"])

    def test_submit_requires_algorithms_and_graphs(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "--graphs", "FR"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "--algorithms", "BFS"])

    def test_submit_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["submit", "--algorithms", "NOPE", "--graphs", "FR"]
            )

    def test_jobs_optional_id(self):
        assert build_parser().parse_args(["jobs"]).job_id is None
        args = build_parser().parse_args(["jobs", "j000001-aaaa"])
        assert args.job_id == "j000001-aaaa"


class TestServeClients:
    """submit/jobs client commands against an in-process daemon."""

    @pytest.fixture()
    def daemon(self, tmp_path):
        from repro.harness.serve import DaemonConfig, SimulationDaemon

        daemon = SimulationDaemon(
            DaemonConfig(
                port=0,
                journal_path=str(tmp_path / "jobs.jsonl"),
                cache_dir=str(tmp_path / "cache"),
                poll_interval=0.01,
                drain_timeout=1.0,
            )
        )
        daemon.start()
        yield daemon
        daemon.stop(drain=False)

    def test_submit_wait_writes_result(self, daemon, capsys, tmp_path):
        out = tmp_path / "result.json"
        code = main(
            ["submit", "--url", daemon.base_url,
             "--algorithms", "BFS", "--graphs", "RM22",
             "--wait", "--timeout", "90", "-o", str(out)]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "accepted as j" in captured
        assert "final state: done" in captured
        assert out.read_text().startswith("[")

    def test_jobs_lists_submitted_job(self, daemon, capsys):
        assert main(
            ["submit", "--url", daemon.base_url,
             "--algorithms", "BFS", "--graphs", "RM22",
             "--wait", "--timeout", "90"]
        ) == 0
        capsys.readouterr()
        assert main(["jobs", "--url", daemon.base_url]) == 0
        listing = capsys.readouterr().out
        assert "done" in listing and "BFS" in listing

    def test_jobs_inspect_unknown_id_fails(self, daemon, capsys):
        assert main(["jobs", "--url", daemon.base_url, "nope"]) == 1

    def test_submit_rejected_when_draining(self, daemon, capsys):
        daemon.drain()
        code = main(
            ["submit", "--url", daemon.base_url,
             "--algorithms", "BFS", "--graphs", "FR"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "rejected [503]" in err
        assert "Retry-After" in err


class TestSpecCommands:
    """The declarative plan / run-spec surface."""

    SPEC = "name: clitest\nalgorithms: [BFS]\ngraphs: [RM12]\nselect: [cycles]\n"

    @pytest.fixture()
    def spec_path(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text(self.SPEC)
        return str(path)

    def test_parser_defaults(self):
        args = build_parser().parse_args(["plan", "x.yaml"])
        assert args.json is False and args.url is None
        args = build_parser().parse_args(["run-spec", "x.yaml"])
        assert args.dry_run is False
        assert args.output is None and args.plan_out is None
        assert args.priority is None

    def test_plan_requires_spec_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan"])

    def test_plan_json_is_canonical(self, spec_path, capsys):
        import json

        assert main(["plan", spec_path, "--no-cache", "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["spec"]["name"] == "clitest"
        assert parsed["totals"]["pending"] == 1
        assert parsed["schedule"] == [["base", "BFS", "RM12"]]

    def test_run_spec_writes_outputs(self, spec_path, tmp_path, capsys):
        out = tmp_path / "cells.json"
        plan_out = tmp_path / "plan.json"
        code = main(
            ["run-spec", spec_path, "--no-cache",
             "-o", str(out), "--plan-out", str(plan_out)]
        )
        assert code == 0
        assert out.read_text().startswith("[")
        assert '"schedule"' in plan_out.read_text()
        output = capsys.readouterr().out
        assert "spec clitest" in output
        assert "BFS" in output and "cycles" in output

    def test_missing_spec_file_exit_2(self, tmp_path, capsys):
        assert main(["plan", str(tmp_path / "nope.yaml")]) == 2
        assert "spec error" in capsys.readouterr().err

    def test_plan_and_run_spec_against_daemon(self, tmp_path, capsys):
        from repro.harness.serve import DaemonConfig, SimulationDaemon

        daemon = SimulationDaemon(
            DaemonConfig(
                port=0,
                journal_path=str(tmp_path / "jobs.jsonl"),
                cache_dir=str(tmp_path / "cache"),
                poll_interval=0.01,
                drain_timeout=1.0,
            )
        )
        daemon.start()
        try:
            spec_path = tmp_path / "spec.yaml"
            spec_path.write_text(
                "name: clid\nalgorithms: [BFS]\ngraphs: [RM22]\n"
            )
            assert main(["plan", str(spec_path), "--url",
                         daemon.base_url]) == 0
            assert '"totals"' in capsys.readouterr().out

            assert main(["run-spec", str(spec_path), "--url",
                         daemon.base_url, "--priority", "2"]) == 0
            body = capsys.readouterr().out
            assert '"jobs"' in body

            bad = tmp_path / "bad.yaml"
            bad.write_text("name: x\nalgorithms: [NOPE]\ngraphs: [RM22]\n")
            assert main(["plan", str(bad), "--url", daemon.base_url]) == 1
            assert "daemon rejected plan (400)" in capsys.readouterr().err
        finally:
            daemon.stop(drain=False)
