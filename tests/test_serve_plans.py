"""Declarative plans over the daemon's HTTP surface (POST /v1/plans).

End-to-end tests run a real in-process daemon on the cheapest cells
(the RM22 proxy); the in-flight classification test substitutes a
blocking stub service so the "job already running" state is reached
deterministically.
"""

import threading

import pytest

from repro.harness.journal import JobJournal
from repro.harness.serve import (
    submit_job,
    submit_plan,
    wait_for_job,
)
from repro.harness.service import CacheStats

from tests.test_serve_daemon import make_daemon

SPEC_YAML = "name: plantest\nalgorithms: [BFS, PR]\ngraphs: [RM22]\n"


class PlannableStub:
    """Stub service exposing the planner/daemon axis surface.

    ``matrix`` blocks until released so submitted jobs stay in-flight
    for as long as the test needs them to be.
    """

    default_source = 0
    storage = "memory"
    shards = 1
    kernel_tier = "auto"
    backends = ("stub",)

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.stats = CacheStats()

    def request_for(self, algorithm, graph_key):
        return (algorithm.upper(), graph_key)

    def cache_key(self, request):
        return f"{request[0]}|{request[1]}"

    def probe(self, algorithm, graph_key):
        request = self.request_for(algorithm, graph_key)
        return request, self.cache_key(request), "miss"

    def matrix(self, algorithms, graph_keys, jobs=None, executor=None):
        self.started.set()
        if not self.release.wait(timeout=30):
            raise TimeoutError("stub never released")
        return []


class TestPlanLifecycle:
    def test_dry_run_submit_and_warm_replan(self, tmp_path):
        daemon = make_daemon(tmp_path)
        try:
            url = daemon.base_url

            # Dry run: classified plan, no jobs enqueued.
            status, _, body = submit_plan(
                url, yaml_text=SPEC_YAML, dry_run=True
            )
            assert status == 200
            assert body["dry_run"] is True
            assert body["jobs"] == []
            assert body["plan"]["totals"]["pending"] == 2
            assert daemon.stats.admitted == 0

            # Real submission: pending cells fan out as one job per
            # graph group through the normal admission path.
            status, _, body = submit_plan(
                url, yaml_text=SPEC_YAML, client="battery"
            )
            assert status == 202
            assert len(body["jobs"]) == 1  # one graph -> one job
            job = body["jobs"][0]
            assert sorted(job["algorithms"]) == ["BFS", "PR"]
            assert job["graphs"] == ["RM22"]
            final = wait_for_job(url, job["id"], timeout=120)
            assert final["state"] == "done"

            # Warm replan: everything cached, nothing scheduled.
            status, _, body = submit_plan(
                url, yaml_text=SPEC_YAML, dry_run=True
            )
            assert status == 200
            totals = body["plan"]["totals"]
            assert totals["cached"] == 2
            assert totals["pending"] == 0
            assert totals["saved_cost"] == totals["total_cost"]

            # Non-dry warm replan submits zero jobs but still succeeds.
            status, _, body = submit_plan(url, yaml_text=SPEC_YAML)
            assert status == 202
            assert body["jobs"] == []
        finally:
            daemon.stop(drain=False)

    def test_spec_dict_form_and_journal_event(self, tmp_path):
        daemon = make_daemon(tmp_path)
        try:
            url = daemon.base_url
            spec = {
                "name": "dictform",
                "algorithms": ["BFS"],
                "graphs": ["RM22"],
            }
            status, _, body = submit_plan(url, spec=spec, priority=3)
            assert status == 202
            assert len(body["jobs"]) == 1
            assert body["jobs"][0]["priority"] == 3
            wait_for_job(url, body["jobs"][0]["id"], timeout=120)
            assert daemon.stats.planned == 1
        finally:
            daemon.stop(drain=True)

        # The journal recorded the plan and replays without issue: the
        # id-less "plan" event is informational and folds to nothing.
        journal_path = tmp_path / "jobs.jsonl"
        events = [
            line for line in journal_path.read_text().splitlines() if line
        ]
        assert any('"event": "plan"' in line for line in events)
        records, _ = JobJournal.replay(str(journal_path))
        assert all(
            record.spec["algorithms"] == ["BFS"]
            for record in records.values()
        )

        # A daemon restarted on that journal comes up cleanly; the
        # completed plan job is terminal, so nothing is re-enqueued.
        daemon2 = make_daemon(tmp_path)
        try:
            assert daemon2.stats.planned == 0  # plan events are not jobs
            assert daemon2.stats.resumed == 0
        finally:
            daemon2.stop(drain=False)


class TestPlanRejections:
    @pytest.fixture()
    def daemon(self, tmp_path):
        service = PlannableStub()
        daemon = make_daemon(tmp_path, service=service)
        yield daemon
        service.release.set()
        daemon.stop(drain=False)

    def test_unknown_algorithm_names_field_and_line(self, daemon):
        status, _, body = submit_plan(
            daemon.base_url,
            yaml_text="name: x\nalgorithms: [NOPE]\ngraphs: [RM22]\n",
        )
        assert status == 400
        assert "NOPE" in body["error"]
        assert body["field"] == "algorithms.0"
        assert body["line"] == 2

    def test_axis_mismatches_rejected(self, daemon):
        cases = [
            "name: x\nalgorithms: [BFS]\ngraphs: [RM22]\n"
            "overrides:\n  - name: base\n    graphdyns:\n      n_simt: 4\n",
            "name: x\nalgorithms: [BFS]\ngraphs: [RM22]\n"
            "backends: [graphdyns]\n",
            "name: x\nalgorithms: [BFS]\ngraphs: [RM22]\n"
            "storage: spill\n",
            "name: x\nalgorithms: [BFS]\ngraphs: [RM22]\nshards: 4\n",
            "name: x\nalgorithms: [BFS]\ngraphs: [RM22]\n"
            "kernel_tier: compiled\n",
        ]
        for yaml_text in cases:
            status, _, body = submit_plan(
                daemon.base_url, yaml_text=yaml_text
            )
            assert status == 400, yaml_text
            assert body["error"]

    def test_malformed_requests(self, daemon):
        url = daemon.base_url
        status, _, body = submit_plan(url)  # neither yaml nor spec
        assert status == 400
        status, _, body = submit_plan(url, yaml_text="not: [valid\n")
        assert status == 400
        from repro.harness.serve import http_json

        status, _, body = http_json(
            url + "/v1/plans",
            method="POST",
            payload={"yaml": SPEC_YAML, "priority": "high"},
        )
        assert status == 400
        assert "priority" in body["error"]

    def test_rejections_count_as_invalid(self, daemon):
        before = daemon.stats.rejected_invalid
        submit_plan(daemon.base_url, yaml_text="nonsense")
        assert daemon.stats.rejected_invalid == before + 1


class TestInflightClassification:
    def test_running_job_cells_classify_inflight(self, tmp_path):
        service = PlannableStub()
        daemon = make_daemon(tmp_path, service=service)
        try:
            url = daemon.base_url
            status, _, body = submit_job(url, ["BFS"], ["RM22"], client="t")
            assert status == 202
            assert service.started.wait(timeout=10)

            status, _, body = submit_plan(
                url, yaml_text=SPEC_YAML, dry_run=True
            )
            assert status == 200
            totals = body["plan"]["totals"]
            assert totals["inflight"] == 1  # BFS/RM22 already running
            assert totals["pending"] == 1  # PR/RM22 still schedulable
            by_algo = {
                c["algorithm"]: c["status"] for c in body["plan"]["cells"]
            }
            assert by_algo == {"BFS": "inflight", "PR": "pending"}
        finally:
            service.release.set()
            daemon.stop(drain=False)
