"""Unit tests for the observability layer (`repro.obs`)."""

import json
import math

import numpy as np
import pytest

from repro.graph import datasets
from repro.harness.service import RunService, execute_cell
from repro.obs import (
    NULL_RECORDER,
    DeterministicClock,
    NullRecorder,
    TraceRecorder,
    get_recorder,
    use_recorder,
)
from repro.obs.export import chrome_trace, stats_rows, to_jsonl
from repro.obs.instruments import DEFAULT_BUCKET_EDGES, Histogram


class TestClock:
    def test_advances(self):
        clock = DeterministicClock()
        assert clock.now == 0.0
        clock.advance(10.5)
        clock.tick()
        assert clock.now == 11.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DeterministicClock().advance(-1.0)


class TestAmbientRecorder:
    def test_default_is_null(self):
        rec = get_recorder()
        assert isinstance(rec, NullRecorder)
        assert not rec.enabled

    def test_use_recorder_scopes(self):
        rec = TraceRecorder()
        with use_recorder(rec):
            assert get_recorder() is rec
        assert get_recorder() is NULL_RECORDER

    def test_null_recorder_is_inert(self):
        rec = NULL_RECORDER
        with rec.span("x", track="t", attr=1) as handle:
            handle.annotate(more=2)
        rec.complete_span("y", begin=0.0, duration=1.0)
        rec.event("z")
        rec.counter("c").add(5)
        rec.histogram("h").observe_many(np.arange(4))
        rec.clock.advance(100.0)
        assert rec.clock.now == 0.0


class TestSpans:
    def test_nesting_and_durations(self):
        rec = TraceRecorder()
        with rec.span("outer", track="t"):
            rec.clock.advance(3.0)
            with rec.span("inner", track="t"):
                rec.clock.advance(4.0)
        outer, inner = rec.spans
        assert inner.parent_id == outer.span_id
        assert outer.duration == 7.0
        assert inner.duration == 4.0
        assert inner.begin == 3.0

    def test_complete_span_exact_duration(self):
        rec = TraceRecorder(clock=DeterministicClock())
        rec.clock.advance(1e9)
        record = rec.complete_span(
            "s", begin=rec.clock.now, duration=0.1, track="t"
        )
        assert record.duration == 0.1  # not re-rounded via end - begin

    def test_complete_span_inherits_parent_track(self):
        rec = TraceRecorder()
        with rec.span("outer", track="t"):
            child = rec.complete_span("c", begin=0.0, duration=1.0)
        assert child.track == "t"
        assert child.parent_id == rec.spans[0].span_id

    def test_complete_span_validates(self):
        rec = TraceRecorder()
        with pytest.raises(ValueError):
            rec.complete_span("s", begin=0.0)
        with pytest.raises(ValueError):
            rec.complete_span("s", begin=0.0, end=1.0, duration=1.0)
        with pytest.raises(ValueError):
            rec.complete_span("s", begin=5.0, end=1.0)
        with pytest.raises(ValueError):
            rec.complete_span("s", begin=0.0, duration=-1.0)

    def test_out_of_order_close_raises(self):
        rec = TraceRecorder()
        outer = rec.span("outer")
        inner = rec.span("inner")  # noqa: F841 -- left open
        with pytest.raises(RuntimeError):
            outer.__exit__(None, None, None)

    def test_finish_closes_dangling(self):
        rec = TraceRecorder()
        rec.span("left-open")
        rec.clock.advance(2.0)
        rec.finish()
        assert rec.spans[0].closed
        assert rec.spans[0].duration == 2.0

    def test_span_totals_filters_by_track(self):
        rec = TraceRecorder()
        rec.complete_span("a", begin=0.0, duration=1.0, track="x")
        rec.complete_span("a", begin=0.0, duration=2.0, track="x")
        rec.complete_span("a", begin=0.0, duration=4.0, track="y")
        assert rec.span_totals(track="x")["a"] == (2, 3.0)
        assert rec.span_totals()["a"] == (3, 7.0)


class TestInstruments:
    def test_counter_accumulates(self):
        rec = TraceRecorder()
        rec.counter("c").add()
        rec.counter("c").add(4)
        assert rec.instruments.counter("c").value == 5.0

    def test_histogram_buckets(self):
        hist = Histogram("h", edges=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 3.0, 9.0):
            hist.observe(value)
        # bisect_left: a value equal to an edge counts in the lower bucket
        assert hist.counts == [2, 0, 1, 1]
        assert hist.count == 4
        assert hist.total == 13.5

    def test_observe_many_matches_observe(self):
        values = np.asarray([0.1, 1.0, 7.0, 1e9, 2.0])
        one = Histogram("a", edges=DEFAULT_BUCKET_EDGES)
        many = Histogram("b", edges=DEFAULT_BUCKET_EDGES)
        for v in values:
            one.observe(float(v))
        many.observe_many(values)
        assert one.counts == many.counts
        assert one.total == many.total

    def test_edge_mismatch_rejected(self):
        rec = TraceRecorder()
        rec.histogram("h", edges=(1.0, 2.0))
        with pytest.raises(ValueError):
            rec.histogram("h", edges=(1.0, 3.0))


class TestExporters:
    def _traced_cell(self):
        rec = TraceRecorder()
        graph = datasets.load("RM22")
        with use_recorder(rec):
            execute_cell(graph, "BFS", graph_key="RM22")
        rec.finish()
        return rec

    def test_chrome_trace_is_valid(self, tmp_path):
        rec = self._traced_cell()
        doc = chrome_trace(rec)
        events = doc["traceEvents"]
        assert {e["ph"] for e in events} <= {"M", "X", "i", "C"}
        spans = [e for e in events if e["ph"] == "X"]
        assert spans and all(e["dur"] >= 0.0 for e in spans)
        # round-trips through json
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(doc, sort_keys=True))
        assert json.loads(path.read_text())["otherData"]["clock"] == (
            "simulated-cycles"
        )

    def test_jsonl_lines_parse(self):
        lines = to_jsonl(self._traced_cell()).splitlines()
        kinds = {json.loads(line)["type"] for line in lines}
        assert {"span", "instrument"} <= kinds

    def test_stats_rows_cover_spans_and_instruments(self):
        headers, rows = stats_rows(self._traced_cell())
        assert headers == ["kind", "name", "count", "value"]
        kinds = {row[0] for row in rows}
        assert {"span", "counter", "histogram"} <= kinds


class TestReconciliation:
    """The acceptance criterion: spans reconcile with the cycle report."""

    @pytest.mark.parametrize(
        "key, system",
        [
            ("graphdyns", "GraphDynS"),
            ("graphicionado", "Graphicionado"),
            ("gunrock", "Gunrock"),
        ],
    )
    def test_span_totals_match_report(self, key, system):
        from repro.backends import create
        from repro.vcpm.algorithms import get_algorithm

        graph = datasets.load("RM22")
        rec = TraceRecorder()
        with use_recorder(rec):
            _, report = create(key).run(graph, get_algorithm("BFS"))
        rec.finish()
        totals = rec.span_totals(track=system)
        assert totals["scatter"][1] == report.scatter_cycles_total()
        assert totals.get("apply", (0, 0.0))[1] == report.apply_cycles_total()
        assert math.isclose(rec.clock.now, report.cycles)

    def test_hbm_counters_match_traffic(self):
        from repro.memory.request import Region

        graph = datasets.load("RM22")
        rec = TraceRecorder()
        with use_recorder(rec):
            cell = execute_cell(graph, "SSSP", graph_key="RM22")
        for system, report in cell.reports.items():
            snap = rec.instruments.snapshot()
            assert snap[f"hbm.{system}.bytes"]["value"] == report.traffic.total
            for region in Region:
                name = f"hbm.{system}.bytes.{region.value}"
                expected = report.traffic.region_total(region)
                got = snap.get(name, {"value": 0})["value"]
                assert got == expected, (system, region)


class TestServiceInstrumentation:
    def test_cell_lifecycle_counters(self):
        rec = TraceRecorder()
        service = RunService(use_cache=False)
        with use_recorder(rec):
            service.cell("BFS", "RM22")
            service.cell("BFS", "RM22")  # memo hit
        snap = rec.instruments.snapshot()
        assert snap["service.misses"]["value"] == 1.0
        assert snap["service.memory_hits"]["value"] == 1.0
        names = {s.name for s in rec.spans}
        assert "service.cell" in names

    def test_persistent_cache_hit_event(self, tmp_path):
        rec = TraceRecorder()
        RunService(use_cache=True, cache_dir=str(tmp_path)).cell("BFS", "RM22")
        with use_recorder(rec):
            RunService(use_cache=True, cache_dir=str(tmp_path)).cell(
                "BFS", "RM22"
            )
        snap = rec.instruments.snapshot()
        assert snap["service.cache_hits"]["value"] == 1.0
        assert any(e.name == "service.cache_hit" for e in rec.events)
