"""Crossbar contention model tests."""

import numpy as np
import pytest

from repro.memory import Crossbar, grouped_duplicate_count


class TestElasticRouting:
    def test_balanced_stream_hits_ideal(self):
        xbar = Crossbar(num_outputs=4, issue_width=4)
        dst = np.arange(16) % 4  # perfectly spread
        stats = xbar.route_batch(dst)
        assert stats.cycles == stats.ideal_cycles == 4
        assert stats.efficiency == 1.0

    def test_hot_output_binds_throughput(self):
        xbar = Crossbar(num_outputs=4, issue_width=4)
        dst = np.zeros(16, dtype=np.int64)  # everything to output 0
        stats = xbar.route_batch(dst)
        assert stats.cycles == 16  # one per cycle on the hot output
        assert stats.max_output_load == 16

    def test_elastic_absorbs_transient_imbalance(self):
        xbar = Crossbar(num_outputs=2, issue_width=2)
        # Alternating bursts: [0,0] then [1,1]; totals are balanced.
        dst = np.array([0, 0, 1, 1] * 8)
        stats = xbar.route_batch(dst)
        assert stats.cycles == stats.ideal_cycles  # buffering hides it

    def test_empty_stream(self):
        stats = Crossbar(4, 4).route_batch(np.zeros(0, dtype=np.int64))
        assert stats.cycles == 0
        assert stats.conflict_rate == 0.0

    def test_fewer_outputs_than_lanes_floor(self):
        xbar = Crossbar(num_outputs=2, issue_width=8)
        dst = np.arange(64) % 2
        stats = xbar.route_batch(dst)
        # 8 groups but 32 flits per output -> at least 32 cycles.
        assert stats.cycles == 32


class TestStrictRouting:
    def test_per_group_serialization(self):
        xbar = Crossbar(num_outputs=4, issue_width=4)
        # Each group of 4 sends two flits to output 0.
        dst = np.array([0, 0, 1, 2] * 4)
        stats = xbar.route_batch(dst, elastic=False)
        assert stats.cycles == 8  # 2 cycles per group x 4 groups

    def test_strict_never_faster_than_elastic(self):
        rng = np.random.default_rng(0)
        dst = rng.integers(0, 8, size=256)
        elastic = Crossbar(8, 8).route_batch(dst.copy()).cycles
        strict = Crossbar(8, 8).route_batch(dst.copy(), elastic=False).cycles
        assert strict >= elastic

    def test_padding_does_not_add_contention(self):
        xbar = Crossbar(num_outputs=4, issue_width=4)
        dst = np.array([0, 1, 2])  # one partial group
        stats = xbar.route_batch(dst, elastic=False)
        assert stats.cycles == 1


class TestRoutePerFlit:
    def test_serializes_same_output(self):
        xbar = Crossbar(num_outputs=4, issue_width=4)
        busy = {}
        done = [xbar.route(0, 0, busy), xbar.route(0, 4, busy), xbar.route(0, 1, busy)]
        assert done == [1, 2, 1]  # 0 and 4 share output 0

    def test_output_hash(self):
        xbar = Crossbar(num_outputs=128, issue_width=128)
        assert xbar.output_of(300) == 300 % 128


class TestGroupedDuplicates:
    def test_no_duplicates(self):
        assert grouped_duplicate_count(np.array([1, 2, 3, 4]), 4) == 0

    def test_all_same(self):
        assert grouped_duplicate_count(np.array([7, 7, 7, 7]), 4) == 3

    def test_duplicates_across_groups_ignored(self):
        # Width 2: groups [5,6] and [5,6] -- no intra-group repeats.
        assert grouped_duplicate_count(np.array([5, 6, 5, 6]), 2) == 0

    def test_mixed(self):
        # Groups [1,1,2] and [3,3,3]: 1 + 2 repeated flits.
        dst = np.array([1, 1, 2, 3, 3, 3])
        assert grouped_duplicate_count(dst, 3) == 3

    def test_degenerate_width(self):
        assert grouped_duplicate_count(np.array([1, 1]), 1) == 0

    def test_empty(self):
        assert grouped_duplicate_count(np.zeros(0, dtype=np.int64), 8) == 0


class TestValidation:
    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Crossbar(0, 4)
        with pytest.raises(ValueError):
            Crossbar(4, 0)
