"""The kernel tier registry: selection, fallback, threading, cache identity.

The compiled tier is an *execution strategy*: it may change how fast a
cell runs, never what the cell computes or how it is cached.  These
tests pin that contract from every direction --

* selection order (explicit > ambient ``use_tier`` > ``$REPRO_KERNEL_TIER``
  > auto) and alias/validation behavior;
* graceful degradation on a machine with no native toolchain: byte-identical
  reports, exactly one :class:`KernelFallbackWarning`, no hard dependency
  (numba/cffi imports are monkeypatched away to simulate that machine);
* cache identity: ``cache_key`` never varies with the tier, cache entries
  warm under one tier replay under another, and the envelope records which
  tier actually produced the entry (attribution, not identity);
* threading: the ambient tier scopes through services, shard tasks and the
  daemon, which warm-compiles at boot and reports the tier in its stats.
"""

import glob
import json
import sys
import warnings

import numpy as np
import pytest

from repro.harness.service import RunService, canonical_reports_json
from repro.kernels import compiled as compiled_mod
from repro.kernels.tiers import (
    ENV_TIER,
    TIERS,
    KernelFallbackWarning,
    active_tier,
    compiled_available,
    normalize_tier,
    reset_fallback_warnings,
    resolve_tier,
    use_tier,
    warm_compile,
)
from repro.vcpm import ALGORITHMS
from repro.vcpm.partitioned import run_vcpm_partitioned


@pytest.fixture
def clean_tiers(monkeypatch):
    """No env overrides, no memoized provider, fresh warn-once state."""
    monkeypatch.delenv(ENV_TIER, raising=False)
    monkeypatch.delenv(compiled_mod.ENV_BACKEND, raising=False)
    reset_fallback_warnings()
    compiled_mod.reset_provider_cache()
    yield
    reset_fallback_warnings()
    compiled_mod.reset_provider_cache()


@pytest.fixture
def no_provider(clean_tiers, monkeypatch, tmp_path):
    """Simulate a machine where neither numba nor cffi is importable.

    ``sys.modules[name] = None`` makes ``import name`` raise, which is
    exactly the failure mode of an uninstalled package; the artifact
    cache is pointed at an empty directory so no pre-built extension can
    short-circuit the block.
    """
    monkeypatch.setitem(sys.modules, "numba", None)
    monkeypatch.setitem(sys.modules, "cffi", None)
    monkeypatch.setenv("REPRO_COMPILE_CACHE", str(tmp_path / "no-artifacts"))
    compiled_mod.reset_provider_cache()
    yield
    compiled_mod.reset_provider_cache()


# ----------------------------------------------------------------------
# Selection order and validation
# ----------------------------------------------------------------------
class TestSelection:
    def test_aliases_map_to_canonical_tiers(self):
        assert normalize_tier("batched") == "vectorized"
        assert normalize_tier("event") == "scalar"
        assert normalize_tier("auto") == "auto"
        assert normalize_tier(None) is None

    def test_unknown_tier_raises(self):
        with pytest.raises(ValueError):
            normalize_tier("simd")
        with pytest.raises(ValueError):
            resolve_tier("fpga")
        with pytest.raises(ValueError):
            RunService(kernel_tier="greenlet")

    def test_explicit_beats_ambient_beats_env(self, clean_tiers, monkeypatch):
        monkeypatch.setenv(ENV_TIER, "scalar")
        assert active_tier() == "scalar"  # env wins with no ambient tier
        with use_tier("vectorized"):
            assert active_tier() == "vectorized"  # ambient beats env
            assert resolve_tier("scalar") == "scalar"  # explicit beats both
        assert active_tier() == "scalar"  # scope restored

    def test_auto_tracks_provider_availability(self, clean_tiers):
        expected = "compiled" if compiled_available() else "vectorized"
        assert resolve_tier("auto") == expected
        assert resolve_tier(None) == expected

    def test_use_tier_yields_resolved_tier(self, clean_tiers):
        with use_tier("scalar") as tier:
            assert tier == "scalar"
        with use_tier("auto") as tier:
            assert tier in ("compiled", "vectorized")


# ----------------------------------------------------------------------
# Graceful degradation without a native provider
# ----------------------------------------------------------------------
class TestNoProviderFallback:
    def test_provider_is_unavailable(self, no_provider):
        assert compiled_mod.get_provider() is None
        assert not compiled_available()

    def test_compiled_request_warns_once_and_degrades(self, no_provider):
        with pytest.warns(KernelFallbackWarning):
            assert resolve_tier("compiled") == "vectorized"
        # Warn-once: the second resolution is silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_tier("compiled") == "vectorized"

    def test_auto_degrades_silently(self, no_provider):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_tier("auto") == "vectorized"

    def test_warm_compile_returns_none(self, no_provider):
        assert warm_compile() is None

    def test_reports_byte_identical_with_one_warning(self, no_provider):
        reference = RunService(use_cache=False, kernel_tier="vectorized")
        ref_cell = reference.cell("BFS", "FR")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            degraded = RunService(use_cache=False, kernel_tier="compiled")
            got_cell = degraded.cell("BFS", "FR")
        fallbacks = [
            w for w in caught if issubclass(w.category, KernelFallbackWarning)
        ]
        assert len(fallbacks) == 1
        assert canonical_reports_json([got_cell]) == canonical_reports_json(
            [ref_cell]
        )


# ----------------------------------------------------------------------
# Cache identity: the tier is a strategy, never an address
# ----------------------------------------------------------------------
class TestCacheIdentity:
    def test_cache_key_identical_across_tiers(self):
        keys = set()
        for tier in TIERS + ("auto",):
            service = RunService(use_cache=False, kernel_tier=tier)
            request = service.request_for("BFS", "FR")
            keys.add(service.cache_key(request))
        assert len(keys) == 1

    def test_envelope_records_resolved_tier(self, tmp_path):
        cache = str(tmp_path / "cache")
        service = RunService(cache_dir=cache, kernel_tier="vectorized")
        service.cell("BFS", "FR")
        entries = glob.glob(cache + "/**/*.json", recursive=True)
        assert entries
        with open(entries[0]) as handle:
            envelope = json.load(handle)
        assert envelope["meta"]["kernel_tier"] == "vectorized"

    def test_entries_replay_across_tiers(self, tmp_path):
        cache = str(tmp_path / "cache")
        warm = RunService(cache_dir=cache, kernel_tier="vectorized")
        warm_cell = warm.cell("BFS", "FR")
        replay = RunService(cache_dir=cache, kernel_tier="scalar")
        replay_cell = replay.cell("BFS", "FR")
        assert replay.stats.hits == 1
        assert canonical_reports_json([replay_cell]) == canonical_reports_json(
            [warm_cell]
        )


# ----------------------------------------------------------------------
# Threading: the ambient tier reaches every execution layer
# ----------------------------------------------------------------------
class TestTierThreading:
    def test_cells_identical_across_tiers(self, clean_tiers):
        canonical = [
            canonical_reports_json(
                [RunService(use_cache=False, kernel_tier=tier).cell("BFS", "FR")]
            )
            for tier in ("scalar", "vectorized", "auto")
        ]
        assert len(set(canonical)) == 1

    def test_partitioned_identical_across_tiers(self, clean_tiers, tiny_graph):
        base = run_vcpm_partitioned(tiny_graph, ALGORITHMS["SSSP"], shards=2)
        with use_tier("auto"):
            tiered = run_vcpm_partitioned(
                tiny_graph, ALGORITHMS["SSSP"], shards=2
            )
        assert np.array_equal(
            np.nan_to_num(base.properties, posinf=1e30),
            np.nan_to_num(tiered.properties, posinf=1e30),
        )
        assert base.num_iterations == tiered.num_iterations

    def test_shard_tasks_capture_ambient_tier(self, clean_tiers):
        from repro.vcpm.partitioned import ShardScatterTask

        assert "kernel_tier" in {
            f.name for f in ShardScatterTask.__dataclass_fields__.values()
        }


# ----------------------------------------------------------------------
# CLI and daemon surfaces
# ----------------------------------------------------------------------
class TestSurfaces:
    def test_cli_accepts_kernel_tier(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run", "--kernel-tier", "compiled"])
        assert args.kernel_tier == "compiled"
        args = build_parser().parse_args(["matrix"])
        assert args.kernel_tier == "auto"

    def test_cli_rejects_unknown_tier(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--kernel-tier", "simd"])

    def test_daemon_reports_tier_and_warm_compile(self, clean_tiers):
        from repro.harness.serve import DaemonConfig, SimulationDaemon

        daemon = SimulationDaemon(DaemonConfig(journal_path=None, port=0))
        stats = daemon.stats_dict()
        assert stats["kernel_tier"] in TIERS
        if stats["kernel_tier"] == "compiled":
            assert stats["kernel_provider"] is not None
            assert stats["warm_compile_s"] is not None
        else:
            assert stats["warm_compile_s"] is None

    def test_warm_compile_matches_availability(self, clean_tiers):
        seconds = warm_compile()
        if compiled_available():
            assert seconds is not None and seconds >= 0.0
        else:
            assert seconds is None
