"""Event-driven Scatter micro-model vs the analytic crossbar formula."""

import numpy as np
import pytest

from repro.graphdyns import GraphDynSConfig
from repro.graphdyns.micro import simulate_scatter_microarch
from repro.memory import Crossbar


def _tiny_config(num_pes=2, n_simt=2, num_ues=4):
    return GraphDynSConfig(num_pes=num_pes, n_simt=n_simt, num_ues=num_ues)


class TestExactCases:
    def test_single_stream_conflict_free(self):
        cfg = _tiny_config(num_pes=1, n_simt=2, num_ues=4)
        # 8 results, 2 per cycle, all to distinct UEs round-robin.
        stream = np.arange(8) % 4
        result = simulate_scatter_microarch([stream], cfg)
        assert result.results_delivered == 8
        # 2 issued per cycle, retire same cycle -> 4 cycles.
        assert result.cycles == 4
        assert result.backpressure_events == 0

    def test_hot_ue_serializes(self):
        cfg = _tiny_config(num_pes=1, n_simt=4, num_ues=4)
        stream = np.zeros(10, dtype=np.int64)  # all to UE0
        result = simulate_scatter_microarch([stream], cfg, ue_queue_depth=2)
        # One retire per cycle from UE0 -> >= 10 cycles.
        assert result.cycles >= 10
        assert result.backpressure_events > 0

    def test_empty(self):
        result = simulate_scatter_microarch([np.zeros(0, dtype=np.int64)])
        assert result.cycles == 0
        assert result.throughput == 0.0

    def test_cycle_budget_guard(self):
        cfg = _tiny_config()
        with pytest.raises(RuntimeError):
            simulate_scatter_microarch(
                [np.zeros(100, dtype=np.int64)], cfg, max_cycles=3
            )


class TestAgainstAnalyticModel:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_elastic_formula_within_tolerance(self, seed):
        """The closed form max(groups, max_ue_load) tracks the exact
        simulation within ~25% on random streams (finite buffering adds
        some slack the formula ignores)."""
        rng = np.random.default_rng(seed)
        cfg = _tiny_config(num_pes=4, n_simt=4, num_ues=8)
        streams = [rng.integers(0, 64, size=200) for _ in range(4)]
        exact = simulate_scatter_microarch(streams, cfg, ue_queue_depth=8)

        all_dst = np.concatenate(streams)
        xbar = Crossbar(cfg.num_ues, cfg.num_pes * cfg.n_simt)
        analytic = xbar.route_batch(all_dst).cycles
        assert exact.cycles >= analytic * 0.95
        assert exact.cycles <= analytic * 1.4

    def test_skewed_stream_bound_by_hot_ue(self):
        rng = np.random.default_rng(7)
        cfg = _tiny_config(num_pes=4, n_simt=4, num_ues=8)
        # 40% of results hit one vertex.
        hot = np.zeros(400, dtype=np.int64)
        cold = rng.integers(1, 1000, size=600)
        dst = np.concatenate([hot, cold])
        rng.shuffle(dst)
        streams = np.array_split(dst, 4)
        exact = simulate_scatter_microarch(streams, cfg, ue_queue_depth=8)
        hot_load = int(np.bincount(dst % cfg.num_ues).max())
        assert exact.cycles >= hot_load  # one op/cycle on the hot UE

    def test_throughput_upper_bound(self):
        rng = np.random.default_rng(3)
        cfg = _tiny_config(num_pes=4, n_simt=4, num_ues=16)
        streams = [rng.integers(0, 4096, size=300) for _ in range(4)]
        exact = simulate_scatter_microarch(streams, cfg)
        assert exact.throughput <= cfg.num_pes * cfg.n_simt
