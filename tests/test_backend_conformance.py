"""Cross-backend conformance battery.

Every backend in the registry — the paper's three systems plus the
DCA-style decentralized-datapath model — must satisfy the same
:class:`repro.backends.Backend` contract: protocol shape, stable config
digests, complete report schema, deterministic reruns, persistent-cache
round-trips, observability counters, and a sane energy integration.
The suite is parametrized over ``backends.available()`` so a fifth
system registered tomorrow is pinned by the same battery with zero test
changes.
"""

import json

import numpy as np
import pytest

from repro import backends
from repro.backends import Backend
from repro.graph import datasets
from repro.harness import RunService
from repro.metrics.serialize import (
    SCHEMA_VERSION,
    report_from_dict,
    report_to_dict,
)
from repro.obs import TraceRecorder, use_recorder
from repro.vcpm import algorithm_names, get_algorithm

ALL_BACKENDS = backends.available()

#: Keys report_to_dict must emit for every backend (cache envelope shape).
REQUIRED_REPORT_KEYS = {
    "schema",
    "system",
    "algorithm",
    "graph_name",
    "cycles",
    "frequency_hz",
    "edges_processed",
    "vertices_processed",
    "iterations",
    "peak_bytes_per_cycle",
    "scheduling_ops",
    "update_operations",
    "stall_cycles",
    "storage_bytes",
    "extra",
    "traffic",
    "phases",
    "derived",
}


def _run(name, algorithm="BFS", graph_key="FR"):
    backend = backends.create(name)
    graph = datasets.load(graph_key)
    result, report = backend.run(graph, get_algorithm(algorithm))
    return backend, result, report


class TestRegistryContract:
    def test_all_four_systems_registered(self):
        assert ALL_BACKENDS == [
            "GraphDynS",
            "Graphicionado",
            "Gunrock",
            "DCA",
        ]

    def test_keys_align_with_display_names(self):
        assert backends.available_keys() == [n.lower() for n in ALL_BACKENDS]

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_satisfies_backend_protocol(self, name):
        backend = backends.create(name)
        assert isinstance(backend, Backend)
        assert backend.name == name

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_config_digest_is_stable_hex(self, name):
        first = backends.create(name).config_digest()
        second = backends.create(name).config_digest()
        assert first == second
        assert len(first) == 16
        int(first, 16)  # hex or bust

    def test_config_digests_distinguish_backends(self):
        digests = [backends.create(n).config_digest() for n in ALL_BACKENDS]
        assert len(set(digests)) == len(digests)


class TestReportSchema:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_report_has_complete_schema(self, name):
        _, _, report = _run(name)
        data = report_to_dict(report)
        assert REQUIRED_REPORT_KEYS <= set(data)
        assert data["schema"] == SCHEMA_VERSION
        assert data["system"] == name

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_report_values_are_physical(self, name):
        _, result, report = _run(name)
        assert report.cycles > 0
        assert report.frequency_hz > 0
        assert report.peak_bytes_per_cycle > 0
        assert report.edges_processed == result.total_edges_processed
        assert report.iterations == result.num_iterations
        assert report.traffic.total > 0
        assert len(report.phases) == report.iterations
        assert report.seconds > 0
        assert report.gteps > 0
        assert 0.0 <= report.bandwidth_utilization <= 1.0

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_report_round_trips_through_json(self, name):
        _, _, report = _run(name)
        once = report_to_dict(report)
        twice = report_to_dict(report_from_dict(json.loads(json.dumps(once))))
        assert json.dumps(once, sort_keys=True) == json.dumps(
            twice, sort_keys=True
        )


class TestDeterminism:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_fresh_reruns_are_bit_identical(self, name):
        _, first_result, first = _run(name, algorithm="SSSP")
        _, second_result, second = _run(name, algorithm="SSSP")
        assert json.dumps(
            report_to_dict(first), sort_keys=True
        ) == json.dumps(report_to_dict(second), sort_keys=True)
        assert (
            first_result.properties.tobytes()
            == second_result.properties.tobytes()
        )

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_all_algorithms_supported(self, name):
        for algorithm in algorithm_names():
            _, _, report = _run(name, algorithm=algorithm)
            assert report.cycles > 0, (name, algorithm)


class TestCacheRoundTrip:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_single_backend_cache_round_trip(self, name, tmp_path):
        cache = str(tmp_path / "cache")
        backend = backends.create(name)
        warm = RunService([backend], cache_dir=cache)
        cell = warm.cell("BFS", "FR")
        assert warm.stats.misses == 1 and warm.stats.stores == 1

        replay = RunService([backends.create(name)], cache_dir=cache)
        _, _, status = replay.probe("BFS", "FR")
        assert status == "persistent"
        replayed = replay.cell("BFS", "FR")
        assert (replay.stats.hits, replay.stats.misses) == (1, 0)
        assert json.dumps(
            report_to_dict(cell.reports[name]), sort_keys=True
        ) == json.dumps(report_to_dict(replayed.reports[name]), sort_keys=True)
        assert replayed.energy[name].total_j == pytest.approx(
            cell.energy[name].total_j
        )

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_cache_key_tracks_config_digest(self, name, tmp_path):
        cache = str(tmp_path / "cache")
        backend = backends.create(name)
        RunService([backend], cache_dir=cache).cell("BFS", "FR")

        class Tweaked(type(backend)):
            def config_digest(self):
                return "f" * 16

        rerun = RunService([Tweaked()], cache_dir=cache)
        rerun.cell("BFS", "FR")
        assert rerun.stats.misses == 1 and rerun.stats.hits == 0


class TestObservability:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_hbm_counters_reconcile_with_traffic(self, name):
        backend = backends.create(name)
        graph = datasets.load("FR")
        recorder = TraceRecorder()
        with use_recorder(recorder):
            _, report = backend.run(graph, get_algorithm("BFS"))
        recorder.finish()
        snap = recorder.instruments.snapshot()
        assert snap[f"hbm.{name}.bytes"]["value"] == report.traffic.total
        assert snap[f"hbm.{name}.requests"]["value"] > 0

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_spans_cover_the_run(self, name):
        backend = backends.create(name)
        graph = datasets.load("FR")
        recorder = TraceRecorder()
        with use_recorder(recorder):
            backend.run(graph, get_algorithm("BFS"))
        recorder.finish()
        tracks = recorder.tracks()
        assert any(track.startswith(name) for track in tracks), tracks


class TestEnergy:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_energy_report_is_sane(self, name):
        backend, _, report = _run(name)
        energy = backend.energy(report)
        assert energy.system == name
        assert energy.total_j > 0
        assert 0.0 < energy.hbm_fraction < 1.0
        breakdown = energy.breakdown()
        assert breakdown
        assert sum(breakdown.values()) == pytest.approx(1.0)

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_energy_scales_with_work(self, name):
        backend = backends.create(name)
        graph = datasets.load("FR")
        spec = get_algorithm("SSSP")
        _, truncated = backend.run(graph, spec, max_iterations=1)
        _, full = backend.run(graph, spec)
        assert full.iterations > truncated.iterations
        assert (
            backend.energy(full).total_j > backend.energy(truncated).total_j
        )


class TestDynamicGraphSurface:
    """Every backend must run on a mutating DynamicGraph snapshot."""

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_runs_on_churned_snapshot(self, name):
        from repro.graph import DynamicGraph, churn_batches

        base = datasets.load("FR")
        dynamic = DynamicGraph(base, key=f"CONF-{name.upper()}")
        for batch in churn_batches(
            base, num_batches=2, batch_edges=16, seed=3
        ):
            dynamic.apply(batch)
        backend = backends.create(name)
        result, report = backend.run(dynamic.graph, get_algorithm("BFS"))
        assert report.cycles > 0
        assert np.isfinite(result.properties).any()
