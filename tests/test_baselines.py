"""Graphicionado and Gunrock baseline model tests."""

import numpy as np
import pytest

from repro.gpu import Gunrock, GunrockTimingModel, warp_divergence
from repro.graphicionado import Graphicionado, GraphicionadoTimingModel
from repro.graphdyns import GraphDynSTimingModel
from repro.vcpm import ALGORITHMS, run_vcpm


class TestGraphicionado:
    def test_run_produces_report(self, medium_powerlaw):
        result, report = Graphicionado().run(
            medium_powerlaw, ALGORITHMS["SSSP"], source=0
        )
        assert report.system == "Graphicionado"
        assert report.cycles > 0
        assert report.iterations == result.num_iterations

    def test_atomic_stalls_nonzero_on_skewed_graph(self, medium_powerlaw):
        _, report = Graphicionado().run(
            medium_powerlaw, ALGORITHMS["PR"], max_iterations=3
        )
        assert report.stall_cycles > 0

    def test_full_vertex_apply(self, medium_powerlaw):
        result, report = Graphicionado().run(
            medium_powerlaw, ALGORITHMS["BFS"], source=0
        )
        assert report.update_operations == (
            result.num_iterations * medium_powerlaw.num_vertices
        )

    def test_per_edge_scheduling(self, medium_powerlaw):
        result, report = Graphicionado().run(
            medium_powerlaw, ALGORITHMS["BFS"], source=0
        )
        assert report.scheduling_ops == result.total_edges_processed

    def test_storage_includes_src_vid(self, medium_powerlaw):
        _, gio = Graphicionado().run(
            medium_powerlaw, ALGORITHMS["BFS"], source=0
        )
        gds_model = GraphDynSTimingModel(medium_powerlaw, ALGORITHMS["BFS"])
        run_vcpm(
            medium_powerlaw, ALGORITHMS["BFS"], source=0,
            observers=[gds_model],
        )
        assert gio.storage_bytes > gds_model.report().storage_bytes

    def test_slower_than_graphdyns(self, medium_powerlaw):
        spec = ALGORITHMS["SSSP"]
        gds = GraphDynSTimingModel(medium_powerlaw, spec)
        gio = GraphicionadoTimingModel(medium_powerlaw, spec)
        run_vcpm(medium_powerlaw, spec, source=0, observers=[gds, gio])
        assert gio.total_cycles > gds.total_cycles


class TestWarpDivergence:
    def test_uniform_degrees_full_efficiency(self):
        stats = warp_divergence(np.full(64, 5), warp_size=32)
        assert stats.efficiency == 1.0
        assert stats.excess_work == 0

    def test_single_hot_vertex_serializes_warp(self):
        degrees = np.ones(32, dtype=np.int64)
        degrees[0] = 100
        stats = warp_divergence(degrees, warp_size=32)
        assert stats.serialized_work == 3200
        assert stats.total_work == 131

    def test_empty_frontier(self):
        stats = warp_divergence(np.array([], dtype=np.int64))
        assert stats.num_warps == 0
        assert stats.efficiency == 1.0

    def test_partial_warp_padded(self):
        stats = warp_divergence(np.array([4, 4, 4]), warp_size=32)
        assert stats.num_warps == 1
        assert stats.serialized_work == 128


class TestGunrock:
    def test_run_produces_report(self, medium_powerlaw):
        result, report = Gunrock().run(
            medium_powerlaw, ALGORITHMS["SSSP"], source=0
        )
        assert report.system == "Gunrock"
        assert report.cycles > 0
        assert report.extra["warp_excess_work"] >= 0

    def test_gpu_clock_in_report(self, small_powerlaw):
        _, report = Gunrock().run(small_powerlaw, ALGORITHMS["BFS"], source=0)
        assert report.frequency_hz == pytest.approx(1.25e9)

    def test_idempotent_primitives_skip_atomics(self, medium_powerlaw):
        _, bfs = Gunrock().run(medium_powerlaw, ALGORITHMS["BFS"], source=0)
        _, sssp = Gunrock().run(medium_powerlaw, ALGORITHMS["SSSP"], source=0)
        assert bfs.stall_cycles == 0
        assert sssp.stall_cycles > 0

    def test_metadata_traffic_present(self, medium_powerlaw):
        from repro.memory import Region

        _, report = Gunrock().run(medium_powerlaw, ALGORITHMS["SSSP"], source=0)
        assert report.traffic.region_total(Region.METADATA) > 0

    def test_cc_filtering_reduces_edge_count(self, medium_powerlaw):
        result, report = Gunrock().run(medium_powerlaw, ALGORITHMS["CC"])
        assert report.edges_processed < result.total_edges_processed

    def test_storage_carries_metadata_overhead(self, medium_powerlaw):
        _, gun = Gunrock().run(medium_powerlaw, ALGORITHMS["BFS"], source=0)
        gds = GraphDynSTimingModel(medium_powerlaw, ALGORITHMS["BFS"])
        run_vcpm(
            medium_powerlaw, ALGORITHMS["BFS"], source=0, observers=[gds]
        )
        assert gun.storage_bytes > 2 * gds.report().storage_bytes

    def test_slowest_of_the_three(self, medium_powerlaw):
        spec = ALGORITHMS["SSSP"]
        gds = GraphDynSTimingModel(medium_powerlaw, spec)
        gio = GraphicionadoTimingModel(medium_powerlaw, spec)
        gun = GunrockTimingModel(medium_powerlaw, spec)
        run_vcpm(medium_powerlaw, spec, source=0, observers=[gds, gio, gun])
        gds_s = gds.report().seconds
        gio_s = gio.report().seconds
        gun_s = gun.report().seconds
        assert gds_s < gio_s < gun_s
