"""Cross-engine validation harness and report-record tests."""

import pytest

from repro.graph import power_law_graph
from repro.harness.report import ExperimentRecord
from repro.harness.validation import validate_all, validate_engines
from repro.harness.figures import FigureResult
from repro.kernels import compiled_available

#: The compiled rendering of Algorithm 2 joins the sweep only when a
#: native kernel provider loads in this interpreter.
_COMPILED_LEG = 1 if compiled_available() else 0


class TestValidateEngines:
    @pytest.mark.parametrize("algo", ["BFS", "SSSP", "CC", "SSWP", "PR"])
    def test_all_engines_agree(self, algo):
        graph = power_law_graph(150, 700, seed=31, name="val")
        outcome = validate_engines(graph, algo)
        assert outcome.agreed, outcome.detail
        assert outcome.engines_checked == 5 + _COMPILED_LEG

    def test_without_component_level(self):
        graph = power_law_graph(150, 700, seed=32, name="val")
        outcome = validate_engines(
            graph, "BFS", include_component_level=False
        )
        assert outcome.agreed
        assert outcome.engines_checked == 4 + _COMPILED_LEG

    def test_validate_all_battery(self):
        outcomes = validate_all(
            seeds=1, vertices=80, edges=300, include_component_level=False
        )
        assert len(outcomes) == 10  # 2 graph families x 5 algorithms
        assert all(o.agreed for o in outcomes)


class TestExperimentRecord:
    def test_markdown_contains_fields(self):
        record = ExperimentRecord(
            artifact="Fig. X",
            paper_claim="claims A",
            measured="measured B",
            verdict="HOLDS",
        )
        text = record.to_markdown()
        assert "### Fig. X" in text
        assert "claims A" in text
        assert "measured B" in text
        assert "HOLDS" in text

    def test_markdown_embeds_figure(self):
        figure = FigureResult(
            figure="T", headers=["a"], rows=[[1]]
        )
        record = ExperimentRecord(
            artifact="X", paper_claim="p", measured="m",
            verdict="v", figure=figure,
        )
        text = record.to_markdown()
        assert "```" in text
        assert "T" in text


class TestCLIValidate:
    def test_cli_validate_passes(self, capsys):
        from repro.cli import main

        code = main(
            ["validate", "--seeds", "1", "--vertices", "60", "--edges", "200"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "checks passed" in out
