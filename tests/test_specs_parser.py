"""Fuzz battery for the declarative spec language.

Two contracts are enforced here:

1. **Round-trip fidelity** — for every valid :class:`ExperimentSpec`,
   ``parse_spec(spec_to_yaml(spec)) == spec`` (hypothesis generates the
   specs, so this covers the whole AST, not a hand-picked corpus).
2. **No raw tracebacks** — malformed input of *any* kind (truncated
   YAML, wrong types, unknown keys, cyclic includes, random garbage)
   raises :class:`SpecError` naming the offending field and line, never
   ``KeyError``/``TypeError``/``RecursionError`` escaping the parser.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness.specs import (
    SELECTABLE_FIELDS,
    ExperimentSpec,
    SpecError,
    dump_yaml,
    load_spec,
    load_yaml,
    parse_spec,
    spec_digest,
    spec_to_dict,
    spec_to_yaml,
)

ALGOS = ["BFS", "SSSP", "CC", "SSWP", "PR"]
GRAPHS = ["FR", "PK", "LJ", "HO", "IN", "OR", "RM22", "RM12"]
BACKENDS = ["graphdyns", "graphicionado", "gunrock"]
BUILDERS = ["table1", "table4", "fig6", "fig7", "fig13"]


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

def _subset(values):
    return st.lists(
        st.sampled_from(values), unique=True, max_size=len(values)
    )


@st.composite
def override_lists(draw):
    n = draw(st.integers(min_value=0, max_value=3))
    overrides = []
    for i in range(n):
        entry = {"name": f"ov{i}"}
        if draw(st.booleans()):
            entry["graphdyns"] = {
                "n_simt": draw(st.integers(min_value=1, max_value=16))
            }
        overrides.append(entry)
    return overrides


@st.composite
def spec_dicts(draw):
    """Valid spec mappings covering every optional clause."""
    data = {"name": draw(st.sampled_from(["exp", "t4", "a-b.c_d"]))}
    if draw(st.booleans()):
        data["description"] = draw(
            st.text(
                alphabet=st.characters(
                    whitelist_categories=("L", "N", "P", "Zs"),
                    blacklist_characters="\n\r",
                ),
                max_size=40,
            )
        )
    algorithms = draw(_subset(ALGOS))
    graphs = draw(_subset(GRAPHS))
    if algorithms:
        data["algorithms"] = algorithms
    if graphs:
        data["graphs"] = graphs
    backends = draw(_subset(BACKENDS))
    if backends:
        data["backends"] = backends
    overrides = draw(override_lists())
    if overrides:
        data["overrides"] = overrides
    select = draw(_subset(list(SELECTABLE_FIELDS)))
    if select:
        data["select"] = select
    if draw(st.booleans()):
        data["outputs"] = {
            f"out{i}": b
            for i, b in enumerate(draw(_subset(BUILDERS)))
        }
    # Filters must keep at least one cell: filter on declared values.
    eff_algos = algorithms or ALGOS[:1]
    eff_graphs = graphs or ["FR"]
    if draw(st.booleans()):
        data["filter"] = {"algorithms": [eff_algos[0]]}
    if draw(st.booleans()):
        data["source"] = draw(st.integers(min_value=1, max_value=5))
    if draw(st.booleans()):
        data["storage"] = "mmap"
    if draw(st.booleans()):
        data["shards"] = draw(st.integers(min_value=2, max_value=8))
    if draw(st.booleans()):
        data["kernel_tier"] = draw(
            st.sampled_from(["scalar", "vectorized", "compiled"])
        )
    if draw(st.booleans()):
        data["priority"] = draw(st.integers(min_value=-5, max_value=5))
    # Exclusion must not empty the (filtered) grid.
    if len(eff_graphs) > 1 and draw(st.booleans()):
        data.setdefault("filter", {})["exclude"] = [
            {"algorithm": eff_algos[0], "graph": eff_graphs[0]}
        ]
    return data


# ----------------------------------------------------------------------
# Round-trip fidelity
# ----------------------------------------------------------------------


class TestRoundTrip:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=spec_dicts())
    def test_spec_yaml_spec_identity(self, data):
        """spec -> YAML -> spec is the identity on the validated AST."""
        spec = parse_spec(dump_yaml(data))
        text = spec_to_yaml(spec)
        again = parse_spec(text)
        assert again == spec
        assert spec_to_yaml(again) == text  # emitter is a fixed point
        assert spec_digest(again) == spec_digest(spec)

    @settings(max_examples=60, deadline=None)
    @given(data=spec_dicts())
    def test_canonical_dict_is_parseable(self, data):
        spec = parse_spec(dump_yaml(data))
        canon = spec_to_dict(spec)
        assert parse_spec(dump_yaml(canon)) == spec

    def test_defaults_round_trip(self):
        spec = parse_spec("name: minimal")
        assert spec == ExperimentSpec(name="minimal")
        assert spec.effective_algorithms() == ("BFS", "SSSP", "CC", "SSWP", "PR")
        assert parse_spec(spec_to_yaml(spec)) == spec

    def test_pyyaml_agrees_with_subset_loader(self):
        yaml = pytest.importorskip("yaml")
        data = {
            "name": "cross-check",
            "algorithms": ["BFS", "PR"],
            "overrides": [
                {"name": "base"},
                {"name": "half", "graphdyns": {"n_simt": 4}},
            ],
            "outputs": {"s": "fig6"},
            "filter": {"exclude": [{"algorithm": "PR", "graph": "FR"}]},
        }
        text = dump_yaml(data)
        assert yaml.safe_load(text) == load_yaml(text)[0] == data


# ----------------------------------------------------------------------
# Garbage battery: every failure is a SpecError with context
# ----------------------------------------------------------------------

GARBAGE = [
    # (text, expected field fragment or None, expected line or None)
    ("", None, None),
    ("just words", None, 1),
    ("name: x\nbogus: 1", "bogus", 2),
    ("name: 17", "name", 1),
    ("name: ''", "name", 1),
    ("algorithms: [BFS]", None, None),  # missing name
    ("name: x\nalgorithms: BOGUS", "algorithms.0", 2),
    ("name: x\nalgorithms: [BFS, NOPE]", "algorithms.1", 2),
    ("name: x\ngraphs: [QQ]", "graphs.0", 2),
    ("name: x\nbackends: [vax]", "backends.0", 2),
    ("name: x\nalgorithms: 7", "algorithms", 2),
    ("name: x\nshards: many", "shards", 2),
    ("name: x\nshards: 0", "shards", 2),
    ("name: x\nsource: -1", "source", 2),
    ("name: x\nstorage: floppy", "storage", 2),
    ("name: x\nkernel_tier: warp", "kernel_tier", 2),
    ("name: x\npriority: soon", "priority", 2),
    ("name: x\nselect: [wat]", "select.0", 2),
    ("name: x\noutputs: [fig6]", "outputs", 2),
    ("name: x\noutputs:\n  t: nosuch", "outputs.t", 3),
    ("name: x\noutputs:\n  t: 3", "outputs.t", 3),
    ("name: x\noverrides: {}", "overrides", 2),
    ("name: x\noverrides:\n  - graphdyns: {}", "overrides.0", 3),
    (
        "name: x\noverrides:\n  - name: a\n  - name: a",
        "overrides.1.name",
        4,
    ),
    (
        "name: x\noverrides:\n  - name: a\n    graphdyns:\n      zz: 1",
        "overrides.0.graphdyns.zz",
        5,
    ),
    (
        "name: x\noverrides:\n  - name: a\n    vax: {}",
        "overrides.0.vax",
        4,
    ),
    ("name: x\nfilter: [a]", "filter", 2),
    ("name: x\nfilter:\n  what: 1", "filter.what", 3),
    (
        "name: x\nfilter:\n  exclude:\n    - algorithm: BFS",
        "filter.exclude.0",
        4,
    ),
    (
        "name: x\nalgorithms: [BFS]\nfilter:\n  algorithms: [PR]",
        "filter",
        None,
    ),
    # YAML-subset syntax errors
    ("name: x\n\tindent: 1", None, 2),
    ("name: x\n  dangling: 2", None, 2),
    ("name: x\nlist: [a, b", None, 2),
    ("name: x\nflow: {a: 1}", None, 2),
    ("name: x\nanchor: &a 1", None, 2),
    ("name: x\nname: y", "name", 2),  # duplicate key
    ("- a\n- b", None, None),  # top-level sequence, not a mapping
    ('name: "unterminated', None, 1),
]


class TestGarbage:
    @pytest.mark.parametrize(
        "text,field,line",
        GARBAGE,
        ids=[repr(g[0])[:40] for g in GARBAGE],
    )
    def test_raises_spec_error_with_context(self, text, field, line):
        with pytest.raises(SpecError) as excinfo:
            parse_spec(text)
        err = excinfo.value
        assert str(err)  # renders a message
        if field is not None:
            assert err.field == field
        if line is not None:
            assert err.line == line
            assert f"line {line}" in str(err)

    def test_truncation_sweep_never_leaks_a_traceback(self):
        """Every prefix of a rich valid spec parses or raises SpecError."""
        text = (
            "name: sweep\n"
            "description: \"quoted, text\"\n"
            "algorithms: [BFS, SSSP]\n"
            "graphs:\n"
            "  - FR\n"
            "  - PK\n"
            "overrides:\n"
            "  - name: base\n"
            "  - name: half\n"
            "    graphdyns:\n"
            "      n_simt: 4\n"
            "filter:\n"
            "  exclude:\n"
            "    - algorithm: BFS\n"
            "      graph: FR\n"
            "outputs:\n"
            "  speed: fig6\n"
        )
        parse_spec(text)  # the full text is valid
        for cut in range(len(text)):
            try:
                parse_spec(text[:cut])
            except SpecError:
                pass  # the only acceptable failure mode

    @settings(max_examples=120, deadline=None)
    @given(text=st.text(max_size=200))
    def test_random_text_never_leaks_a_traceback(self, text):
        try:
            parse_spec(text)
        except SpecError:
            pass

    @settings(max_examples=60, deadline=None)
    @given(
        text=st.text(
            alphabet=st.sampled_from(
                list("abcdef:xyz [],{}#'\"-_\n\t0123456789")
            ),
            max_size=200,
        )
    )
    def test_yamlish_garbage_never_leaks_a_traceback(self, text):
        try:
            parse_spec(text)
        except SpecError:
            pass


# ----------------------------------------------------------------------
# Includes
# ----------------------------------------------------------------------


class TestIncludes:
    def test_include_merge_includer_wins(self, tmp_path):
        (tmp_path / "defaults.yaml").write_text(
            "name: defaults\nalgorithms: [BFS, PR]\nshards: 2\n"
        )
        (tmp_path / "main.yaml").write_text(
            "include: defaults.yaml\nname: main\nshards: 4\n"
        )
        spec = load_spec(str(tmp_path / "main.yaml"))
        assert spec.name == "main"  # includer wins
        assert spec.algorithms == ("BFS", "PR")  # inherited
        assert spec.shards == 4  # overridden

    def test_nested_include_chain(self, tmp_path):
        (tmp_path / "a.yaml").write_text("name: a\ngraphs: [FR]\n")
        (tmp_path / "b.yaml").write_text(
            "include: a.yaml\nalgorithms: [BFS]\n"
        )
        (tmp_path / "c.yaml").write_text("include: b.yaml\nname: c\n")
        spec = load_spec(str(tmp_path / "c.yaml"))
        assert spec.name == "c"
        assert spec.graphs == ("FR",)
        assert spec.algorithms == ("BFS",)

    def test_cyclic_include_is_a_spec_error(self, tmp_path):
        (tmp_path / "a.yaml").write_text("include: b.yaml\nname: a\n")
        (tmp_path / "b.yaml").write_text("include: a.yaml\nname: b\n")
        with pytest.raises(SpecError) as excinfo:
            load_spec(str(tmp_path / "a.yaml"))
        assert "cyclic include" in str(excinfo.value)

    def test_self_include_is_a_spec_error(self, tmp_path):
        (tmp_path / "a.yaml").write_text("include: a.yaml\nname: a\n")
        with pytest.raises(SpecError) as excinfo:
            load_spec(str(tmp_path / "a.yaml"))
        assert "cyclic include" in str(excinfo.value)

    def test_missing_include_is_a_spec_error(self, tmp_path):
        (tmp_path / "a.yaml").write_text("include: nope.yaml\nname: a\n")
        with pytest.raises(SpecError) as excinfo:
            load_spec(str(tmp_path / "a.yaml"))
        assert excinfo.value.field == "include.0"

    def test_missing_spec_file_is_a_spec_error(self, tmp_path):
        with pytest.raises(SpecError):
            load_spec(str(tmp_path / "absent.yaml"))
