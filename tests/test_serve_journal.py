"""The write-ahead job journal: durability, torn tails, flock, faults."""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.harness.faults import FaultInjector
from repro.harness.journal import (
    JobJournal,
    JournalError,
    locked_append_line,
)
from repro.harness.resilience import RunManifest

SPEC = {"algorithms": ["BFS"], "graphs": ["FR"]}


@pytest.fixture()
def journal(tmp_path):
    return JobJournal(str(tmp_path / "jobs.jsonl"))


# ----------------------------------------------------------------------
# Lifecycle folding
# ----------------------------------------------------------------------


class TestReplay:
    def test_header_written_on_create(self, journal):
        with open(journal.path) as handle:
            header = json.loads(handle.readline())
        assert header == {"kind": "repro-job-journal", "schema": 1}

    def test_full_lifecycle_folds_to_done(self, journal):
        journal.submit("j1", 1, SPEC, 0, "alice", "k1")
        journal.start("j1")
        journal.done("j1", result_digest="abc123")
        records, max_seq = JobJournal.replay(journal.path)
        assert max_seq == 1
        record = records["j1"]
        assert record.state == "done"
        assert record.terminal
        assert record.result_digest == "abc123"
        assert record.client == "alice"
        assert record.spec == SPEC

    def test_submit_without_done_is_unfinished(self, journal):
        journal.submit("j1", 1, SPEC, 0, "a", "k1")
        journal.submit("j2", 2, SPEC, 3, "b", "k2")
        journal.start("j2")
        unfinished = journal.unfinished()
        assert [r.job_id for r in unfinished] == ["j1", "j2"]
        assert unfinished[1].state == "started"
        assert unfinished[1].priority == 3

    def test_cancel_reasons_fold_to_distinct_states(self, journal):
        journal.submit("j1", 1, SPEC, 0, "a", "k1")
        journal.cancel("j1", reason="shed")
        journal.submit("j2", 2, SPEC, 0, "a", "k2")
        journal.cancel("j2")
        records, _ = JobJournal.replay(journal.path)
        assert records["j1"].state == "shed"
        assert records["j2"].state == "cancelled"

    def test_fail_folds_error(self, journal):
        journal.submit("j1", 1, SPEC, 0, "a", "k1")
        journal.fail("j1", "boom")
        records, _ = JobJournal.replay(journal.path)
        assert records["j1"].state == "failed"
        assert records["j1"].error == "boom"

    def test_coalesced_submission_is_recorded(self, journal):
        journal.submit("j1", 1, SPEC, 0, "a", "k1")
        journal.submit("j2", 2, SPEC, 0, "b", "k1", coalesced_with="j1")
        records, _ = JobJournal.replay(journal.path)
        assert records["j2"].coalesced_with == "j1"

    def test_resume_event_keeps_job_unfinished(self, journal):
        journal.submit("j1", 1, SPEC, 0, "a", "k1")
        journal.start("j1")
        journal.resume("j1")
        assert [r.job_id for r in journal.unfinished()] == ["j1"]


class TestTornTail:
    def test_torn_tail_line_is_skipped(self, journal):
        journal.submit("j1", 1, SPEC, 0, "a", "k1")
        journal.done("j1")
        with open(journal.path, "a") as handle:
            handle.write('{"event": "submit", "id": "j2", "se')  # torn
        records, max_seq = JobJournal.replay(journal.path)
        assert list(records) == ["j1"]
        assert max_seq == 1

    def test_torn_terminal_event_reverts_to_unfinished(self, journal):
        journal.submit("j1", 1, SPEC, 0, "a", "k1")
        with open(journal.path) as handle:
            good = handle.read()
        with open(journal.path, "w") as handle:
            handle.write(good + '{"event": "done", "id": "j1"')  # torn
        assert [r.job_id for r in journal.unfinished()] == ["j1"]

    def test_bad_header_raises(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(JournalError):
            JobJournal.replay(str(path))

    def test_reopen_existing_journal_does_not_rewrite_header(self, journal):
        journal.submit("j1", 1, SPEC, 0, "a", "k1")
        reopened = JobJournal(journal.path)
        reopened.submit("j2", 2, SPEC, 0, "a", "k2")
        records, max_seq = JobJournal.replay(journal.path)
        assert set(records) == {"j1", "j2"}
        assert max_seq == 2


# ----------------------------------------------------------------------
# Injected journal faults
# ----------------------------------------------------------------------


class TestFlakyJournal:
    def test_transient_failure_is_retried(self, tmp_path):
        faults = FaultInjector(["flaky-journal:1:2"])
        journal = JobJournal(str(tmp_path / "j.jsonl"), faults=faults)
        # The header bypasses append(), so the submit event is the first
        # distinct token: it fails twice, is retried, then lands.
        journal.submit("j1", 1, SPEC, 0, "a", "k1")
        assert journal.append_retries == 2
        records, _ = JobJournal.replay(journal.path)
        assert "j1" in records

    def test_exhausted_retries_raise_loudly(self, tmp_path):
        faults = FaultInjector(["flaky-journal:1:99"])
        journal = JobJournal(
            str(tmp_path / "j.jsonl"), faults=faults, max_attempts=3
        )
        with pytest.raises(JournalError, match="after 3 attempts"):
            journal.submit("j1", 1, SPEC, 0, "a", "k1")

    def test_fault_targets_nth_distinct_append(self, tmp_path):
        faults = FaultInjector(["flaky-journal:2:1"])
        journal = JobJournal(str(tmp_path / "j.jsonl"), faults=faults)
        journal.submit("j1", 1, SPEC, 0, "a", "k1")  # token 1: clean
        assert journal.append_retries == 0
        journal.start("j1")  # token 2: fails once, retried
        assert journal.append_retries == 1


# ----------------------------------------------------------------------
# Advisory locking (satellite: RunManifest concurrent writers)
# ----------------------------------------------------------------------

_WRITER = textwrap.dedent(
    """
    import sys
    sys.path.insert(0, {src!r})
    from repro.harness.journal import locked_append_line
    path, tag = sys.argv[1], sys.argv[2]
    for i in range(200):
        locked_append_line(path, '{{"writer": "%s", "n": %d}}' % (tag, i))
    """
)


class TestAdvisoryLock:
    def test_concurrent_writers_never_interleave_lines(self, tmp_path):
        """Two processes hammering one journal produce only whole lines."""
        path = str(tmp_path / "shared.jsonl")
        locked_append_line(path, '{"header": true}')
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        script = _WRITER.format(src=os.path.abspath(src))
        procs = [
            subprocess.Popen([sys.executable, "-c", script, path, tag])
            for tag in ("a", "b")
        ]
        for proc in procs:
            assert proc.wait(timeout=60) == 0
        with open(path) as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 401  # header + 2 * 200, none torn
        counts = {"a": 0, "b": 0}
        for line in lines[1:]:
            entry = json.loads(line)  # every line parses
            counts[entry["writer"]] += 1
        assert counts == {"a": 200, "b": 200}

    def test_manifest_appends_survive_concurrent_marks(self, tmp_path):
        """RunManifest.mark from two manifests on one file stays parseable."""
        path = str(tmp_path / "manifest.jsonl")
        algorithms, graphs = ["BFS", "CC"], ["FR", "PK"]
        first = RunManifest.start(path, algorithms, graphs)
        second = RunManifest(path, algorithms, graphs)
        first.mark("BFS", "FR", "key1")
        second.mark("CC", "PK", "key2")
        first.mark("BFS", "PK", "key3")
        loaded = RunManifest.load(path)
        assert loaded.completed == {
            ("BFS", "FR"): "key1",
            ("CC", "PK"): "key2",
            ("BFS", "PK"): "key3",
        }
