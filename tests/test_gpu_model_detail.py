"""GPU model internals: the inefficiency sources, individually."""

import dataclasses


from repro.gpu import GPUConfig, Gunrock, GunrockTimingModel
from repro.vcpm import ALGORITHMS, run_vcpm


class TestConfigKnobs:
    def test_v100_constants(self):
        cfg = GPUConfig()
        assert cfg.frequency_hz == 1.25e9
        assert cfg.num_cores == 5120
        assert cfg.warp_size == 32
        assert 0.0 <= cfg.l2_hit_rate <= 1.0
        assert cfg.pull_l2_hit_rate <= cfg.l2_hit_rate

    def test_kernel_overhead_scales_with_iterations(self, small_chain):
        # A chain forces one iteration per hop: launch overhead dominates.
        _, report = Gunrock().run(small_chain, ALGORITHMS["BFS"], source=0)
        cfg = GPUConfig()
        minimum = (
            report.iterations
            * cfg.kernels_per_iteration
            * cfg.kernel_overhead_cycles
        )
        assert report.cycles >= minimum

    def test_higher_l2_hit_reduces_traffic(self, medium_powerlaw):
        spec = ALGORITHMS["SSSP"]
        low = GunrockTimingModel(
            medium_powerlaw, spec,
            dataclasses.replace(GPUConfig(), l2_hit_rate=0.1),
        )
        high = GunrockTimingModel(
            medium_powerlaw, spec,
            dataclasses.replace(GPUConfig(), l2_hit_rate=0.9),
        )
        run_vcpm(medium_powerlaw, spec, source=0, observers=[low, high])
        assert (
            high.report().total_traffic_bytes
            < low.report().total_traffic_bytes
        )

    def test_residual_divergence_slows_compute(self, medium_powerlaw):
        spec = ALGORITHMS["SSSP"]
        balanced = GunrockTimingModel(
            medium_powerlaw, spec,
            dataclasses.replace(GPUConfig(), residual_divergence=0.0),
        )
        divergent = GunrockTimingModel(
            medium_powerlaw, spec,
            dataclasses.replace(GPUConfig(), residual_divergence=1.0),
        )
        run_vcpm(
            medium_powerlaw, spec, source=0, observers=[balanced, divergent]
        )
        b = sum(p.scatter_compute_cycles for p in balanced.phases)
        d = sum(p.scatter_compute_cycles for p in divergent.phases)
        assert d > b


class TestPrimitiveSpecialization:
    def test_bfs_moves_less_data_per_edge_than_sssp(self, medium_powerlaw):
        # Idempotent status updates beat atomic-min sector gathers.
        bfs = GunrockTimingModel(medium_powerlaw, ALGORITHMS["BFS"])
        sssp = GunrockTimingModel(medium_powerlaw, ALGORITHMS["SSSP"])
        run_vcpm(
            medium_powerlaw, ALGORITHMS["BFS"], source=0, observers=[bfs]
        )
        run_vcpm(
            medium_powerlaw, ALGORITHMS["SSSP"], source=0, observers=[sssp]
        )
        bfs_bytes = bfs.report().total_traffic_bytes / max(
            bfs.edges_processed, 1
        )
        sssp_bytes = sssp.report().total_traffic_bytes / max(
            sssp.edges_processed, 1
        )
        assert bfs_bytes < sssp_bytes
        assert bfs.report().stall_cycles == 0
        assert sssp.report().stall_cycles > 0

    def test_pr_uses_pull_hit_rate(self, medium_powerlaw):
        spec = ALGORITHMS["PR"]
        default = GunrockTimingModel(medium_powerlaw, spec)
        pull_friendly = GunrockTimingModel(
            medium_powerlaw, spec,
            dataclasses.replace(GPUConfig(), pull_l2_hit_rate=0.9),
        )
        run_vcpm(
            medium_powerlaw, spec, max_iterations=3, pr_tolerance=0.0,
            observers=[default, pull_friendly],
        )
        assert (
            pull_friendly.report().total_traffic_bytes
            < default.report().total_traffic_bytes
        )

    def test_cc_filter_factor_reduces_work(self, medium_powerlaw):
        spec = ALGORITHMS["CC"]
        weak = GunrockTimingModel(
            medium_powerlaw, spec,
            dataclasses.replace(GPUConfig(), cc_filter_work_factor=1.0),
        )
        strong = GunrockTimingModel(
            medium_powerlaw, spec,
            dataclasses.replace(GPUConfig(), cc_filter_work_factor=0.3),
        )
        run_vcpm(medium_powerlaw, spec, observers=[weak, strong])
        assert strong.edges_processed < weak.edges_processed
        assert strong.report().cycles < weak.report().cycles


class TestReportShape:
    def test_no_scheduling_ops_reported(self, small_powerlaw):
        _, report = Gunrock().run(small_powerlaw, ALGORITHMS["BFS"], source=0)
        assert report.scheduling_ops == 0  # not a dispatcher architecture

    def test_vertices_processed_counts_modified(self, small_powerlaw):
        result, report = Gunrock().run(
            small_powerlaw, ALGORITHMS["BFS"], source=0
        )
        assert report.vertices_processed == result.total_updates
