"""Property-based scalar-vs-vectorized-vs-compiled kernel equivalence.

Every vectorized or compiled kernel in :mod:`repro.kernels` claims to be
*bit-identical* to its retained scalar reference.  These tests put that
claim under hypothesis: random op streams, random graphs, random PE
streams, and random access-pattern batches replay through every
rendering, and every observable field must match exactly -- no
``approx``.

The stalling pipeline additionally carries an embedded copy of the
*original* in-flight-slot simulator (the ``while any(...)`` walk this
PR replaced), so the O(1)-per-op scalar path and the closed-form kernel
are both checked against the pre-refactor semantics.

The compiled tier (:class:`TestCompiledTier`) is parametrized over every
native provider that loads in this interpreter -- ``python`` (the shared
nopython-style reference, always available), ``cffi`` (C extension, needs
a C toolchain), and ``numba`` (JIT, ``skipif`` when not installed) -- so
CI legs with different toolchains all exercise the same oracle.
"""

import contextlib
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import StallingReducePipeline, ZeroStallReducePipeline
from repro.core.reduce_pipeline import ReduceResult
from repro.graph import CSRGraph
from repro.graphdyns.config import GraphDynSConfig
from repro.graphdyns.micro import simulate_scatter_microarch
from repro.kernels import (
    simulate_scatter_microarch_vectorized,
    split_ops,
    stalling_run,
    zero_stall_run,
)
from repro.kernels import compiled as compiled_mod
from repro.memory.hbm import HBM1_512GBS, HBMModel
from repro.memory.request import AccessPattern, Region
from repro.vcpm import ALGORITHMS, run_optimized
from repro.vcpm.spec import ReduceOp

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
op_streams = st.lists(
    st.tuples(st.integers(0, 7), st.floats(0, 100, allow_nan=False)),
    max_size=80,
)

vb_dicts = st.dictionaries(
    st.integers(0, 9), st.floats(0, 100, allow_nan=False), max_size=5
)

weighted_graphs = st.integers(2, 16).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(0.1, 10, allow_nan=False),
            ),
            max_size=80,
        ),
    )
)

pe_streams_strategy = st.lists(
    st.lists(st.integers(0, 500), max_size=40), min_size=1, max_size=4
)

pattern_batches = st.lists(
    st.tuples(
        st.sampled_from(list(Region)),
        st.integers(0, 20_000),
        st.floats(1, 4096, allow_nan=False),
        st.booleans(),
    ),
    max_size=30,
)


def _original_stalling_run(
    reduce_op: ReduceOp,
    ops: Sequence[Tuple[int, float]],
    vb: Optional[Dict[int, float]] = None,
    identity: Optional[float] = None,
) -> ReduceResult:
    """The pre-refactor in-flight-slot simulator, kept as the oracle."""
    identity = reduce_op.identity if identity is None else identity
    vb = dict(vb) if vb else {}
    in_flight: List[Optional[Tuple[int, float]]] = [None, None]  # EXE, WB
    cycles = 0
    stalls = 0

    def drain_one() -> None:
        wb = in_flight[1]
        if wb is not None:
            addr, operand_value = wb
            vb[addr] = reduce_op.scalar(vb.get(addr, identity), operand_value)
        in_flight[1] = in_flight[0]
        in_flight[0] = None

    for addr, value in ops:
        while any(slot is not None and slot[0] == addr for slot in in_flight):
            drain_one()
            cycles += 1
            stalls += 1
        drain_one()
        in_flight[0] = (addr, value)
        cycles += 1

    while any(slot is not None for slot in in_flight):
        drain_one()
        cycles += 1

    return ReduceResult(cycles=cycles, ops=len(ops), stall_cycles=stalls, vb=vb)


def _as_tuple(result: ReduceResult):
    return (result.cycles, result.ops, result.stall_cycles, result.vb)


# ----------------------------------------------------------------------
# Reduce Pipeline kernels
# ----------------------------------------------------------------------
class TestReduceKernels:
    @pytest.mark.parametrize("reduce_op", list(ReduceOp))
    @settings(max_examples=60, deadline=None)
    @given(ops=op_streams, vb=vb_dicts)
    def test_stalling_three_way(self, reduce_op, ops, vb):
        """Oracle == refactored scalar path == closed-form kernel."""
        oracle = _original_stalling_run(reduce_op, ops, vb=vb)
        scalar = StallingReducePipeline(reduce_op).run(ops, vb=vb)
        addrs, values = split_ops(ops)
        kernel = stalling_run(addrs, values, reduce_op, vb=vb)
        assert _as_tuple(oracle) == _as_tuple(scalar)
        assert _as_tuple(oracle) == _as_tuple(kernel)

    @pytest.mark.parametrize("reduce_op", list(ReduceOp))
    @settings(max_examples=60, deadline=None)
    @given(ops=op_streams, vb=vb_dicts)
    def test_zero_stall(self, reduce_op, ops, vb):
        scalar = ZeroStallReducePipeline(reduce_op).run(ops, vb=vb)
        addrs, values = split_ops(ops)
        kernel = zero_stall_run(addrs, values, reduce_op, vb=vb)
        assert _as_tuple(scalar) == _as_tuple(kernel)

    @settings(max_examples=40, deadline=None)
    @given(ops=op_streams)
    def test_custom_identity(self, ops):
        scalar = StallingReducePipeline(ReduceOp.MIN, identity=42.0).run(ops)
        addrs, values = split_ops(ops)
        kernel = stalling_run(addrs, values, ReduceOp.MIN, identity=42.0)
        assert _as_tuple(scalar) == _as_tuple(kernel)

    def test_adversarial_distance_patterns(self):
        """Deterministic streams covering every conflict regime."""
        streams = [
            [],
            [(3, 1.0)],
            [(3, 1.0)] * 10,  # solid distance-1 run
            [(1, 1.0), (2, 1.0)] * 10,  # solid distance-2 run
            [(1, 1.0), (1, 2.0), (2, 1.0), (1, 3.0), (2, 2.0)],  # mixed
            [(5, 1.0), (6, 1.0), (5, 2.0), (5, 3.0), (6, 2.0), (7, 1.0)],
        ]
        for ops in streams:
            for reduce_op in ReduceOp:
                oracle = _original_stalling_run(reduce_op, ops)
                scalar = StallingReducePipeline(reduce_op).run(ops)
                addrs, values = split_ops(ops)
                kernel = stalling_run(addrs, values, reduce_op)
                assert _as_tuple(oracle) == _as_tuple(scalar), ops
                assert _as_tuple(oracle) == _as_tuple(kernel), ops


# ----------------------------------------------------------------------
# Algorithm 2 batched kernel
# ----------------------------------------------------------------------
class TestBatchedAlgorithm2:
    @pytest.mark.parametrize("algo", ["BFS", "SSSP", "CC", "SSWP"])
    @settings(max_examples=25, deadline=None)
    @given(data=weighted_graphs)
    def test_random_graphs(self, algo, data):
        n, edges = data
        graph = CSRGraph.from_edge_list(
            n, [(s, d) for s, d, _ in edges], [w for _, _, w in edges]
        )
        scalar = run_optimized(graph, ALGORITHMS[algo], source=0)
        batched = run_optimized(graph, ALGORITHMS[algo], source=0, kernel="batched")
        self._assert_identical(scalar, batched)

    @settings(max_examples=15, deadline=None)
    @given(data=weighted_graphs)
    def test_pagerank(self, data):
        n, edges = data
        graph = CSRGraph.from_edge_list(
            n, [(s, d) for s, d, _ in edges], [w for _, _, w in edges]
        )
        scalar = run_optimized(graph, ALGORITHMS["PR"], max_iterations=5)
        batched = run_optimized(
            graph, ALGORITHMS["PR"], max_iterations=5, kernel="batched"
        )
        self._assert_identical(scalar, batched)

    def test_rejects_unknown_kernel(self, tiny_graph):
        with pytest.raises(ValueError):
            run_optimized(tiny_graph, ALGORITHMS["BFS"], kernel="simd")

    @staticmethod
    def _assert_identical(scalar, batched):
        # Bit-exact: infinities replaced only so array_equal treats
        # unreached-vertex sentinels as comparable values.
        assert np.array_equal(
            np.nan_to_num(scalar.properties, posinf=1e30),
            np.nan_to_num(batched.properties, posinf=1e30),
        )
        assert scalar.num_iterations == batched.num_iterations
        assert scalar.converged == batched.converged
        assert scalar.scatter_dispatches == batched.scatter_dispatches
        assert scalar.apply_dispatches == batched.apply_dispatches
        assert scalar.edges_processed == batched.edges_processed


# ----------------------------------------------------------------------
# Scatter micro-model drain kernel
# ----------------------------------------------------------------------
class TestMicroDrainKernel:
    @settings(max_examples=60, deadline=None)
    @given(
        raw=pe_streams_strategy,
        n_simt=st.integers(1, 4),
        num_ues=st.integers(2, 8),
        depth=st.integers(1, 6),
    )
    def test_random_streams(self, raw, n_simt, num_ues, depth):
        streams = [np.asarray(s, dtype=np.int64) for s in raw]
        config = GraphDynSConfig(
            num_pes=len(streams), n_simt=n_simt, num_ues=num_ues
        )
        event = simulate_scatter_microarch(
            streams, config, ue_queue_depth=depth
        )
        fast = simulate_scatter_microarch_vectorized(
            streams, config, ue_queue_depth=depth
        )
        assert event == fast

    def test_cycle_budget_parity(self):
        """Both engines raise (or not) for the same tiny ``max_cycles``."""
        streams = [np.arange(64, dtype=np.int64)]
        config = GraphDynSConfig(num_pes=1, n_simt=2, num_ues=4)
        kwargs = dict(ue_queue_depth=64, max_cycles=3)
        with pytest.raises(RuntimeError):
            simulate_scatter_microarch(streams, config, **kwargs)
        with pytest.raises(RuntimeError):
            simulate_scatter_microarch_vectorized(streams, config, **kwargs)

    def test_engine_dispatch(self):
        streams = [np.arange(16, dtype=np.int64)]
        config = GraphDynSConfig(num_pes=1, n_simt=2, num_ues=4)
        event = simulate_scatter_microarch(streams, config, engine="event")
        routed = simulate_scatter_microarch(
            streams, config, engine="vectorized"
        )
        assert event == routed
        with pytest.raises(ValueError):
            simulate_scatter_microarch(streams, config, engine="fpga")


# ----------------------------------------------------------------------
# Compiled tier: every loadable native provider against the scalar oracle
# ----------------------------------------------------------------------
def _numba_available() -> bool:
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


@contextlib.contextmanager
def _forced_provider(name):
    """Pin ``REPRO_COMPILE_BACKEND`` and reset the provider cache around a test."""
    old = os.environ.get(compiled_mod.ENV_BACKEND)
    os.environ[compiled_mod.ENV_BACKEND] = name
    compiled_mod.reset_provider_cache()
    try:
        provider = compiled_mod.get_provider()
        assert provider is not None and provider.name == name
        yield
    finally:
        if old is None:
            os.environ.pop(compiled_mod.ENV_BACKEND, None)
        else:
            os.environ[compiled_mod.ENV_BACKEND] = old
        compiled_mod.reset_provider_cache()


def _provider_params():
    """One pytest param per provider; unavailable ones skip, never silently pass."""
    params = [pytest.param("python", id="provider-python")]
    params.append(
        pytest.param(
            "cffi",
            id="provider-cffi",
            marks=pytest.mark.skipif(
                not _loads("cffi"), reason="cffi/C toolchain unavailable"
            ),
        )
    )
    params.append(
        pytest.param(
            "numba",
            id="provider-numba",
            marks=pytest.mark.skipif(
                not _numba_available(), reason="numba not installed"
            ),
        )
    )
    return params


def _loads(name: str) -> bool:
    old = os.environ.get(compiled_mod.ENV_BACKEND)
    os.environ[compiled_mod.ENV_BACKEND] = name
    compiled_mod.reset_provider_cache()
    try:
        return compiled_mod.get_provider() is not None
    finally:
        if old is None:
            os.environ.pop(compiled_mod.ENV_BACKEND, None)
        else:
            os.environ[compiled_mod.ENV_BACKEND] = old
        compiled_mod.reset_provider_cache()


@pytest.mark.parametrize("provider", _provider_params())
class TestCompiledTier:
    @pytest.mark.parametrize("reduce_op", list(ReduceOp))
    @settings(max_examples=40, deadline=None)
    @given(ops=op_streams, vb=vb_dicts)
    def test_stalling(self, provider, reduce_op, ops, vb):
        scalar = StallingReducePipeline(reduce_op).run(ops, vb=vb)
        addrs, values = split_ops(ops)
        with _forced_provider(provider):
            native = compiled_mod.stalling_run_compiled(
                addrs, values, reduce_op, vb=vb
            )
        assert _as_tuple(scalar) == _as_tuple(native)

    @pytest.mark.parametrize("reduce_op", list(ReduceOp))
    @settings(max_examples=40, deadline=None)
    @given(ops=op_streams, vb=vb_dicts)
    def test_zero_stall(self, provider, reduce_op, ops, vb):
        scalar = ZeroStallReducePipeline(reduce_op).run(ops, vb=vb)
        addrs, values = split_ops(ops)
        with _forced_provider(provider):
            native = compiled_mod.zero_stall_run_compiled(
                addrs, values, reduce_op, vb=vb
            )
        assert _as_tuple(scalar) == _as_tuple(native)

    @settings(max_examples=40, deadline=None)
    @given(
        raw=pe_streams_strategy,
        n_simt=st.integers(1, 4),
        num_ues=st.integers(2, 8),
        depth=st.integers(1, 6),
    )
    def test_micro_drain(self, provider, raw, n_simt, num_ues, depth):
        streams = [np.asarray(s, dtype=np.int64) for s in raw]
        config = GraphDynSConfig(
            num_pes=len(streams), n_simt=n_simt, num_ues=num_ues
        )
        event = simulate_scatter_microarch(
            streams, config, ue_queue_depth=depth
        )
        with _forced_provider(provider):
            native = compiled_mod.micro_drain_compiled(
                streams, num_ues, n_simt, depth, max_cycles=10_000_000
            )
        assert event == native

    def test_micro_drain_cycle_budget_parity(self, provider):
        streams = [np.arange(64, dtype=np.int64)]
        config = GraphDynSConfig(num_pes=1, n_simt=2, num_ues=4)
        with pytest.raises(RuntimeError):
            simulate_scatter_microarch(
                streams, config, ue_queue_depth=64, max_cycles=3
            )
        with _forced_provider(provider):
            with pytest.raises(RuntimeError):
                compiled_mod.micro_drain_compiled(
                    streams, 4, 2, 64, max_cycles=3
                )

    @pytest.mark.parametrize("algo", ["BFS", "SSSP", "CC", "SSWP"])
    @settings(max_examples=15, deadline=None)
    @given(data=weighted_graphs)
    def test_algorithm2(self, provider, algo, data):
        n, edges = data
        graph = CSRGraph.from_edge_list(
            n, [(s, d) for s, d, _ in edges], [w for _, _, w in edges]
        )
        scalar = run_optimized(graph, ALGORITHMS[algo], source=0)
        with _forced_provider(provider):
            native = run_optimized(
                graph, ALGORITHMS[algo], source=0, kernel="compiled"
            )
        TestBatchedAlgorithm2._assert_identical(scalar, native)

    @settings(max_examples=10, deadline=None)
    @given(data=weighted_graphs)
    def test_pagerank(self, provider, data):
        n, edges = data
        graph = CSRGraph.from_edge_list(
            n, [(s, d) for s, d, _ in edges], [w for _, _, w in edges]
        )
        scalar = run_optimized(graph, ALGORITHMS["PR"], max_iterations=5)
        with _forced_provider(provider):
            native = run_optimized(
                graph, ALGORITHMS["PR"], max_iterations=5, kernel="compiled"
            )
        TestBatchedAlgorithm2._assert_identical(scalar, native)


# ----------------------------------------------------------------------
# HBM batched servicing
# ----------------------------------------------------------------------
class TestHBMBatchKernel:
    @settings(max_examples=60, deadline=None)
    @given(batch=pattern_batches)
    def test_random_batches(self, batch):
        patterns = [
            AccessPattern(
                region=region,
                total_bytes=total,
                run_bytes=run,
                is_write=write,
            )
            for region, total, run, write in batch
        ]
        batched_model = HBMModel(HBM1_512GBS)
        scalar_model = HBMModel(HBM1_512GBS)
        got = batched_model.service(patterns)
        ref = scalar_model.service_scalar(patterns)
        assert got.cycles == ref.cycles
        assert got.total_bytes == ref.total_bytes
        assert got.ideal_cycles == ref.ideal_cycles
        assert got.bytes_by_region == ref.bytes_by_region
        # Accumulated model state must agree too.
        assert batched_model.total_cycles == scalar_model.total_cycles
        assert batched_model.bytes_by_region == scalar_model.bytes_by_region
        assert batched_model.read_bytes == scalar_model.read_bytes
        assert batched_model.write_bytes == scalar_model.write_bytes

    def test_empty_batch(self):
        model = HBMModel(HBM1_512GBS)
        result = model.service([])
        assert result.cycles == 0.0
        assert result.total_bytes == 0
