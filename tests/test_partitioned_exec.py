"""Sharded execution tests: the byte-identical merge-at-Apply invariant.

The contract under test (ISSUE tentpole): for every algorithm, graph,
shard count, VB capacity, and storage backend, the partitioned engine's
results are *bitwise* identical to the unsharded in-memory path —
properties, traces, convergence, and the canonical report JSON the
harness derives from them.
"""

import numpy as np
import pytest

from repro.graph import datasets
from repro.vcpm import (
    ALGORITHMS,
    ShardScatterTask,
    run_vcpm,
    run_vcpm_partitioned,
    run_vcpm_sliced,
    scatter_shard_task,
)
from repro.harness.resilience import ResilientRunService, RunManifest
from repro.harness.service import RunService, canonical_reports_json


def _bitwise_equal(a, b):
    assert a.properties.dtype == b.properties.dtype
    assert a.properties.tobytes() == b.properties.tobytes()
    assert a.iterations == b.iterations
    assert a.converged == b.converged
    assert a.source == b.source


class TestByteIdenticalInvariant:
    @pytest.mark.parametrize("algo", sorted(ALGORITHMS))
    @pytest.mark.parametrize("shards", [1, 3, 7])
    def test_sharded_matches_unsharded(self, small_powerlaw, algo, shards):
        spec = ALGORITHMS[algo]
        baseline = run_vcpm(small_powerlaw, spec, source=0)
        sharded = run_vcpm_partitioned(
            small_powerlaw, spec, shards=shards, source=0
        )
        _bitwise_equal(baseline, sharded)

    @pytest.mark.parametrize("algo", ["BFS", "PR"])
    @pytest.mark.parametrize("vb", [None, 64, 256])
    def test_sharding_composes_with_vb_slicing(self, small_powerlaw, algo, vb):
        spec = ALGORITHMS[algo]
        baseline = run_vcpm(small_powerlaw, spec, source=0)
        sharded = run_vcpm_partitioned(
            small_powerlaw, spec, shards=4, vb_capacity_bytes=vb, source=0
        )
        _bitwise_equal(baseline, sharded)

    @pytest.mark.parametrize(
        "fixture", ["tiny_graph", "small_grid", "small_chain", "disconnected_graph"]
    )
    def test_across_graph_shapes(self, request, fixture):
        graph = request.getfixturevalue(fixture)
        for algo in ("BFS", "CC", "PR"):
            baseline = run_vcpm(graph, ALGORITHMS[algo], source=0)
            sharded = run_vcpm_partitioned(
                graph, ALGORITHMS[algo], shards=3, source=0
            )
            _bitwise_equal(baseline, sharded)

    def test_more_shards_than_vertices(self, tiny_graph):
        baseline = run_vcpm(tiny_graph, ALGORITHMS["SSSP"], source=0)
        sharded = run_vcpm_partitioned(
            tiny_graph, ALGORITHMS["SSSP"], shards=100, source=0
        )
        _bitwise_equal(baseline, sharded)

    def test_mmap_storage_matches_memory(self):
        mem = datasets.load("FR")
        mapped = datasets.load("FR", storage="mmap")
        for algo in ("BFS", "PR"):
            baseline = run_vcpm(mem, ALGORITHMS[algo], source=0)
            sharded = run_vcpm_partitioned(
                mapped, ALGORITHMS[algo], shards=4, source=0
            )
            assert baseline.properties.tobytes() == sharded.properties.tobytes()
            assert baseline.iterations == sharded.iterations

    def test_sliced_entry_point_delegates(self, small_powerlaw):
        baseline = run_vcpm(small_powerlaw, ALGORITHMS["PR"])
        sliced = run_vcpm_sliced(small_powerlaw, ALGORITHMS["PR"], 128)
        assert baseline.properties.tobytes() == sliced.properties.tobytes()


class TestShardObservability:
    def test_per_shard_spans_and_counters(self, tiny_graph):
        from repro.obs import TraceRecorder, use_recorder

        rec = TraceRecorder()
        with use_recorder(rec):
            run_vcpm_partitioned(tiny_graph, ALGORITHMS["CC"], shards=3)
        shard_spans = [s for s in rec.spans if s.name == "vcpm.shard_scatter"]
        assert shard_spans
        assert {s.attrs["shard"] for s in shard_spans} == {0, 1, 2}
        iters = sum(
            1 for s in rec.spans if s.name == "vcpm.iteration"
        )
        assert rec.counter("vcpm.shard.scatters").value == 3 * iters

    def test_recording_never_changes_results(self, small_powerlaw):
        from repro.obs import TraceRecorder, use_recorder

        baseline = run_vcpm_partitioned(
            small_powerlaw, ALGORITHMS["PR"], shards=4
        )
        with use_recorder(TraceRecorder()):
            traced = run_vcpm_partitioned(
                small_powerlaw, ALGORITHMS["PR"], shards=4
            )
        _bitwise_equal(baseline, traced)


class TestShardRunnerSeam:
    def test_in_process_task_runner_matches(self, small_powerlaw):
        calls = []

        def runner(tasks):
            calls.append(len(tasks))
            return [scatter_shard_task(t, small_powerlaw) for t in tasks]

        baseline = run_vcpm(small_powerlaw, ALGORITHMS["BFS"], source=0)
        via_tasks = run_vcpm_partitioned(
            small_powerlaw,
            ALGORITHMS["BFS"],
            shards=3,
            source=0,
            shard_runner=runner,
        )
        _bitwise_equal(baseline, via_tasks)
        assert calls and all(n == 3 for n in calls)

    def test_tasks_are_picklable(self, small_powerlaw):
        import pickle

        captured = []

        def runner(tasks):
            captured.extend(tasks)
            return [scatter_shard_task(t, small_powerlaw) for t in tasks]

        run_vcpm_partitioned(
            small_powerlaw,
            ALGORITHMS["BFS"],
            shards=2,
            source=0,
            shard_runner=runner,
            graph_ref=("FR", "memory"),
        )
        task = captured[0]
        assert isinstance(task, ShardScatterTask)
        assert task.graph_ref == ("FR", "memory")
        clone = pickle.loads(pickle.dumps(task))
        assert clone.vertex_hi == task.vertex_hi

    def test_scatter_shard_task_reduces_segment(self, tiny_graph):
        spec = ALGORITHMS["BFS"]
        prop = spec.initial_prop(tiny_graph.num_vertices, 0)
        task = ShardScatterTask(
            iteration=0,
            shard_index=0,
            vertex_lo=0,
            vertex_hi=tiny_graph.num_vertices,
            algorithm="BFS",
            graph_ref=None,
            active=np.array([0], dtype=np.int64),
            prop=prop,
            t_prop_segment=spec.initial_tprop(tiny_graph.num_vertices),
        )
        segment = scatter_shard_task(task, tiny_graph)
        assert segment.shape == (tiny_graph.num_vertices,)
        assert np.isfinite(segment).any()


class TestServiceIntegration:
    ALGOS = ("BFS", "PR")

    def _reports(self, **kwargs):
        service = RunService(use_cache=False, **kwargs)
        return canonical_reports_json(
            [service.cell(a, "FR") for a in self.ALGOS]
        )

    def test_canonical_reports_identical_across_modes(self):
        baseline = self._reports()
        assert self._reports(shards=4) == baseline
        assert self._reports(storage="mmap", shards=4) == baseline

    def test_process_shard_fanout_matches(self):
        baseline = self._reports()
        fanned = self._reports(
            storage="mmap", shards=2, jobs=2, executor="process"
        )
        assert fanned == baseline

    def test_resilient_service_with_shards_matches(self, tmp_path):
        baseline = self._reports()
        service = ResilientRunService(
            use_cache=False,
            shards=3,
            manifest_path=str(tmp_path / "sweep.jsonl"),
        )
        resilient = canonical_reports_json(
            [service.cell(a, "FR") for a in self.ALGOS]
        )
        assert resilient == baseline

    def test_request_cache_key_ignores_execution_strategy(self):
        plain = RunService(use_cache=False)
        sharded = RunService(use_cache=False, storage="mmap", shards=4)
        fp = datasets.fingerprint("FR")
        assert plain.request_for("BFS", "FR").cache_key(fp, "v") == sharded.request_for(
            "BFS", "FR"
        ).cache_key(fp, "v")

    def test_service_rejects_bad_storage_and_shards(self):
        with pytest.raises(ValueError):
            RunService(storage="tape")
        with pytest.raises(ValueError):
            RunService(shards=0)


class TestManifestShardBreadcrumbs:
    def test_mark_shard_round_trips(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        manifest = RunManifest.start(path, ["BFS"], ["FR"])
        manifest.mark_shard("BFS", "FR", 0, 3)
        manifest.mark_shard("BFS", "FR", 2, 3)
        manifest.mark_shard("BFS", "FR", 2, 3)  # idempotent
        assert manifest.shard_progress("BFS", "FR") == {0, 2}
        reloaded = RunManifest.load(path)
        assert reloaded.shard_progress("BFS", "FR") == {0, 2}
        assert not reloaded.is_completed("BFS", "FR")

    def test_shard_entries_do_not_break_cell_entries(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        manifest = RunManifest.start(path, ["BFS"], ["FR"])
        manifest.mark_shard("BFS", "FR", 1, 2)
        manifest.mark("BFS", "FR", cache_key="abc")
        reloaded = RunManifest.load(path)
        assert reloaded.is_completed("BFS", "FR")
        assert reloaded.shard_progress("BFS", "FR") == {1}

    def test_resilient_run_records_shard_progress(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        service = ResilientRunService(
            use_cache=False, shards=3, manifest_path=path
        )
        service.matrix(["BFS"], ["FR"])
        reloaded = RunManifest.load(path)
        assert reloaded.shard_progress("BFS", "FR") == {0, 1, 2}
