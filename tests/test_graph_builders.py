"""Graph builder and preprocessing-transform tests."""

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    TransformCost,
    deduplicate,
    from_adjacency,
    gini_coefficient,
    power_law_graph,
    relabel,
    remove_self_loops,
    sort_by_degree,
    symmetrize,
)


class TestFromAdjacency:
    def test_basic(self):
        g = from_adjacency({0: [1, 2], 1: [2]})
        assert g.num_vertices == 3
        assert list(g.neighbors(0)) == [1, 2]

    def test_explicit_vertex_count(self):
        g = from_adjacency({0: [1]}, num_vertices=10)
        assert g.num_vertices == 10

    def test_empty(self):
        g = from_adjacency({})
        assert g.num_vertices == 0


class TestSymmetrize:
    def test_all_edges_bidirectional(self, tiny_graph):
        sym, cost = symmetrize(tiny_graph)
        edges = {(s, d) for s, d, _ in sym.iter_edges()}
        assert all((d, s) in edges for s, d in edges)
        assert cost.touched_bytes > 0

    def test_already_symmetric_unchanged_count(self, small_grid):
        sym, _ = symmetrize(small_grid)
        assert sym.num_edges == small_grid.num_edges

    def test_cost_seconds(self):
        cost = TransformCost("x", touched_bytes=1000)
        assert cost.seconds_at(1000.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            cost.seconds_at(0)


class TestDeduplicate:
    def test_removes_duplicates(self):
        g = CSRGraph.from_edge_list(3, [(0, 1), (0, 1), (1, 2)])
        deduped, _ = deduplicate(g)
        assert deduped.num_edges == 2

    def test_keeps_first_weight(self):
        g = CSRGraph.from_edge_list(
            2, [(0, 1), (0, 1)], weights=[3.0, 9.0]
        )
        deduped, _ = deduplicate(g)
        assert deduped.edge_weights(0)[0] == 3.0

    def test_noop_on_simple_graph(self, tiny_graph):
        deduped, _ = deduplicate(tiny_graph)
        assert deduped.num_edges == tiny_graph.num_edges


class TestRemoveSelfLoops:
    def test_drops_loops(self):
        g = CSRGraph.from_edge_list(3, [(0, 0), (0, 1), (2, 2)])
        clean, _ = remove_self_loops(g)
        assert clean.num_edges == 1
        assert list(clean.neighbors(0)) == [1]


class TestRelabel:
    def test_reverse_permutation(self, tiny_graph):
        perm = np.arange(tiny_graph.num_vertices)[::-1]
        renamed = relabel(tiny_graph, perm)
        old = {(s, d) for s, d, _ in tiny_graph.iter_edges()}
        new = {(s, d) for s, d, _ in renamed.iter_edges()}
        assert new == {(perm[s], perm[d]) for s, d in old}

    def test_identity_permutation(self, tiny_graph):
        renamed = relabel(tiny_graph, np.arange(tiny_graph.num_vertices))
        assert sorted(renamed.iter_edges()) == sorted(tiny_graph.iter_edges())

    def test_rejects_non_bijection(self, tiny_graph):
        with pytest.raises(ValueError):
            relabel(tiny_graph, np.zeros(tiny_graph.num_vertices, dtype=np.int64))

    def test_rejects_wrong_shape(self, tiny_graph):
        with pytest.raises(ValueError):
            relabel(tiny_graph, np.arange(3))


class TestSortByDegree:
    def test_degrees_become_descending(self):
        g = power_law_graph(500, 4000, seed=5)
        sorted_g, cost = sort_by_degree(g)
        degrees = sorted_g.out_degree()
        assert np.all(np.diff(degrees) <= 0)
        assert cost.touched_bytes > 0

    def test_ascending_order(self):
        g = power_law_graph(200, 1000, seed=6)
        sorted_g, _ = sort_by_degree(g, descending=False)
        degrees = sorted_g.out_degree()
        assert np.all(np.diff(degrees) >= 0)

    def test_structure_preserved(self, tiny_graph):
        sorted_g, _ = sort_by_degree(tiny_graph)
        assert sorted_g.num_edges == tiny_graph.num_edges
        # Degree multiset unchanged.
        assert sorted(sorted_g.out_degree()) == sorted(tiny_graph.out_degree())
        assert gini_coefficient(sorted_g.out_degree()) == pytest.approx(
            gini_coefficient(tiny_graph.out_degree())
        )

    def test_preserves_algorithm_results_up_to_relabel(self, small_powerlaw):
        from repro.vcpm import ALGORITHMS, run_vcpm

        sorted_g, _ = sort_by_degree(small_powerlaw)
        original = run_vcpm(small_powerlaw, ALGORITHMS["CC"])
        renamed = run_vcpm(sorted_g, ALGORITHMS["CC"])
        # Component size multiset is invariant under relabeling.
        _, counts_a = np.unique(original.properties, return_counts=True)
        _, counts_b = np.unique(renamed.properties, return_counts=True)
        assert sorted(counts_a.tolist()) == sorted(counts_b.tolist())
