"""Functional engine tests: correctness against references, traces, hooks."""

import numpy as np
import pytest

from repro.vcpm import ALGORITHMS, gather_edge_indices, reference, run_vcpm


def _finite_equal(a, b):
    return np.array_equal(
        np.nan_to_num(a, posinf=1e30), np.nan_to_num(b, posinf=1e30)
    )


class TestGatherEdgeIndices:
    def test_contiguous_expansion(self, tiny_graph):
        active = np.array([0, 1])
        idx = gather_edge_indices(tiny_graph.offsets, active)
        assert idx.tolist() == [0, 1, 2, 3, 4]

    def test_skips_inactive(self, tiny_graph):
        idx = gather_edge_indices(tiny_graph.offsets, np.array([2, 4]))
        assert idx.tolist() == [5, 7, 8]

    def test_zero_degree_vertex(self, tiny_graph):
        idx = gather_edge_indices(tiny_graph.offsets, np.array([6]))
        assert idx.size == 0

    def test_empty_active(self, tiny_graph):
        idx = gather_edge_indices(tiny_graph.offsets, np.zeros(0, dtype=np.int64))
        assert idx.size == 0

    def test_order_preserved(self, tiny_graph):
        # Active order (4, then 0) must be reflected in the index stream.
        idx = gather_edge_indices(tiny_graph.offsets, np.array([4, 0]))
        assert idx.tolist() == [7, 8, 0, 1, 2]


class TestCorrectness:
    @pytest.mark.parametrize("fixture_name", [
        "tiny_graph", "small_powerlaw", "small_grid", "small_chain",
        "disconnected_graph",
    ])
    def test_bfs_matches_reference(self, fixture_name, request):
        g = request.getfixturevalue(fixture_name)
        result = run_vcpm(g, ALGORITHMS["BFS"], source=0)
        assert _finite_equal(result.properties, reference.bfs_levels(g, 0))

    @pytest.mark.parametrize("fixture_name", [
        "tiny_graph", "small_powerlaw", "small_grid",
    ])
    def test_sssp_matches_dijkstra(self, fixture_name, request):
        g = request.getfixturevalue(fixture_name)
        result = run_vcpm(g, ALGORITHMS["SSSP"], source=0)
        assert _finite_equal(result.properties, reference.sssp_distances(g, 0))

    @pytest.mark.parametrize("fixture_name", [
        "tiny_graph", "small_powerlaw", "disconnected_graph",
    ])
    def test_cc_matches_label_propagation(self, fixture_name, request):
        g = request.getfixturevalue(fixture_name)
        result = run_vcpm(g, ALGORITHMS["CC"])
        assert np.array_equal(result.properties, reference.cc_labels(g))

    @pytest.mark.parametrize("fixture_name", [
        "tiny_graph", "small_powerlaw", "small_grid",
    ])
    def test_sswp_matches_widest_path(self, fixture_name, request):
        g = request.getfixturevalue(fixture_name)
        result = run_vcpm(g, ALGORITHMS["SSWP"], source=0)
        assert np.array_equal(result.properties, reference.sswp_widths(g, 0))

    @pytest.mark.parametrize("fixture_name", ["tiny_graph", "small_powerlaw"])
    def test_pagerank_matches_power_iteration(self, fixture_name, request):
        g = request.getfixturevalue(fixture_name)
        result = run_vcpm(
            g, ALGORITHMS["PR"], max_iterations=8, pr_tolerance=0.0
        )
        expected = reference.pagerank_scores(g, iterations=8)
        assert np.allclose(result.properties, expected)

    def test_bfs_different_source(self, small_grid):
        result = run_vcpm(small_grid, ALGORITHMS["BFS"], source=30)
        assert _finite_equal(
            result.properties, reference.bfs_levels(small_grid, 30)
        )

    def test_cc_symmetric_graph_single_component(self, small_grid):
        result = run_vcpm(small_grid, ALGORITHMS["CC"])
        assert np.all(result.properties == 0.0)

    def test_cc_disconnected_components_distinct(self, disconnected_graph):
        labels = run_vcpm(disconnected_graph, ALGORITHMS["CC"]).properties
        assert labels[0] == labels[1] == labels[2] == 0.0
        assert labels[3] == labels[4] == 3.0
        assert labels[5] == 5.0  # isolated


class TestConvergence:
    def test_bfs_converges(self, small_powerlaw):
        result = run_vcpm(small_powerlaw, ALGORITHMS["BFS"], source=0)
        assert result.converged

    def test_max_iterations_caps(self, small_chain):
        result = run_vcpm(
            small_chain, ALGORITHMS["BFS"], source=0, max_iterations=3
        )
        assert not result.converged
        assert result.num_iterations == 3

    def test_chain_takes_length_iterations(self, small_chain):
        result = run_vcpm(small_chain, ALGORITHMS["BFS"], source=0)
        # 50-vertex path: 49 frontier advances plus the final vertex's
        # (edge-less) iteration.
        assert result.num_iterations == 50

    def test_pr_stops_on_tolerance(self, small_powerlaw):
        loose = run_vcpm(
            small_powerlaw, ALGORITHMS["PR"], pr_tolerance=1.0,
            max_iterations=50,
        )
        assert loose.converged
        assert loose.num_iterations < 50

    def test_empty_graph(self):
        from repro.graph import CSRGraph

        result = run_vcpm(CSRGraph.empty(0), ALGORITHMS["CC"])
        assert result.converged
        assert result.num_iterations == 0

    def test_isolated_source(self, disconnected_graph):
        result = run_vcpm(disconnected_graph, ALGORITHMS["BFS"], source=5)
        assert result.properties[5] == 0.0
        assert np.isinf(result.properties[:5]).all()


class TestValidationErrors:
    def test_source_required(self, tiny_graph):
        with pytest.raises(ValueError):
            run_vcpm(tiny_graph, ALGORITHMS["BFS"], source=None)

    def test_source_out_of_range(self, tiny_graph):
        with pytest.raises(ValueError):
            run_vcpm(tiny_graph, ALGORITHMS["SSSP"], source=100)

    def test_source_ignored_for_cc(self, tiny_graph):
        result = run_vcpm(tiny_graph, ALGORITHMS["CC"], source=3)
        assert result.source is None


class TestTraces:
    def test_trace_lengths(self, tiny_graph):
        result = run_vcpm(tiny_graph, ALGORITHMS["BFS"], source=0)
        assert len(result.iterations) == result.num_iterations

    def test_first_iteration_from_source(self, tiny_graph):
        result = run_vcpm(tiny_graph, ALGORITHMS["BFS"], source=0)
        first = result.iterations[0]
        assert first.num_active == 1
        assert first.num_edges == tiny_graph.out_degree(0)

    def test_total_edges_accumulate(self, small_powerlaw):
        result = run_vcpm(small_powerlaw, ALGORITHMS["BFS"], source=0)
        assert result.total_edges_processed == sum(
            t.num_edges for t in result.iterations
        )

    def test_activations_feed_next_frontier(self, tiny_graph):
        result = run_vcpm(tiny_graph, ALGORITHMS["BFS"], source=0)
        for prev, cur in zip(result.iterations, result.iterations[1:]):
            assert cur.num_active == prev.num_activated

    def test_pr_processes_all_edges_every_iteration(self, small_powerlaw):
        result = run_vcpm(
            small_powerlaw, ALGORITHMS["PR"], max_iterations=3,
            pr_tolerance=0.0,
        )
        for trace in result.iterations:
            assert trace.num_edges == small_powerlaw.num_edges


class TestObservers:
    def test_observer_called_per_iteration(self, tiny_graph):
        calls = []

        class Probe:
            def on_iteration(self, data):
                calls.append(data.iteration)

        result = run_vcpm(
            tiny_graph, ALGORITHMS["BFS"], source=0, observers=[Probe()]
        )
        assert calls == list(range(result.num_iterations))

    def test_observer_sees_consistent_data(self, small_powerlaw):
        class Probe:
            def on_iteration(self, data):
                assert data.edge_dst.size == data.active_degrees.sum()
                assert data.active_ids.size == data.active_offsets.size
                assert data.num_modified <= data.num_vertices
                assert data.num_activated <= data.num_vertices

        run_vcpm(
            small_powerlaw, ALGORITHMS["SSSP"], source=0, observers=[Probe()]
        )

    def test_multiple_observers_same_stream(self, tiny_graph):
        seen = [[], []]

        def probe(bucket):
            class P:
                def on_iteration(self, data):
                    bucket.append(data.num_edges)

            return P()

        run_vcpm(
            tiny_graph,
            ALGORITHMS["BFS"],
            source=0,
            observers=[probe(seen[0]), probe(seen[1])],
        )
        assert seen[0] == seen[1]

    def test_modified_ids_are_reduce_targets(self, tiny_graph):
        class Probe:
            def on_iteration(self, data):
                assert set(data.modified_ids).issubset(set(data.edge_dst))

        run_vcpm(tiny_graph, ALGORITHMS["SSSP"], source=0, observers=[Probe()])
