"""Optimized programming model (Algorithm 2) tests."""

import numpy as np
import pytest

from repro.vcpm import (
    ALGORITHMS,
    dispatch_apply,
    dispatch_scatter,
    run_optimized,
    run_vcpm,
)


class TestDispatchScatter:
    def test_records_carry_offset_and_edgecnt(self, tiny_graph):
        prop = np.arange(7, dtype=np.float64)
        records = dispatch_scatter(prop, tiny_graph.offsets, np.array([0, 4]))
        assert records[0].offset == 0
        assert records[0].edge_cnt == 3
        assert records[0].prop == 0.0
        assert records[1].offset == 7
        assert records[1].edge_cnt == 2

    def test_empty_active(self, tiny_graph):
        prop = np.zeros(7)
        assert dispatch_scatter(prop, tiny_graph.offsets, np.array([], dtype=np.int64)) == []


class TestDispatchApply:
    def test_covers_all_vertices(self):
        workloads = dispatch_apply(20, 8)
        assert sum(w.size for w in workloads) == 20
        assert workloads[0].start_id == 0
        assert workloads[-1].size == 4

    def test_exact_multiple(self):
        workloads = dispatch_apply(16, 8)
        assert len(workloads) == 2
        assert all(w.size == 8 for w in workloads)

    def test_rejects_bad_list_size(self):
        with pytest.raises(ValueError):
            dispatch_apply(10, 0)


class TestEquivalenceWithEngine:
    @pytest.mark.parametrize("algo", ["BFS", "SSSP", "CC", "SSWP"])
    def test_monotonic_algorithms(self, algo, small_powerlaw):
        vec = run_vcpm(small_powerlaw, ALGORITHMS[algo], source=0)
        opt = run_optimized(small_powerlaw, ALGORITHMS[algo], source=0)
        assert np.array_equal(
            np.nan_to_num(vec.properties, posinf=1e30),
            np.nan_to_num(opt.properties, posinf=1e30),
        )

    def test_pagerank(self, tiny_graph):
        vec = run_vcpm(
            tiny_graph, ALGORITHMS["PR"], max_iterations=5, pr_tolerance=0.0
        )
        opt = run_optimized(
            tiny_graph, ALGORITHMS["PR"], max_iterations=5, pr_tolerance=0.0
        )
        assert np.allclose(vec.properties, opt.properties)

    def test_iteration_counts_match(self, tiny_graph):
        vec = run_vcpm(tiny_graph, ALGORITHMS["BFS"], source=0)
        opt = run_optimized(tiny_graph, ALGORITHMS["BFS"], source=0)
        assert opt.converged
        assert opt.num_iterations == vec.num_iterations

    def test_edges_processed_match(self, tiny_graph):
        vec = run_vcpm(tiny_graph, ALGORITHMS["SSSP"], source=0)
        opt = run_optimized(tiny_graph, ALGORITHMS["SSSP"], source=0)
        assert opt.edges_processed == vec.total_edges_processed


class TestDispatchStatistics:
    def test_scatter_dispatches_equal_active_vertices(self, tiny_graph):
        vec = run_vcpm(tiny_graph, ALGORITHMS["BFS"], source=0)
        opt = run_optimized(tiny_graph, ALGORITHMS["BFS"], source=0)
        assert opt.scatter_dispatches == vec.total_active_vertices

    def test_apply_dispatches_cover_vertices(self, tiny_graph):
        opt = run_optimized(
            tiny_graph, ALGORITHMS["BFS"], source=0, v_list_size=2
        )
        per_iteration = -(-tiny_graph.num_vertices // 2)
        assert opt.apply_dispatches == per_iteration * opt.num_iterations
