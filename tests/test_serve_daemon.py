"""The simulation daemon over HTTP: submit/poll, coalescing, backpressure.

Every test runs an in-process daemon on an ephemeral port.  Real-service
tests use the cheapest cell (BFS on the RM22 proxy); scheduling tests
substitute a stub service whose ``matrix`` blocks on an event, so queue
states are reached deterministically instead of by racing timers.
"""

import threading
import time

import pytest

from repro.harness.serve import (
    DaemonConfig,
    JobSpec,
    SimulationDaemon,
    fetch_result,
    http_json,
    submit_job,
    wait_for_job,
)
from repro.harness.service import CacheStats


class StubService:
    """Run-service stand-in: blocks in matrix() until released."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.executions = 0
        self.stats = CacheStats()
        self._lock = threading.Lock()

    def request_for(self, algorithm, graph_key):
        return (algorithm.upper(), graph_key)

    def cache_key(self, request):
        return f"{request[0]}|{request[1]}"

    def matrix(self, algorithms, graph_keys, jobs=None, executor=None):
        with self._lock:
            self.executions += 1
        self.started.set()
        if not self.release.wait(timeout=30):
            raise TimeoutError("stub never released")
        return []


def make_daemon(tmp_path, service=None, **overrides):
    config = DaemonConfig(
        port=0,
        journal_path=str(tmp_path / "jobs.jsonl"),
        cache_dir=str(tmp_path / "cache"),
        drain_timeout=1.0,
        poll_interval=0.01,
        **overrides,
    )
    daemon = SimulationDaemon(config, service=service)
    daemon.start()
    return daemon


@pytest.fixture()
def stub_daemon(tmp_path):
    service = StubService()
    daemon = make_daemon(tmp_path, service=service, capacity=4)
    yield daemon, service
    service.release.set()
    daemon.stop(drain=False)


# ----------------------------------------------------------------------
# Core HTTP surface
# ----------------------------------------------------------------------


class TestHTTPSurface:
    def test_submit_poll_result_roundtrip(self, tmp_path):
        daemon = make_daemon(tmp_path)
        try:
            url = daemon.base_url
            status, _, body = submit_job(url, ["BFS"], ["RM22"], client="t")
            assert status == 202
            job_id = body["job"]["id"]
            final = wait_for_job(url, job_id, timeout=60)
            assert final["state"] == "done"
            assert final["result_digest"]
            status, text = fetch_result(url, job_id)
            assert status == 200 and text.startswith("[")
        finally:
            daemon.stop(drain=False)

    def test_health_ready_stats_and_errors(self, stub_daemon):
        daemon, _ = stub_daemon
        url = daemon.base_url
        assert http_json(url + "/healthz")[0] == 200
        assert http_json(url + "/readyz")[0] == 200
        status, _, stats = http_json(url + "/v1/stats")
        assert status == 200 and stats["accepting"] is True
        assert http_json(url + "/v1/jobs/nope")[0] == 404
        assert http_json(url + "/no/such/route")[0] == 404

    def test_invalid_specs_get_400(self, stub_daemon):
        daemon, _ = stub_daemon
        url = daemon.base_url + "/v1/jobs"
        cases = [
            {},
            {"algorithms": [], "graphs": ["FR"]},
            {"algorithms": ["BFS"], "graphs": ["NOPE"]},
            {"algorithms": ["NOPE"], "graphs": ["FR"]},
        ]
        for payload in cases:
            status, _, body = http_json(url, method="POST", payload=payload)
            assert status == 400, payload
            assert "error" in body
        assert daemon.stats.rejected_invalid == len(cases)

    def test_result_of_unfinished_job_is_409(self, stub_daemon):
        daemon, service = stub_daemon
        url = daemon.base_url
        _, _, body = submit_job(url, ["BFS"], ["FR"])
        status, _, error = http_json(
            f"{url}/v1/jobs/{body['job']['id']}/result"
        )
        assert status == 409
        assert error["state"] in ("queued", "running")


# ----------------------------------------------------------------------
# Coalescing
# ----------------------------------------------------------------------


class TestCoalescing:
    def test_identical_inflight_submissions_attach(self, stub_daemon):
        daemon, service = stub_daemon
        url = daemon.base_url
        _, _, first = submit_job(url, ["BFS"], ["FR"], client="a")
        assert service.started.wait(timeout=10)
        statuses = [
            submit_job(url, ["BFS"], ["FR"], client=f"c{i}") for i in range(5)
        ]
        for status, _, body in statuses:
            assert status == 202
            assert body["coalesced"] is True
            assert body["job"]["coalesced_with"] == first["job"]["id"]
        service.release.set()
        final = wait_for_job(url, first["job"]["id"], timeout=30)
        assert final["state"] == "done"
        # Attached jobs mirror the primary and resolve the same result.
        for _, _, body in statuses:
            mirrored = wait_for_job(url, body["job"]["id"], timeout=10)
            assert mirrored["state"] == "done"
        assert service.executions == 1
        assert daemon.stats.coalesced == 5

    def test_different_specs_do_not_coalesce(self, stub_daemon):
        daemon, service = stub_daemon
        url = daemon.base_url
        submit_job(url, ["BFS"], ["FR"])
        _, _, other = submit_job(url, ["CC"], ["FR"])
        assert other["coalesced"] is False
        assert daemon.stats.coalesced == 0

    def test_order_insensitive_job_key(self, stub_daemon):
        daemon, _ = stub_daemon
        # (BFS,CC) and (CC,BFS) expand to the same cell set.
        key1 = daemon.job_key(JobSpec(algorithms=("BFS", "CC"), graphs=("FR",)))
        key2 = daemon.job_key(JobSpec(algorithms=("CC", "BFS"), graphs=("FR",)))
        assert key1 == key2


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------


class TestBackpressure:
    def test_rate_limited_client_gets_429_with_retry_after(self, tmp_path):
        service = StubService()
        daemon = make_daemon(
            tmp_path, service=service, rate=1.0, burst=2.0, capacity=16
        )
        try:
            url = daemon.base_url
            results = [
                submit_job(url, ["BFS"], ["FR"], client="greedy")
                for _ in range(4)
            ]
            codes = [status for status, _, _ in results]
            assert codes.count(202) == 2
            assert codes.count(429) == 2
            for status, headers, _ in results:
                if status == 429:
                    assert float(headers["Retry-After"]) > 0
            # Another client is unaffected by greedy's empty bucket.
            status, _, _ = submit_job(url, ["BFS"], ["FR"], client="calm")
            assert status == 202
            assert daemon.stats.rejected_rate_limited == 2
        finally:
            service.release.set()
            daemon.stop(drain=False)

    def test_queue_full_gets_503_with_retry_after(self, tmp_path):
        service = StubService()
        daemon = make_daemon(
            tmp_path, service=service, capacity=2, retry_after_full=2.5
        )
        try:
            url = daemon.base_url
            # One running (pops immediately) + two queued fills capacity;
            # distinct specs so nothing coalesces.
            specs = [["BFS"], ["CC"], ["PR"], ["SSSP"]]
            codes = []
            for algo in specs:
                status, headers, _ = submit_job(url, algo, ["FR"])
                codes.append((status, headers.get("Retry-After")))
                if algo == ["BFS"]:
                    assert service.started.wait(timeout=10)
            assert [c for c, _ in codes].count(202) == 3
            rejected = [c for c in codes if c[0] == 503]
            assert len(rejected) == 1
            assert float(rejected[0][1]) == 2.5
            assert daemon.stats.rejected_queue_full == 1
        finally:
            service.release.set()
            daemon.stop(drain=False)

    def test_injected_queue_overflow_forces_503(self, tmp_path):
        service = StubService()
        daemon = make_daemon(
            tmp_path,
            service=service,
            capacity=64,
            inject=("queue-overflow:2:2",),
        )
        try:
            url = daemon.base_url
            codes = [
                submit_job(url, [algo], ["FR"])[0]
                for algo in ("BFS", "CC", "PR", "SSSP")
            ]
            # Submissions 2 and 3 are force-rejected, deterministically.
            assert codes == [202, 503, 503, 202]
        finally:
            service.release.set()
            daemon.stop(drain=False)


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------


class TestLifecycle:
    def test_drain_stops_admission_but_keeps_status(self, stub_daemon):
        daemon, service = stub_daemon
        url = daemon.base_url
        _, _, body = submit_job(url, ["BFS"], ["FR"])
        status, _, _ = http_json(url + "/v1/drain", method="POST")
        assert status == 202
        assert http_json(url + "/readyz")[0] == 503
        status, headers, _ = submit_job(url, ["CC"], ["FR"])
        assert status == 503 and "Retry-After" in headers
        # Status endpoints still serve while draining.
        assert http_json(f"{url}/v1/jobs/{body['job']['id']}")[0] == 200
        assert daemon.stats.rejected_draining == 1

    def test_cancel_queued_job(self, stub_daemon):
        daemon, service = stub_daemon
        url = daemon.base_url
        submit_job(url, ["BFS"], ["FR"])  # occupies the single slot
        assert service.started.wait(timeout=10)
        _, _, queued = submit_job(url, ["CC"], ["FR"])
        job_id = queued["job"]["id"]
        status, _, _ = http_json(f"{url}/v1/jobs/{job_id}", method="DELETE")
        assert status == 200
        status, _, body = http_json(f"{url}/v1/jobs/{job_id}")
        assert body["state"] == "cancelled"
        # Cancelling again conflicts.
        assert http_json(f"{url}/v1/jobs/{job_id}", method="DELETE")[0] == 409

    def test_watchdog_abandons_over_deadline_job(self, tmp_path):
        service = StubService()
        daemon = make_daemon(
            tmp_path, service=service, job_deadline=0.2, capacity=4
        )
        try:
            url = daemon.base_url
            _, _, body = submit_job(url, ["BFS"], ["FR"])
            final = wait_for_job(url, body["job"]["id"], timeout=15)
            assert final["state"] == "failed"
            assert "deadline" in final["error"]
            assert daemon.stats.timeouts == 1
        finally:
            service.release.set()
            daemon.stop(drain=False)

    def test_stop_journals_shutdown_event(self, tmp_path):
        daemon = make_daemon(tmp_path)
        daemon.stop()
        with open(daemon.journal.path) as handle:
            events = [line for line in handle.read().splitlines()]
        assert any('"shutdown"' in line for line in events)

    def test_executor_degrades_under_queue_pressure(self, tmp_path):
        service = StubService()
        daemon = make_daemon(
            tmp_path, service=service, capacity=4, executor="process"
        )
        try:
            url = daemon.base_url
            submit_job(url, ["BFS"], ["FR"])
            assert service.started.wait(timeout=10)
            # Queue 3 more: when they start, depth + running >= 50% of
            # capacity, so they degrade process -> thread.
            for algo in ("CC", "PR", "SSSP"):
                assert submit_job(url, [algo], ["FR"])[0] == 202
            service.release.set()
            deadline = time.monotonic() + 20
            while daemon.stats.completed < 4:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            assert daemon.stats.degraded_executor >= 1
            degraded = [
                job for job in daemon.jobs_dict() if job["executor"] != "process"
            ]
            assert degraded and all(
                job["executor"] in ("thread", "serial") for job in degraded
            )
        finally:
            service.release.set()
            daemon.stop(drain=False)
