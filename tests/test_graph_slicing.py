"""Graph slicing (Section 4.2.1) tests."""

import pytest

from repro.graph import plan_slices
from repro.graph.slicing import Slice


class TestPlanSlices:
    def test_single_slice_when_vb_fits(self):
        plan = plan_slices(num_vertices=1000, vb_capacity_bytes=8000)
        assert plan.num_slices == 1
        assert not plan.is_sliced

    def test_slice_count(self):
        # 1000 vertices x 4B with 1000B VB -> 250 vertices/slice -> 4 slices.
        plan = plan_slices(1000, 1000)
        assert plan.num_slices == 4

    def test_uneven_last_slice(self):
        plan = plan_slices(1001, 1000)
        assert plan.num_slices == 5
        assert plan.slices[-1].num_vertices == 1

    def test_slices_cover_vertex_space(self):
        plan = plan_slices(997, 512)
        covered = sum(s.num_vertices for s in plan)
        assert covered == 997
        boundaries = [s.vertex_lo for s in plan] + [plan.slices[-1].vertex_hi]
        assert boundaries == sorted(boundaries)

    def test_slice_of(self):
        plan = plan_slices(1000, 1000)
        assert plan.slice_of(0).index == 0
        assert plan.slice_of(250).index == 1
        assert plan.slice_of(999).index == 3

    def test_contains(self):
        s = Slice(index=0, vertex_lo=10, vertex_hi=20)
        assert s.contains(10)
        assert s.contains(19)
        assert not s.contains(20)
        assert not s.contains(9)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            plan_slices(10, 0)

    def test_zero_vertices(self):
        plan = plan_slices(0, 1024)
        assert plan.num_slices == 1
        assert plan.slices[0].num_vertices == 0


class TestEdgesPerSlice:
    def test_partition_sums_to_total(self, tiny_graph):
        plan = plan_slices(tiny_graph.num_vertices, 12)  # 3 vertices/slice
        per_slice = plan.edges_per_slice(tiny_graph)
        assert per_slice.sum() == tiny_graph.num_edges

    def test_matches_subgraph_slice(self, tiny_graph):
        plan = plan_slices(tiny_graph.num_vertices, 12)
        per_slice = plan.edges_per_slice(tiny_graph)
        for s in plan:
            sub = tiny_graph.subgraph_slice(s.vertex_lo, s.vertex_hi)
            assert per_slice[s.index] == sub.num_edges
