"""Graph slicing (Section 4.2.1) and destination-shard partitioning tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import plan_partitions, plan_slices
from repro.graph.slicing import PartitionPlan, Shard, Slice


class TestPlanSlices:
    def test_single_slice_when_vb_fits(self):
        plan = plan_slices(num_vertices=1000, vb_capacity_bytes=8000)
        assert plan.num_slices == 1
        assert not plan.is_sliced

    def test_slice_count(self):
        # 1000 vertices x 4B with 1000B VB -> 250 vertices/slice -> 4 slices.
        plan = plan_slices(1000, 1000)
        assert plan.num_slices == 4

    def test_uneven_last_slice(self):
        plan = plan_slices(1001, 1000)
        assert plan.num_slices == 5
        assert plan.slices[-1].num_vertices == 1

    def test_slices_cover_vertex_space(self):
        plan = plan_slices(997, 512)
        covered = sum(s.num_vertices for s in plan)
        assert covered == 997
        boundaries = [s.vertex_lo for s in plan] + [plan.slices[-1].vertex_hi]
        assert boundaries == sorted(boundaries)

    def test_slice_of(self):
        plan = plan_slices(1000, 1000)
        assert plan.slice_of(0).index == 0
        assert plan.slice_of(250).index == 1
        assert plan.slice_of(999).index == 3

    def test_contains(self):
        s = Slice(index=0, vertex_lo=10, vertex_hi=20)
        assert s.contains(10)
        assert s.contains(19)
        assert not s.contains(20)
        assert not s.contains(9)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            plan_slices(10, 0)

    def test_zero_vertices(self):
        plan = plan_slices(0, 1024)
        assert plan.num_slices == 1
        assert plan.slices[0].num_vertices == 0


class TestEdgesPerSlice:
    def test_partition_sums_to_total(self, tiny_graph):
        plan = plan_slices(tiny_graph.num_vertices, 12)  # 3 vertices/slice
        per_slice = plan.edges_per_slice(tiny_graph)
        assert per_slice.sum() == tiny_graph.num_edges

    def test_matches_subgraph_slice(self, tiny_graph):
        plan = plan_slices(tiny_graph.num_vertices, 12)
        per_slice = plan.edges_per_slice(tiny_graph)
        for s in plan:
            sub = tiny_graph.subgraph_slice(s.vertex_lo, s.vertex_hi)
            assert per_slice[s.index] == sub.num_edges


class TestPlanSlicesEdgeCases:
    def test_capacity_below_one_property_clamps_to_one_vertex(self):
        # VB capacity smaller than a single temporary property (S3):
        # the plan degrades to one vertex per slice instead of dividing
        # by zero or emitting empty slices.
        plan = plan_slices(5, vb_capacity_bytes=1, tprop_bytes=4)
        assert plan.vb_capacity_vertices == 1
        assert plan.num_slices == 5
        assert all(s.num_vertices == 1 for s in plan)

    def test_origin_offsets_slice_bounds(self):
        plan = plan_slices(10, 12, origin=100)  # 3 vertices per slice
        assert plan.slices[0].vertex_lo == 100
        assert plan.slices[-1].vertex_hi == 110
        assert plan.slice_of(100).index == 0
        assert plan.slice_of(109).index == 3

    def test_origin_plan_tiles_interval(self):
        plan = plan_slices(17, 8, origin=40)  # 2 vertices per slice
        lo = 40
        for s in plan:
            assert s.vertex_lo == lo
            lo = s.vertex_hi
        assert lo == 57


class TestPlanPartitions:
    def test_even_split(self):
        plan = plan_partitions(12, 4)
        assert plan.num_shards == 4
        assert [s.num_vertices for s in plan] == [3, 3, 3, 3]

    def test_uneven_split_differs_by_at_most_one(self):
        plan = plan_partitions(10, 3)
        sizes = [s.num_vertices for s in plan]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_single_vertex_shards(self):
        plan = plan_partitions(4, 4)
        assert [s.num_vertices for s in plan] == [1, 1, 1, 1]

    def test_more_shards_than_vertices_clamps(self):
        plan = plan_partitions(3, 100)
        assert plan.num_shards == 3
        assert all(s.num_vertices == 1 for s in plan)

    def test_empty_graph_single_empty_shard(self):
        plan = plan_partitions(0, 4)
        assert plan.num_shards == 1
        assert plan.shards[0].num_vertices == 0
        assert not plan.is_partitioned

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            plan_partitions(10, 0)
        with pytest.raises(ValueError):
            plan_partitions(-1, 2)

    def test_shard_of_and_shard_ids_agree(self):
        plan = plan_partitions(10, 3)
        for v in range(10):
            assert plan.shard_of(v).contains(v)
        ids = plan.shard_ids(np.arange(10))
        assert ids.tolist() == [plan.shard_of(v).index for v in range(10)]

    def test_shard_of_rejects_out_of_range(self):
        plan = plan_partitions(10, 3)
        with pytest.raises(IndexError):
            plan.shard_of(10)
        with pytest.raises(IndexError):
            plan.shard_of(-1)

    def test_edges_per_shard_sums_to_total(self, tiny_graph):
        plan = plan_partitions(tiny_graph.num_vertices, 3)
        per_shard = plan.edges_per_shard(tiny_graph)
        assert per_shard.sum() == tiny_graph.num_edges

    def test_vb_plan_tiles_shard_interval(self):
        plan = plan_partitions(100, 3)
        for shard in plan:
            vb = plan.vb_plan(shard, vb_capacity_bytes=28)  # 7 vertices
            assert vb.origin == shard.vertex_lo
            assert vb.slices[0].vertex_lo == shard.vertex_lo
            assert vb.slices[-1].vertex_hi == shard.vertex_hi
            covered = sum(s.num_vertices for s in vb)
            assert covered == shard.num_vertices

    def test_vb_plan_single_slice_when_shard_fits(self):
        plan = plan_partitions(100, 4)
        vb = plan.vb_plan(plan.shards[0], vb_capacity_bytes=1 << 20)
        assert vb.num_slices == 1

    @given(
        num_vertices=st.integers(min_value=0, max_value=2000),
        num_shards=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_shards_tile_vertex_space_exactly(self, num_vertices, num_shards):
        # S3 property: shards are contiguous, non-overlapping, and cover
        # [0, num_vertices) exactly for every (V, shards) combination.
        plan = plan_partitions(num_vertices, num_shards)
        assert isinstance(plan, PartitionPlan)
        assert plan.num_vertices == num_vertices
        lo = 0
        for index, shard in enumerate(plan):
            assert isinstance(shard, Shard)
            assert shard.index == index
            assert shard.vertex_lo == lo
            assert shard.vertex_hi >= shard.vertex_lo
            lo = shard.vertex_hi
        assert lo == num_vertices
        if num_vertices:
            assert all(s.num_vertices >= 1 for s in plan)
            assert plan.num_shards == min(num_shards, num_vertices)
