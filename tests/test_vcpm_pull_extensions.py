"""Pull-mode engine and extension-algorithm tests."""

import numpy as np
import pytest

from repro.vcpm import (
    ALGORITHMS,
    DEGREE_COUNT,
    EXTENSION_ALGORITHMS,
    MAX_INCOMING,
    REACHABILITY,
    SPMV,
    get_extension,
    reference,
    run_vcpm,
    run_vcpm_pull,
)


def _finite_equal(a, b):
    return np.array_equal(
        np.nan_to_num(a, posinf=1e30, neginf=-1e30),
        np.nan_to_num(b, posinf=1e30, neginf=-1e30),
    )


class TestPullEquivalence:
    @pytest.mark.parametrize("algo", ["BFS", "SSSP", "CC", "SSWP"])
    def test_same_fixpoint_as_push(self, algo, small_powerlaw):
        push = run_vcpm(small_powerlaw, ALGORITHMS[algo], source=0)
        pull = run_vcpm_pull(small_powerlaw, ALGORITHMS[algo], source=0)
        assert _finite_equal(push.properties, pull.properties)

    def test_pagerank_identical_per_iteration(self, small_powerlaw):
        push = run_vcpm(
            small_powerlaw, ALGORITHMS["PR"], max_iterations=6,
            pr_tolerance=0.0,
        )
        pull = run_vcpm_pull(
            small_powerlaw, ALGORITHMS["PR"], max_iterations=6,
            pr_tolerance=0.0,
        )
        assert np.allclose(push.properties, pull.properties)

    def test_pull_does_redundant_edge_work(self, small_powerlaw):
        # Pull gathers every in-edge every iteration; push only touches
        # active out-edges.  For BFS the totals differ dramatically.
        push = run_vcpm(small_powerlaw, ALGORITHMS["BFS"], source=0)
        pull = run_vcpm_pull(small_powerlaw, ALGORITHMS["BFS"], source=0)
        assert pull.total_edges_processed > push.total_edges_processed

    def test_source_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            run_vcpm_pull(tiny_graph, ALGORITHMS["BFS"], source=None)
        with pytest.raises(ValueError):
            run_vcpm_pull(tiny_graph, ALGORITHMS["BFS"], source=99)

    def test_pull_converges(self, small_grid):
        result = run_vcpm_pull(small_grid, ALGORITHMS["BFS"], source=0)
        assert result.converged


class TestSpMV:
    def test_matches_matrix_product(self, tiny_graph):
        result = run_vcpm(tiny_graph, SPMV, max_iterations=1)
        # y[v] = sum over edges (u -> v) of x[u] * w with x = ones.
        expected = np.zeros(tiny_graph.num_vertices)
        for src, dst, weight in tiny_graph.iter_edges():
            expected[dst] += 1.0 * weight
        assert np.allclose(result.properties, expected)

    def test_single_iteration(self, small_powerlaw):
        result = run_vcpm(small_powerlaw, SPMV)
        assert result.num_iterations == 1


class TestDegreeCount:
    def test_computes_in_degree(self, tiny_graph):
        result = run_vcpm(tiny_graph, DEGREE_COUNT)
        in_deg = np.bincount(
            tiny_graph.edges, minlength=tiny_graph.num_vertices
        )
        assert np.array_equal(result.properties, in_deg.astype(float))


class TestMaxIncoming:
    def test_max_in_weight(self, tiny_graph):
        result = run_vcpm(tiny_graph, MAX_INCOMING)
        expected = np.full(tiny_graph.num_vertices, float("-inf"))
        for _, dst, weight in tiny_graph.iter_edges():
            expected[dst] = max(expected[dst], weight)
        assert np.array_equal(result.properties, expected)


class TestReachability:
    def test_flags_match_bfs(self, small_powerlaw):
        result = run_vcpm(small_powerlaw, REACHABILITY, source=0)
        levels = reference.bfs_levels(small_powerlaw, 0)
        assert np.array_equal(result.properties > 0, np.isfinite(levels))

    def test_disconnected(self, disconnected_graph):
        result = run_vcpm(disconnected_graph, REACHABILITY, source=0)
        assert result.properties[:3].sum() == 3.0
        assert result.properties[3:].sum() == 0.0


class TestRegistry:
    def test_lookup(self):
        assert get_extension("spmv") is SPMV
        with pytest.raises(KeyError):
            get_extension("nope")

    def test_four_extensions(self):
        assert len(EXTENSION_ALGORITHMS) == 4

    def test_extensions_run_on_graphdyns(self, small_powerlaw):
        from repro.graphdyns import GraphDynS

        acc = GraphDynS()
        for name, spec in EXTENSION_ALGORITHMS.items():
            source = 0 if spec.needs_source else None
            result, report = acc.run(small_powerlaw, spec, source=source)
            assert report.cycles > 0, name
