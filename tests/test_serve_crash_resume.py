"""Daemon fault battery: kill -9 resume identity, 1000-way coalescing,
deterministic shed order under overload.

These are the acceptance tests of the serving layer:

* a daemon hard-killed mid-matrix (``kill-daemon:N`` makes the host
  ``os._exit(86)`` at the Nth cell start — a deterministic ``kill -9``)
  restarts, resumes the journaled job, and produces reports
  **byte-identical** to an uninterrupted run;
* 1000 identical submissions while the first is in flight execute the
  underlying matrix exactly once (coalesce counter == 999);
* an overload burst sheds jobs in a deterministic, priority-respecting
  order.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

from repro.harness.serve import (
    DaemonConfig,
    SimulationDaemon,
    fetch_result,
    http_json,
    submit_job,
    wait_for_job,
)
from repro.harness.service import CacheStats

_SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src")
)


def _start_daemon(workdir, inject=()):
    """Launch ``repro serve`` on an ephemeral port; return (proc, url)."""
    announce = os.path.join(workdir, "announce.json")
    if os.path.exists(announce):
        os.remove(announce)
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0",
        "--journal", os.path.join(workdir, "jobs.jsonl"),
        "--cache-dir", os.path.join(workdir, "cache"),
        "--announce", announce,
        "--drain-timeout", "1",
    ]
    for fault in inject:
        cmd += ["--inject", fault]
    env = dict(os.environ, PYTHONPATH=_SRC)
    proc = subprocess.Popen(
        cmd, env=env, cwd=workdir,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon exited early: {proc.stdout.read().decode()}"
            )
        if os.path.exists(announce):
            try:
                with open(announce) as handle:
                    return proc, json.load(handle)["url"]
            except (ValueError, KeyError):
                pass  # torn announce write; retry
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("daemon never announced its port")


def _terminate(proc):
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=5)


class TestKillDaemonResume:
    def test_hard_kill_mid_matrix_resumes_byte_identical(self, tmp_path):
        """kill -9 between cells, restart, byte-identical reports."""
        workdir = str(tmp_path)

        # Uninterrupted baseline (its own cache so nothing is shared).
        baseline_dir = os.path.join(workdir, "baseline")
        os.makedirs(baseline_dir)
        proc, url = _start_daemon(baseline_dir)
        try:
            _, _, body = submit_job(url, ["BFS", "CC"], ["RM22"], client="t")
            job_id = body["job"]["id"]
            assert wait_for_job(url, job_id, timeout=90)["state"] == "done"
            status, baseline = fetch_result(url, job_id)
            assert status == 200
        finally:
            _terminate(proc)

        # Interrupted run: the host process dies at the 2nd cell start.
        crash_dir = os.path.join(workdir, "crash")
        os.makedirs(crash_dir)
        proc, url = _start_daemon(crash_dir, inject=("kill-daemon:2",))
        _, _, body = submit_job(url, ["BFS", "CC"], ["RM22"], client="t")
        job_id = body["job"]["id"]
        assert proc.wait(timeout=60) == 86  # died mid-matrix, no drain

        # Restart against the same journal + cache: the job resumes
        # (journal has submit+start but no terminal event), finished
        # cells replay from the persistent cache, and the final reports
        # are byte-identical to the uninterrupted baseline.
        proc, url = _start_daemon(crash_dir)
        try:
            status, _, stats = http_json(url + "/v1/stats")
            assert stats["resumed"] == 1
            final = wait_for_job(url, job_id, timeout=90)
            assert final["state"] == "done"
            assert final["resumed"] is True
            status, resumed = fetch_result(url, job_id)
            assert status == 200
            assert resumed == baseline
        finally:
            _terminate(proc)

    def test_sigterm_drains_and_journal_replays_clean(self, tmp_path):
        """A SIGTERM'd daemon leaves a journal the next boot fully folds."""
        workdir = str(tmp_path)
        proc, url = _start_daemon(workdir)
        _, _, body = submit_job(url, ["BFS"], ["RM22"])
        assert wait_for_job(url, body["job"]["id"], timeout=90)["state"] == "done"
        _terminate(proc)
        assert proc.returncode == 0

        proc, url = _start_daemon(workdir)
        try:
            _, _, stats = http_json(url + "/v1/stats")
            assert stats["resumed"] == 0  # nothing was unfinished
            _, _, jobs = http_json(url + "/v1/jobs")
            assert [j["state"] for j in jobs["jobs"]] == ["done"]
        finally:
            _terminate(proc)


class _BlockingService:
    """matrix() blocks until released; counts executions."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.executions = 0
        self.stats = CacheStats()
        self._lock = threading.Lock()

    def request_for(self, algorithm, graph_key):
        return (algorithm.upper(), graph_key)

    def cache_key(self, request):
        return f"{request[0]}|{request[1]}"

    def matrix(self, algorithms, graph_keys, jobs=None, executor=None):
        with self._lock:
            self.executions += 1
        self.started.set()
        if not self.release.wait(timeout=60):
            raise TimeoutError("never released")
        return []


class TestMassCoalescing:
    def test_1000_duplicate_submissions_execute_once(self, tmp_path):
        """N identical in-flight submissions -> one execution, N-1 coalesced."""
        service = _BlockingService()
        daemon = SimulationDaemon(
            DaemonConfig(
                port=0,
                journal_path=str(tmp_path / "jobs.jsonl"),
                capacity=8,
                poll_interval=0.01,
            ),
            service=service,
        )
        daemon.start()
        try:
            spec = {"algorithms": ["BFS"], "graphs": ["FR"]}
            primary, decision = daemon.submit(spec, client="c0")
            assert decision.accepted
            assert service.started.wait(timeout=10)

            errors = []

            def burst(worker, count):
                for i in range(count):
                    job, decision = daemon.submit(
                        spec, client=f"w{worker}-{i}"
                    )
                    if (
                        job is None
                        or decision.reason != "coalesced"
                        or job.coalesced_with != primary.id
                    ):
                        errors.append((worker, i, decision))

            threads = [
                threading.Thread(target=burst, args=(w, 111))
                for w in range(9)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors

            service.release.set()
            deadline = time.monotonic() + 30
            while daemon.get_job(primary.id).state != "done":
                assert time.monotonic() < deadline
                time.sleep(0.01)

            assert service.executions == 1  # the cell ran exactly once
            assert daemon.stats.coalesced == 999
            assert daemon.stats.admitted == 1
            # Every attached job observes the primary's terminal state.
            done = [
                job for job in daemon.jobs_dict() if job["state"] == "done"
            ]
            assert len(done) == 1000
        finally:
            service.release.set()
            daemon.stop(drain=False)


class TestOverloadShedOrder:
    def test_shed_order_is_deterministic_under_burst(self, tmp_path):
        """The same overload sequence sheds the same jobs, twice over."""

        def run_once():
            service = _BlockingService()
            daemon = SimulationDaemon(
                DaemonConfig(
                    port=0,
                    journal_path=str(
                        tmp_path / f"jobs-{time.monotonic_ns()}.jsonl"
                    ),
                    capacity=2,
                    poll_interval=0.01,
                ),
                service=service,
            )
            daemon.start()
            try:
                # Distinct specs so nothing coalesces; the first job
                # occupies the single run slot, the rest queue.
                blocker, _ = daemon.submit(
                    {"algorithms": ["BFS"], "graphs": ["FR"]}, priority=9
                )
                assert service.started.wait(timeout=10)
                plan = [
                    (["CC"], 0), (["PR"], 0), (["SSSP"], 1), (["SSWP"], 2),
                ]
                outcomes = []
                for algorithms, priority in plan:
                    job, decision = daemon.submit(
                        {"algorithms": algorithms, "graphs": ["FR"]},
                        priority=priority,
                    )
                    outcomes.append(
                        (
                            algorithms[0],
                            decision.status,
                            tuple(
                                daemon.get_job(jid).spec.algorithms[0]
                                for jid in decision.shed
                            ),
                        )
                    )
                shed_states = sorted(
                    job["algorithms"][0]
                    for job in daemon.jobs_dict()
                    if job["state"] == "shed"
                )
                return outcomes, shed_states, daemon.stats.shed
            finally:
                service.release.set()
                daemon.stop(drain=False)

        first = run_once()
        second = run_once()
        assert first == second
        outcomes, shed_states, shed_count = first
        # CC and PR fill the queue; SSSP (prio 1) evicts PR (youngest of
        # the lowest priority); SSWP (prio 2) evicts CC.
        assert outcomes == [
            ("CC", 202, ()),
            ("PR", 202, ()),
            ("SSSP", 202, ("PR",)),
            ("SSWP", 202, ("CC",)),
        ]
        assert shed_states == ["CC", "PR"]
        assert shed_count == 2
