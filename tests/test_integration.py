"""Cross-system integration tests: the paper's comparative claims in shape.

These run the full pipeline (functional engine + all three timing models)
on the FR proxy -- the smallest Table 4 graph -- and assert the *ordering*
relationships the paper reports, not absolute numbers.
"""

import pytest

from repro.graph import datasets
from repro.harness import run_cell
from repro.memory import Region


@pytest.fixture(scope="module")
def fr_cells():
    graph = datasets.load("FR")
    return {
        algo: run_cell(graph, algo, "FR")
        for algo in ("BFS", "SSSP", "CC", "SSWP", "PR")
    }


class TestSpeedupOrdering:
    def test_graphdyns_beats_graphicionado_everywhere(self, fr_cells):
        for algo, cell in fr_cells.items():
            gds = cell.reports["GraphDynS"].seconds
            gio = cell.reports["Graphicionado"].seconds
            assert gds < gio, algo

    def test_accelerators_beat_gpu_everywhere(self, fr_cells):
        for algo, cell in fr_cells.items():
            gun = cell.reports["Gunrock"].seconds
            assert cell.reports["GraphDynS"].seconds < gun, algo
            assert cell.reports["Graphicionado"].seconds < gun, algo

    def test_speedups_in_paper_band(self, fr_cells):
        # Paper Fig. 6: per-cell GraphDynS speedups roughly 2-32x.
        for algo, cell in fr_cells.items():
            speedup = cell.speedup_over_gunrock("GraphDynS")
            assert 1.5 < speedup < 40, (algo, speedup)

    def test_cc_speedup_lowest(self, fr_cells):
        # Gunrock's online filtering helps CC most (paper Section 7).
        speedups = {
            algo: cell.speedup_over_gunrock("GraphDynS")
            for algo, cell in fr_cells.items()
        }
        assert speedups["CC"] == min(speedups.values())


class TestThroughputShape:
    def test_pr_highest_graphdyns_throughput(self, fr_cells):
        gteps = {a: c.reports["GraphDynS"].gteps for a, c in fr_cells.items()}
        assert gteps["PR"] >= max(v for k, v in gteps.items() if k != "CC") * 0.8

    def test_below_peak(self, fr_cells):
        for cell in fr_cells.values():
            assert cell.reports["GraphDynS"].gteps < 128.0  # ideal peak


class TestTrafficShape:
    def test_graphdyns_moves_least_data(self, fr_cells):
        for algo, cell in fr_cells.items():
            gds = cell.reports["GraphDynS"].total_traffic_bytes
            gio = cell.reports["Graphicionado"].total_traffic_bytes
            gun = cell.reports["Gunrock"].total_traffic_bytes
            assert gds < gio < gun, algo

    def test_graphdyns_has_no_metadata_traffic(self, fr_cells):
        for cell in fr_cells.values():
            assert (
                cell.reports["GraphDynS"].traffic.region_total(Region.METADATA)
                == 0
            )

    def test_storage_ordering(self, fr_cells):
        cell = fr_cells["SSSP"]
        assert (
            cell.reports["GraphDynS"].storage_bytes
            < cell.reports["Graphicionado"].storage_bytes
            < cell.reports["Gunrock"].storage_bytes
        )


class TestEnergyShape:
    def test_graphdyns_most_efficient(self, fr_cells):
        for algo, cell in fr_cells.items():
            gds = cell.energy["GraphDynS"].total_j
            gio = cell.energy["Graphicionado"].total_j
            gun = cell.energy["Gunrock"].total_j
            assert gds < gio < gun, algo

    def test_energy_reduction_vs_gunrock_large(self, fr_cells):
        # Paper: 91.4% reduction on average (so normalized < ~0.3 per cell).
        for algo, cell in fr_cells.items():
            assert cell.energy_vs_gunrock("GraphDynS") < 0.4, algo

    def test_hbm_dominates_graphdyns_energy(self, fr_cells):
        for cell in fr_cells.values():
            assert cell.energy["GraphDynS"].hbm_fraction > 0.5


class TestFunctionalConsistency:
    def test_all_systems_observed_same_run(self, fr_cells):
        for algo, cell in fr_cells.items():
            iters = {r.iterations for r in cell.reports.values()}
            assert len(iters) == 1, algo

    def test_update_scheduling_skips_work(self, fr_cells):
        bfs = fr_cells["BFS"]
        assert (
            bfs.reports["GraphDynS"].update_operations
            < bfs.reports["Graphicionado"].update_operations
        )

    def test_pr_updates_everything(self, fr_cells):
        pr = fr_cells["PR"]
        graph = datasets.load("FR")
        report = pr.reports["GraphDynS"]
        assert report.update_operations == report.iterations * graph.num_vertices
