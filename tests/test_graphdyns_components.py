"""GraphDynS component micro-model tests (Dispatcher/Prefetcher/Processor/Updater)."""

import numpy as np
import pytest

from repro.graphdyns import (
    Dispatcher,
    GraphDynSConfig,
    Prefetcher,
    Processor,
    Updater,
)
from repro.vcpm import ALGORITHMS
from repro.vcpm.optimized import ActiveVertex, dispatch_scatter


@pytest.fixture()
def config():
    return GraphDynSConfig()


def _records(graph, active, prop=None):
    if prop is None:
        prop = np.zeros(graph.num_vertices)
    return dispatch_scatter(prop, graph.offsets, np.asarray(active))


class TestDispatcher:
    def test_small_list_single_workload(self, tiny_graph, config):
        d = Dispatcher(config)
        workloads = d.dispatch_scatter(_records(tiny_graph, [0]))
        assert len(workloads) == 1
        assert workloads[0].count == 3
        assert d.scheduling_ops == 1

    def test_large_list_splits(self, config):
        d = Dispatcher(config)
        record = ActiveVertex(prop=1.0, offset=0, edge_cnt=300)
        workloads = d.dispatch_scatter([record])
        assert len(workloads) == 3  # ceil(300/128)
        assert sum(w.count for w in workloads) == 300
        assert max(w.count for w in workloads) <= config.e_threshold

    def test_split_covers_contiguous_range(self, config):
        d = Dispatcher(config)
        record = ActiveVertex(prop=0.0, offset=100, edge_cnt=500)
        workloads = d.dispatch_scatter([record])
        indices = np.concatenate([w.edge_indices() for w in workloads])
        assert np.array_equal(np.sort(indices), np.arange(100, 600))

    def test_round_robin_pe_assignment(self, config):
        d = Dispatcher(config)
        records = [ActiveVertex(0.0, i * 2, 2) for i in range(32)]
        workloads = d.dispatch_scatter(records)
        pes = [w.pe for w in workloads]
        assert pes[:16] == list(range(16))

    def test_apply_workloads_cover_vertices(self, config):
        d = Dispatcher(config)
        workloads = d.dispatch_apply(100)
        assert sum(w.size for w in workloads) == 100
        starts = [w.start_id for w in workloads]
        assert starts == sorted(starts)

    def test_pe_loads(self, config):
        d = Dispatcher(config)
        records = [ActiveVertex(0.0, 0, 10)]
        workloads = d.dispatch_scatter(records)
        loads = d.pe_loads(workloads)
        assert loads.sum() == 10


class TestPrefetcher:
    def test_plan_counts(self, tiny_graph, config):
        p = Prefetcher(config)
        records = _records(tiny_graph, [0, 1])
        plan = p.plan(records)
        assert p.edges_fetched == 5
        assert plan.total_bytes > 0

    def test_epb_layout_matches_dispatch(self, tiny_graph, config):
        d = Dispatcher(config)
        p = Prefetcher(config)
        records = _records(tiny_graph, [0, 1, 2])
        workloads = d.dispatch_scatter(records)
        layout = p.arrange_epb(workloads)
        for pe in range(config.num_pes):
            expected = [
                idx
                for w in workloads
                if w.pe == pe
                for idx in w.edge_indices()
            ]
            assert layout.ram_of_pe(pe) == expected

    def test_all_edges_placed_exactly_once(self, small_powerlaw, config):
        d = Dispatcher(config)
        p = Prefetcher(config)
        active = np.arange(small_powerlaw.num_vertices)
        records = _records(small_powerlaw, active)
        workloads = d.dispatch_scatter(records)
        layout = p.arrange_epb(workloads)
        placed = sorted(
            idx for ram in layout.per_ram for idx in ram
        )
        assert placed == list(range(small_powerlaw.num_edges))


class TestProcessor:
    def test_scatter_results_match_expected(self, tiny_graph, config):
        spec = ALGORITHMS["SSSP"]
        prop = spec.initial_prop(7, 0)
        d = Dispatcher(config)
        records = _records(tiny_graph, [0], prop)
        workloads = d.dispatch_scatter(records)
        proc = Processor(spec, config)
        results = proc.process_scatter(tiny_graph, workloads)
        assert {(r.dst, r.value) for r in results} == {
            (1, 3.0), (2, 99.0), (3, 1.0)
        }

    def test_edges_processed_counted(self, tiny_graph, config):
        spec = ALGORITHMS["BFS"]
        d = Dispatcher(config)
        records = _records(tiny_graph, [0, 1])
        proc = Processor(spec, config)
        proc.process_scatter(tiny_graph, d.dispatch_scatter(records))
        assert proc.edges_processed == 5

    def test_apply_results(self, tiny_graph, config):
        spec = ALGORITHMS["BFS"]
        proc = Processor(spec, config)
        d = Dispatcher(config)
        prop = np.full(7, np.inf)
        t_prop = np.full(7, np.inf)
        t_prop[3] = 1.0
        results = proc.process_apply(
            d.dispatch_apply(7), prop, t_prop, np.zeros(7)
        )
        as_dict = dict(results)
        assert as_dict[3] == 1.0
        assert np.isinf(as_dict[0])


class TestUpdater:
    def test_scatter_update_reduces_and_marks(self, tiny_graph, config):
        spec = ALGORITHMS["SSSP"]
        prop = spec.initial_prop(7, 0)
        d = Dispatcher(config)
        proc = Processor(spec, config)
        updater = Updater(7, spec, config)
        workloads = d.dispatch_scatter(_records(tiny_graph, [0], prop))
        results = proc.process_scatter(tiny_graph, workloads)
        modified = updater.scatter_update(results)
        assert set(modified.tolist()) == {1, 2, 3}
        t_prop = updater.t_prop_array()
        assert t_prop[1] == 3.0 and t_prop[3] == 1.0

    def test_duplicate_updates_fold(self, config):
        from repro.graphdyns.processor import EdgeResult

        spec = ALGORITHMS["SSSP"]
        updater = Updater(10, spec, config)
        results = [
            EdgeResult(dst=4, value=9.0, pe=0, lane=0),
            EdgeResult(dst=4, value=3.0, pe=0, lane=1),
            EdgeResult(dst=4, value=7.0, pe=1, lane=0),
        ]
        updater.scatter_update(results)
        assert updater.t_prop_array()[4] == 3.0

    def test_apply_update_activates_changed(self, config):
        spec = ALGORITHMS["BFS"]
        updater = Updater(5, spec, config)
        prop = np.array([0.0, np.inf, np.inf, 2.0, np.inf])
        activated = updater.apply_update(
            [(0, 0.0), (1, 1.0), (3, 2.0)], prop
        )
        assert activated.tolist() == [1]
        assert prop[1] == 1.0

    def test_reset_clears_bitmap(self, config):
        from repro.graphdyns.processor import EdgeResult

        spec = ALGORITHMS["BFS"]
        updater = Updater(300, spec, config)
        updater.scatter_update([EdgeResult(10, 1.0, 0, 0)])
        assert updater.bitmap.blocks_set == 1
        updater.reset_for_next_iteration()
        assert updater.bitmap.blocks_set == 0

    def test_pr_reset_clears_vb(self, config):
        from repro.graphdyns.processor import EdgeResult

        spec = ALGORITHMS["PR"]
        updater = Updater(10, spec, config)
        updater.scatter_update([EdgeResult(1, 0.5, 0, 0)])
        updater.reset_for_next_iteration()
        assert updater.t_prop_array()[1] == 0.0
