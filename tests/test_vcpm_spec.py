"""AlgorithmSpec / ReduceOp tests."""

import numpy as np
import pytest

from repro.vcpm import ALGORITHMS, ReduceOp


class TestReduceOp:
    def test_identities(self):
        assert ReduceOp.MIN.identity == float("inf")
        assert ReduceOp.MAX.identity == float("-inf")
        assert ReduceOp.SUM.identity == 0.0

    def test_identity_is_neutral_scalar(self):
        for op in ReduceOp:
            assert op.scalar(op.identity, 5.0) == 5.0

    def test_scalar_folds(self):
        assert ReduceOp.MIN.scalar(3.0, 5.0) == 3.0
        assert ReduceOp.MAX.scalar(3.0, 5.0) == 5.0
        assert ReduceOp.SUM.scalar(3.0, 5.0) == 8.0

    def test_ufunc_matches_scalar(self):
        for op in ReduceOp:
            out = np.array([op.identity])
            op.ufunc.at(out, np.zeros(3, dtype=np.int64), np.array([1.0, 4.0, 2.0]))
            expected = op.identity
            for v in [1.0, 4.0, 2.0]:
                expected = op.scalar(expected, v)
            assert out[0] == expected

    def test_monotonicity_flags(self):
        assert ReduceOp.MIN.is_monotonic
        assert ReduceOp.MAX.is_monotonic
        assert not ReduceOp.SUM.is_monotonic


class TestAlgorithmSpec:
    def test_initial_tprop_filled_with_identity(self):
        for spec in ALGORITHMS.values():
            t_prop = spec.initial_tprop(5)
            assert np.all(t_prop == spec.reduce_op.identity)

    def test_resets_tprop_only_for_pr(self):
        for name, spec in ALGORITHMS.items():
            assert spec.resets_tprop_each_iteration == (name == "PR")

    def test_process_edge_scalar_matches_vector(self):
        for spec in ALGORITHMS.values():
            scalar = spec.process_edge_scalar(3.0, 2.0)
            vector = spec.process_edge(np.array([3.0]), np.array([2.0]))[0]
            assert scalar == vector

    def test_apply_scalar_matches_vector(self):
        for spec in ALGORITHMS.values():
            scalar = spec.apply_scalar(4.0, 2.0, 8.0)
            vector = spec.apply(
                np.array([4.0]), np.array([2.0]), np.array([8.0])
            )[0]
            assert scalar == pytest.approx(vector)

    def test_repr_mentions_name(self):
        assert "BFS" in repr(ALGORITHMS["BFS"])
