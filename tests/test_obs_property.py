"""Property-based tests for the observability layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import DeterministicClock, TraceRecorder
from repro.obs.instruments import DEFAULT_BUCKET_EDGES, Counter, Histogram

#: A random program over the recorder: open a child span, close the
#: current span, or advance the clock.
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("open"), st.sampled_from("abcd")),
        st.tuples(st.just("close"), st.none()),
        st.tuples(st.just("advance"), st.floats(0.0, 1e6)),
    ),
    max_size=60,
)


class TestSpanTreeProperties:
    @given(_OPS)
    @settings(max_examples=100, deadline=None)
    def test_span_tree_well_formed(self, ops):
        """Any open/close/advance interleaving yields a well-formed tree."""
        rec = TraceRecorder()
        open_handles = []
        for op, arg in ops:
            if op == "open":
                open_handles.append(rec.span(arg, track="t"))
            elif op == "close" and open_handles:
                open_handles.pop().__exit__(None, None, None)
            elif op == "advance":
                rec.clock.advance(arg)
        rec.finish()

        by_id = {s.span_id: s for s in rec.spans}
        for span in rec.spans:
            # every span closed, bounded by its clock interval
            assert span.closed
            assert span.end >= span.begin
            if span.parent_id is not None:
                parent = by_id[span.parent_id]
                # child interval nests inside its parent's
                assert parent.begin <= span.begin
                assert span.end <= parent.end
        # ids are unique and increase in creation order
        ids = [s.span_id for s in rec.spans]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)

    @given(_OPS)
    @settings(max_examples=50, deadline=None)
    def test_clock_is_monotonic(self, ops):
        rec = TraceRecorder()
        last = rec.clock.now
        for op, arg in ops:
            if op == "advance":
                rec.clock.advance(arg)
            assert rec.clock.now >= last
            last = rec.clock.now


class TestCounterProperties:
    @given(st.lists(st.floats(0.0, 1e12), max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_counter_monotone_and_exact(self, amounts):
        counter = Counter("c")
        running = 0.0
        for amount in amounts:
            before = counter.value
            counter.add(amount)
            running += amount
            assert counter.value >= before
        assert counter.value == running

    @given(st.floats(max_value=-1e-9, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_negative_add_rejected(self, amount):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.add(amount)


class TestHistogramProperties:
    @given(
        st.lists(
            st.floats(0.0, 1e7, allow_nan=False, allow_infinity=False),
            max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_bucket_counts_sum_to_observations(self, values):
        hist = Histogram("h", edges=DEFAULT_BUCKET_EDGES)
        hist.observe_many(np.asarray(values, dtype=np.float64))
        assert sum(hist.counts) == len(values)
        assert hist.count == len(values)

    @given(
        st.lists(
            st.floats(0.0, 1e7, allow_nan=False, allow_infinity=False),
            max_size=100,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_observe_many_equals_loop(self, values):
        scalar = Histogram("a", edges=DEFAULT_BUCKET_EDGES)
        batched = Histogram("b", edges=DEFAULT_BUCKET_EDGES)
        for value in values:
            scalar.observe(value)
        batched.observe_many(np.asarray(values, dtype=np.float64))
        assert scalar.counts == batched.counts
        assert scalar.count == batched.count

    @given(st.floats(0.0, 1e18, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_every_value_lands_in_exactly_one_bucket(self, value):
        hist = Histogram("h", edges=DEFAULT_BUCKET_EDGES)
        hist.observe(value)
        assert sum(hist.counts) == 1


class TestClockProperties:
    @given(st.lists(st.floats(0.0, 1e9), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_now_is_sum_of_advances(self, deltas):
        clock = DeterministicClock()
        expected = 0.0
        for delta in deltas:
            clock.advance(delta)
            expected += delta
        assert clock.now == expected
