"""Activity trace recorder tests."""

import warnings

import pytest

from repro.sim import ActivityTrace


class TestRecording:
    def test_records_events(self):
        trace = ActivityTrace()
        trace.record(0, "PE0", "issue")
        trace.record(1, "PE0", "issue")
        trace.record(1, "UE3", "reduce", "v42")
        assert len(trace) == 3
        assert trace.events_for("PE0")[1].cycle == 1
        assert trace.events_for("UE3")[0].detail == "v42"

    def test_drop_past_capacity(self):
        trace = ActivityTrace(max_events=2)
        with pytest.warns(ResourceWarning, match="further events are dropped"):
            for cycle in range(5):
                trace.record(cycle, "u", "e")
        assert len(trace) == 2
        assert trace.dropped == 3

    def test_drop_warns_once(self):
        trace = ActivityTrace(max_events=1)
        trace.record(0, "u", "e")
        with pytest.warns(ResourceWarning) as caught:
            trace.record(1, "u", "e")
            trace.record(2, "u", "e")
        assert len(caught) == 1

    def test_no_warning_under_capacity(self):
        trace = ActivityTrace(max_events=8)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for cycle in range(8):
                trace.record(cycle, "u", "e")
        assert trace.dropped == 0

    def test_span(self):
        trace = ActivityTrace()
        assert trace.span() == 0
        trace.record(7, "u", "e")
        assert trace.span() == 8


class TestStatistics:
    def test_busy_cycles_dedupes(self):
        trace = ActivityTrace()
        trace.record(0, "u", "a")
        trace.record(0, "u", "b")
        trace.record(2, "u", "c")
        assert trace.busy_cycles("u") == 2

    def test_utilization(self):
        trace = ActivityTrace()
        trace.record(0, "u", "a")
        trace.record(3, "u", "b")  # span 4, busy 2
        assert trace.utilization("u") == pytest.approx(0.5)

    def test_summary(self):
        trace = ActivityTrace()
        trace.record(0, "a", "x")
        trace.record(0, "b", "x")
        trace.record(1, "a", "x")
        summary = trace.summary()
        assert summary["a"] == (2, 1.0)
        assert summary["b"][0] == 1


class TestTimeline:
    def test_rows_and_columns(self):
        trace = ActivityTrace()
        trace.record(0, "PE0", "issue")
        trace.record(2, "PE0", "issue")
        trace.record(1, "UE0", "reduce")
        timeline = trace.render_timeline()
        lines = timeline.splitlines()
        assert len(lines) == 3  # header + 2 units
        assert lines[1].endswith("#.#")
        assert lines[2].endswith(".#.")

    def test_empty(self):
        assert ActivityTrace().render_timeline() == "(empty trace)"

    def test_window(self):
        trace = ActivityTrace()
        trace.record(0, "u", "a")
        trace.record(5, "u", "b")
        timeline = trace.render_timeline(first_cycle=4, last_cycle=5)
        assert timeline.splitlines()[1].endswith(".#")

    def test_reports_dropped_events(self):
        trace = ActivityTrace(max_events=1)
        trace.record(0, "u", "a")
        with pytest.warns(ResourceWarning):
            trace.record(1, "u", "b")
        assert trace.render_timeline().splitlines()[-1] == (
            "(dropped 1 events past capacity)"
        )
