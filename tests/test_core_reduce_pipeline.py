"""Zero-stall Reduce Pipeline (Fig. 5) tests."""

import numpy as np
import pytest

from repro.core import (
    StallingReducePipeline,
    ZeroStallReducePipeline,
    count_raw_conflicts,
)
from repro.vcpm.spec import ReduceOp


def sequential_fold(op: ReduceOp, ops, initial=None):
    vb = dict(initial or {})
    for addr, value in ops:
        vb[addr] = op.scalar(vb.get(addr, op.identity), value)
    return vb


class TestZeroStall:
    @pytest.mark.parametrize("op", list(ReduceOp))
    def test_matches_sequential_fold(self, op):
        rng = np.random.default_rng(1)
        ops = [
            (int(a), float(v))
            for a, v in zip(rng.integers(0, 6, 300), rng.random(300))
        ]
        result = ZeroStallReducePipeline(op).run(ops)
        assert result.vb == sequential_fold(op, ops)

    def test_never_stalls(self):
        ops = [(0, 1.0)] * 100  # worst case: every op hits one address
        result = ZeroStallReducePipeline(ReduceOp.SUM).run(ops)
        assert result.stall_cycles == 0
        assert result.cycles == 100 + 2  # fill + drain only
        assert result.vb == {0: 100.0}

    def test_back_to_back_forwarding(self):
        # Distance-1 hazard: EXE-stage forwarding path.
        ops = [(5, 1.0), (5, 1.0)]
        result = ZeroStallReducePipeline(ReduceOp.SUM).run(ops)
        assert result.vb == {5: 2.0}

    def test_distance_two_forwarding(self):
        # Distance-2 hazard: RD-stage forwarding path.
        ops = [(5, 1.0), (9, 1.0), (5, 1.0)]
        result = ZeroStallReducePipeline(ReduceOp.SUM).run(ops)
        assert result.vb[5] == 2.0

    def test_initial_vb_respected(self):
        result = ZeroStallReducePipeline(ReduceOp.MIN).run(
            [(0, 5.0)], vb={0: 2.0}
        )
        assert result.vb[0] == 2.0

    def test_empty_stream(self):
        result = ZeroStallReducePipeline(ReduceOp.MIN).run([])
        assert result.cycles == 0
        assert result.throughput == 1.0

    def test_throughput_approaches_one(self):
        ops = [(i % 3, 1.0) for i in range(1000)]
        result = ZeroStallReducePipeline(ReduceOp.SUM).run(ops)
        assert result.throughput > 0.99


class TestStalling:
    @pytest.mark.parametrize("op", list(ReduceOp))
    def test_correct_despite_stalls(self, op):
        rng = np.random.default_rng(2)
        ops = [
            (int(a), float(v))
            for a, v in zip(rng.integers(0, 4, 200), rng.random(200))
        ]
        result = StallingReducePipeline(op).run(ops)
        assert result.vb == sequential_fold(op, ops)

    def test_hot_address_stalls_heavily(self):
        ops = [(0, 1.0)] * 50
        result = StallingReducePipeline(ReduceOp.SUM).run(ops)
        assert result.stall_cycles > 50  # ~2 bubbles per op
        assert result.vb == {0: 50.0}

    def test_conflict_free_stream_no_stalls(self):
        ops = [(i, 1.0) for i in range(50)]
        result = StallingReducePipeline(ReduceOp.SUM).run(ops)
        assert result.stall_cycles == 0

    def test_zero_stall_always_at_least_as_fast(self):
        rng = np.random.default_rng(3)
        ops = [
            (int(a), float(v))
            for a, v in zip(rng.integers(0, 8, 300), rng.random(300))
        ]
        fast = ZeroStallReducePipeline(ReduceOp.MIN).run(ops)
        slow = StallingReducePipeline(ReduceOp.MIN).run(ops)
        assert fast.cycles <= slow.cycles
        assert fast.vb == slow.vb


class TestConflictCounting:
    def test_adjacent_conflict(self):
        assert count_raw_conflicts(np.array([1, 1, 2]), depth=2) == 1

    def test_depth_window(self):
        dst = np.array([1, 2, 1])
        assert count_raw_conflicts(dst, depth=1) == 0
        assert count_raw_conflicts(dst, depth=2) == 1

    def test_uniform_stream(self):
        assert count_raw_conflicts(np.full(10, 3), depth=2) == 17

    def test_empty_and_single(self):
        assert count_raw_conflicts(np.array([]), 2) == 0
        assert count_raw_conflicts(np.array([1]), 2) == 0
