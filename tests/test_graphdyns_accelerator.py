"""Component-level accelerator vs vectorized engine equivalence."""

import numpy as np
import pytest

from repro.graph import power_law_graph
from repro.graphdyns import GraphDynS
from repro.vcpm import ALGORITHMS, run_vcpm


@pytest.fixture(scope="module")
def walk_graph():
    return power_law_graph(250, 1200, seed=21, name="walk")


class TestComponentEquivalence:
    @pytest.mark.parametrize("algo", ["BFS", "SSSP", "CC", "SSWP"])
    def test_matches_engine(self, algo, walk_graph):
        acc = GraphDynS()
        engine = run_vcpm(walk_graph, ALGORITHMS[algo], source=0)
        component = acc.run_component_level(
            walk_graph, ALGORITHMS[algo], source=0
        )
        assert component.converged == engine.converged
        assert np.array_equal(
            np.nan_to_num(component.properties, posinf=1e30),
            np.nan_to_num(engine.properties, posinf=1e30),
        )

    def test_pagerank_matches(self, walk_graph):
        acc = GraphDynS()
        engine = run_vcpm(
            walk_graph, ALGORITHMS["PR"], max_iterations=4, pr_tolerance=0.0
        )
        component = acc.run_component_level(
            walk_graph, ALGORITHMS["PR"], max_iterations=4
        )
        assert np.allclose(component.properties, engine.properties)

    def test_edges_processed_match(self, walk_graph):
        acc = GraphDynS()
        engine = run_vcpm(walk_graph, ALGORITHMS["SSSP"], source=0)
        component = acc.run_component_level(
            walk_graph, ALGORITHMS["SSSP"], source=0
        )
        assert component.edges_processed == engine.total_edges_processed

    def test_scheduling_ops_below_edge_count(self, walk_graph):
        acc = GraphDynS()
        component = acc.run_component_level(
            walk_graph, ALGORITHMS["SSSP"], source=0
        )
        assert 0 < component.scheduling_ops < component.edges_processed

    def test_max_iterations_respected(self, walk_graph):
        acc = GraphDynS()
        component = acc.run_component_level(
            walk_graph, ALGORITHMS["CC"], max_iterations=2
        )
        assert component.num_iterations <= 2

    def test_empty_graph(self):
        from repro.graph import CSRGraph

        acc = GraphDynS()
        component = acc.run_component_level(
            CSRGraph.empty(0), ALGORITHMS["CC"]
        )
        assert component.converged
        assert component.properties.size == 0
