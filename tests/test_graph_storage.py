"""Out-of-core storage backend tests (spill, mmap, streamed assembly)."""

import gc
import json
import os
import subprocess
import sys
import time
import warnings

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    InMemoryStorage,
    MmapStorage,
    StorageError,
    assemble_csr,
    create_storage,
    datasets,
)
from repro.graph.generators import rmat_edge_chunks
from repro.graph.storage import (
    STORAGE_FORMAT_VERSION,
    SPILL_DIR_ENV,
    gc_stale_spills,
    iter_edge_blocks,
    spill_dir_root,
    spill_owner_pid,
)


def _is_mmapped(array):
    return isinstance(array, np.memmap) or isinstance(
        getattr(array, "base", None), np.memmap
    )


class TestInMemoryStorage:
    def test_adopt_is_identity(self, tiny_graph):
        with InMemoryStorage() as storage:
            assert storage.adopt(tiny_graph) is tiny_graph

    def test_closed_storage_rejects_adopt(self, tiny_graph):
        storage = InMemoryStorage()
        storage.close()
        with pytest.raises(StorageError):
            storage.adopt(tiny_graph)

    def test_close_is_idempotent(self):
        storage = InMemoryStorage()
        storage.close()
        storage.close()
        assert storage.closed


class TestMmapStorage:
    def test_adopt_round_trips_content(self, tiny_graph, tmp_path):
        with MmapStorage(directory=str(tmp_path / "spill")) as storage:
            twin = storage.adopt(tiny_graph)
            np.testing.assert_array_equal(twin.offsets, tiny_graph.offsets)
            np.testing.assert_array_equal(twin.edges, tiny_graph.edges)
            np.testing.assert_array_equal(twin.weights, tiny_graph.weights)

    def test_adopted_arrays_are_memory_mapped(self, tiny_graph, tmp_path):
        with MmapStorage(directory=str(tmp_path / "spill")) as storage:
            twin = storage.adopt(tiny_graph)
            for member in (twin.offsets, twin.edges, twin.weights):
                assert _is_mmapped(member)

    def test_owned_directory_removed_on_close(self, tiny_graph):
        storage = MmapStorage()
        directory = storage.directory
        storage.adopt(tiny_graph)
        assert os.path.isdir(directory)
        storage.close()
        assert not os.path.exists(directory)

    def test_external_directory_survives_close(self, tiny_graph, tmp_path):
        spill = tmp_path / "spill"
        storage = MmapStorage(directory=str(spill))
        storage.adopt(tiny_graph)
        storage.close()
        assert spill.is_dir()
        assert (spill / "meta.json").exists()

    def test_keep_preserves_owned_directory(self, tiny_graph):
        storage = MmapStorage(keep=True)
        directory = storage.directory
        storage.adopt(tiny_graph)
        storage.close()
        try:
            assert os.path.isdir(directory)
        finally:
            import shutil

            shutil.rmtree(directory, ignore_errors=True)

    def test_load_reopens_spill(self, tiny_graph, tmp_path):
        spill = str(tmp_path / "spill")
        with MmapStorage(directory=spill) as writer:
            writer.adopt(tiny_graph)
        with MmapStorage(directory=spill) as reader:
            reloaded = reader.load()
            np.testing.assert_array_equal(reloaded.offsets, tiny_graph.offsets)
            np.testing.assert_array_equal(reloaded.edges, tiny_graph.edges)
            np.testing.assert_array_equal(reloaded.weights, tiny_graph.weights)
            assert reloaded.name == tiny_graph.name

    def test_load_rejects_missing_member(self, tiny_graph, tmp_path):
        spill = str(tmp_path / "spill")
        with MmapStorage(directory=spill) as writer:
            writer.adopt(tiny_graph)
        os.remove(os.path.join(spill, "edges.npy"))
        with MmapStorage(directory=spill) as reader:
            with pytest.raises(StorageError):
                reader.load()

    def test_load_rejects_bad_format_version(self, tiny_graph, tmp_path):
        import json

        spill = str(tmp_path / "spill")
        with MmapStorage(directory=spill) as writer:
            writer.adopt(tiny_graph)
        meta_path = os.path.join(spill, "meta.json")
        with open(meta_path) as handle:
            meta = json.load(handle)
        meta["format"] = STORAGE_FORMAT_VERSION + 1
        with open(meta_path, "w") as handle:
            json.dump(meta, handle)
        with MmapStorage(directory=spill) as reader:
            with pytest.raises(StorageError):
                reader.load()

    def test_load_rejects_empty_directory(self, tmp_path):
        with MmapStorage(directory=str(tmp_path / "empty")) as storage:
            with pytest.raises(StorageError):
                storage.load()

    def test_closed_storage_rejects_everything(self, tiny_graph, tmp_path):
        storage = MmapStorage(directory=str(tmp_path / "spill"))
        storage.close()
        with pytest.raises(StorageError):
            storage.adopt(tiny_graph)
        with pytest.raises(StorageError):
            storage.load()
        with pytest.raises(StorageError):
            storage.allocate_member("offsets", (4,), np.dtype(np.int64))

    def test_spill_dir_env_override(self, monkeypatch, tmp_path):
        root = tmp_path / "spills"
        root.mkdir()
        monkeypatch.setenv(SPILL_DIR_ENV, str(root))
        assert spill_dir_root() == str(root)
        with MmapStorage() as storage:
            assert storage.directory.startswith(str(root))

    def test_finalizer_reclaims_forgotten_spill(self, tiny_graph):
        storage = MmapStorage()
        directory = storage.directory
        storage.adopt(tiny_graph)
        storage._release_maps()  # drop maps so the rmtree can win on all OSes
        del storage
        gc.collect()
        assert not os.path.exists(directory)


class TestStaleSpillGC:
    """gc_stale_spills: reclaim orphans, never touch live owners."""

    def _make_spill(self, root, name, pid=None):
        directory = os.path.join(str(root), f"repro-spill-{name}")
        os.makedirs(directory)
        if pid is not None:
            with open(os.path.join(directory, "owner.json"), "w") as handle:
                json.dump({"pid": pid, "created": 0.0}, handle)
        return directory

    def test_dead_owner_is_reclaimed(self, tmp_path):
        # A reaped child's pid is guaranteed dead.
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()
        dead = self._make_spill(tmp_path, "dead", pid=child.pid)
        removed = gc_stale_spills(root=str(tmp_path))
        assert removed == [dead]
        assert not os.path.exists(dead)

    def test_live_owner_is_skipped(self, tmp_path):
        mine = self._make_spill(tmp_path, "mine", pid=os.getpid())
        assert gc_stale_spills(root=str(tmp_path)) == []
        assert os.path.exists(mine)

    def test_markerless_dir_respects_grace_window(self, tmp_path):
        fresh = self._make_spill(tmp_path, "fresh")
        assert gc_stale_spills(root=str(tmp_path), grace_seconds=60.0) == []
        assert os.path.exists(fresh)
        # Once older than the grace window it is fair game.
        old = time.time() - 3600
        os.utime(fresh, (old, old))
        assert gc_stale_spills(root=str(tmp_path), grace_seconds=60.0) == [
            fresh
        ]

    def test_unrelated_dirs_are_never_touched(self, tmp_path):
        other = tmp_path / "not-a-spill"
        other.mkdir()
        assert gc_stale_spills(root=str(tmp_path)) == []
        assert other.exists()

    def test_owner_marker_written_for_owned_spills(self, monkeypatch, tmp_path):
        monkeypatch.setenv(SPILL_DIR_ENV, str(tmp_path))
        with MmapStorage() as storage:
            # Owned spills (auto-created temp dirs) carry our pid, so a
            # later gc_stale_spills in this process leaves them alone.
            assert spill_owner_pid(storage.directory) == os.getpid()
            assert gc_stale_spills(root=str(tmp_path)) == []


class TestClearCacheResilience:
    """clear_cache skips unclosable spills with a single warning."""

    class _StuckBackend:
        directory = "/nowhere/stuck"

        def close(self):
            raise OSError("still mapped elsewhere")

    def _inject_stuck(self, monkeypatch, count=2):
        from repro.graph.datasets import _storages

        for i in range(count):
            _storages[("STUCK", f"mmap-{i}")] = self._StuckBackend()

    def test_failures_warn_once_and_do_not_abort(self, monkeypatch):
        monkeypatch.setattr(datasets, "_cleanup_warned", False)
        self._inject_stuck(monkeypatch)
        with pytest.warns(datasets.SpillCleanupWarning, match="2 spill"):
            datasets.clear_cache()
        # The latch suppresses repeats on later sweeps.
        self._inject_stuck(monkeypatch)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            datasets.clear_cache()

    def test_clean_sweep_emits_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            datasets.clear_cache()


class TestCreateStorage:
    def test_kinds(self):
        with create_storage("memory") as storage:
            assert isinstance(storage, InMemoryStorage)
        with create_storage("mmap") as storage:
            assert isinstance(storage, MmapStorage)

    def test_case_insensitive(self):
        with create_storage("MMAP") as storage:
            assert storage.kind == "mmap"

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            create_storage("tape")


class TestAssembleCSR:
    def _chunks(self, graph, chunk_edges=7):
        """Split a graph's edge list into repeatable (src, dst, w) chunks."""
        src = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64), np.diff(graph.offsets)
        )
        chunks = []
        for lo in range(0, graph.num_edges, chunk_edges):
            hi = min(lo + chunk_edges, graph.num_edges)
            chunks.append(
                (src[lo:hi], graph.edges[lo:hi], graph.weights[lo:hi])
            )
        return lambda: iter(chunks)

    def test_matches_from_edge_list(self, small_powerlaw):
        rebuilt = assemble_csr(
            small_powerlaw.num_vertices,
            self._chunks(small_powerlaw),
            name=small_powerlaw.name,
        )
        np.testing.assert_array_equal(rebuilt.offsets, small_powerlaw.offsets)
        np.testing.assert_array_equal(rebuilt.edges, small_powerlaw.edges)
        np.testing.assert_array_equal(rebuilt.weights, small_powerlaw.weights)

    def test_mmap_assembly_identical_to_memory(self, small_powerlaw, tmp_path):
        with MmapStorage(directory=str(tmp_path / "spill")) as storage:
            spilled = assemble_csr(
                small_powerlaw.num_vertices,
                self._chunks(small_powerlaw),
                storage=storage,
                name=small_powerlaw.name,
            )
            np.testing.assert_array_equal(spilled.offsets, small_powerlaw.offsets)
            np.testing.assert_array_equal(spilled.edges, small_powerlaw.edges)
            np.testing.assert_array_equal(spilled.weights, small_powerlaw.weights)

    def test_rmat_stream_matches_batch_generator(self):
        # The streamed RMAT chunk generator must reproduce a single
        # coherent graph; assemble it twice (memory + mmap) and compare.
        scale, seed = 6, 3
        factory = lambda: rmat_edge_chunks(scale, edge_factor=8, seed=seed)
        in_memory = assemble_csr(1 << scale, factory, name="rmat-mem")
        with MmapStorage() as storage:
            spilled = assemble_csr(
                1 << scale, factory, storage=storage, name="rmat-mmap"
            )
            np.testing.assert_array_equal(in_memory.offsets, spilled.offsets)
            np.testing.assert_array_equal(in_memory.edges, spilled.edges)
            np.testing.assert_array_equal(in_memory.weights, spilled.weights)

    def test_empty_stream(self):
        graph = assemble_csr(5, lambda: iter(()), name="empty")
        assert graph.num_vertices == 5
        assert graph.num_edges == 0

    def test_rejects_out_of_range_source(self):
        bad = [(np.array([9]), np.array([0]), np.array([1.0]))]
        with pytest.raises(Exception):
            assemble_csr(4, lambda: iter(bad))

    def test_rejects_unrepeatable_stream(self):
        chunk = (np.array([0, 1]), np.array([1, 0]), np.array([1.0, 1.0]))
        passes = iter([[chunk], []])  # second call yields nothing

        def factory():
            return iter(next(passes))

        with pytest.raises(Exception):
            assemble_csr(2, factory)

    def test_adopts_into_generic_storage(self, tiny_graph, tmp_path):
        # A non-mmap storage goes through the in-memory path + adopt().
        with InMemoryStorage() as storage:
            graph = assemble_csr(
                tiny_graph.num_vertices,
                self._chunks(tiny_graph),
                storage=storage,
                name="adopted",
            )
            assert isinstance(graph, CSRGraph)
            assert graph.num_edges == tiny_graph.num_edges


class TestIterEdgeBlocks:
    def test_blocks_tile_edge_space(self, small_powerlaw):
        blocks = list(iter_edge_blocks(small_powerlaw, block_edges=97))
        assert blocks[0][0] == 0
        assert blocks[-1][1] == small_powerlaw.num_edges
        for (_, hi), (lo, _) in zip(blocks, blocks[1:]):
            assert hi == lo

    def test_rejects_nonpositive_block(self, tiny_graph):
        with pytest.raises(ValueError):
            list(iter_edge_blocks(tiny_graph, block_edges=0))


class TestDatasetStorageKnob:
    def test_mmap_load_matches_memory_load(self):
        mem = datasets.load("FR")
        mapped = datasets.load("FR", storage="mmap")
        assert mem is not mapped
        np.testing.assert_array_equal(mem.offsets, mapped.offsets)
        np.testing.assert_array_equal(mem.edges, mapped.edges)
        np.testing.assert_array_equal(mem.weights, mapped.weights)

    def test_mmap_load_is_cached_per_storage_kind(self):
        a = datasets.load("FR", storage="mmap")
        b = datasets.load("FR", storage="mmap")
        assert a is b

    def test_unknown_storage_kind_raises(self):
        with pytest.raises(ValueError):
            datasets.load("FR", storage="tape")

    def test_clear_cache_removes_spill_dirs(self, monkeypatch, tmp_path):
        # S2: repeated mmap loads + clear_cache never accumulate temp
        # spill directories or open maps.
        root = tmp_path / "spills"
        root.mkdir()
        monkeypatch.setenv(SPILL_DIR_ENV, str(root))
        datasets.clear_cache()
        for _ in range(3):
            datasets.load("FR", storage="mmap")
            datasets.clear_cache()
            gc.collect()
            assert list(root.iterdir()) == []

    def test_uncached_mmap_load_ties_spill_to_graph(self, monkeypatch, tmp_path):
        root = tmp_path / "spills"
        root.mkdir()
        monkeypatch.setenv(SPILL_DIR_ENV, str(root))
        graph = datasets.load("FR", use_cache=False, storage="mmap")
        assert len(list(root.iterdir())) == 1
        del graph
        gc.collect()
        assert list(root.iterdir()) == []


@pytest.mark.large
class TestPaperScaleOutOfCore:
    def test_rm18_full_assembles_and_runs_out_of_core(self):
        """RM18-FULL (262K vertices, 4.2M edges) end-to-end via mmap."""
        from repro.vcpm import ALGORITHMS, run_vcpm_partitioned

        graph = datasets.load("RM18-FULL", use_cache=False, storage="mmap")
        try:
            spec = datasets.PAPER_DATASETS["RM18-FULL"]
            assert graph.num_vertices == spec.proxy_vertices
            assert graph.num_edges == spec.proxy_edges
            result = run_vcpm_partitioned(
                graph, ALGORITHMS["BFS"], shards=4, source=0
            )
            assert result.converged
        finally:
            storage = getattr(graph, "_storage", None)
            if storage is not None:
                storage.close()
