"""Property-based suite for evolving graphs and incremental recomputation.

The three contracts under test, each stated as a hypothesis property
over randomized graphs and churn traces:

* **Bit-identity** — ``run_vcpm_incremental`` on a mutated snapshot
  returns the *same bytes* as a cold ``run_vcpm`` on that snapshot, for
  every algorithm and every batch (delta path and fallback path alike).
* **Monotone generations** — every ``apply`` advances the generation by
  exactly one, with no rollback on apply+inverse round trips.
* **Content addressing** — applying a batch and then its inverse
  restores the original CSR arrays byte-for-byte, hence the original
  content fingerprint; edge-list input order never affects either.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, datasets
from repro.graph.dynamic import (
    DynamicGraph,
    DynamicGraphError,
    EdgeBatch,
    churn_batches,
    derive_churned,
)
from repro.graph import dynamic as dyn
from repro.vcpm import get_algorithm, run_vcpm
from repro.vcpm.incremental import (
    run_vcpm_incremental,
    supports_delta,
)

MONOTONE_ALGORITHMS = ["BFS", "SSSP", "CC", "SSWP"]


@st.composite
def small_graphs(draw):
    """Random small weighted digraphs (duplicates and self-loops allowed)."""
    num_vertices = draw(st.integers(min_value=3, max_value=12))
    vertex = st.integers(min_value=0, max_value=num_vertices - 1)
    edges = draw(
        st.lists(st.tuples(vertex, vertex), min_size=1, max_size=40)
    )
    weights = draw(
        st.lists(
            st.integers(min_value=1, max_value=9),
            min_size=len(edges),
            max_size=len(edges),
        )
    )
    return CSRGraph.from_edge_list(
        num_vertices, edges, [float(w) for w in weights], name="hyp"
    )


@st.composite
def insert_batches(draw, num_vertices):
    """Random insert-only batches over a fixed vertex set."""
    vertex = st.integers(min_value=0, max_value=num_vertices - 1)
    pairs = draw(
        st.lists(st.tuples(vertex, vertex), min_size=1, max_size=12)
    )
    weights = draw(
        st.lists(
            st.integers(min_value=1, max_value=9),
            min_size=len(pairs),
            max_size=len(pairs),
        )
    )
    return EdgeBatch.of(
        inserts=pairs,
        insert_weights=np.asarray(weights, dtype=np.float32),
    )


class TestBitIdentity:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_insert_only_delta_matches_cold_rerun(self, data):
        graph = data.draw(small_graphs())
        batch = data.draw(insert_batches(graph.num_vertices))
        algorithm = data.draw(st.sampled_from(MONOTONE_ALGORITHMS))
        spec = get_algorithm(algorithm)

        dynamic = DynamicGraph(graph, key="HYP-DELTA")
        previous = run_vcpm(dynamic.graph, spec, source=0)
        dynamic.apply(batch)

        outcome = run_vcpm_incremental(
            dynamic.graph, spec, batch, previous, source=0
        )
        reference = run_vcpm(dynamic.graph, spec, source=0)
        assert (
            outcome.result.properties.tobytes()
            == reference.properties.tobytes()
        )
        if previous.converged:
            assert outcome.used_delta
            assert outcome.reason == "insert-only-monotone"
            assert outcome.seed_count == len(np.unique(batch.inserts[:, 0]))

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_mixed_batches_fall_back_bit_identically(self, data):
        graph = data.draw(small_graphs())
        seed = data.draw(st.integers(min_value=0, max_value=999))
        algorithm = data.draw(st.sampled_from(MONOTONE_ALGORITHMS + ["PR"]))
        spec = get_algorithm(algorithm)

        dynamic = DynamicGraph(graph, key="HYP-MIXED")
        previous = run_vcpm(dynamic.graph, spec, source=0)
        # insert_fraction < 1 forces deletions -> the fallback path.
        (batch,) = churn_batches(
            dynamic.graph,
            num_batches=1,
            batch_edges=6,
            insert_fraction=0.5,
            seed=seed,
        )
        dynamic.apply(batch)

        outcome = run_vcpm_incremental(
            dynamic.graph, spec, batch, previous, source=0
        )
        reference = run_vcpm(dynamic.graph, spec, source=0)
        assert not outcome.used_delta
        assert (
            outcome.result.properties.tobytes()
            == reference.properties.tobytes()
        )

    def test_blockers_are_named(self):
        insert = EdgeBatch.of(inserts=[(0, 1)])
        mixed = EdgeBatch.of(deletes=[(0, 1)])
        assert supports_delta(get_algorithm("BFS"), insert) is None
        assert "deletes" in supports_delta(get_algorithm("BFS"), mixed)
        assert "accumulating" in supports_delta(get_algorithm("PR"), insert)

    def test_stale_previous_forces_full_rerun(self):
        graph = datasets.load("FR")
        spec = get_algorithm("BFS")
        dynamic = DynamicGraph(graph, key="HYP-STALE")
        batch = EdgeBatch.of(inserts=[(0, 1)])
        previous = run_vcpm(dynamic.graph, get_algorithm("SSSP"), source=0)
        dynamic.apply(batch)
        outcome = run_vcpm_incremental(
            dynamic.graph, spec, batch, previous, source=0
        )
        assert outcome.mode == "full"
        assert "SSSP" in outcome.reason


class TestGenerations:
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_every_apply_advances_generation_by_one(self, data):
        graph = data.draw(small_graphs())
        num_batches = data.draw(st.integers(min_value=0, max_value=5))
        dynamic = DynamicGraph(graph, key="HYP-GEN")
        assert dynamic.generation == 0
        generations = [dynamic.generation]
        for batch in churn_batches(
            dynamic.graph, num_batches=num_batches, batch_edges=4, seed=7
        ):
            dynamic.apply(batch)
            generations.append(dynamic.generation)
        assert generations == list(range(num_batches + 1))

    def test_empty_batch_still_advances(self):
        dynamic = DynamicGraph(datasets.load("FR"), key="HYP-EMPTY")
        fp = dynamic.content_fingerprint
        dynamic.apply(EdgeBatch.of())
        assert dynamic.generation == 1
        # Content unchanged: same fingerprint, new generation.
        assert dynamic.content_fingerprint == fp

    def test_inverse_never_rolls_generation_back(self):
        dynamic = DynamicGraph(datasets.load("FR"), key="HYP-ROLL")
        batch = EdgeBatch.of(inserts=[(1, 2), (3, 4)])
        dynamic.apply(batch)
        dynamic.apply(batch.inverse())
        assert dynamic.generation == 2


class TestContentAddressing:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_apply_inverse_restores_arrays_and_fingerprint(self, data):
        graph = data.draw(small_graphs())
        seed = data.draw(st.integers(min_value=0, max_value=999))
        dynamic = DynamicGraph(graph, key="HYP-INV")
        before = dynamic.graph
        fp = dynamic.content_fingerprint

        (batch,) = churn_batches(
            dynamic.graph, num_batches=1, batch_edges=6, seed=seed
        )
        dynamic.apply(batch)
        dynamic.apply(batch.inverse())

        after = dynamic.graph
        assert after.offsets.tobytes() == before.offsets.tobytes()
        assert np.asarray(after.edges).tobytes() == np.asarray(
            before.edges
        ).tobytes()
        assert np.asarray(after.weights).tobytes() == np.asarray(
            before.weights
        ).tobytes()
        assert dynamic.content_fingerprint == fp

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_edge_input_order_is_irrelevant(self, data):
        graph = data.draw(small_graphs())
        sources = graph.edge_sources()
        dst = np.asarray(graph.edges)
        wts = np.asarray(graph.weights)
        perm = data.draw(st.permutations(list(range(graph.num_edges))))
        perm = np.asarray(perm, dtype=np.int64)
        shuffled = CSRGraph.from_edge_list(
            graph.num_vertices,
            list(zip(sources[perm], dst[perm])),
            [float(w) for w in wts[perm]],
            name="shuffled",
        )
        a = DynamicGraph(graph, key="HYP-ORD-A")
        b = DynamicGraph(shuffled, key="HYP-ORD-B")
        assert a.content_fingerprint == b.content_fingerprint

    def test_fingerprint_tracks_mutation(self):
        dynamic = DynamicGraph(datasets.load("FR"), key="HYP-FP")
        fp = dynamic.content_fingerprint
        dynamic.apply(EdgeBatch.of(inserts=[(0, 5)]))
        assert dynamic.content_fingerprint != fp


class TestChurnTraces:
    def test_same_seed_same_batches(self):
        graph = datasets.load("FR")
        first = [
            b.digest()
            for b in churn_batches(graph, num_batches=4, batch_edges=16, seed=9)
        ]
        second = [
            b.digest()
            for b in churn_batches(graph, num_batches=4, batch_edges=16, seed=9)
        ]
        assert first == second
        distinct = [
            b.digest()
            for b in churn_batches(graph, num_batches=4, batch_edges=16, seed=10)
        ]
        assert first != distinct

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_generated_batches_always_apply_cleanly(self, data):
        graph = data.draw(small_graphs())
        seed = data.draw(st.integers(min_value=0, max_value=999))
        fraction = data.draw(
            st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0])
        )
        dynamic = DynamicGraph(graph, key="HYP-TRACE")
        for batch in churn_batches(
            dynamic.graph,
            num_batches=4,
            batch_edges=5,
            insert_fraction=fraction,
            seed=seed,
        ):
            dynamic.apply(batch)  # DynamicGraphError would fail the test
        assert dynamic.generation == 4

    def test_derived_churn_keys_are_reproducible(self):
        first = derive_churned("FR", 3, key="HYP-DRV-A", replace=True)
        second = derive_churned("FR", 3, key="HYP-DRV-B", replace=True)
        try:
            assert first.content_fingerprint == second.content_fingerprint
            assert first.generation == second.generation == 3
        finally:
            dyn.unregister("HYP-DRV-A")
            dyn.unregister("HYP-DRV-B")


class TestValidation:
    def test_out_of_range_insert_rejected(self):
        dynamic = DynamicGraph(datasets.load("FR"), key="HYP-RANGE")
        with pytest.raises(DynamicGraphError):
            dynamic.apply(
                EdgeBatch.of(inserts=[(0, dynamic.num_vertices)])
            )
        assert dynamic.generation == 0  # failed applies leave no trace

    def test_missing_delete_triple_rejected(self):
        graph = CSRGraph.from_edge_list(3, [(0, 1)], [2.0], name="tiny")
        dynamic = DynamicGraph(graph, key="HYP-MISS")
        with pytest.raises(DynamicGraphError, match="cannot delete"):
            dynamic.apply(
                EdgeBatch.of(deletes=[(0, 1)], delete_weights=[9.0])
            )
        # The right weight identifies the edge.
        dynamic.apply(EdgeBatch.of(deletes=[(0, 1)], delete_weights=[2.0]))
        assert dynamic.num_edges == 0

    def test_mismatched_weight_arrays_rejected(self):
        with pytest.raises(DynamicGraphError, match="parallel"):
            EdgeBatch.of(inserts=[(0, 1), (1, 2)], insert_weights=[1.0])

    def test_malformed_pairs_rejected(self):
        with pytest.raises(DynamicGraphError, match=r"\(N, 2\)"):
            EdgeBatch.of(inserts=[(0, 1, 2)])

    def test_continuation_requires_both_kwargs(self):
        graph = datasets.load("FR")
        with pytest.raises(ValueError):
            run_vcpm(
                graph,
                get_algorithm("BFS"),
                source=0,
                initial_active=np.asarray([0]),
            )

    def test_continuation_rejected_for_pr(self):
        graph = datasets.load("FR")
        with pytest.raises(ValueError):
            run_vcpm(
                graph,
                get_algorithm("PR"),
                source=None,
                initial_properties=np.zeros(graph.num_vertices),
                initial_active=np.asarray([0]),
            )


class TestRegistry:
    def test_static_key_collision_rejected(self):
        with pytest.raises(ValueError, match="static"):
            dyn.register(DynamicGraph(datasets.load("FR"), key="FR"))

    def test_register_get_unregister_round_trip(self):
        dynamic = DynamicGraph(datasets.load("FR"), key="HYP-REG")
        dyn.register(dynamic)
        try:
            assert dyn.is_registered("hyp-reg")  # case-folded
            assert dyn.get("HYP-REG") is dynamic
            assert datasets.is_dynamic("HYP-REG")
            assert datasets.load("HYP-REG") is dynamic.graph
        finally:
            dyn.unregister("HYP-REG")
        assert not dyn.is_registered("HYP-REG")
        with pytest.raises(KeyError):
            dyn.get("HYP-REG")

    def test_datasets_generation_tracks_mutation(self):
        dynamic = DynamicGraph(datasets.load("FR"), key="HYP-GENQ")
        dyn.register(dynamic)
        try:
            assert datasets.generation("HYP-GENQ") == 0
            fp = datasets.fingerprint("HYP-GENQ")
            dynamic.apply(EdgeBatch.of(inserts=[(0, 2)]))
            assert datasets.generation("HYP-GENQ") == 1
            assert datasets.fingerprint("HYP-GENQ") != fp
        finally:
            dyn.unregister("HYP-GENQ")
