"""The example scripts must keep working (run with small inputs)."""

import importlib.util
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _run_main(name: str, argv, capsys):
    module = _load(name)
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        module.main()
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExampleScripts:
    def test_quickstart(self, capsys):
        out = _run_main("quickstart", [], capsys)
        assert "GTEPS" in out
        assert "converged" in out

    def test_compare_accelerators(self, capsys):
        out = _run_main("compare_accelerators", ["FR", "BFS"], capsys)
        for system in ("Gunrock", "Graphicionado", "GraphDynS"):
            assert system in out

    def test_component_walkthrough(self, capsys):
        out = _run_main("component_walkthrough", [], capsys)
        assert "matches the vectorized engine" in out

    def test_custom_algorithm(self, capsys):
        out = _run_main("custom_algorithm", [], capsys)
        assert "k=5" in out

    def test_push_vs_pull(self, capsys):
        out = _run_main("push_vs_pull", ["FR"], capsys)
        assert "same_result" in out
        assert "NO" not in out.split("same_result")[1].split("\n\n")[0]

    def test_irregularity_analysis(self, capsys):
        out = _run_main("irregularity_analysis", ["FR", "BFS"], capsys)
        assert "gini" in out
        assert "Fig. 2" in out
