"""Overhead guard: observability off must be free, on must be cheap.

Two guarantees from the ISSUE's acceptance criteria:

* with the default :class:`NullRecorder`, results are byte-identical to a
  traced run (tracing cannot perturb the model);
* the disabled instrumentation costs (nearly) nothing: the NullRecorder
  run must stay within 10% of the traced run discounting noise --
  measured as min-of-N interleaved repetitions to suppress scheduler
  jitter, with a bounded remeasure loop because CI machines are noisy.
"""

import time

from repro.graph import datasets
from repro.harness.service import canonical_reports_json, execute_cell
from repro.harness.service import RunService
from repro.obs import NULL_RECORDER, TraceRecorder, use_recorder

ALGO, GRAPH = "SSSP", "RM22"


def _run_once(recorder):
    graph = datasets.load(GRAPH)
    with use_recorder(recorder):
        return execute_cell(graph, ALGO, graph_key=GRAPH)


class TestResultsIdentical:
    def test_traced_reports_byte_identical_to_null(self):
        base = canonical_reports_json(
            RunService(use_cache=False).matrix([ALGO], [GRAPH])
        )
        with use_recorder(TraceRecorder()):
            traced = canonical_reports_json(
                RunService(use_cache=False).matrix([ALGO], [GRAPH])
            )
        assert base == traced

    def test_functional_properties_identical(self):
        null_cell = _run_once(NULL_RECORDER)
        traced_cell = _run_once(TraceRecorder())
        assert (
            null_cell.functional.properties.tobytes()
            == traced_cell.functional.properties.tobytes()
        )


class TestDisabledOverhead:
    def test_null_recorder_within_ten_percent_of_traced(self):
        """Disabled instrumentation must not slow the models down.

        The NullRecorder path does strictly less work than a traced run,
        so its best-of-N time should never exceed the traced best-of-N
        by more than the noise floor; 10% is the ISSUE's bound.  Up to
        three remeasurements absorb CI noise spikes.
        """
        datasets.load(GRAPH)  # warm the proxy-graph memo
        _run_once(NULL_RECORDER)  # warm numpy/jit-ish caches
        for attempt in range(3):
            null_best = traced_best = float("inf")
            for _ in range(5):  # interleave to share thermal/load drift
                t0 = time.perf_counter()
                _run_once(NULL_RECORDER)
                null_best = min(null_best, time.perf_counter() - t0)
                t0 = time.perf_counter()
                _run_once(TraceRecorder())
                traced_best = min(traced_best, time.perf_counter() - t0)
            ratio = null_best / traced_best
            if ratio < 1.10:
                return
        assert ratio < 1.10, (
            f"NullRecorder run {ratio:.2f}x the traced run "
            f"({null_best * 1e3:.1f}ms vs {traced_best * 1e3:.1f}ms); "
            "disabled instrumentation has become expensive"
        )
