"""Table 2 algorithm definition tests."""

import numpy as np
import pytest

from repro.vcpm import (
    ALGORITHMS,
    BFS,
    CC,
    PAGERANK,
    PR_ALPHA,
    PR_BETA,
    SSSP,
    SSWP,
    algorithm_names,
    get_algorithm,
)
from repro.vcpm.spec import ReduceOp


class TestTable2Functions:
    def test_bfs_process_edge_is_hop_increment(self):
        res = BFS.process_edge(np.array([3.0]), np.array([99.0]))
        assert res[0] == 4.0  # weight ignored

    def test_sssp_process_edge_adds_weight(self):
        res = SSSP.process_edge(np.array([3.0]), np.array([2.5]))
        assert res[0] == 5.5

    def test_cc_process_edge_propagates_label(self):
        res = CC.process_edge(np.array([7.0]), np.array([123.0]))
        assert res[0] == 7.0

    def test_sswp_process_edge_is_min_of_width_and_weight(self):
        res = SSWP.process_edge(np.array([4.0]), np.array([9.0]))
        assert res[0] == 4.0
        res = SSWP.process_edge(np.array([4.0]), np.array([2.0]))
        assert res[0] == 2.0

    def test_pr_process_edge_passes_scaled_rank(self):
        res = PAGERANK.process_edge(np.array([0.125]), np.array([5.0]))
        assert res[0] == 0.125

    def test_reduce_ops_match_table2(self):
        assert BFS.reduce_op is ReduceOp.MIN
        assert SSSP.reduce_op is ReduceOp.MIN
        assert CC.reduce_op is ReduceOp.MIN
        assert SSWP.reduce_op is ReduceOp.MAX
        assert PAGERANK.reduce_op is ReduceOp.SUM

    def test_pr_apply_formula(self):
        # (alpha + beta * tProp) / deg from Table 2.
        res = PAGERANK.apply(np.array([0.0]), np.array([0.4]), np.array([4.0]))
        assert res[0] == pytest.approx((PR_ALPHA + PR_BETA * 0.4) / 4.0)

    def test_pr_apply_guards_zero_degree(self):
        res = PAGERANK.apply(np.array([0.0]), np.array([0.4]), np.array([0.0]))
        assert np.isfinite(res[0])

    def test_min_apply(self):
        res = BFS.apply(np.array([5.0]), np.array([3.0]), np.array([0.0]))
        assert res[0] == 3.0

    def test_max_apply(self):
        res = SSWP.apply(np.array([2.0]), np.array([6.0]), np.array([0.0]))
        assert res[0] == 6.0


class TestInitialization:
    def test_bfs_source_at_zero(self):
        prop = BFS.initial_prop(4, 2)
        assert prop[2] == 0.0
        assert np.isinf(prop[[0, 1, 3]]).all()

    def test_sswp_source_at_infinity(self):
        prop = SSWP.initial_prop(4, 1)
        assert prop[1] == float("inf")
        assert np.all(prop[[0, 2, 3]] == 0.0)

    def test_cc_labels_are_vertex_ids(self):
        prop = CC.initial_prop(5, None)
        assert prop.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_pr_uniform(self):
        prop = PAGERANK.initial_prop(4, None)
        assert np.allclose(prop, 0.25)

    def test_pr_empty_graph(self):
        assert PAGERANK.initial_prop(0, None).size == 0


class TestMetadata:
    def test_weighted_flags(self):
        assert SSSP.uses_weights and SSWP.uses_weights
        assert not BFS.uses_weights
        assert not CC.uses_weights
        assert not PAGERANK.uses_weights

    def test_initially_all_active(self):
        assert CC.all_vertices_active_initially
        assert PAGERANK.all_vertices_active_initially
        assert not BFS.all_vertices_active_initially

    def test_only_pr_uses_degree_cprop(self):
        assert PAGERANK.uses_degree_cprop
        assert not any(
            s.uses_degree_cprop for n, s in ALGORITHMS.items() if n != "PR"
        )


class TestLookup:
    def test_names_in_paper_order(self):
        assert algorithm_names() == ["BFS", "SSSP", "CC", "SSWP", "PR"]

    def test_case_insensitive(self):
        assert get_algorithm("bfs") is BFS
        assert get_algorithm("PageRank") is PAGERANK

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_algorithm("dijkstra")
