"""Shared fixtures: small deterministic graphs reused across test modules."""

import pytest

from repro.graph import (
    CSRGraph,
    chain_graph,
    grid_graph,
    power_law_graph,
    star_graph,
)


@pytest.fixture(autouse=True)
def _reset_kernel_fallback_warnings():
    """Reset the kernel tier's warn-once latch between tests.

    The latch is process-wide state: without this reset, whether a test
    sees a ``KernelFallbackWarning`` depends on which test triggered the
    same fallback first — i.e. on collection order.  Resetting before
    *and* after keeps both this test and any non-autouse-aware neighbour
    order-independent.
    """
    from repro.kernels.tiers import reset_fallback_warnings

    reset_fallback_warnings()
    yield
    reset_fallback_warnings()


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/ from the current implementation "
        "instead of comparing against it",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    return request.config.getoption("--update-goldens")


@pytest.fixture(scope="session")
def tiny_graph() -> CSRGraph:
    """The 7-vertex example spirit of Fig. 1: small, weighted, irregular."""
    edges = [
        (0, 1), (0, 2), (0, 3),
        (1, 3), (1, 4),
        (2, 4),
        (3, 5),
        (4, 5), (4, 6),
        (5, 6),
    ]
    weights = [3.0, 99.0, 1.0, 2.0, 8.0, 5.0, 4.0, 1.0, 7.0, 2.0]
    return CSRGraph.from_edge_list(7, edges, weights, name="tiny")


@pytest.fixture(scope="session")
def small_powerlaw() -> CSRGraph:
    """500 vertices, 4000 edges; big enough to exercise skew."""
    return power_law_graph(500, 4000, seed=11, name="small_pl")


@pytest.fixture(scope="session")
def medium_powerlaw() -> CSRGraph:
    """5k vertices, 60k edges; used by timing-model integration tests."""
    return power_law_graph(5000, 60000, seed=13, name="medium_pl")


@pytest.fixture(scope="session")
def small_grid() -> CSRGraph:
    return grid_graph(8, 8)


@pytest.fixture(scope="session")
def small_chain() -> CSRGraph:
    return chain_graph(50)


@pytest.fixture(scope="session")
def small_star() -> CSRGraph:
    return star_graph(40)


@pytest.fixture(scope="session")
def disconnected_graph() -> CSRGraph:
    """Two components: a triangle and a 2-cycle, plus an isolated vertex."""
    edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 3)]
    return CSRGraph.from_edge_list(6, edges, name="disconnected")
