"""Mutation-driven cache invalidation, end to end.

A dynamic graph's content fingerprint is folded into every cache
address the platform uses — the run service's in-process memo and
persistent envelope keys, the daemon's coalescing job keys, and the
planner's probe classifications.  These tests warm each tier, mutate
the graph, and assert the stale entry can no longer be reached (while
an apply+inverse round trip legitimately *re*-addresses the original
result: content addressing, not version counting).
"""

import threading

import pytest

from repro.graph import DynamicGraph, EdgeBatch, datasets
from repro.graph import dynamic as dyn
from repro.harness import planner
from repro.harness.serve import DaemonConfig, SimulationDaemon
from repro.harness.service import CacheStats, RunService
from repro.harness.specs import parse_spec

BATCH = EdgeBatch.of(inserts=[(0, 1), (2, 3), (4, 5)])


@pytest.fixture()
def mutable_key():
    """A registered dynamic FR clone, unregistered on teardown."""
    key = "MUTCACHE"
    dynamic = DynamicGraph(datasets.load("FR"), key=key)
    dyn.register(dynamic, replace=True)
    yield key, dynamic
    dyn.unregister(key)


class TestServiceMemo:
    def test_mutation_invalidates_in_process_memo(self, mutable_key):
        key, dynamic = mutable_key
        service = RunService(use_cache=False)
        first = service.cell("BFS", key)
        assert service.cell("BFS", key) is first
        assert (service.stats.misses, service.stats.memory_hits) == (1, 1)

        dynamic.apply(BATCH)
        mutated = service.cell("BFS", key)
        assert mutated is not first
        assert service.stats.misses == 2
        # The new generation memoizes under its own fingerprint.
        assert service.cell("BFS", key) is mutated
        assert service.stats.memory_hits == 2

    def test_inverse_restores_the_original_memo_entry(self, mutable_key):
        key, dynamic = mutable_key
        service = RunService(use_cache=False)
        first = service.cell("BFS", key)
        dynamic.apply(BATCH)
        service.cell("BFS", key)
        dynamic.apply(BATCH.inverse())
        # Same content again -> the original memo entry is reachable.
        assert service.cell("BFS", key) is first
        assert service.stats.misses == 2


class TestPersistentCache:
    def test_mutation_is_a_miss_then_repopulates(self, mutable_key, tmp_path):
        key, dynamic = mutable_key
        cache = str(tmp_path / "cache")
        warm = RunService(cache_dir=cache)
        warm.cell("BFS", key)
        assert (warm.stats.misses, warm.stats.stores) == (1, 1)

        replay = RunService(cache_dir=cache)
        replay.cell("BFS", key)
        assert (replay.stats.hits, replay.stats.misses) == (1, 0)

        dynamic.apply(BATCH)
        mutated = RunService(cache_dir=cache)
        _, _, status = mutated.probe("BFS", key)
        assert status == "miss"  # no stale-generation hit
        mutated.cell("BFS", key)
        assert (mutated.stats.hits, mutated.stats.misses) == (0, 1)
        assert mutated.stats.stores == 1  # repopulated under the new key

        # The new content now hits persistently too.
        again = RunService(cache_dir=cache)
        again.cell("BFS", key)
        assert (again.stats.hits, again.stats.misses) == (1, 0)

    def test_inverse_re_addresses_the_original_entry(
        self, mutable_key, tmp_path
    ):
        key, dynamic = mutable_key
        cache = str(tmp_path / "cache")
        RunService(cache_dir=cache).cell("BFS", key)
        dynamic.apply(BATCH)
        dynamic.apply(BATCH.inverse())
        assert dynamic.generation == 2
        replay = RunService(cache_dir=cache)
        _, _, status = replay.probe("BFS", key)
        assert status == "persistent"
        replay.cell("BFS", key)
        assert (replay.stats.hits, replay.stats.misses) == (1, 0)

    def test_cache_key_tracks_fingerprint(self, mutable_key, tmp_path):
        key, dynamic = mutable_key
        service = RunService(cache_dir=str(tmp_path / "cache"))
        before = service.cache_key(service.request_for("BFS", key))
        dynamic.apply(BATCH)
        after = service.cache_key(service.request_for("BFS", key))
        assert before != after
        dynamic.apply(BATCH.inverse())
        restored = service.cache_key(service.request_for("BFS", key))
        assert restored == before


class _BlockingService:
    """Delegates identity to a real service; blocks execution forever.

    The daemon computes job keys through ``request_for``/``cache_key``
    (the real, fingerprint-bearing addresses) while ``matrix`` parks, so
    submissions pile up deterministically in the in-flight map.
    """

    def __init__(self, inner: RunService):
        self.inner = inner
        self.release = threading.Event()
        self.stats = CacheStats()

    def request_for(self, algorithm, graph_key):
        return self.inner.request_for(algorithm, graph_key)

    def cache_key(self, request):
        return self.inner.cache_key(request)

    def matrix(self, algorithms, graph_keys, jobs=None, executor=None):
        if not self.release.wait(timeout=30):
            raise TimeoutError("blocking service never released")
        return []


class TestDaemonCoalescing:
    def test_mutation_defeats_job_coalescing(self, mutable_key, tmp_path):
        key, dynamic = mutable_key
        service = _BlockingService(RunService(use_cache=False))
        config = DaemonConfig(
            port=0,
            journal_path=str(tmp_path / "jobs.jsonl"),
            cache_dir=str(tmp_path / "cache"),
            drain_timeout=1.0,
            poll_interval=0.01,
        )
        daemon = SimulationDaemon(config, service=service)
        daemon.start()
        try:
            spec = {"algorithms": ["BFS"], "graphs": [key]}
            primary, decision = daemon.submit(spec)
            assert decision.accepted and primary.state != "coalesced"

            # Identical content in flight: the duplicate attaches.
            twin, decision = daemon.submit(spec)
            assert decision.reason == "coalesced"
            assert twin.coalesced_with == primary.id
            assert daemon.stats.coalesced == 1

            # Mutate: same spec text is now *different work*.
            dynamic.apply(BATCH)
            fresh, decision = daemon.submit(spec)
            assert decision.accepted
            assert fresh.state != "coalesced"
            assert fresh.coalesced_with is None
            assert fresh.job_key != primary.job_key
            assert daemon.stats.coalesced == 1  # unchanged
        finally:
            service.release.set()
            daemon.stop(drain=False)


class TestPlannerClassification:
    SPEC = "name: churnplan\nalgorithms: [BFS]\ngraphs: [{key}]\n"

    def _services(self, spec, tmp_path):
        return planner.services_for_spec(
            spec, cache_dir=str(tmp_path / "cache")
        )

    def test_mutated_cells_classify_pending_not_cached(
        self, mutable_key, tmp_path
    ):
        key, dynamic = mutable_key
        spec = parse_spec(self.SPEC.format(key=key))
        services = self._services(spec, tmp_path)
        planner.execute_plan(planner.build_plan(spec, services), services)

        warm_plan = planner.build_plan(
            spec, self._services(spec, tmp_path)
        )
        assert [c.status for c in warm_plan.cells] == ["cached-persistent"]
        assert warm_plan.schedule == []

        dynamic.apply(BATCH)
        stale_plan = planner.build_plan(
            spec, self._services(spec, tmp_path)
        )
        assert [c.status for c in stale_plan.cells] == ["pending"]
        assert len(stale_plan.schedule) == 1

    def test_plan_cli_reports_mutation(self, mutable_key, tmp_path, capsys):
        from repro.cli import main

        key, dynamic = mutable_key
        spec_path = tmp_path / "s.yaml"
        spec_path.write_text(self.SPEC.format(key=key))
        cache = tmp_path / "cache"
        cache.mkdir()

        assert main(["run-spec", str(spec_path), "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        assert main(["plan", str(spec_path), "--cache-dir", str(cache)]) == 0
        assert "0 pending" in capsys.readouterr().out

        dynamic.apply(BATCH)
        assert main(["plan", str(spec_path), "--cache-dir", str(cache)]) == 0
        assert "1 pending" in capsys.readouterr().out
