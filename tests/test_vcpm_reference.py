"""Reference implementation tests on hand-computed graphs."""

import numpy as np
import pytest

from repro.graph import CSRGraph
from repro.vcpm import reference


@pytest.fixture(scope="module")
def diamond():
    """0 -> {1, 2} -> 3, with asymmetric weights."""
    edges = [(0, 1), (0, 2), (1, 3), (2, 3)]
    weights = [1.0, 4.0, 10.0, 1.0]
    return CSRGraph.from_edge_list(4, edges, weights)


class TestBFS:
    def test_diamond_levels(self, diamond):
        levels = reference.bfs_levels(diamond, 0)
        assert levels.tolist() == [0.0, 1.0, 1.0, 2.0]

    def test_unreachable_is_inf(self):
        g = CSRGraph.from_edge_list(3, [(0, 1)])
        levels = reference.bfs_levels(g, 0)
        assert np.isinf(levels[2])


class TestSSSP:
    def test_diamond_distances(self, diamond):
        dist = reference.sssp_distances(diamond, 0)
        # 0->1->3 costs 11; 0->2->3 costs 5.
        assert dist.tolist() == [0.0, 1.0, 4.0, 5.0]

    def test_prefers_longer_hop_cheaper_path(self):
        g = CSRGraph.from_edge_list(
            3, [(0, 2), (0, 1), (1, 2)], weights=[10.0, 1.0, 2.0]
        )
        dist = reference.sssp_distances(g, 0)
        assert dist[2] == 3.0


class TestCC:
    def test_min_label_propagation(self, diamond):
        labels = reference.cc_labels(diamond)
        assert labels.tolist() == [0.0, 0.0, 0.0, 0.0]

    def test_directed_reachability_semantics(self):
        # 1 -> 0: label 0 does NOT reach vertex 1 (no out edge from 0).
        g = CSRGraph.from_edge_list(2, [(1, 0)])
        labels = reference.cc_labels(g)
        assert labels.tolist() == [0.0, 1.0]


class TestSSWP:
    def test_diamond_widths(self, diamond):
        widths = reference.sswp_widths(diamond, 0)
        # 0->1 width 1; 0->2 width 4; to 3: max(min(1,10), min(4,1)) = 1.
        assert widths[0] == float("inf")
        assert widths[1] == 1.0
        assert widths[2] == 4.0
        assert widths[3] == 1.0

    def test_bottleneck_semantics(self):
        g = CSRGraph.from_edge_list(
            3, [(0, 1), (1, 2)], weights=[5.0, 3.0]
        )
        widths = reference.sswp_widths(g, 0)
        assert widths[2] == 3.0


class TestPageRank:
    def test_conserved_shape(self, diamond):
        prop = reference.pagerank_scores(diamond, iterations=20)
        ranks = prop * np.maximum(diamond.out_degree(), 1)
        # Sink vertex 3 accumulates from two paths; source 0 keeps alpha.
        assert ranks[0] == pytest.approx(0.15, abs=1e-6)
        assert ranks[3] > ranks[1]

    def test_empty_graph(self):
        assert reference.pagerank_scores(CSRGraph.empty(0)).size == 0

    def test_tolerance_early_exit_close_to_full_run(self, small_powerlaw):
        full = reference.pagerank_scores(small_powerlaw, iterations=100)
        early = reference.pagerank_scores(
            small_powerlaw, iterations=100, tolerance=1e-10
        )
        assert np.allclose(full, early, atol=1e-6)
