"""Backend registry and run-service tests.

Covers the registry contract (lookup, errors, extension), the persistent
result cache (hit/miss/invalidation-on-config-change/stale rejection),
store-failure accounting, a hypothesis round-trip suite for the cache
envelope, parallel-vs-serial matrix equivalence, and the versioned
report schema.
"""

import dataclasses
import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import backends
from repro.backends import (
    BaseBackend,
    GraphDynSBackend,
    GunrockBackend,
    config_digest,
)
from repro.graph import datasets
from repro.graphdyns.config import DEFAULT_CONFIG
from repro.harness import (
    CacheStoreWarning,
    CellExecutionError,
    ExperimentSuite,
    RunService,
    default_backends,
)
from repro.harness.service import (
    _functional_from_dict,
    _functional_to_dict,
)
from repro.metrics.serialize import (
    SCHEMA_VERSION,
    SchemaMismatchError,
    report_from_dict,
    report_to_dict,
)
from repro.vcpm.engine import IterationTrace, VCPMResult


def _reports_json(cells):
    """Canonical JSON of every cell's reports (bit-exact comparison)."""
    return json.dumps(
        [
            {name: report_to_dict(r) for name, r in cell.reports.items()}
            for cell in cells
        ],
        sort_keys=True,
    )


class TestRegistry:
    def test_builtins_registered(self):
        names = backends.available()
        assert names[:3] == ["GraphDynS", "Graphicionado", "Gunrock"]

    def test_lookup_is_case_insensitive(self):
        assert backends.get("graphdyns") is backends.get("GRAPHDYNS")

    def test_unknown_backend_lists_available(self):
        with pytest.raises(KeyError) as excinfo:
            backends.get("tpu")
        message = str(excinfo.value)
        assert "tpu" in message
        for name in ("GraphDynS", "Graphicionado", "Gunrock"):
            assert name in message

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError):
            backends.register("gunrock", GunrockBackend)

    def test_register_and_unregister_custom_backend(self):
        class FakeBackend(BaseBackend):
            name = "Fake"

        backends.register("Fake", FakeBackend)
        try:
            assert backends.is_registered("fake")
            assert isinstance(backends.create("fake"), FakeBackend)
            assert "Fake" in backends.available()
        finally:
            backends.unregister("Fake")
        assert not backends.is_registered("fake")

    def test_create_with_config_override(self):
        config = DEFAULT_CONFIG.with_num_ues(64)
        backend = backends.create("graphdyns", config)
        assert backend.config.num_ues == 64

    def test_config_digest_changes_with_config(self):
        default = GraphDynSBackend()
        tweaked = GraphDynSBackend(DEFAULT_CONFIG.with_num_ues(64))
        assert default.config_digest() != tweaked.config_digest()
        assert default.config_digest() == GraphDynSBackend().config_digest()

    def test_config_digest_of_plain_values(self):
        assert config_digest({"a": 1}) == config_digest({"a": 1})
        assert config_digest({"a": 1}) != config_digest({"a": 2})

    def test_default_backends_applies_overrides(self):
        config = DEFAULT_CONFIG.with_num_ues(32)
        built = default_backends({"GraphDynS": config})
        by_name = {b.name: b for b in built}
        assert by_name["GraphDynS"].config.num_ues == 32


class TestPersistentCache:
    def test_miss_then_hit_across_services(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = RunService(cache_dir=cache)
        cell = first.cell("BFS", "FR")
        assert (first.stats.misses, first.stats.hits) == (1, 0)
        assert first.stats.stores == 1

        second = RunService(cache_dir=cache)
        replayed = second.cell("BFS", "FR")
        assert (second.stats.misses, second.stats.hits) == (0, 1)
        assert second.stats.hit_rate == 1.0
        assert _reports_json([cell]) == _reports_json([replayed])
        # Functional outcome survives the round trip too.
        assert replayed.functional.converged == cell.functional.converged
        assert (
            replayed.functional.properties == cell.functional.properties
        ).all()
        # Energy is recomputed consistently from the cached reports.
        for name in cell.energy:
            assert replayed.energy[name].total_j == pytest.approx(
                cell.energy[name].total_j
            )

    def test_config_change_invalidates(self, tmp_path):
        cache = str(tmp_path / "cache")
        RunService(cache_dir=cache).cell("BFS", "FR")
        tweaked = RunService(
            cache_dir=cache,
            backend_configs={"graphdyns": DEFAULT_CONFIG.with_num_ues(64)},
        )
        tweaked.cell("BFS", "FR")
        assert tweaked.stats.misses == 1
        assert tweaked.stats.hits == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = str(tmp_path / "cache")
        service = RunService(cache_dir=cache)
        request = service.request_for("BFS", "FR")
        path = service._cache_path(request)
        (tmp_path / "cache").mkdir(exist_ok=True)
        with open(path, "w") as handle:
            handle.write("{not json")
        service.cell("BFS", "FR")
        assert service.stats.misses == 1

    def test_stale_schema_is_a_miss(self, tmp_path):
        cache = str(tmp_path / "cache")
        service = RunService(cache_dir=cache)
        service.cell("BFS", "FR")
        request = service.request_for("BFS", "FR")
        path = service._cache_path(request)
        with open(path) as handle:
            envelope = json.load(handle)
        envelope["schema"] = SCHEMA_VERSION - 1
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        rerun = RunService(cache_dir=cache)
        rerun.cell("BFS", "FR")
        assert rerun.stats.misses == 1

    def test_no_cache_dir_means_no_files(self, tmp_path):
        service = RunService()
        service.cell("BFS", "FR")
        assert not service.persistent
        assert list(tmp_path.iterdir()) == []


class TestParallelMatrix:
    def test_parallel_matches_serial_bit_exact(self):
        serial = RunService(use_cache=False)
        parallel = RunService(use_cache=False, jobs=4)
        algorithms, graphs = ["BFS", "CC"], ["FR"]
        a = serial.matrix(algorithms, graphs, jobs=1)
        b = parallel.matrix(algorithms, graphs)
        assert _reports_json(a) == _reports_json(b)

    def test_matrix_order_is_algorithm_major(self):
        service = RunService(use_cache=False)
        cells = service.matrix(["BFS", "CC"], ["FR"], jobs=2)
        assert [(c.algorithm, c.graph_key) for c in cells] == [
            ("BFS", "FR"),
            ("CC", "FR"),
        ]

    def test_suite_facade_exposes_service(self):
        suite = ExperimentSuite(jobs=2)
        assert suite.service.jobs == 2
        a = suite.cell("BFS", "FR")
        b = suite.cell("bfs", "FR")
        assert a is b
        assert suite.service.stats.memory_hits == 1


class TestProcessExecutor:
    def test_process_matrix_matches_serial_bit_exact(self):
        serial = RunService(use_cache=False)
        procs = RunService(use_cache=False, executor="process")
        algorithms, graphs = ["BFS", "CC"], ["FR"]
        a = serial.matrix(algorithms, graphs, jobs=1)
        b = procs.matrix(algorithms, graphs, jobs=2)
        assert _reports_json(a) == _reports_json(b)
        assert procs.stats.misses == 2

    def test_process_executor_uses_parent_caches(self, tmp_path):
        cache = str(tmp_path / "cache")
        warm = RunService(cache_dir=cache, executor="process")
        warm.matrix(["BFS"], ["FR"], jobs=2)
        assert warm.stats.misses == 1
        replay = RunService(cache_dir=cache, executor="process")
        replay.matrix(["BFS"], ["FR"], jobs=2)
        # Served from the persistent cache in-parent: no subprocess work.
        assert (replay.stats.misses, replay.stats.hits) == (0, 1)

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError):
            RunService(executor="greenlet")

    def test_per_call_executor_override(self):
        service = RunService(use_cache=False)  # thread default
        cells = service.matrix(["BFS"], ["FR"], jobs=2, executor="process")
        assert [(c.algorithm, c.graph_key) for c in cells] == [("BFS", "FR")]


class TestSerializeSchema:
    def test_reports_are_stamped(self):
        service = RunService(use_cache=False)
        report = service.cell("BFS", "FR").reports["GraphDynS"]
        data = report_to_dict(report)
        assert data["schema"] == SCHEMA_VERSION

    def test_mismatched_stamp_rejected(self):
        service = RunService(use_cache=False)
        report = service.cell("BFS", "FR").reports["Gunrock"]
        data = report_to_dict(report)
        data["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaMismatchError):
            report_from_dict(data)

    def test_region_keys_and_extra_survive_roundtrip(self):
        service = RunService(use_cache=False)
        report = service.cell("BFS", "FR").reports["GraphDynS"]
        report.extra["custom_metric"] = 1.25
        rebuilt = report_from_dict(report_to_dict(report))
        assert rebuilt.traffic.read_bytes == report.traffic.read_bytes
        assert rebuilt.traffic.write_bytes == report.traffic.write_bytes
        assert rebuilt.extra == report.extra
        assert rebuilt.extra["custom_metric"] == 1.25


class TestStoreFailures:
    def test_unwritable_cache_path_warns_and_counts(self, tmp_path):
        # The cache dir's parent is a regular file, so every mkdir/write
        # under it raises OSError -- even when running as root (which
        # ignores mode bits, making chmod-based tests unreliable).
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        service = RunService(cache_dir=str(blocker / "cache"))
        with pytest.warns(CacheStoreWarning):
            cell = service.cell("BFS", "FR")
        assert cell.reports  # the result itself still comes back
        assert service.stats.store_failures == 1
        assert service.stats.stores == 0
        assert service.stats.misses == 1

    @pytest.mark.skipif(
        hasattr(os, "geteuid") and os.geteuid() == 0,
        reason="root bypasses directory permission bits",
    )
    def test_readonly_cache_dir_warns_and_counts(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        cache.chmod(0o500)
        try:
            service = RunService(cache_dir=str(cache))
            with pytest.warns(CacheStoreWarning):
                service.cell("BFS", "FR")
            assert service.stats.store_failures == 1
            assert service.stats.stores == 0
        finally:
            cache.chmod(0o700)

    def test_store_failure_does_not_poison_memo(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("x")
        service = RunService(cache_dir=str(blocker / "cache"))
        with pytest.warns(CacheStoreWarning):
            first = service.cell("BFS", "FR")
        assert service.cell("BFS", "FR") is first
        assert service.stats.memory_hits == 1


class TestMatrixFailurePropagation:
    """The thread fan-out must not leak queued futures on failure."""

    class _ExplodingService(RunService):
        def __init__(self, fail_on, **kwargs):
            super().__init__(**kwargs)
            self.fail_on = fail_on
            self.executed = []

        def _run_cell(self, request):
            if (request.algorithm, request.graph_key) == self.fail_on:
                self.executed.append(self.fail_on)
                raise ValueError("boom")
            import time

            time.sleep(0.05)  # keep workers busy so queued cells stay queued
            self.executed.append((request.algorithm, request.graph_key))
            return super()._run_cell(request)

    def test_failure_names_cell_and_cancels_queue(self):
        service = self._ExplodingService(
            fail_on=("BFS", "FR"), use_cache=False
        )
        algorithms = ["BFS", "CC", "SSSP", "PR", "SSWP"]
        with pytest.raises(CellExecutionError) as excinfo:
            service.matrix(algorithms, ["FR", "PK"], jobs=2)
        assert excinfo.value.algorithm == "BFS"
        assert excinfo.value.graph_key == "FR"
        assert "BFS" in str(excinfo.value) and "FR" in str(excinfo.value)
        assert excinfo.value.__cause__ is not None
        # The failing cell dies immediately; cancellation must stop the
        # pool from grinding through the whole queued matrix.
        assert len(service.executed) < len(algorithms) * 2

    def test_serial_matrix_failure_names_cell_too(self):
        service = self._ExplodingService(
            fail_on=("CC", "FR"), use_cache=False
        )
        with pytest.raises(ValueError):
            # Serial path: no futures to leak; original error surfaces.
            service.matrix(["CC"], ["FR"], jobs=1)


def _traces():
    small = st.integers(min_value=0, max_value=10_000)
    return st.builds(
        IterationTrace,
        iteration=small,
        num_active=small,
        num_edges=small,
        num_modified=small,
        num_activated=small,
    )


def _functional_results():
    floats = st.floats(
        allow_nan=True, allow_infinity=True, width=64
    )
    return st.builds(
        VCPMResult,
        algorithm=st.sampled_from(["BFS", "SSSP", "CC", "SSWP", "PR"]),
        graph_name=st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=12,
        ),
        properties=st.lists(floats, min_size=0, max_size=24).map(
            lambda xs: np.asarray(xs, dtype=np.float64)
        ),
        iterations=st.lists(_traces(), max_size=6),
        converged=st.booleans(),
        source=st.one_of(st.none(), st.integers(0, 1 << 30)),
    )


class TestEnvelopeRoundTrip:
    """Hypothesis round-trip suite for the persistent-cache envelope."""

    @settings(max_examples=40, deadline=None)
    @given(result=_functional_results())
    def test_functional_round_trips_through_json(self, result):
        rebuilt = _functional_from_dict(
            json.loads(json.dumps(_functional_to_dict(result)))
        )
        assert rebuilt.algorithm == result.algorithm
        assert rebuilt.graph_name == result.graph_name
        assert rebuilt.converged == result.converged
        assert rebuilt.source == result.source
        assert rebuilt.iterations == result.iterations
        assert rebuilt.properties.dtype == np.float64
        assert np.array_equal(
            rebuilt.properties, result.properties, equal_nan=True
        )

    @settings(max_examples=40, deadline=None)
    @given(result=_functional_results())
    def test_round_trip_is_canonical(self, result):
        # Serializing the rebuilt result reproduces the same envelope:
        # the dict form is a fixed point, so cached entries never churn.
        once = _functional_to_dict(result)
        twice = _functional_to_dict(
            _functional_from_dict(json.loads(json.dumps(once)))
        )
        assert json.dumps(once, sort_keys=True) == json.dumps(
            twice, sort_keys=True
        )


@pytest.fixture(scope="module")
def warm_entry(tmp_path_factory):
    """One real cached cell: (service, request, path, envelope text)."""
    cache = str(tmp_path_factory.mktemp("envelope") / "cache")
    service = RunService(cache_dir=cache)
    service.cell("BFS", "FR")
    request = service.request_for("BFS", "FR")
    path = service._cache_path(request)
    with open(path) as handle:
        text = handle.read()
    return service, request, path, text


class TestLoadCachedRejection:
    """Every malformed envelope is a miss, never an exception."""

    def _fresh(self, warm_entry):
        service, request, path, text = warm_entry
        rerun = RunService(cache_dir=service.cache_dir)
        return rerun, rerun.request_for("BFS", "FR"), path, text

    def test_sanity_valid_entry_loads(self, warm_entry):
        service, request, path, text = self._fresh(warm_entry)
        with open(path, "w") as handle:
            handle.write(text)
        assert service._load_cached(path, request) is not None

    @pytest.mark.parametrize("keep_fraction", [0.0, 0.25, 0.5, 0.99])
    def test_truncated_json_rejected(self, warm_entry, keep_fraction):
        service, request, path, text = self._fresh(warm_entry)
        with open(path, "w") as handle:
            handle.write(text[: int(len(text) * keep_fraction)])
        assert service._load_cached(path, request) is None

    def test_wrong_schema_rejected(self, warm_entry):
        service, request, path, text = self._fresh(warm_entry)
        envelope = json.loads(text)
        envelope["schema"] = SCHEMA_VERSION + 1
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        assert service._load_cached(path, request) is None

    def test_missing_backend_rejected(self, warm_entry):
        service, request, path, text = self._fresh(warm_entry)
        envelope = json.loads(text)
        del envelope["reports"]["GraphDynS"]
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        assert service._load_cached(path, request) is None

    def test_mismatched_key_rejected(self, warm_entry):
        service, request, path, text = self._fresh(warm_entry)
        envelope = json.loads(text)
        envelope["key"] = "0" * 32
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        assert service._load_cached(path, request) is None

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda env: env.pop("functional"),
            lambda env: env.pop("reports"),
            lambda env: env.update(reports=[1, 2, 3]),
            lambda env: env["functional"].pop("properties"),
            lambda env: env["functional"].update(iterations=[{"bad": 1}]),
        ],
        ids=[
            "no-functional",
            "no-reports",
            "reports-not-a-dict",
            "no-properties",
            "bad-iteration-fields",
        ],
    )
    def test_structurally_broken_envelopes_rejected(
        self, warm_entry, mutate
    ):
        service, request, path, text = self._fresh(warm_entry)
        envelope = json.loads(text)
        mutate(envelope)
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        assert service._load_cached(path, request) is None

    def test_missing_file_rejected(self, warm_entry):
        service, request, path, _ = self._fresh(warm_entry)
        assert service._load_cached(path + ".nope", request) is None


class TestDatasetCache:
    def test_load_is_identity_stable(self):
        assert datasets.load("FR") is datasets.load("FR")

    def test_fingerprint_is_stable_and_distinct(self):
        assert datasets.fingerprint("FR") == datasets.fingerprint("FR")
        assert datasets.fingerprint("FR") != datasets.fingerprint("PK")

    def test_fingerprint_tracks_spec_changes(self):
        spec = datasets.DATASETS["FR"]
        original = datasets.fingerprint("FR")
        try:
            datasets.DATASETS["FR"] = dataclasses.replace(spec, seed=99)
            assert datasets.fingerprint("FR") != original
        finally:
            datasets.DATASETS["FR"] = spec

    def test_fingerprint_unknown_key(self):
        with pytest.raises(KeyError):
            datasets.fingerprint("NOPE")
