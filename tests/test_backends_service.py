"""Backend registry and run-service tests.

Covers the registry contract (lookup, errors, extension), the persistent
result cache (hit/miss/invalidation-on-config-change/stale rejection),
parallel-vs-serial matrix equivalence, and the versioned report schema.
"""

import dataclasses
import json

import pytest

from repro import backends
from repro.backends import (
    BaseBackend,
    GraphDynSBackend,
    GunrockBackend,
    config_digest,
)
from repro.graph import datasets
from repro.graphdyns.config import DEFAULT_CONFIG
from repro.harness import ExperimentSuite, RunService, default_backends
from repro.metrics.serialize import (
    SCHEMA_VERSION,
    SchemaMismatchError,
    report_from_dict,
    report_to_dict,
)


def _reports_json(cells):
    """Canonical JSON of every cell's reports (bit-exact comparison)."""
    return json.dumps(
        [
            {name: report_to_dict(r) for name, r in cell.reports.items()}
            for cell in cells
        ],
        sort_keys=True,
    )


class TestRegistry:
    def test_builtins_registered(self):
        names = backends.available()
        assert names[:3] == ["GraphDynS", "Graphicionado", "Gunrock"]

    def test_lookup_is_case_insensitive(self):
        assert backends.get("graphdyns") is backends.get("GRAPHDYNS")

    def test_unknown_backend_lists_available(self):
        with pytest.raises(KeyError) as excinfo:
            backends.get("tpu")
        message = str(excinfo.value)
        assert "tpu" in message
        for name in ("GraphDynS", "Graphicionado", "Gunrock"):
            assert name in message

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError):
            backends.register("gunrock", GunrockBackend)

    def test_register_and_unregister_custom_backend(self):
        class FakeBackend(BaseBackend):
            name = "Fake"

        backends.register("Fake", FakeBackend)
        try:
            assert backends.is_registered("fake")
            assert isinstance(backends.create("fake"), FakeBackend)
            assert "Fake" in backends.available()
        finally:
            backends.unregister("Fake")
        assert not backends.is_registered("fake")

    def test_create_with_config_override(self):
        config = DEFAULT_CONFIG.with_num_ues(64)
        backend = backends.create("graphdyns", config)
        assert backend.config.num_ues == 64

    def test_config_digest_changes_with_config(self):
        default = GraphDynSBackend()
        tweaked = GraphDynSBackend(DEFAULT_CONFIG.with_num_ues(64))
        assert default.config_digest() != tweaked.config_digest()
        assert default.config_digest() == GraphDynSBackend().config_digest()

    def test_config_digest_of_plain_values(self):
        assert config_digest({"a": 1}) == config_digest({"a": 1})
        assert config_digest({"a": 1}) != config_digest({"a": 2})

    def test_default_backends_applies_overrides(self):
        config = DEFAULT_CONFIG.with_num_ues(32)
        built = default_backends({"GraphDynS": config})
        by_name = {b.name: b for b in built}
        assert by_name["GraphDynS"].config.num_ues == 32


class TestPersistentCache:
    def test_miss_then_hit_across_services(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = RunService(cache_dir=cache)
        cell = first.cell("BFS", "FR")
        assert (first.stats.misses, first.stats.hits) == (1, 0)
        assert first.stats.stores == 1

        second = RunService(cache_dir=cache)
        replayed = second.cell("BFS", "FR")
        assert (second.stats.misses, second.stats.hits) == (0, 1)
        assert second.stats.hit_rate == 1.0
        assert _reports_json([cell]) == _reports_json([replayed])
        # Functional outcome survives the round trip too.
        assert replayed.functional.converged == cell.functional.converged
        assert (
            replayed.functional.properties == cell.functional.properties
        ).all()
        # Energy is recomputed consistently from the cached reports.
        for name in cell.energy:
            assert replayed.energy[name].total_j == pytest.approx(
                cell.energy[name].total_j
            )

    def test_config_change_invalidates(self, tmp_path):
        cache = str(tmp_path / "cache")
        RunService(cache_dir=cache).cell("BFS", "FR")
        tweaked = RunService(
            cache_dir=cache,
            backend_configs={"graphdyns": DEFAULT_CONFIG.with_num_ues(64)},
        )
        tweaked.cell("BFS", "FR")
        assert tweaked.stats.misses == 1
        assert tweaked.stats.hits == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = str(tmp_path / "cache")
        service = RunService(cache_dir=cache)
        request = service.request_for("BFS", "FR")
        path = service._cache_path(request)
        (tmp_path / "cache").mkdir(exist_ok=True)
        with open(path, "w") as handle:
            handle.write("{not json")
        service.cell("BFS", "FR")
        assert service.stats.misses == 1

    def test_stale_schema_is_a_miss(self, tmp_path):
        cache = str(tmp_path / "cache")
        service = RunService(cache_dir=cache)
        service.cell("BFS", "FR")
        request = service.request_for("BFS", "FR")
        path = service._cache_path(request)
        with open(path) as handle:
            envelope = json.load(handle)
        envelope["schema"] = SCHEMA_VERSION - 1
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        rerun = RunService(cache_dir=cache)
        rerun.cell("BFS", "FR")
        assert rerun.stats.misses == 1

    def test_no_cache_dir_means_no_files(self, tmp_path):
        service = RunService()
        service.cell("BFS", "FR")
        assert not service.persistent
        assert list(tmp_path.iterdir()) == []


class TestParallelMatrix:
    def test_parallel_matches_serial_bit_exact(self):
        serial = RunService(use_cache=False)
        parallel = RunService(use_cache=False, jobs=4)
        algorithms, graphs = ["BFS", "CC"], ["FR"]
        a = serial.matrix(algorithms, graphs, jobs=1)
        b = parallel.matrix(algorithms, graphs)
        assert _reports_json(a) == _reports_json(b)

    def test_matrix_order_is_algorithm_major(self):
        service = RunService(use_cache=False)
        cells = service.matrix(["BFS", "CC"], ["FR"], jobs=2)
        assert [(c.algorithm, c.graph_key) for c in cells] == [
            ("BFS", "FR"),
            ("CC", "FR"),
        ]

    def test_suite_facade_exposes_service(self):
        suite = ExperimentSuite(jobs=2)
        assert suite.service.jobs == 2
        a = suite.cell("BFS", "FR")
        b = suite.cell("bfs", "FR")
        assert a is b
        assert suite.service.stats.memory_hits == 1


class TestProcessExecutor:
    def test_process_matrix_matches_serial_bit_exact(self):
        serial = RunService(use_cache=False)
        procs = RunService(use_cache=False, executor="process")
        algorithms, graphs = ["BFS", "CC"], ["FR"]
        a = serial.matrix(algorithms, graphs, jobs=1)
        b = procs.matrix(algorithms, graphs, jobs=2)
        assert _reports_json(a) == _reports_json(b)
        assert procs.stats.misses == 2

    def test_process_executor_uses_parent_caches(self, tmp_path):
        cache = str(tmp_path / "cache")
        warm = RunService(cache_dir=cache, executor="process")
        warm.matrix(["BFS"], ["FR"], jobs=2)
        assert warm.stats.misses == 1
        replay = RunService(cache_dir=cache, executor="process")
        replay.matrix(["BFS"], ["FR"], jobs=2)
        # Served from the persistent cache in-parent: no subprocess work.
        assert (replay.stats.misses, replay.stats.hits) == (0, 1)

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError):
            RunService(executor="greenlet")

    def test_per_call_executor_override(self):
        service = RunService(use_cache=False)  # thread default
        cells = service.matrix(["BFS"], ["FR"], jobs=2, executor="process")
        assert [(c.algorithm, c.graph_key) for c in cells] == [("BFS", "FR")]


class TestSerializeSchema:
    def test_reports_are_stamped(self):
        service = RunService(use_cache=False)
        report = service.cell("BFS", "FR").reports["GraphDynS"]
        data = report_to_dict(report)
        assert data["schema"] == SCHEMA_VERSION

    def test_mismatched_stamp_rejected(self):
        service = RunService(use_cache=False)
        report = service.cell("BFS", "FR").reports["Gunrock"]
        data = report_to_dict(report)
        data["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaMismatchError):
            report_from_dict(data)

    def test_region_keys_and_extra_survive_roundtrip(self):
        service = RunService(use_cache=False)
        report = service.cell("BFS", "FR").reports["GraphDynS"]
        report.extra["custom_metric"] = 1.25
        rebuilt = report_from_dict(report_to_dict(report))
        assert rebuilt.traffic.read_bytes == report.traffic.read_bytes
        assert rebuilt.traffic.write_bytes == report.traffic.write_bytes
        assert rebuilt.extra == report.extra
        assert rebuilt.extra["custom_metric"] == 1.25


class TestDatasetCache:
    def test_load_is_identity_stable(self):
        assert datasets.load("FR") is datasets.load("FR")

    def test_fingerprint_is_stable_and_distinct(self):
        assert datasets.fingerprint("FR") == datasets.fingerprint("FR")
        assert datasets.fingerprint("FR") != datasets.fingerprint("PK")

    def test_fingerprint_tracks_spec_changes(self):
        spec = datasets.DATASETS["FR"]
        original = datasets.fingerprint("FR")
        try:
            datasets.DATASETS["FR"] = dataclasses.replace(spec, seed=99)
            assert datasets.fingerprint("FR") != original
        finally:
            datasets.DATASETS["FR"] = spec

    def test_fingerprint_unknown_key(self):
        with pytest.raises(KeyError):
            datasets.fingerprint("NOPE")
