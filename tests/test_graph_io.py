"""Graph file I/O round-trip tests."""

import numpy as np
import pytest

from repro.graph import CSRGraph, GraphError
from repro.graph import io as gio


class TestNPZ:
    def test_roundtrip(self, tiny_graph, tmp_path):
        path = str(tmp_path / "g.npz")
        gio.save_npz(tiny_graph, path)
        loaded = gio.load_npz(path)
        assert np.array_equal(loaded.offsets, tiny_graph.offsets)
        assert np.array_equal(loaded.edges, tiny_graph.edges)
        assert np.array_equal(loaded.weights, tiny_graph.weights)
        assert loaded.name == tiny_graph.name

    def test_empty_graph(self, tmp_path):
        path = str(tmp_path / "e.npz")
        gio.save_npz(CSRGraph.empty(4), path)
        loaded = gio.load_npz(path)
        assert loaded.num_vertices == 4
        assert loaded.num_edges == 0


class TestEdgeList:
    def test_roundtrip_weighted(self, tiny_graph, tmp_path):
        path = str(tmp_path / "g.el")
        gio.save_edge_list(tiny_graph, path)
        loaded = gio.load_edge_list(path, num_vertices=7)
        assert sorted(loaded.iter_edges()) == sorted(tiny_graph.iter_edges())

    def test_roundtrip_unweighted(self, tiny_graph, tmp_path):
        path = str(tmp_path / "g.el")
        gio.save_edge_list(tiny_graph, path, write_weights=False)
        loaded = gio.load_edge_list(path, num_vertices=7)
        assert np.all(loaded.weights == 1.0)
        assert loaded.num_edges == tiny_graph.num_edges

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "c.el"
        path.write_text("# header\n\n0 1\n% other comment\n1 2 5.5\n")
        loaded = gio.load_edge_list(str(path))
        assert loaded.num_vertices == 3
        assert loaded.num_edges == 2
        assert loaded.edge_weights(1)[0] == pytest.approx(5.5)

    def test_vertex_count_inferred(self, tmp_path):
        path = tmp_path / "i.el"
        path.write_text("0 9\n")
        assert gio.load_edge_list(str(path)).num_vertices == 10

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.el"
        path.write_text("42\n")
        with pytest.raises(GraphError):
            gio.load_edge_list(str(path))


class TestMatrixMarket:
    def test_roundtrip_real(self, tiny_graph, tmp_path):
        path = str(tmp_path / "g.mtx")
        gio.save_matrix_market(tiny_graph, path)
        loaded = gio.load_matrix_market(path)
        assert loaded.num_vertices == tiny_graph.num_vertices
        assert sorted(loaded.iter_edges()) == sorted(tiny_graph.iter_edges())

    def test_roundtrip_pattern(self, tiny_graph, tmp_path):
        path = str(tmp_path / "p.mtx")
        gio.save_matrix_market(tiny_graph, path, pattern=True)
        loaded = gio.load_matrix_market(path)
        assert loaded.num_edges == tiny_graph.num_edges
        assert np.all(loaded.weights == 1.0)

    def test_symmetric_mirrors_entries(self, tmp_path):
        path = tmp_path / "s.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n"
            "2 1 4.0\n"
            "3 3 1.0\n"
        )
        loaded = gio.load_matrix_market(str(path))
        edges = {(s, d) for s, d, _ in loaded.iter_edges()}
        assert edges == {(1, 0), (0, 1), (2, 2)}  # diagonal not doubled

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "x.mtx"
        path.write_text("1 1 0\n")
        with pytest.raises(GraphError):
            gio.load_matrix_market(str(path))

    def test_dense_format_rejected(self, tmp_path):
        path = tmp_path / "d.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n1 1\n0\n")
        with pytest.raises(GraphError):
            gio.load_matrix_market(str(path))


class TestLoadAny:
    def test_dispatch_by_extension(self, tiny_graph, tmp_path):
        npz = str(tmp_path / "a.npz")
        mtx = str(tmp_path / "a.mtx")
        el = str(tmp_path / "a.el")
        gio.save_npz(tiny_graph, npz)
        gio.save_matrix_market(tiny_graph, mtx)
        gio.save_edge_list(tiny_graph, el)
        for path in (npz, mtx, el):
            assert gio.load_any(path).num_edges == tiny_graph.num_edges
