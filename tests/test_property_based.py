"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ReadyToUpdateBitmap,
    StallingReducePipeline,
    ZeroStallReducePipeline,
    balanced_dispatch,
    coalesced_run_lengths,
    vectorize_workloads,
)
from repro.graph import CSRGraph
from repro.memory import Crossbar
from repro.vcpm import ALGORITHMS, reference, run_vcpm
from repro.vcpm.spec import ReduceOp

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
edge_lists = st.integers(2, 40).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=120,
        ),
    )
)

op_streams = st.lists(
    st.tuples(st.integers(0, 5), st.floats(0, 100, allow_nan=False)),
    max_size=60,
)

degree_arrays = st.lists(st.integers(0, 400), max_size=60).map(
    lambda xs: np.asarray(xs, dtype=np.int64)
)


# ----------------------------------------------------------------------
# CSR invariants
# ----------------------------------------------------------------------
class TestCSRProperties:
    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_preserves_edge_multiset(self, data):
        n, edges = data
        graph = CSRGraph.from_edge_list(n, edges)
        assert graph.num_edges == len(edges)
        rebuilt = sorted((s, d) for s, d, _ in graph.iter_edges())
        assert rebuilt == sorted(edges)

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_degrees_sum_to_edges(self, data):
        n, edges = data
        graph = CSRGraph.from_edge_list(n, edges)
        assert graph.out_degree().sum() == graph.num_edges

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_reverse_involution_up_to_list_order(self, data):
        # Reversing twice preserves the edge multiset and the offsets
        # (within-source destination order may legitimately permute).
        n, edges = data
        graph = CSRGraph.from_edge_list(n, edges)
        back = graph.reverse().reverse()
        assert np.array_equal(back.offsets, graph.offsets)
        assert sorted(back.iter_edges()) == sorted(graph.iter_edges())


# ----------------------------------------------------------------------
# Reduce pipeline == sequential fold
# ----------------------------------------------------------------------
class TestReducePipelineProperties:
    @given(op_streams, st.sampled_from(list(ReduceOp)))
    @settings(max_examples=80, deadline=None)
    def test_zero_stall_equals_fold(self, ops, op):
        expected = {}
        for addr, value in ops:
            expected[addr] = op.scalar(expected.get(addr, op.identity), value)
        result = ZeroStallReducePipeline(op).run(ops)
        assert result.vb == expected
        assert result.stall_cycles == 0

    @given(op_streams, st.sampled_from(list(ReduceOp)))
    @settings(max_examples=50, deadline=None)
    def test_stalling_equals_zero_stall_result(self, ops, op):
        fast = ZeroStallReducePipeline(op).run(ops)
        slow = StallingReducePipeline(op).run(ops)
        assert fast.vb == slow.vb
        assert fast.cycles <= slow.cycles


# ----------------------------------------------------------------------
# Dispatch conservation
# ----------------------------------------------------------------------
class TestDispatchProperties:
    @given(degree_arrays, st.integers(1, 32), st.integers(1, 256))
    @settings(max_examples=80, deadline=None)
    def test_edges_conserved(self, degrees, num_pes, threshold):
        outcome = balanced_dispatch(degrees, num_pes, threshold)
        assert outcome.pe_loads.sum() == degrees.sum()

    @given(degree_arrays)
    @settings(max_examples=50, deadline=None)
    def test_ops_bounded(self, degrees):
        outcome = balanced_dispatch(degrees)
        # At least one op per vertex; at most one per edge (plus zero-degree
        # vertices, which still cost a dispatch decision each).
        assert outcome.scheduling_ops >= degrees.size
        assert outcome.scheduling_ops <= degrees.sum() + degrees.size


# ----------------------------------------------------------------------
# Vectorization bounds
# ----------------------------------------------------------------------
class TestVectorizeProperties:
    @given(st.lists(st.integers(0, 64), max_size=40), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_slots_within_bounds(self, sizes, n_simt):
        stats = vectorize_workloads(sizes, n_simt)
        total = sum(sizes)
        lower = -(-total // n_simt) if total else 0
        assert lower <= stats.issue_slots
        naive = vectorize_workloads(sizes, n_simt, combine_small=False)
        assert stats.issue_slots <= naive.issue_slots


# ----------------------------------------------------------------------
# Coalescing conservation
# ----------------------------------------------------------------------
class TestCoalesceProperties:
    @given(st.lists(st.integers(0, 30), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_runs_conserve_edges(self, counts):
        counts = np.asarray(counts, dtype=np.int64)
        offsets = np.concatenate(
            [[0], np.cumsum(counts)[:-1]]
        ) if counts.size else np.zeros(0, dtype=np.int64)
        runs = coalesced_run_lengths(offsets, counts)
        assert runs.sum() == counts.sum()
        # Maximal coalescing of adjacent extents: all extents here are
        # adjacent, so at most one run per gap (zero-count vertices break
        # nothing).
        if counts.sum():
            assert runs.size <= np.count_nonzero(counts)


# ----------------------------------------------------------------------
# Bitmap superset property
# ----------------------------------------------------------------------
class TestBitmapProperties:
    @given(
        st.integers(1, 2000),
        st.lists(st.integers(0, 1999), max_size=50),
        st.sampled_from([16, 64, 256]),
    )
    @settings(max_examples=60, deadline=None)
    def test_scheduled_is_superset_of_marked(self, n, ids, block):
        ids = [i for i in ids if i < n]
        bitmap = ReadyToUpdateBitmap(n, block)
        bitmap.mark(np.asarray(ids, dtype=np.int64))
        scheduled = set(bitmap.scheduled_vertices().tolist())
        assert set(ids).issubset(scheduled)
        assert ReadyToUpdateBitmap.scheduled_count(
            np.asarray(ids, dtype=np.int64), n, block
        ) == len(scheduled)


# ----------------------------------------------------------------------
# Crossbar cycle bounds
# ----------------------------------------------------------------------
class TestCrossbarProperties:
    @given(
        st.lists(st.integers(0, 1000), min_size=1, max_size=200),
        st.sampled_from([2, 8, 32, 128]),
    )
    @settings(max_examples=60, deadline=None)
    def test_cycles_within_theoretical_bounds(self, dsts, outputs):
        dst = np.asarray(dsts, dtype=np.int64)
        xbar = Crossbar(outputs, issue_width=8)
        stats = xbar.route_batch(dst)
        groups = -(-dst.size // 8)
        max_load = np.bincount(dst % outputs).max()
        assert stats.cycles == max(groups, max_load)


# ----------------------------------------------------------------------
# Engine == reference on random graphs
# ----------------------------------------------------------------------
class TestEngineProperties:
    @given(edge_lists)
    @settings(max_examples=30, deadline=None)
    def test_bfs_matches_reference(self, data):
        n, edges = data
        graph = CSRGraph.from_edge_list(n, edges)
        result = run_vcpm(graph, ALGORITHMS["BFS"], source=0)
        expected = reference.bfs_levels(graph, 0)
        assert np.array_equal(
            np.nan_to_num(result.properties, posinf=1e30),
            np.nan_to_num(expected, posinf=1e30),
        )

    @given(edge_lists)
    @settings(max_examples=30, deadline=None)
    def test_cc_matches_reference(self, data):
        n, edges = data
        graph = CSRGraph.from_edge_list(n, edges)
        result = run_vcpm(graph, ALGORITHMS["CC"])
        assert np.array_equal(result.properties, reference.cc_labels(graph))

    @given(edge_lists)
    @settings(max_examples=30, deadline=None)
    def test_sswp_matches_reference(self, data):
        n, edges = data
        weights = [float((s * 7 + d * 13) % 19 + 1) for s, d in edges]
        graph = CSRGraph.from_edge_list(n, edges, weights)
        result = run_vcpm(graph, ALGORITHMS["SSWP"], source=0)
        assert np.array_equal(
            result.properties, reference.sswp_widths(graph, 0)
        )
