"""Harness tests: rendering, suite memoization, figure regenerators.

Figure functions are exercised on the smallest proxies (FR) or with reduced
algorithm subsets so the suite stays fast; the full-matrix runs live in the
benchmark harness.
"""


import pytest

from repro.harness import (
    ExperimentSuite,
    figure2,
    figure8,
    figure14a,
    figure14b,
    figure14e,
    geomean,
    render_table,
    run_cell,
    table1,
    table2,
    table3,
    table4,
)
from repro.graph import datasets


class TestIO:
    def test_render_table_aligns(self):
        out = render_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_render_table_title(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.startswith("T\n")

    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestTables:
    def test_table1_covers_three_irregularities(self):
        result = table1()
        assert len(result.rows) == 3
        assert "Workload" in result.rows[0][0]

    def test_table2_covers_five_algorithms(self):
        result = table2()
        assert [row[0] for row in result.rows] == [
            "BFS", "SSSP", "CC", "SSWP", "PR",
        ]

    def test_table3_mentions_key_parameters(self):
        text = table3().render()
        assert "512GB/s" in text
        assert "32MB" in text and "64MB" in text

    def test_table4_has_eleven_rows(self):
        result = table4()
        assert len(result.rows) == 11


class TestStaticFigures:
    def test_figure8_totals(self):
        result = figure8()
        total_row = result.rows[-1]
        assert total_row[0] == "TOTAL"
        assert total_row[1] == pytest.approx(3.38)
        assert total_row[3] == pytest.approx(12.08)

    def test_figure8_renders(self):
        assert "Updater" in figure8().render()


class TestDynamicFigures:
    def test_figure2_rows_cover_iterations(self):
        result = figure2("FR", "SSSP", max_iterations=5)
        assert 1 <= len(result.rows) <= 5
        # Each row: iteration + 8 interval counts + updates.
        assert all(len(row) == 10 for row in result.rows)

    def test_figure2_interval_counts_sum_to_active(self):
        result = figure2("FR", "BFS", max_iterations=4)
        for row in result.rows:
            assert sum(row[1:9]) >= 1  # at least the active set binned

    def test_figure14a_reduction_large(self):
        result = figure14a("FR", algorithms=["SSSP"])
        reduction = result.rows[0][3]
        assert reduction > 80.0

    def test_figure14b_loads_near_one(self):
        result = figure14b("FR", "SSWP")
        assert result.rows, "no iterations captured"
        loads = [val for row in result.rows for val in row[1:]]
        assert max(loads) < 1.5
        assert min(loads) > 0.5

    def test_figure14e_normalizes_to_128(self):
        result = figure14e(
            "FR", algorithms=["BFS"], ue_counts=(128, 32)
        )
        row = result.rows[0]
        assert row[1] == pytest.approx(100.0)
        assert row[2] <= 100.5


class TestSuite:
    def test_cell_memoized(self):
        suite = ExperimentSuite()
        a = suite.cell("BFS", "FR")
        b = suite.cell("bfs", "FR")
        assert a is b

    def test_cell_contains_all_systems(self):
        suite = ExperimentSuite()
        cell = suite.cell("BFS", "FR")
        assert set(cell.reports) == {
            "GraphDynS",
            "Graphicionado",
            "Gunrock",
            "DCA",
        }
        assert set(cell.energy) == set(cell.reports)

    def test_speedup_over_gunrock_self_is_one(self):
        suite = ExperimentSuite()
        cell = suite.cell("BFS", "FR")
        assert cell.speedup_over_gunrock("Gunrock") == pytest.approx(1.0)

    def test_run_cell_standalone(self):
        graph = datasets.load("FR")
        cell = run_cell(graph, "CC", "FR")
        assert cell.algorithm == "CC"
        assert cell.reports["GraphDynS"].edges_processed > 0

    def test_matrix_shape(self):
        suite = ExperimentSuite()
        cells = suite.matrix(algorithms=["BFS"], graph_keys=["FR"])
        assert len(cells) == 1
