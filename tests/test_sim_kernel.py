"""Discrete-event kernel tests: clock, queues, ports, engine."""

import pytest

from repro.sim import (
    BoundedQueue,
    Clock,
    DoubleBuffer,
    EventEngine,
    Port,
    QueueEmptyError,
    QueueFullError,
)


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().cycle == 0

    def test_tick_advances(self):
        clock = Clock()
        assert clock.tick() == 1
        assert clock.tick(5) == 6

    def test_advance_to_never_rewinds(self):
        clock = Clock()
        clock.advance_to(10)
        clock.advance_to(5)
        assert clock.cycle == 10

    def test_seconds_at_frequency(self):
        clock = Clock(frequency_hz=1e9)
        clock.tick(1000)
        assert clock.seconds == pytest.approx(1e-6)

    def test_rejects_negative_tick(self):
        with pytest.raises(ValueError):
            Clock().tick(-1)

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            Clock(frequency_hz=0)

    def test_reset(self):
        clock = Clock()
        clock.tick(7)
        clock.reset()
        assert clock.cycle == 0


class TestBoundedQueue:
    def test_fifo_order(self):
        q = BoundedQueue(4)
        for i in range(3):
            q.push(i)
        assert [q.pop() for _ in range(3)] == [0, 1, 2]

    def test_full_raises(self):
        q = BoundedQueue(1)
        q.push("a")
        with pytest.raises(QueueFullError):
            q.push("b")
        assert q.rejected_pushes == 1

    def test_try_push(self):
        q = BoundedQueue(1)
        assert q.try_push(1)
        assert not q.try_push(2)

    def test_empty_pop_raises(self):
        with pytest.raises(QueueEmptyError):
            BoundedQueue(1).pop()

    def test_peek_does_not_remove(self):
        q = BoundedQueue(2)
        q.push("x")
        assert q.peek() == "x"
        assert len(q) == 1

    def test_drain(self):
        q = BoundedQueue(4)
        for i in range(4):
            q.push(i)
        assert q.drain() == [0, 1, 2, 3]
        assert q.is_empty

    def test_occupancy_stats(self):
        q = BoundedQueue(4)
        for i in range(3):
            q.push(i)
        q.pop()
        assert q.max_occupancy == 3
        assert q.total_pushes == 3
        assert q.total_pops == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)


class TestDoubleBuffer:
    def test_push_until_full(self):
        buf = DoubleBuffer(2)
        assert buf.push(1)
        assert buf.push(2)
        assert not buf.push(3)  # front full -> caller must swap

    def test_swap_and_drain(self):
        buf = DoubleBuffer(2)
        buf.push(1)
        buf.push(2)
        buf.swap()
        assert buf.drain_back() == [1, 2]
        assert buf.push(3)  # front is the old (now empty) back

    def test_swap_pressure_counted(self):
        buf = DoubleBuffer(2)
        buf.push(1)
        buf.swap()
        buf.swap()  # back still holds item 1
        assert buf.swaps_while_back_nonempty == 1


class TestPort:
    def test_width_one_serializes(self):
        port = Port(1)
        done = port.request(cycle=0, items=3)
        assert done == 3

    def test_vector_width(self):
        port = Port(8)
        assert port.request(0, 8) == 1
        assert port.request(1, 9) == 3  # two more cycles

    def test_backpressure_from_earlier_request(self):
        port = Port(1)
        port.request(0, 5)
        assert port.request(2, 1) == 6  # waits for the first batch

    def test_zero_items(self):
        port = Port(4)
        assert port.request(7, 0) == 7

    def test_utilization(self):
        port = Port(1)
        port.request(0, 5)
        assert port.utilization(10) == pytest.approx(0.5)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            Port(0)


class TestEventEngine:
    def test_runs_in_cycle_order(self):
        engine = EventEngine()
        order = []
        engine.schedule(5, lambda: order.append("b"))
        engine.schedule(1, lambda: order.append("a"))
        engine.run()
        assert order == ["a", "b"]
        assert engine.current_cycle == 5

    def test_same_cycle_fifo(self):
        engine = EventEngine()
        order = []
        for tag in "abc":
            engine.schedule(2, lambda t=tag: order.append(t))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_events_can_schedule_events(self):
        engine = EventEngine()
        hits = []

        def chain(n):
            hits.append(n)
            if n < 3:
                engine.schedule(1, lambda: chain(n + 1))

        engine.schedule(0, lambda: chain(0))
        engine.run()
        assert hits == [0, 1, 2, 3]
        assert engine.current_cycle == 3

    def test_run_until(self):
        engine = EventEngine()
        hits = []
        engine.schedule(1, lambda: hits.append(1))
        engine.schedule(10, lambda: hits.append(10))
        engine.run_until(5)
        assert hits == [1]
        assert engine.pending == 1

    def test_rejects_past_scheduling(self):
        engine = EventEngine()
        engine.schedule(3, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(1, lambda: None)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            EventEngine().schedule(-1, lambda: None)

    def test_livelock_guard(self):
        engine = EventEngine()

        def forever():
            engine.schedule(1, forever)

        engine.schedule(0, forever)
        with pytest.raises(RuntimeError):
            engine.run(max_events=100)
