"""Ready-to-Update Bitmap and activation coalescing tests."""

import numpy as np
import pytest

from repro.core import (
    ActivationCoalescer,
    ReadyToUpdateBitmap,
    coalesced_store_bursts,
)


class TestBitmap:
    def test_mark_and_query(self):
        bitmap = ReadyToUpdateBitmap(1024, block_size=256)
        bitmap.mark(np.array([300]))
        assert bitmap.is_marked(256)
        assert bitmap.is_marked(511)
        assert not bitmap.is_marked(512)

    def test_block_granularity_schedules_whole_block(self):
        bitmap = ReadyToUpdateBitmap(1024, block_size=256)
        bitmap.mark(np.array([0]))
        scheduled = bitmap.scheduled_vertices()
        assert scheduled.size == 256
        assert scheduled[0] == 0 and scheduled[-1] == 255

    def test_scheduled_superset_of_modified(self):
        bitmap = ReadyToUpdateBitmap(5000, block_size=256)
        modified = np.array([3, 900, 4999])
        bitmap.mark(modified)
        scheduled = set(bitmap.scheduled_vertices().tolist())
        assert set(modified.tolist()).issubset(scheduled)

    def test_last_block_truncated(self):
        bitmap = ReadyToUpdateBitmap(300, block_size=256)
        bitmap.mark(np.array([299]))
        scheduled = bitmap.scheduled_vertices()
        assert scheduled.max() == 299
        assert scheduled.size == 44

    def test_clear(self):
        bitmap = ReadyToUpdateBitmap(512, block_size=256)
        bitmap.mark(np.array([0, 511]))
        bitmap.clear()
        assert bitmap.blocks_set == 0
        assert bitmap.scheduled_vertices().size == 0

    def test_stats(self):
        bitmap = ReadyToUpdateBitmap(1024, block_size=256)
        modified = np.array([0, 1, 2])
        bitmap.mark(modified)
        stats = bitmap.stats(modified)
        assert stats.vertices_scheduled == 256
        assert stats.vertices_modified == 3
        assert stats.slack == 253
        assert stats.work_reduction == pytest.approx(0.75)

    def test_empty_mark_is_noop(self):
        bitmap = ReadyToUpdateBitmap(1024)
        bitmap.mark(np.array([], dtype=np.int64))
        assert bitmap.blocks_set == 0

    def test_out_of_range_rejected(self):
        bitmap = ReadyToUpdateBitmap(100)
        with pytest.raises(IndexError):
            bitmap.mark(np.array([100]))
        with pytest.raises(IndexError):
            bitmap.is_marked(100)

    def test_closed_form_matches_object(self):
        rng = np.random.default_rng(4)
        for num_vertices in (100, 1000, 5000):
            modified = rng.choice(num_vertices, size=30, replace=False)
            bitmap = ReadyToUpdateBitmap(num_vertices, 256)
            bitmap.mark(modified)
            assert ReadyToUpdateBitmap.scheduled_count(
                modified, num_vertices, 256
            ) == bitmap.scheduled_vertices().size

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ReadyToUpdateBitmap(10, block_size=0)
        with pytest.raises(ValueError):
            ReadyToUpdateBitmap(-1)


class TestCoalescer:
    def test_bursts_on_queue_fill(self):
        au = ActivationCoalescer(queue_entries=4, record_bytes=12)
        for v in range(9):
            au.activate(v)
        au.flush()
        stats = au.stats()
        assert stats.activations == 9
        assert sum(stats.burst_bytes) == 9 * 12
        # Two full 4-entry bursts plus one residue.
        assert stats.bursts == 3
        assert max(stats.burst_bytes) == 4 * 12

    def test_flush_without_activity(self):
        au = ActivationCoalescer(queue_entries=4)
        au.flush()
        assert au.stats().bursts == 0

    def test_single_activation(self):
        au = ActivationCoalescer(queue_entries=16, record_bytes=12)
        au.activate(7)
        au.flush()
        assert au.stats().burst_bytes == [12]

    def test_rejects_bad_queue(self):
        with pytest.raises(ValueError):
            ActivationCoalescer(queue_entries=0)


class TestClosedFormBursts:
    def test_zero_activations(self):
        assert coalesced_store_bursts(0) == (0, 0.0)

    def test_conserves_bytes(self):
        bursts, mean = coalesced_store_bursts(
            1000, num_units=128, queue_entries=16, record_bytes=12
        )
        assert bursts * mean == pytest.approx(1000 * 12)

    def test_mean_burst_grows_with_activations(self):
        _, few = coalesced_store_bursts(128, num_units=128)
        _, many = coalesced_store_bursts(128 * 64, num_units=128)
        assert many > few
