"""Energy model and run-report metric tests."""

import pytest

from repro.energy import (
    GRAPHDYNS_BUDGET,
    GRAPHICIONADO_BUDGET,
    HBM_PJ_PER_BIT,
    graphdyns_energy,
    graphicionado_energy,
    gpu_energy_report,
)
from repro.graphdyns import GraphDynS
from repro.graphicionado import Graphicionado
from repro.vcpm import ALGORITHMS


class TestBudgets:
    def test_fig8_totals(self):
        assert GRAPHDYNS_BUDGET.total_power_w == pytest.approx(3.38)
        assert GRAPHDYNS_BUDGET.total_area_mm2 == pytest.approx(12.08)

    def test_shares_sum_to_one(self):
        GRAPHDYNS_BUDGET.validate()
        GRAPHICIONADO_BUDGET.validate()

    def test_updater_dominates_area(self):
        # Fig. 8: Updater ~90% of area (32 MB eDRAM + crossbar).
        assert GRAPHDYNS_BUDGET.area_shares["Updater"] > 0.85

    def test_processor_dominates_power(self):
        assert GRAPHDYNS_BUDGET.power_shares["Processor"] == pytest.approx(0.59)

    def test_paper_ratios_to_graphicionado(self):
        assert GRAPHDYNS_BUDGET.total_power_w / GRAPHICIONADO_BUDGET.total_power_w == pytest.approx(0.68)
        assert GRAPHDYNS_BUDGET.total_area_mm2 / GRAPHICIONADO_BUDGET.total_area_mm2 == pytest.approx(0.57)

    def test_hbm_constant(self):
        assert HBM_PJ_PER_BIT == 7.0


class TestEnergyReports:
    @pytest.fixture(scope="class")
    def gds_report(self, medium_powerlaw):
        _, report = GraphDynS().run(
            medium_powerlaw, ALGORITHMS["SSSP"], source=0
        )
        return report

    def test_total_is_chip_plus_hbm(self, gds_report):
        energy = graphdyns_energy(gds_report)
        assert energy.total_j == pytest.approx(
            energy.chip_energy_j + energy.hbm_energy_j
        )

    def test_hbm_dominates(self, gds_report):
        # Fig. 10: ~92% of GraphDynS energy is HBM.
        energy = graphdyns_energy(gds_report)
        assert energy.hbm_fraction > 0.6

    def test_breakdown_sums_to_one(self, gds_report):
        energy = graphdyns_energy(gds_report)
        assert sum(energy.breakdown().values()) == pytest.approx(1.0)

    def test_hbm_energy_formula(self, gds_report):
        energy = graphdyns_energy(gds_report)
        expected = gds_report.total_traffic_bytes * 8 * 7.0 * 1e-12
        assert energy.hbm_energy_j == pytest.approx(expected)

    def test_normalization(self, gds_report):
        energy = graphdyns_energy(gds_report)
        assert energy.normalized_to(energy) == pytest.approx(1.0)

    def test_gpu_report(self, gds_report):
        energy = gpu_energy_report(gds_report, average_power_w=50.0)
        assert energy.chip_energy_j == pytest.approx(50.0 * gds_report.seconds)

    def test_graphicionado_less_efficient(self, medium_powerlaw):
        _, gds = GraphDynS().run(medium_powerlaw, ALGORITHMS["SSSP"], source=0)
        _, gio = Graphicionado().run(
            medium_powerlaw, ALGORITHMS["SSSP"], source=0
        )
        assert (
            graphicionado_energy(gio).total_j > graphdyns_energy(gds).total_j
        )


class TestRunReportMetrics:
    @pytest.fixture(scope="class")
    def report(self, medium_powerlaw):
        _, report = GraphDynS().run(
            medium_powerlaw, ALGORITHMS["BFS"], source=0
        )
        return report

    def test_seconds_from_cycles(self, report):
        assert report.seconds == pytest.approx(report.cycles / 1e9)

    def test_gteps_definition(self, report):
        assert report.gteps == pytest.approx(
            report.edges_processed / report.seconds / 1e9
        )

    def test_speedup_identity(self, report):
        assert report.speedup_over(report) == pytest.approx(1.0)

    def test_utilization_bounded(self, report):
        assert 0.0 <= report.bandwidth_utilization <= 1.0
