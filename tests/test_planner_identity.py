"""Plan-equivalence battery: the spec path is byte-identical to the
hand-coded matrix path.

Every test executes the same grid twice — once compiled from a
declarative spec through :func:`repro.harness.planner.execute_plan`,
once through the original ``RunService.run_matrix`` — with caching
disabled on both sides, so equality is between two *genuine* executions
(``canonical_reports_json`` bytes), not a cache replay.

Tier-1 runs cheap sub-grids (the RM12/RM13 proxy aliases); the full
Table 4 grid runs under the ``large`` marker in CI's large-tests job.
"""

import numpy as np
import pytest

from repro.harness import planner
from repro.harness.service import (
    RunService,
    canonical_reports_json,
)
from repro.harness.specs import parse_spec
from repro.metrics.counters import RunReport
from repro.metrics.serialize import json_scalar_default
from repro.memory.traffic import TrafficLedger


def _spec_path_json(spec_text, **service_kwargs):
    spec = parse_spec(spec_text)
    services = planner.services_for_spec(
        spec, cache_dir=None, use_cache=False, **service_kwargs
    )
    plan = planner.build_plan(spec, services)
    # Cold and cacheless: the plan must schedule the entire grid.
    assert len(plan.schedule) == len(plan.cells)
    results = planner.execute_plan(plan, services)
    return canonical_reports_json(results)


def _matrix_path_json(algorithms, graphs, **service_kwargs):
    service = RunService(cache_dir=None, use_cache=False, **service_kwargs)
    return canonical_reports_json(
        service.run_matrix(algorithms=algorithms, graph_keys=graphs)
    )


class TestSpecMatrixIdentity:
    def test_thread_executor_identity(self):
        spec_json = _spec_path_json(
            "name: t\nalgorithms: [BFS, SSSP, PR]\ngraphs: [RM12]\n",
            jobs=2,
        )
        hand_json = _matrix_path_json(["BFS", "SSSP", "PR"], ["RM12"], jobs=2)
        assert spec_json == hand_json

    def test_serial_identity_two_graphs(self):
        spec_json = _spec_path_json(
            "name: t\nalgorithms: [CC, SSWP]\ngraphs: [RM12, RM13]\n"
        )
        hand_json = _matrix_path_json(["CC", "SSWP"], ["RM12", "RM13"])
        assert spec_json == hand_json

    def test_process_executor_identity(self):
        spec_json = _spec_path_json(
            "name: t\nalgorithms: [BFS, PR]\ngraphs: [RM12]\n",
            jobs=2,
            executor="process",
        )
        hand_json = _matrix_path_json(
            ["BFS", "PR"], ["RM12"], jobs=2, executor="process"
        )
        assert spec_json == hand_json

    @pytest.mark.parametrize("tier", ["scalar", "vectorized"])
    def test_kernel_tier_identity(self, tier):
        spec_json = _spec_path_json(
            f"name: t\nalgorithms: [BFS]\ngraphs: [RM12]\n"
            f"kernel_tier: {tier}\n"
        )
        hand_json = _matrix_path_json(["BFS"], ["RM12"], kernel_tier=tier)
        assert spec_json == hand_json

    def test_override_grid_matches_hand_built_services(self):
        """Each override point equals a service built with that config."""
        import dataclasses as dc

        from repro import backends as backend_registry
        from repro.harness.service import default_backends

        spec = parse_spec(
            "name: ablate\n"
            "algorithms: [BFS]\n"
            "graphs: [RM12]\n"
            "overrides:\n"
            "  - name: base\n"
            "  - name: half\n"
            "    graphdyns:\n"
            "      n_simt: 4\n"
        )
        services = planner.services_for_spec(
            spec, cache_dir=None, use_cache=False
        )
        plan = planner.build_plan(spec, services)
        results = planner.execute_plan(plan, services)
        assert [c.override for c in plan.cells] == ["base", "half"]

        base = RunService(cache_dir=None, use_cache=False)
        half_config = dc.replace(
            backend_registry.create("graphdyns").config, n_simt=4
        )
        half = RunService(
            default_backends({"graphdyns": half_config}),
            cache_dir=None,
            use_cache=False,
        )
        hand = base.run_matrix(["BFS"], ["RM12"]) + half.run_matrix(
            ["BFS"], ["RM12"]
        )
        assert canonical_reports_json(results) == canonical_reports_json(hand)
        # The override genuinely changed the modeled outcome.
        assert (
            results[0].reports["GraphDynS"].cycles
            != results[1].reports["GraphDynS"].cycles
        )

    @pytest.mark.large
    def test_full_table4_grid_identity(self):
        """The paper's full 5x6 grid, spec path vs hand-coded path."""
        algorithms = ["BFS", "SSSP", "CC", "SSWP", "PR"]
        graphs = ["FR", "PK", "LJ", "HO", "IN", "OR"]
        spec_json = _spec_path_json(
            "name: table4\n"
            f"algorithms: [{', '.join(algorithms)}]\n"
            f"graphs: [{', '.join(graphs)}]\n",
            jobs=4,
        )
        hand_json = _matrix_path_json(algorithms, graphs, jobs=4)
        assert spec_json == hand_json


class TestCanonicalStability:
    """Satellite fix: numpy scalars must not perturb canonical bytes."""

    def test_json_scalar_default_normalizes_numpy(self):
        assert json_scalar_default(np.int64(7)) == 7
        assert isinstance(json_scalar_default(np.int64(7)), int)
        assert json_scalar_default(np.float64(0.25)) == 0.25
        assert isinstance(json_scalar_default(np.float64(0.25)), float)
        assert json_scalar_default(np.bool_(True)) is True
        with pytest.raises(TypeError):
            json_scalar_default(object())

    def test_numpy_scalars_in_reports_do_not_change_bytes(self):
        """Same values as np scalars and python scalars: same bytes."""
        from repro.harness.service import CellResult

        def report(extra):
            return RunReport(
                system="S",
                algorithm="BFS",
                graph_name="g",
                cycles=12.5,
                frequency_hz=1e9,
                edges_processed=10,
                vertices_processed=5,
                iterations=2,
                traffic=TrafficLedger(),
                peak_bytes_per_cycle=64.0,
                extra=extra,
            )

        def cell(extra):
            return CellResult(
                algorithm="BFS",
                graph_key="g",
                functional=None,
                reports={"S": report(extra)},
                energy={},
            )

        with_numpy = cell(
            {"a": np.float64(0.1), "b": np.int64(3), "c": np.bool_(False)}
        )
        with_python = cell({"a": 0.1, "b": 3, "c": False})
        payload = canonical_reports_json([with_numpy])
        assert payload == canonical_reports_json([with_python])
        # float repr is the shortest-round-trip form on every 3.9+ build
        assert "0.1" in payload and "0.30000000000000004" not in payload

    def test_plan_json_is_sorted_and_stable(self):
        spec = parse_spec("name: t\nalgorithms: [BFS]\ngraphs: [RM12]\n")
        services = planner.services_for_spec(
            spec, cache_dir=None, use_cache=False
        )
        one = planner.canonical_plan_json(planner.build_plan(spec, services))
        two = planner.canonical_plan_json(planner.build_plan(spec, services))
        assert one == two
        import json

        parsed = json.loads(one)
        assert list(parsed) == sorted(parsed)  # top-level keys sorted
        assert parsed["totals"]["cells"] == 1
