"""Admission control: token buckets, bounded queue, shed determinism."""

import dataclasses

import pytest

from repro.harness.admission import (
    AdmissionController,
    TokenBucket,
    executor_for_load,
)


@dataclasses.dataclass
class FakeJob:
    id: str


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# TokenBucket
# ----------------------------------------------------------------------


class TestTokenBucket:
    def test_unlimited_when_rate_is_none(self):
        bucket = TokenBucket(rate=None)
        assert all(bucket.try_acquire() for _ in range(10_000))
        assert bucket.retry_after() == 0.0

    def test_burst_then_exhaustion(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refill_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2 tokens/s * 0.5 s = 1 token
        assert bucket.try_acquire()

    def test_retry_after_is_exact(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.25)
        clock.advance(0.1)
        assert bucket.retry_after() == pytest.approx(0.15)

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(60.0)
        assert [bucket.try_acquire() for _ in range(3)] == [
            True, True, False,
        ]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


# ----------------------------------------------------------------------
# executor_for_load
# ----------------------------------------------------------------------


class TestExecutorForLoad:
    def test_light_load_keeps_base(self):
        assert executor_for_load("process", 10, 100) == "process"
        assert executor_for_load("thread", 10, 100) == "thread"

    def test_50_percent_degrades_to_thread(self):
        assert executor_for_load("process", 50, 100) == "thread"

    def test_85_percent_degrades_to_serial(self):
        assert executor_for_load("process", 85, 100) == "serial"
        assert executor_for_load("thread", 85, 100) == "serial"

    def test_never_upgrades_past_base(self):
        # A 'serial' base stays serial even when the queue is empty.
        assert executor_for_load("serial", 0, 100) == "serial"
        # A 'thread' base never becomes 'process'.
        assert executor_for_load("thread", 0, 100) == "thread"

    def test_running_counts_toward_occupancy(self):
        assert executor_for_load("process", 40, 100, running=10) == "thread"
        assert executor_for_load("process", 40, 100, running=45) == "serial"

    def test_zero_capacity_keeps_base(self):
        assert executor_for_load("process", 5, 0) == "process"

    def test_unknown_base_raises(self):
        with pytest.raises(ValueError):
            executor_for_load("gpu", 0, 10)


# ----------------------------------------------------------------------
# AdmissionController queue semantics
# ----------------------------------------------------------------------


class TestAdmissionQueue:
    def test_pop_order_priority_then_fifo(self):
        ctl = AdmissionController(capacity=10)
        for seq, (jid, prio) in enumerate(
            [("a", 0), ("b", 5), ("c", 0), ("d", 5)], start=1
        ):
            assert ctl.offer(FakeJob(jid), prio, seq).accepted
        order = [ctl.pop().id for _ in range(4)]
        assert order == ["b", "d", "a", "c"]

    def test_queue_full_rejects_equal_priority(self):
        ctl = AdmissionController(capacity=2, retry_after_full=3.5)
        assert ctl.offer(FakeJob("a"), 1, 1).accepted
        assert ctl.offer(FakeJob("b"), 1, 2).accepted
        decision = ctl.offer(FakeJob("c"), 1, 3)
        assert not decision.accepted
        assert decision.status == 503
        assert decision.retry_after == 3.5
        assert ctl.depth() == 2

    def test_higher_priority_sheds_youngest_of_lowest(self):
        ctl = AdmissionController(capacity=3)
        ctl.offer(FakeJob("old-low"), 0, 1)
        ctl.offer(FakeJob("mid"), 2, 2)
        ctl.offer(FakeJob("young-low"), 0, 3)
        decision = ctl.offer(FakeJob("vip"), 5, 4)
        assert decision.accepted
        assert decision.shed == ("young-low",)
        assert ctl.depth() == 3
        assert ctl.queued_ids() == ["vip", "mid", "old-low"]

    def test_shed_order_is_deterministic(self):
        """The same overload sequence sheds the same ids in the same order."""

        def run_burst():
            ctl = AdmissionController(capacity=2)
            shed = []
            plan = [("a", 0), ("b", 0), ("c", 1), ("d", 2), ("e", 3)]
            for seq, (jid, prio) in enumerate(plan, start=1):
                decision = ctl.offer(FakeJob(jid), prio, seq)
                shed.extend(decision.shed)
            return shed, ctl.queued_ids()

        first = run_burst()
        assert first == run_burst() == run_burst()
        # c preempts b (youngest of lowest prio 0), d preempts a (last
        # prio-0 entry), e preempts c (now the youngest of lowest).
        assert first == (["b", "a", "c"], ["e", "d"])

    def test_remove_queued_job(self):
        ctl = AdmissionController(capacity=4)
        ctl.offer(FakeJob("a"), 0, 1)
        ctl.offer(FakeJob("b"), 0, 2)
        assert ctl.remove("a")
        assert not ctl.remove("a")
        assert ctl.queued_ids() == ["b"]

    def test_pop_timeout_returns_none(self):
        ctl = AdmissionController(capacity=2)
        assert ctl.pop(timeout=0.01) is None

    def test_rate_limit_per_client(self):
        clock = FakeClock()
        ctl = AdmissionController(capacity=4, rate=1.0, burst=2.0, clock=clock)
        assert ctl.check_rate("alice") is None
        assert ctl.check_rate("alice") is None
        decision = ctl.check_rate("alice")
        assert decision is not None and decision.status == 429
        assert decision.retry_after == pytest.approx(1.0)
        # A different client has its own bucket.
        assert ctl.check_rate("bob") is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(capacity=0)
