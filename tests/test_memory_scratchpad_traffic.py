"""Scratchpad and traffic-ledger tests."""

import numpy as np
import pytest

from repro.memory import (
    AccessPattern,
    BankedScratchpad,
    Region,
    ScratchpadConfig,
    TrafficLedger,
)


@pytest.fixture()
def vpb():
    """16-RAM prefetch buffer, 8-wide vector ports (Fig. 4c)."""
    return BankedScratchpad(
        ScratchpadConfig(
            name="VPB", num_banks=16, bank_bytes=4096,
            items_per_bank_per_cycle=8,
        )
    )


class TestScratchpadGeometry:
    def test_total_bytes(self, vpb):
        assert vpb.config.total_bytes == 16 * 4096

    def test_capacity_items(self, vpb):
        assert vpb.config.capacity_items(8) == 16 * 4096 // 8

    def test_capacity_rejects_bad_item(self, vpb):
        with pytest.raises(ValueError):
            vpb.config.capacity_items(0)

    def test_bank_hash(self, vpb):
        assert vpb.bank_of(17) == 1
        assert vpb.bank_of(16) == 0


class TestScratchpadAccess:
    def test_single_access_latency(self, vpb):
        assert vpb.access(cycle=0, key=3) == 1

    def test_same_bank_serializes(self, vpb):
        first = vpb.access(0, key=0, items=8)
        second = vpb.access(0, key=16, items=8)  # same bank 0
        assert second > first

    def test_different_banks_parallel(self, vpb):
        a = vpb.access(0, key=0, items=8)
        b = vpb.access(0, key=1, items=8)
        assert a == b

    def test_batch_cycles_balanced(self, vpb):
        keys = np.arange(128)  # 8 per bank
        assert vpb.batch_cycles(keys) == 1

    def test_batch_cycles_hot_bank(self, vpb):
        keys = np.zeros(64, dtype=np.int64)  # all bank 0
        assert vpb.batch_cycles(keys) == 8

    def test_batch_empty(self, vpb):
        assert vpb.batch_cycles(np.zeros(0, dtype=np.int64)) == 0

    def test_dual_ported_doubles_throughput(self):
        single = BankedScratchpad(
            ScratchpadConfig("vb", 1, 1024, items_per_bank_per_cycle=8)
        )
        dual = BankedScratchpad(
            ScratchpadConfig(
                "vb", 1, 1024, items_per_bank_per_cycle=8, dual_ported=True
            )
        )
        keys = np.zeros(32, dtype=np.int64)
        assert dual.batch_cycles(keys) * 2 == single.batch_cycles(keys)

    def test_reset(self, vpb):
        vpb.access(0, 0, 4)
        vpb.reset()
        assert vpb.total_accesses == 0


class TestTrafficLedger:
    def test_add_and_totals(self):
        ledger = TrafficLedger()
        ledger.add(AccessPattern(Region.EDGE, 100, 100.0))
        ledger.add(AccessPattern(Region.EDGE, 50, 50.0, is_write=True))
        assert ledger.total_read == 100
        assert ledger.total_write == 50
        assert ledger.region_total(Region.EDGE) == 150

    def test_breakdown_hides_empty_regions(self):
        ledger = TrafficLedger()
        ledger.add(AccessPattern(Region.OFFSET, 10, 10.0))
        assert ledger.breakdown() == {"offset": 10}

    def test_merge(self):
        a, b = TrafficLedger(), TrafficLedger()
        a.add(AccessPattern(Region.EDGE, 10, 10.0))
        b.add(AccessPattern(Region.EDGE, 5, 5.0))
        a.merge(b)
        assert a.region_total(Region.EDGE) == 15

    def test_normalized_to(self):
        a, b = TrafficLedger(), TrafficLedger()
        a.add(AccessPattern(Region.EDGE, 30, 30.0))
        b.add(AccessPattern(Region.EDGE, 60, 60.0))
        assert a.normalized_to(b) == pytest.approx(0.5)

    def test_normalized_to_empty_baseline(self):
        assert TrafficLedger().normalized_to(TrafficLedger()) == 0.0

    def test_add_all(self):
        ledger = TrafficLedger()
        ledger.add_all(
            [
                AccessPattern(Region.EDGE, 10, 10.0),
                AccessPattern(Region.VERTEX_PROP, 20, 20.0),
            ]
        )
        assert ledger.total == 30
