"""Dataset registry (Table 4 proxies + paper-scale rows) tests."""

import pytest

from repro.graph import (
    DATASETS,
    PAPER_DATASETS,
    REAL_WORLD,
    RMAT_PAPER,
    RMAT_SCALING,
    datasets,
)


class TestRegistry:
    def test_eleven_datasets_registered(self):
        assert len(DATASETS) == 11
        assert len(REAL_WORLD) == 6
        assert len(RMAT_SCALING) == 5

    def test_table4_keys_present(self):
        for key in ["FR", "PK", "LJ", "HO", "IN", "OR",
                    "RM22", "RM23", "RM24", "RM25", "RM26"]:
            assert key in DATASETS

    def test_paper_dimensions_match_table4(self):
        lj = DATASETS["LJ"]
        assert lj.paper_vertices == 4_840_000
        assert lj.paper_edges == 68_990_000
        ho = DATASETS["HO"]
        assert ho.paper_edges == 113_900_000

    def test_proxy_preserves_edge_to_vertex_ratio(self):
        for spec in REAL_WORLD:
            paper_ratio = spec.paper_edges / spec.paper_vertices
            proxy_ratio = spec.proxy_edges / spec.proxy_vertices
            assert proxy_ratio == pytest.approx(paper_ratio, rel=0.02)

    def test_rmat_scales_double(self):
        vertices = [spec.proxy_vertices for spec in RMAT_SCALING]
        for smaller, larger in zip(vertices, vertices[1:]):
            assert larger == 2 * smaller

    def test_rmat_edge_factor_16(self):
        for spec in RMAT_SCALING:
            assert spec.proxy_edges == spec.proxy_vertices * 16

    def test_rmat_skew_matching_flattens_proxies(self):
        # Proxy quadrant probabilities must be flatter than Graph500's
        # 0.57 to compensate for the reduced scale.
        for spec in RMAT_SCALING:
            assert spec.rmat_a < 0.57
            assert spec.rmat_a + 2 * spec.rmat_b <= 1.0

    def test_hollywood_densest_real_graph(self):
        ratios = {s.key: s.edge_to_vertex_ratio for s in REAL_WORLD}
        assert max(ratios, key=ratios.get) == "HO"


class TestLoading:
    def test_load_builds_proxy_dimensions(self):
        g = datasets.load("FR")
        spec = DATASETS["FR"]
        assert g.num_vertices == spec.proxy_vertices
        assert g.num_edges == spec.proxy_edges

    def test_load_caches(self):
        a = datasets.load("FR")
        b = datasets.load("FR")
        assert a is b

    def test_load_without_cache_rebuilds(self):
        a = datasets.load("FR")
        b = datasets.load("FR", use_cache=False)
        assert a is not b
        assert a.num_edges == b.num_edges

    def test_load_unknown_raises(self):
        with pytest.raises(KeyError):
            datasets.load("NOPE")

    def test_available_order(self):
        keys = datasets.available()
        assert keys[:6] == ["FR", "PK", "LJ", "HO", "IN", "OR"]
        assert keys[6:] == ["RM22", "RM23", "RM24", "RM25", "RM26"]

    def test_rmat_proxy_loads(self):
        g = datasets.load("RM22")
        assert g.num_vertices == 1 << 12

    def test_proxy_scale_aliases_resolve(self):
        # S1: the RMAT rows answer to their proxy-scale spelling too.
        for proxy, canonical in [("RM12", "RM22"), ("RM16", "RM26")]:
            assert datasets.resolve_key(proxy) == canonical
            assert datasets.load(proxy) is datasets.load(canonical)

    def test_available_includes_aliases_on_request(self):
        keys = datasets.available(include_aliases=True)
        assert keys[:11] == datasets.available()
        assert set(keys[11:]) == {"RM12", "RM13", "RM14", "RM15", "RM16"}

    def test_available_includes_paper_scale_on_request(self):
        keys = datasets.available(include_paper_scale=True)
        assert keys[:11] == datasets.available()
        assert keys[11:] == list(PAPER_DATASETS)


class TestPaperScaleRegistry:
    def test_separate_registry(self):
        # Paper-scale rows must NOT leak into the tier-1 matrix registry.
        assert not set(PAPER_DATASETS) & set(DATASETS)
        assert len(RMAT_PAPER) == 6
        for spec in RMAT_PAPER:
            assert spec.paper_scale
            assert spec.key.endswith("-FULL")

    def test_full_scale_dimensions(self):
        rm22 = PAPER_DATASETS["RM22-FULL"]
        assert rm22.proxy_vertices == 1 << 22
        assert rm22.proxy_edges == (1 << 22) * 16
        assert rm22.proxy_vertices == rm22.paper_vertices

    def test_full_keys_resolve(self):
        assert datasets.resolve_key("rm22-full") == "RM22-FULL"
        with pytest.raises(KeyError):
            datasets.resolve_key("RM99-FULL")

    def test_fingerprints_distinct_from_proxies(self):
        assert datasets.fingerprint("RM22-FULL") != datasets.fingerprint("RM22")


class TestFingerprint:
    def test_stable_across_calls(self):
        assert datasets.fingerprint("FR") == datasets.fingerprint("FR")

    def test_distinct_across_datasets(self):
        prints = {datasets.fingerprint(k) for k in datasets.available()}
        assert len(prints) == 11

    def test_covers_storage_format_version(self, monkeypatch):
        # Bumping the spill layout version must invalidate cached results.
        before = datasets.fingerprint("FR")
        monkeypatch.setattr(datasets, "STORAGE_FORMAT_VERSION", 999)
        assert datasets.fingerprint("FR") != before

    def test_independent_of_storage_kind(self):
        # Content-addressed: memory and mmap loads share one fingerprint
        # (and hence one run-service cache entry).
        datasets.load("FR")
        datasets.load("FR", storage="mmap")
        assert datasets.fingerprint("FR") == datasets.fingerprint("fr")
