"""Dataset registry (Table 4 proxies) tests."""

import pytest

from repro.graph import DATASETS, REAL_WORLD, RMAT_SCALING, datasets


class TestRegistry:
    def test_eleven_datasets_registered(self):
        assert len(DATASETS) == 11
        assert len(REAL_WORLD) == 6
        assert len(RMAT_SCALING) == 5

    def test_table4_keys_present(self):
        for key in ["FR", "PK", "LJ", "HO", "IN", "OR",
                    "RM22", "RM23", "RM24", "RM25", "RM26"]:
            assert key in DATASETS

    def test_paper_dimensions_match_table4(self):
        lj = DATASETS["LJ"]
        assert lj.paper_vertices == 4_840_000
        assert lj.paper_edges == 68_990_000
        ho = DATASETS["HO"]
        assert ho.paper_edges == 113_900_000

    def test_proxy_preserves_edge_to_vertex_ratio(self):
        for spec in REAL_WORLD:
            paper_ratio = spec.paper_edges / spec.paper_vertices
            proxy_ratio = spec.proxy_edges / spec.proxy_vertices
            assert proxy_ratio == pytest.approx(paper_ratio, rel=0.02)

    def test_rmat_scales_double(self):
        vertices = [spec.proxy_vertices for spec in RMAT_SCALING]
        for smaller, larger in zip(vertices, vertices[1:]):
            assert larger == 2 * smaller

    def test_rmat_edge_factor_16(self):
        for spec in RMAT_SCALING:
            assert spec.proxy_edges == spec.proxy_vertices * 16

    def test_rmat_skew_matching_flattens_proxies(self):
        # Proxy quadrant probabilities must be flatter than Graph500's
        # 0.57 to compensate for the reduced scale.
        for spec in RMAT_SCALING:
            assert spec.rmat_a < 0.57
            assert spec.rmat_a + 2 * spec.rmat_b <= 1.0

    def test_hollywood_densest_real_graph(self):
        ratios = {s.key: s.edge_to_vertex_ratio for s in REAL_WORLD}
        assert max(ratios, key=ratios.get) == "HO"


class TestLoading:
    def test_load_builds_proxy_dimensions(self):
        g = datasets.load("FR")
        spec = DATASETS["FR"]
        assert g.num_vertices == spec.proxy_vertices
        assert g.num_edges == spec.proxy_edges

    def test_load_caches(self):
        a = datasets.load("FR")
        b = datasets.load("FR")
        assert a is b

    def test_load_without_cache_rebuilds(self):
        a = datasets.load("FR")
        b = datasets.load("FR", use_cache=False)
        assert a is not b
        assert a.num_edges == b.num_edges

    def test_load_unknown_raises(self):
        with pytest.raises(KeyError):
            datasets.load("NOPE")

    def test_available_order(self):
        keys = datasets.available()
        assert keys[:6] == ["FR", "PK", "LJ", "HO", "IN", "OR"]
        assert keys[6:] == ["RM22", "RM23", "RM24", "RM25", "RM26"]

    def test_rmat_proxy_loads(self):
        g = datasets.load("RM22")
        assert g.num_vertices == 1 << 12
