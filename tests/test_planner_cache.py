"""Cache-awareness regression battery for the planner.

The planner's whole reason to exist is that it consults the persistent
content-addressed cache (and the daemon's in-flight set) *before*
scheduling work.  These tests pin that behavior: warmed cells must drop
out of the schedule cell-for-cell, a fully warm plan must execute with
zero misses, and a mutated override config must bring its cells back.
"""

import pytest

from repro.harness import planner
from repro.harness.service import RunService, canonical_reports_json
from repro.harness.specs import parse_spec

SPEC_TEXT = (
    "name: cachetest\n"
    "algorithms: [BFS, PR]\n"
    "graphs: [RM12, RM13]\n"
)


def _services(spec, cache_dir):
    return planner.services_for_spec(spec, cache_dir=str(cache_dir))


class TestCacheClassification:
    def test_warm_half_grid_excludes_exactly_warmed_cells(self, tmp_path):
        spec = parse_spec(SPEC_TEXT)
        warm = RunService(cache_dir=str(tmp_path))
        warm.matrix(["BFS"], ["RM12", "RM13"])  # warm half the grid

        # Fresh services: only the persistent cache carries over.
        plan = planner.build_plan(spec, _services(spec, tmp_path))
        cached = {(c.algorithm, c.graph) for c in plan.cached}
        pending = {(c.algorithm, c.graph) for c in plan.pending}
        assert cached == {("BFS", "RM12"), ("BFS", "RM13")}
        assert pending == {("PR", "RM12"), ("PR", "RM13")}
        assert all(c.status == "cached-persistent" for c in plan.cached)
        assert plan.schedule == plan.pending

    def test_fully_warm_plan_schedules_nothing(self, tmp_path):
        spec = parse_spec(SPEC_TEXT)
        warm = RunService(cache_dir=str(tmp_path))
        warm.matrix(["BFS", "PR"], ["RM12", "RM13"])

        services = _services(spec, tmp_path)
        plan = planner.build_plan(spec, services)
        assert plan.schedule == []
        assert plan.pending == []
        assert len(plan.cached) == 4

        # Executing a fully warm plan performs zero fresh simulations.
        results = planner.execute_plan(plan, services)
        service = services["base"]
        assert service.stats.misses == 0
        assert len(results) == 4
        # ...and the replayed grid is byte-identical to the original.
        assert canonical_reports_json(results) == canonical_reports_json(
            warm.matrix(["BFS", "PR"], ["RM12", "RM13"])
        )

    def test_mutated_override_repopulates_pending(self, tmp_path):
        """Changing a config must change cache keys: no stale reuse."""
        base_spec = parse_spec(SPEC_TEXT)
        services = _services(base_spec, tmp_path)
        planner.execute_plan(
            planner.build_plan(base_spec, services), services
        )

        mutated = parse_spec(
            SPEC_TEXT
            + "overrides:\n  - name: base\n    graphdyns:\n      n_simt: 4\n"
        )
        plan = planner.build_plan(mutated, _services(mutated, tmp_path))
        # Every cell's backend set changed, so every cell is pending.
        assert len(plan.pending) == 4
        assert plan.cached == []

    def test_probe_is_read_only(self, tmp_path):
        spec = parse_spec(SPEC_TEXT)
        services = _services(spec, tmp_path)
        planner.build_plan(spec, services)
        service = services["base"]
        assert service.stats.misses == 0
        assert service.stats.hits == 0
        assert not any(tmp_path.iterdir())  # nothing written


class TestInflightClassification:
    def test_inflight_keys_removed_from_schedule(self, tmp_path):
        spec = parse_spec(SPEC_TEXT)
        services = _services(spec, tmp_path)
        cold = planner.build_plan(spec, services)
        assert len(cold.pending) == 4

        # Pretend the daemon is already running two of the cells.
        running = frozenset(c.cache_key for c in cold.cells[:2])
        plan = planner.build_plan(spec, services, inflight_keys=running)
        assert {c.cache_key for c in plan.inflight} == set(running)
        assert len(plan.pending) == 2
        assert all(c.cache_key not in running for c in plan.schedule)
        # Inflight work still counts as saved cost, not pending cost.
        totals = planner.plan_to_dict(plan)["totals"]
        assert totals["pending_cost"] < totals["total_cost"]
        assert (
            totals["saved_cost"]
            == totals["total_cost"] - totals["pending_cost"]
        )

    def test_cached_wins_over_inflight(self, tmp_path):
        spec = parse_spec(SPEC_TEXT)
        warm = RunService(cache_dir=str(tmp_path))
        warm.matrix(["BFS"], ["RM12"])

        services = _services(spec, tmp_path)
        cold = planner.build_plan(spec, services)
        key = next(
            c.cache_key
            for c in cold.cells
            if (c.algorithm, c.graph) == ("BFS", "RM12")
        )
        plan = planner.build_plan(
            spec, services, inflight_keys=frozenset([key])
        )
        cell = next(
            c
            for c in plan.cells
            if (c.algorithm, c.graph) == ("BFS", "RM12")
        )
        assert cell.status == "cached-persistent"
        assert plan.inflight == []


class TestDryRunCli:
    def test_dry_run_schedules_zero_work(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "s.yaml"
        spec_path.write_text(SPEC_TEXT)
        cache = tmp_path / "cache"
        cache.mkdir()
        rc = main(
            [
                "run-spec",
                str(spec_path),
                "--cache-dir",
                str(cache),
                "--dry-run",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "4 pending" in out
        assert not any(cache.iterdir())  # dry run executed nothing

    def test_plan_command_is_read_only(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "s.yaml"
        spec_path.write_text(SPEC_TEXT)
        cache = tmp_path / "cache"
        cache.mkdir()
        rc = main(["plan", str(spec_path), "--cache-dir", str(cache)])
        assert rc == 0
        assert "pending" in capsys.readouterr().out
        assert not any(cache.iterdir())

    def test_spec_error_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "bad.yaml"
        spec_path.write_text("name: x\nalgorithms: [NOPE]\n")
        rc = main(["plan", str(spec_path), "--no-cache"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "NOPE" in err
        assert "Traceback" not in err


class TestObsCounters:
    def test_planner_counters_recorded(self, tmp_path):
        from repro.obs import TraceRecorder, use_recorder

        spec = parse_spec(SPEC_TEXT)
        warm = RunService(cache_dir=str(tmp_path))
        warm.matrix(["BFS"], ["RM12"])

        rec = TraceRecorder()
        with use_recorder(rec):
            planner.build_plan(spec, _services(spec, tmp_path))
        counters = {
            name: c.value for name, c in rec.instruments.counters.items()
        }
        assert counters["planner.cells.cached"] == 1
        assert counters["planner.cells.pending"] == 3
        assert counters["planner.cells.inflight"] == 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
