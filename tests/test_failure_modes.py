"""Robustness tests: degenerate graphs, odd inputs, misuse — plus the
fault-injection battery for the resilience layer (injected crashes,
hangs, dead workers, flaky/corrupt cache stores, checkpoint/resume),
asserting every recovery path converges to byte-identical reports."""

import json

import numpy as np
import pytest

from repro.graph import CSRGraph, star_graph
from repro.graphdyns import GraphDynS, GraphDynSConfig
from repro.graphdyns.timing import GraphDynSTimingModel
from repro.harness import (
    CellExecutionError,
    FaultInjector,
    FaultSpec,
    ResilienceWarning,
    ResilientRunService,
    RetryPolicy,
    RunManifest,
    RunService,
    canonical_reports_json,
    retry_call,
)
from repro.harness.resilience import CellTimeoutError
from repro.harness.sweeps import run_sweeps
from repro.vcpm import ALGORITHMS, run_vcpm
from repro.vcpm.engine import run_vcpm as run

#: The small matrix every battery test replays (two cheap cells).
_ALGOS = ["BFS", "CC"]
_GRAPHS = ["FR"]

def _no_sleep(seconds):
    """Instant backoff: keeps the battery fast and deterministic."""

#: Retry policy used throughout: generous attempts, no real waiting.
_FAST = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)


@pytest.fixture(scope="module")
def clean_reports_json():
    """Canonical reports of a fault-free serial run (the golden answer)."""
    service = RunService(use_cache=False)
    return canonical_reports_json(service.matrix(_ALGOS, _GRAPHS, jobs=1))


class TestDegenerateGraphs:
    def test_single_vertex_no_edges(self):
        g = CSRGraph.empty(1)
        result = run_vcpm(g, ALGORITHMS["BFS"], source=0)
        assert result.properties.tolist() == [0.0]
        assert result.converged

    def test_self_loop_only(self):
        g = CSRGraph.from_edge_list(1, [(0, 0)])
        result = run_vcpm(g, ALGORITHMS["SSSP"], source=0)
        assert result.properties[0] == 0.0  # self loop cannot improve
        assert result.converged

    def test_two_cycle(self):
        g = CSRGraph.from_edge_list(2, [(0, 1), (1, 0)])
        result = run_vcpm(g, ALGORITHMS["BFS"], source=0)
        assert result.properties.tolist() == [0.0, 1.0]

    def test_all_isolated_vertices(self):
        g = CSRGraph.empty(100)
        result = run_vcpm(g, ALGORITHMS["CC"])
        # Every vertex its own component; converges after one iteration.
        assert np.array_equal(result.properties, np.arange(100, dtype=float))
        assert result.converged

    def test_massive_star(self):
        # One dispatch must split a 5000-edge list without distortion.
        g = star_graph(5000)
        result, report = GraphDynS().run(g, ALGORITHMS["BFS"], source=0)
        assert result.converged
        assert np.all(result.properties[1:] == 1.0)
        assert report.cycles > 0

    def test_zero_weight_edges(self):
        g = CSRGraph.from_edge_list(3, [(0, 1), (1, 2)], weights=[0.0, 0.0])
        result = run_vcpm(g, ALGORITHMS["SSSP"], source=0)
        assert result.properties.tolist() == [0.0, 0.0, 0.0]

    def test_parallel_edges(self):
        g = CSRGraph.from_edge_list(
            2, [(0, 1), (0, 1), (0, 1)], weights=[5.0, 1.0, 3.0]
        )
        result = run_vcpm(g, ALGORITHMS["SSSP"], source=0)
        assert result.properties[1] == 1.0  # min over parallel edges


class TestTimingModelRobustness:
    def test_graph_with_no_edges(self):
        g = CSRGraph.empty(50)
        result, report = GraphDynS().run(g, ALGORITHMS["CC"])
        assert report.edges_processed == 0
        assert report.gteps == 0.0

    def test_report_on_zero_iteration_run(self):
        g = CSRGraph.empty(0)
        result, report = GraphDynS().run(g, ALGORITHMS["CC"])
        assert report.cycles == 0
        assert report.seconds == 0.0

    def test_models_are_single_use_observers(self, small_powerlaw):
        # Re-observing a second run accumulates -- documented behaviour;
        # fresh model per run gives fresh numbers.
        spec = ALGORITHMS["BFS"]
        model = GraphDynSTimingModel(small_powerlaw, spec)
        run(small_powerlaw, spec, source=0, observers=[model])
        first = model.total_cycles
        run(small_powerlaw, spec, source=0, observers=[model])
        assert model.total_cycles > first

    def test_single_ue_config(self, small_powerlaw):
        config = GraphDynSConfig(num_ues=1)
        model = GraphDynSTimingModel(
            small_powerlaw, ALGORITHMS["BFS"], config
        )
        result = run(
            small_powerlaw, ALGORITHMS["BFS"], source=0, observers=[model]
        )
        # Throughput collapses to <= 1 edge/cycle on the single reduce
        # pipeline, but the model stays sane.
        assert model.total_cycles >= result.total_edges_processed

    def test_single_pe_config(self, small_powerlaw):
        config = GraphDynSConfig(num_pes=1, num_dispatchers=1)
        result, report = GraphDynS(config).run(
            small_powerlaw, ALGORITHMS["BFS"], source=0
        )
        assert result.converged


class TestNumericEdgeCases:
    def test_infinite_initial_props_stable(self):
        g = CSRGraph.from_edge_list(3, [(1, 2)])
        # Source 0 has no outgoing path to 1: 1 stays at inf and its
        # iteration-0 scatter (inf + w) must not corrupt 2.
        result = run_vcpm(g, ALGORITHMS["SSSP"], source=0)
        assert np.isinf(result.properties[1])
        assert np.isinf(result.properties[2])

    def test_large_weights(self):
        g = CSRGraph.from_edge_list(2, [(0, 1)], weights=[1e30])
        result = run_vcpm(g, ALGORITHMS["SSSP"], source=0)
        assert result.properties[1] == pytest.approx(1e30, rel=1e-6)

    def test_pr_on_sink_heavy_graph(self):
        # All edges into one sink: ranks must stay finite.
        g = star_graph(50)
        result = run_vcpm(g, ALGORITHMS["PR"], max_iterations=10)
        assert np.all(np.isfinite(result.properties))

    def test_sswp_unreachable_zero(self, disconnected_graph):
        result = run_vcpm(disconnected_graph, ALGORITHMS["SSWP"], source=0)
        assert result.properties[3] == 0.0  # unreachable keeps init width


# ======================================================================
# Fault-injection battery for the resilience layer
# ======================================================================


class TestInjectedCrashes:
    """A worker crash on any single cell must not change the answer."""

    @pytest.mark.parametrize(
        "jobs,executor",
        [(1, "thread"), (2, "thread"), (2, "process")],
        ids=["serial", "thread", "process"],
    )
    def test_crash_retries_to_byte_identical_reports(
        self, clean_reports_json, jobs, executor
    ):
        service = ResilientRunService(
            use_cache=False,
            jobs=jobs,
            executor=executor,
            policy=_FAST,
            faults=FaultInjector(["crash:1"]),
            sleep=_no_sleep,
        )
        cells = service.matrix(_ALGOS, _GRAPHS)
        assert canonical_reports_json(cells) == clean_reports_json
        assert service.stats.retries >= 1
        assert service.faults.fired >= 1

    def test_crash_on_second_cell_too(self, clean_reports_json):
        service = ResilientRunService(
            use_cache=False,
            policy=_FAST,
            faults=FaultInjector(["crash:2:2"]),  # 2 failing attempts
            sleep=_no_sleep,
        )
        cells = service.matrix(_ALGOS, _GRAPHS)
        assert canonical_reports_json(cells) == clean_reports_json
        assert service.stats.retries == 2

    def test_exhausted_retries_name_the_cell(self):
        service = ResilientRunService(
            use_cache=False,
            policy=RetryPolicy(max_attempts=2, backoff_base=0.0),
            faults=FaultInjector(["crash:2:99"]),  # effectively permanent
            sleep=_no_sleep,
        )
        with pytest.raises(CellExecutionError) as excinfo:
            service.matrix(_ALGOS, _GRAPHS)
        assert excinfo.value.algorithm == "CC"
        assert excinfo.value.graph_key == "FR"
        assert excinfo.value.attempts == 2

    def test_non_transient_errors_are_not_retried(self):
        class Broken(ResilientRunService):
            def _attempt_body(self, request, attempt):
                raise TypeError("programming error, not a fault")

        service = Broken(use_cache=False, policy=_FAST, sleep=_no_sleep)
        with pytest.raises(TypeError):
            service.matrix(_ALGOS, _GRAPHS)
        assert service.stats.retries == 0


class TestHangsAndTimeouts:
    def test_hang_is_abandoned_and_retried(self, clean_reports_json):
        # Hang far above the deadline, deadline far above real cell cost.
        service = ResilientRunService(
            use_cache=False,
            policy=RetryPolicy(
                max_attempts=3, backoff_base=0.0, timeout=1.5
            ),
            faults=FaultInjector([FaultSpec("hang", 1, 1, 6.0)]),
            sleep=_no_sleep,
        )
        cells = service.matrix(_ALGOS, _GRAPHS)
        assert canonical_reports_json(cells) == clean_reports_json
        assert service.stats.timeouts == 1
        assert service.stats.retries >= 1

    def test_process_hang_falls_back_to_parent(self, clean_reports_json):
        service = ResilientRunService(
            use_cache=False,
            jobs=2,
            executor="process",
            policy=RetryPolicy(
                max_attempts=3, backoff_base=0.0, timeout=1.5
            ),
            faults=FaultInjector([FaultSpec("hang", 1, 1, 6.0)]),
            sleep=_no_sleep,
        )
        cells = service.matrix(_ALGOS, _GRAPHS)
        assert canonical_reports_json(cells) == clean_reports_json
        assert service.stats.timeouts >= 1

    def test_timeout_without_faults_is_inert(self, clean_reports_json):
        service = ResilientRunService(
            use_cache=False,
            policy=RetryPolicy(max_attempts=3, timeout=60.0),
            sleep=_no_sleep,
        )
        cells = service.matrix(_ALGOS, _GRAPHS)
        assert canonical_reports_json(cells) == clean_reports_json
        assert service.stats.timeouts == 0
        assert service.stats.retries == 0


class TestWorkerDeath:
    def test_dead_worker_degrades_executor_tier(self, clean_reports_json):
        service = ResilientRunService(
            use_cache=False,
            jobs=2,
            executor="process",
            policy=_FAST,
            faults=FaultInjector(["kill:1"]),
            sleep=_no_sleep,
        )
        with pytest.warns(ResilienceWarning):
            cells = service.matrix(_ALGOS, _GRAPHS)
        assert canonical_reports_json(cells) == clean_reports_json
        assert service.stats.degradations >= 1


class TestStoreFaults:
    def test_flaky_store_is_retried_until_persisted(
        self, tmp_path, clean_reports_json
    ):
        cache = str(tmp_path / "cache")
        service = ResilientRunService(
            cache_dir=cache,
            policy=_FAST,
            faults=FaultInjector(["flaky-store:1:1"]),
            sleep=_no_sleep,
        )
        cells = service.matrix(_ALGOS, _GRAPHS)
        assert canonical_reports_json(cells) == clean_reports_json
        assert service.stats.stores == 2  # both cells persisted anyway
        assert service.stats.store_failures == 0
        assert service.stats.retries >= 1
        # And the persisted entries replay bit-identically.
        replay = RunService(cache_dir=cache)
        assert (
            canonical_reports_json(replay.matrix(_ALGOS, _GRAPHS))
            == clean_reports_json
        )
        assert replay.stats.hits == 2

    def test_corrupt_cache_entry_is_rejected_not_trusted(
        self, tmp_path, clean_reports_json
    ):
        cache = str(tmp_path / "cache")
        service = ResilientRunService(
            cache_dir=cache,
            policy=_FAST,
            faults=FaultInjector(["corrupt-cache:1"]),
            sleep=_no_sleep,
        )
        service.matrix(_ALGOS, _GRAPHS)
        # One entry on disk is now garbage; a fresh service must treat
        # it as a miss and recompute, never misread it.
        replay = RunService(cache_dir=cache)
        cells = replay.matrix(_ALGOS, _GRAPHS)
        assert canonical_reports_json(cells) == clean_reports_json
        assert replay.stats.misses == 1
        assert replay.stats.hits == 1


class TestCheckpointResume:
    def test_resume_executes_only_unfinished_cells(
        self, tmp_path, clean_reports_json
    ):
        cache = str(tmp_path / "cache")
        manifest = str(tmp_path / "sweep.jsonl")
        # A permanent crash on cell 2 with a tight retry budget
        # simulates killing the sweep mid-flight.
        killed = ResilientRunService(
            cache_dir=cache,
            policy=RetryPolicy(max_attempts=2, backoff_base=0.0),
            faults=FaultInjector(["crash:2:99"]),
            manifest_path=manifest,
            sleep=_no_sleep,
        )
        with pytest.raises(CellExecutionError):
            killed.matrix(_ALGOS, _GRAPHS)
        journal = RunManifest.load(manifest)
        assert sorted(journal.completed) == [("BFS", "FR")]
        assert journal.remaining([("BFS", "FR"), ("CC", "FR")]) == [
            ("CC", "FR")
        ]

        resumed = ResilientRunService(
            cache_dir=cache,
            policy=_FAST,
            manifest_path=manifest,
            resume=True,
            sleep=_no_sleep,
        )
        # No algorithms/graphs given: the manifest header supplies them.
        cells = resumed.matrix()
        assert canonical_reports_json(cells) == clean_reports_json
        assert resumed.stats.hits == 1  # finished cell replays from cache
        assert resumed.stats.misses == 1  # only the unfinished cell runs
        assert RunManifest.load(manifest).remaining(
            [("BFS", "FR"), ("CC", "FR")]
        ) == []

    def test_manifest_tolerates_torn_tail(self, tmp_path):
        manifest = str(tmp_path / "m.jsonl")
        journal = RunManifest.start(manifest, _ALGOS, _GRAPHS)
        journal.mark("BFS", "FR", cache_key="abc")
        with open(manifest, "a") as handle:
            handle.write('{"cell": ["CC", "F')  # killed mid-append
        reloaded = RunManifest.load(manifest)
        assert reloaded.is_completed("BFS", "FR")
        assert not reloaded.is_completed("CC", "FR")
        assert reloaded.algorithms == _ALGOS

    def test_manifest_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "not_a_manifest.json"
        path.write_text(json.dumps({"kind": "something-else"}) + "\n")
        with pytest.raises(ValueError):
            RunManifest.load(str(path))

    def test_mark_is_idempotent(self, tmp_path):
        manifest = str(tmp_path / "m.jsonl")
        journal = RunManifest.start(manifest, _ALGOS, _GRAPHS)
        journal.mark("BFS", "FR", cache_key="abc")
        journal.mark("BFS", "FR", cache_key="abc")
        with open(manifest) as handle:
            assert len(handle.read().splitlines()) == 2  # header + 1 cell


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=8, backoff_base=0.1, backoff_max=0.5, jitter=0.0
        )
        delays = [policy.delay(a) for a in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_max=1.0, jitter=0.2)
        first = policy.delay(1, "BFS/FR")
        assert first == policy.delay(1, "BFS/FR")  # no RNG state
        assert first != policy.delay(1, "CC/FR")  # but per-cell distinct
        for token in ("BFS/FR", "CC/FR", "PR/LJ"):
            assert 0.8 <= policy.delay(1, token) <= 1.2

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=-1.0)

    def test_retry_call_converges_and_exhausts(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        assert (
            retry_call(flaky, policy=_FAST, sleep=_no_sleep) == "ok"
        )
        assert len(calls) == 3
        with pytest.raises(CellTimeoutError):
            retry_call(
                lambda: (_ for _ in ()).throw(CellTimeoutError("x")),
                policy=RetryPolicy(max_attempts=2, backoff_base=0.0),
                sleep=_no_sleep,
            )


class TestFaultSpecParsing:
    def test_parse_forms(self):
        assert FaultSpec.parse("crash:2") == FaultSpec("crash", 2)
        assert FaultSpec.parse("crash:2:3") == FaultSpec("crash", 2, 3)
        assert FaultSpec.parse("hang:1:0.5") == FaultSpec(
            "hang", 1, 1, 0.5
        )
        assert FaultSpec.parse("kill:3") == FaultSpec("kill", 3)
        assert FaultSpec.parse("flaky-store:1:2") == FaultSpec(
            "flaky-store", 1, 2
        )
        assert FaultSpec.parse("corrupt-cache") == FaultSpec(
            "corrupt-cache", 1
        )

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultSpec.parse("meteor:1")
        with pytest.raises(ValueError):
            FaultSpec.parse("crash:0")
        with pytest.raises(ValueError):
            FaultSpec.parse("crash:1:2:3")


class TestResilientSweeps:
    def test_run_sweeps_retries_transient_failures(self, monkeypatch):
        from repro.harness import sweeps as sweeps_mod

        calls = []

        def flaky_sweep(**kwargs):
            calls.append(kwargs)
            if len(calls) < 3:
                raise OSError("transient dataset hiccup")
            return "sentinel"

        monkeypatch.setitem(sweeps_mod.SWEEPS, "flaky", flaky_sweep)
        results = run_sweeps(
            ["flaky"], policy=_FAST, sleep=_no_sleep, graph_key="FR"
        )
        assert results == {"flaky": "sentinel"}
        assert len(calls) == 3
        assert all(c == {"graph_key": "FR"} for c in calls)

    def test_run_sweeps_rejects_unknown_names(self):
        with pytest.raises(KeyError):
            run_sweeps(["nope"])

    def test_real_sweep_through_the_driver(self):
        results = run_sweeps(
            ["e_threshold"],
            policy=_FAST,
            sleep=_no_sleep,
            graph_key="FR",
            algorithm="BFS",
            thresholds=(64,),
        )
        assert results["e_threshold"].rows
