"""Robustness tests: degenerate graphs, odd inputs, misuse."""

import numpy as np
import pytest

from repro.graph import CSRGraph, star_graph
from repro.graphdyns import GraphDynS, GraphDynSConfig
from repro.graphdyns.timing import GraphDynSTimingModel
from repro.vcpm import ALGORITHMS, run_vcpm
from repro.vcpm.engine import run_vcpm as run


class TestDegenerateGraphs:
    def test_single_vertex_no_edges(self):
        g = CSRGraph.empty(1)
        result = run_vcpm(g, ALGORITHMS["BFS"], source=0)
        assert result.properties.tolist() == [0.0]
        assert result.converged

    def test_self_loop_only(self):
        g = CSRGraph.from_edge_list(1, [(0, 0)])
        result = run_vcpm(g, ALGORITHMS["SSSP"], source=0)
        assert result.properties[0] == 0.0  # self loop cannot improve
        assert result.converged

    def test_two_cycle(self):
        g = CSRGraph.from_edge_list(2, [(0, 1), (1, 0)])
        result = run_vcpm(g, ALGORITHMS["BFS"], source=0)
        assert result.properties.tolist() == [0.0, 1.0]

    def test_all_isolated_vertices(self):
        g = CSRGraph.empty(100)
        result = run_vcpm(g, ALGORITHMS["CC"])
        # Every vertex its own component; converges after one iteration.
        assert np.array_equal(result.properties, np.arange(100, dtype=float))
        assert result.converged

    def test_massive_star(self):
        # One dispatch must split a 5000-edge list without distortion.
        g = star_graph(5000)
        result, report = GraphDynS().run(g, ALGORITHMS["BFS"], source=0)
        assert result.converged
        assert np.all(result.properties[1:] == 1.0)
        assert report.cycles > 0

    def test_zero_weight_edges(self):
        g = CSRGraph.from_edge_list(3, [(0, 1), (1, 2)], weights=[0.0, 0.0])
        result = run_vcpm(g, ALGORITHMS["SSSP"], source=0)
        assert result.properties.tolist() == [0.0, 0.0, 0.0]

    def test_parallel_edges(self):
        g = CSRGraph.from_edge_list(
            2, [(0, 1), (0, 1), (0, 1)], weights=[5.0, 1.0, 3.0]
        )
        result = run_vcpm(g, ALGORITHMS["SSSP"], source=0)
        assert result.properties[1] == 1.0  # min over parallel edges


class TestTimingModelRobustness:
    def test_graph_with_no_edges(self):
        g = CSRGraph.empty(50)
        result, report = GraphDynS().run(g, ALGORITHMS["CC"])
        assert report.edges_processed == 0
        assert report.gteps == 0.0

    def test_report_on_zero_iteration_run(self):
        g = CSRGraph.empty(0)
        result, report = GraphDynS().run(g, ALGORITHMS["CC"])
        assert report.cycles == 0
        assert report.seconds == 0.0

    def test_models_are_single_use_observers(self, small_powerlaw):
        # Re-observing a second run accumulates -- documented behaviour;
        # fresh model per run gives fresh numbers.
        spec = ALGORITHMS["BFS"]
        model = GraphDynSTimingModel(small_powerlaw, spec)
        run(small_powerlaw, spec, source=0, observers=[model])
        first = model.total_cycles
        run(small_powerlaw, spec, source=0, observers=[model])
        assert model.total_cycles > first

    def test_single_ue_config(self, small_powerlaw):
        config = GraphDynSConfig(num_ues=1)
        model = GraphDynSTimingModel(
            small_powerlaw, ALGORITHMS["BFS"], config
        )
        result = run(
            small_powerlaw, ALGORITHMS["BFS"], source=0, observers=[model]
        )
        # Throughput collapses to <= 1 edge/cycle on the single reduce
        # pipeline, but the model stays sane.
        assert model.total_cycles >= result.total_edges_processed

    def test_single_pe_config(self, small_powerlaw):
        config = GraphDynSConfig(num_pes=1, num_dispatchers=1)
        result, report = GraphDynS(config).run(
            small_powerlaw, ALGORITHMS["BFS"], source=0
        )
        assert result.converged


class TestNumericEdgeCases:
    def test_infinite_initial_props_stable(self):
        g = CSRGraph.from_edge_list(3, [(1, 2)])
        # Source 0 has no outgoing path to 1: 1 stays at inf and its
        # iteration-0 scatter (inf + w) must not corrupt 2.
        result = run_vcpm(g, ALGORITHMS["SSSP"], source=0)
        assert np.isinf(result.properties[1])
        assert np.isinf(result.properties[2])

    def test_large_weights(self):
        g = CSRGraph.from_edge_list(2, [(0, 1)], weights=[1e30])
        result = run_vcpm(g, ALGORITHMS["SSSP"], source=0)
        assert result.properties[1] == pytest.approx(1e30, rel=1e-6)

    def test_pr_on_sink_heavy_graph(self):
        # All edges into one sink: ranks must stay finite.
        g = star_graph(50)
        result = run_vcpm(g, ALGORITHMS["PR"], max_iterations=10)
        assert np.all(np.isfinite(result.properties))

    def test_sswp_unreachable_zero(self, disconnected_graph):
        result = run_vcpm(disconnected_graph, ALGORITHMS["SSWP"], source=0)
        assert result.properties[3] == 0.0  # unreachable keeps init width
