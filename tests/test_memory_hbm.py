"""HBM timing/energy model tests."""

import pytest

from repro.memory import (
    HBM1_512GBS,
    HBM2_900GBS,
    AccessPattern,
    HBMModel,
    Region,
)


def _stream(total, run=None, region=Region.EDGE, write=False):
    return AccessPattern(
        region=region,
        total_bytes=total,
        run_bytes=float(run if run is not None else total),
        is_write=write,
    )


class TestPatternCycles:
    def test_zero_bytes_zero_cycles(self):
        hbm = HBMModel(HBM1_512GBS)
        assert hbm.pattern_cycles(_stream(0, 1)) == 0.0

    def test_sequential_approaches_peak(self):
        hbm = HBMModel(HBM1_512GBS)
        total = 16 * 1024 * 1024
        cycles = hbm.pattern_cycles(_stream(total))
        ideal = total / HBM1_512GBS.peak_bytes_per_cycle
        assert cycles == pytest.approx(ideal, rel=0.05)

    def test_random_much_slower_than_sequential(self):
        hbm = HBMModel(HBM1_512GBS)
        total = 1024 * 1024
        sequential = hbm.pattern_cycles(_stream(total))
        random = hbm.pattern_cycles(_stream(total, run=8))
        assert random > 3 * sequential

    def test_short_runs_padded_to_burst(self):
        hbm = HBMModel(HBM1_512GBS)
        # 8-byte runs transfer 32-byte bursts: 4x the transfer work.
        eight = hbm.pattern_cycles(_stream(1024, run=8))
        thirty_two = hbm.pattern_cycles(_stream(1024, run=32))
        assert eight > thirty_two

    def test_monotonic_in_run_length(self):
        hbm = HBMModel(HBM1_512GBS)
        total = 256 * 1024
        cycles = [
            hbm.pattern_cycles(_stream(total, run=r))
            for r in (32, 128, 1024, 8192, total)
        ]
        assert all(a >= b for a, b in zip(cycles, cycles[1:]))

    def test_ideal_cycles(self):
        hbm = HBMModel(HBM1_512GBS)
        assert hbm.ideal_cycles(512.0) == 1.0


class TestService:
    def test_accumulates_traffic_by_region(self):
        hbm = HBMModel(HBM1_512GBS)
        hbm.service([_stream(100, region=Region.EDGE)])
        hbm.service([_stream(50, region=Region.OFFSET)])
        assert hbm.bytes_by_region[Region.EDGE] == 100
        assert hbm.bytes_by_region[Region.OFFSET] == 50
        assert hbm.total_bytes == 150

    def test_reads_and_writes_separated(self):
        hbm = HBMModel(HBM1_512GBS)
        hbm.service([_stream(100), _stream(40, write=True)])
        assert hbm.read_bytes == 100
        assert hbm.write_bytes == 40

    def test_service_result_fields(self):
        hbm = HBMModel(HBM1_512GBS)
        result = hbm.service([_stream(5120)])
        assert result.total_bytes == 5120
        assert result.ideal_cycles == pytest.approx(10.0)
        assert result.cycles >= result.ideal_cycles
        assert 0 < result.bandwidth_utilization <= 1.0

    def test_patterns_share_bandwidth(self):
        hbm = HBMModel(HBM1_512GBS)
        one = hbm.pattern_cycles(_stream(1024))
        combined = HBMModel(HBM1_512GBS).service([_stream(1024), _stream(1024)])
        assert combined.cycles == pytest.approx(2 * one)

    def test_reset(self):
        hbm = HBMModel(HBM1_512GBS)
        hbm.service([_stream(100)])
        hbm.reset()
        assert hbm.total_bytes == 0
        assert hbm.total_cycles == 0.0


class TestEnergy:
    def test_seven_pj_per_bit(self):
        hbm = HBMModel(HBM1_512GBS)
        hbm.service([_stream(1000)])
        assert hbm.energy_pj == pytest.approx(1000 * 8 * 7.0)

    def test_writes_cost_same_as_reads(self):
        a = HBMModel(HBM1_512GBS)
        a.service([_stream(1000)])
        b = HBMModel(HBM1_512GBS)
        b.service([_stream(1000, write=True)])
        assert a.energy_pj == b.energy_pj


class TestConfigs:
    def test_table3_bandwidths(self):
        assert HBM1_512GBS.peak_bytes_per_cycle == 512.0
        # 900 GB/s at the V100's 1.25 GHz clock.
        assert HBM2_900GBS.peak_bytes_per_cycle == pytest.approx(720.0)

    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            AccessPattern(Region.EDGE, total_bytes=-1, run_bytes=8)
        with pytest.raises(ValueError):
            AccessPattern(Region.EDGE, total_bytes=10, run_bytes=0)

    def test_num_runs(self):
        assert _stream(100, run=10).num_runs == pytest.approx(10.0)
        assert _stream(0, run=10).num_runs == 0.0
