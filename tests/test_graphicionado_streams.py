"""Component-level Graphicionado stream model tests."""

import numpy as np
import pytest

from repro.graph import power_law_graph
from repro.graphicionado import GraphicionadoStreams
from repro.vcpm import ALGORITHMS, run_vcpm


@pytest.fixture(scope="module")
def stream_graph():
    return power_law_graph(200, 900, seed=41, name="streams")


def _finite_equal(a, b):
    return np.array_equal(
        np.nan_to_num(a, posinf=1e30, neginf=-1e30),
        np.nan_to_num(b, posinf=1e30, neginf=-1e30),
    )


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("algo", ["BFS", "SSSP", "CC", "SSWP"])
    def test_matches_engine(self, algo, stream_graph):
        engine = run_vcpm(stream_graph, ALGORITHMS[algo], source=0)
        streams = GraphicionadoStreams(ALGORITHMS[algo]).run(
            stream_graph, source=0
        )
        assert streams.converged == engine.converged
        assert _finite_equal(streams.properties, engine.properties)

    def test_pagerank_matches(self, stream_graph):
        engine = run_vcpm(
            stream_graph, ALGORITHMS["PR"], max_iterations=4,
            pr_tolerance=0.0,
        )
        streams = GraphicionadoStreams(ALGORITHMS["PR"]).run(
            stream_graph, max_iterations=4
        )
        assert np.allclose(streams.properties, engine.properties)

    def test_edges_processed_match_engine(self, stream_graph):
        engine = run_vcpm(stream_graph, ALGORITHMS["SSSP"], source=0)
        streams = GraphicionadoStreams(ALGORITHMS["SSSP"]).run(
            stream_graph, source=0
        )
        assert streams.edges_processed == engine.total_edges_processed


class TestDocumentedInefficiencies:
    def test_sentinel_reads_one_per_active_vertex(self, stream_graph):
        engine = run_vcpm(stream_graph, ALGORITHMS["BFS"], source=0)
        streams = GraphicionadoStreams(ALGORITHMS["BFS"]).run(
            stream_graph, source=0
        )
        # One probe per non-terminal active vertex (the last vertex's list
        # ends the edge array, so it has no sentinel).
        assert 0 < streams.sentinel_reads <= engine.total_active_vertices

    def test_per_edge_scheduling(self, stream_graph):
        streams = GraphicionadoStreams(ALGORITHMS["BFS"]).run(
            stream_graph, source=0
        )
        assert streams.scheduling_ops == streams.edges_processed

    def test_full_vertex_apply(self, stream_graph):
        streams = GraphicionadoStreams(ALGORITHMS["BFS"]).run(
            stream_graph, source=0
        )
        assert streams.apply_operations == (
            streams.num_iterations * stream_graph.num_vertices
        )

    def test_atomic_stalls_on_contended_graph(self):
        # A funnel: many sources update one destination in each round.
        from repro.graph import CSRGraph

        edges = [(i, 50) for i in range(50)]
        graph = CSRGraph.from_edge_list(51, edges)
        streams = GraphicionadoStreams(ALGORITHMS["CC"]).run(graph)
        assert streams.atomic_stall_cycles > 0

    def test_graphdyns_has_fewer_scheduling_ops(self, stream_graph):
        from repro.graphdyns import GraphDynS

        streams = GraphicionadoStreams(ALGORITHMS["SSSP"]).run(
            stream_graph, source=0
        )
        component = GraphDynS().run_component_level(
            stream_graph, ALGORITHMS["SSSP"], source=0
        )
        assert component.scheduling_ops < streams.scheduling_ops
