"""Bank-state DRAM reference model vs the analytic HBM formula."""

import pytest

from repro.memory import AccessPattern, HBM1_512GBS, HBMModel, Region
from repro.memory.dram_detail import (
    DRAMReferenceModel,
    random_trace,
    sequential_trace,
)


class TestReferenceModelBasics:
    def test_sequential_hits_row_buffer(self):
        model = DRAMReferenceModel(HBM1_512GBS)
        model.service_trace(sequential_trace(64 * 1024))
        assert model.hit_rate > 0.9

    def test_random_misses_row_buffer(self):
        model = DRAMReferenceModel(HBM1_512GBS)
        model.service_trace(random_trace(2000, seed=1))
        assert model.hit_rate < 0.1

    def test_sequential_faster_than_random_per_byte(self):
        seq = DRAMReferenceModel(HBM1_512GBS)
        seq_bytes = 2000 * 32
        seq_cycles = seq.service_trace(sequential_trace(seq_bytes))

        rnd = DRAMReferenceModel(HBM1_512GBS)
        rnd_cycles = rnd.service_trace(random_trace(2000, request_bytes=32))
        assert rnd_cycles > 1.5 * seq_cycles

    def test_reset(self):
        model = DRAMReferenceModel(HBM1_512GBS)
        model.service_trace(sequential_trace(4096))
        model.reset()
        assert model.total_cycles == 0.0
        assert model.row_hits == model.row_misses == 0

    def test_empty_trace(self):
        model = DRAMReferenceModel(HBM1_512GBS)
        assert model.service_trace([]) == 0.0


class TestAnalyticFormulaValidation:
    """The production formula must track the state machine in shape."""

    def _analytic_cycles(self, total_bytes, run_bytes):
        hbm = HBMModel(HBM1_512GBS)
        return hbm.pattern_cycles(
            AccessPattern(Region.EDGE, total_bytes, float(run_bytes))
        )

    def test_sequential_agreement(self):
        total = 1 << 20
        reference = DRAMReferenceModel(HBM1_512GBS).service_trace(
            sequential_trace(total)
        )
        analytic = self._analytic_cycles(total, total)
        assert analytic == pytest.approx(reference, rel=0.5)

    def test_random_agreement_order_of_magnitude(self):
        n = 4000
        reference = DRAMReferenceModel(HBM1_512GBS).service_trace(
            random_trace(n, request_bytes=32, seed=2)
        )
        analytic = self._analytic_cycles(n * 32, 32)
        assert 0.2 < analytic / reference < 5.0

    def test_both_models_rank_locality_identically(self):
        """Across run lengths, both models must order the workloads the
        same way -- the property every Fig. 12/13 conclusion rests on."""
        total = 1 << 18
        run_lengths = [32, 256, 2048, total]
        reference_cycles = []
        for run in run_lengths:
            model = DRAMReferenceModel(HBM1_512GBS)
            # Emulate runs: contiguous `run`-byte stretches at scattered
            # bases; the odd burst stride keeps bases spread over channels.
            trace = []
            base = 0
            for _ in range(total // run):
                trace.extend(sequential_trace(run, base=base))
                base += (101 * 64 + 7) * 32  # far jump, channel-spread
            reference_cycles.append(model.service_trace(trace))
        analytic_cycles = [
            self._analytic_cycles(total, run) for run in run_lengths
        ]
        # Longer runs are never (materially) slower, in either model; the
        # reference gets 20% slack for bank-placement artifacts of the
        # synthetic stride.
        assert all(
            a >= 0.8 * b
            for a, b in zip(reference_cycles, reference_cycles[1:])
        )
        assert all(
            a >= b for a, b in zip(analytic_cycles, analytic_cycles[1:])
        )
        # And both agree on the headline gap between pointer chasing and
        # streaming.
        assert reference_cycles[0] > 2.5 * reference_cycles[-1]
        assert analytic_cycles[0] > 2.5 * analytic_cycles[-1]
