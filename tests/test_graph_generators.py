"""Synthetic graph generator tests."""

import numpy as np
import pytest

from repro.graph import (
    chain_graph,
    complete_graph,
    grid_graph,
    power_law_graph,
    rmat_graph,
    star_graph,
    uniform_random_graph,
)
from repro.graph.properties import gini_coefficient


class TestRMAT:
    def test_dimensions(self):
        g = rmat_graph(8, edge_factor=16, seed=1)
        assert g.num_vertices == 256
        assert g.num_edges == 256 * 16

    def test_deterministic_by_seed(self):
        a = rmat_graph(7, seed=3)
        b = rmat_graph(7, seed=3)
        assert np.array_equal(a.edges, b.edges)
        assert np.array_equal(a.weights, b.weights)

    def test_different_seeds_differ(self):
        a = rmat_graph(7, seed=3)
        b = rmat_graph(7, seed=4)
        assert not np.array_equal(a.edges, b.edges)

    def test_skewed_degrees(self):
        g = rmat_graph(10, seed=5)
        degrees = g.out_degree()
        # RMAT is heavy-tailed: max degree well above the mean.
        assert degrees.max() > 4 * degrees.mean()

    def test_weights_in_paper_range(self):
        g = rmat_graph(6, seed=2)
        assert g.weights.min() >= 0
        assert g.weights.max() <= 255

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            rmat_graph(0)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            rmat_graph(5, a=0.5, b=0.4, c=0.4)

    def test_flatter_probabilities_reduce_skew(self):
        skewed = rmat_graph(10, a=0.57, b=0.19, c=0.19, seed=1)
        flat = rmat_graph(10, a=0.3, b=0.23, c=0.23, seed=1)
        assert (
            gini_coefficient(skewed.out_degree())
            > gini_coefficient(flat.out_degree())
        )


class TestPowerLaw:
    def test_dimensions(self):
        g = power_law_graph(1000, 8000, seed=1)
        assert g.num_vertices == 1000
        assert g.num_edges == 8000

    def test_deterministic(self):
        a = power_law_graph(200, 1000, seed=9)
        b = power_law_graph(200, 1000, seed=9)
        assert np.array_equal(a.edges, b.edges)

    def test_heavy_tail(self):
        g = power_law_graph(2000, 30000, seed=2)
        degrees = g.out_degree()
        assert degrees.max() > 3 * degrees.mean()

    def test_max_share_caps_head(self):
        capped = power_law_graph(2000, 40000, max_share=0.001, seed=3)
        loose = power_law_graph(2000, 40000, max_share=0.05, seed=3)
        assert capped.out_degree().max() < loose.out_degree().max()

    def test_rejects_zero_vertices(self):
        with pytest.raises(ValueError):
            power_law_graph(0, 10)

    def test_rejects_negative_edges(self):
        with pytest.raises(ValueError):
            power_law_graph(10, -1)

    def test_zero_edges_allowed(self):
        g = power_law_graph(10, 0, seed=1)
        assert g.num_edges == 0


class TestUniform:
    def test_dimensions(self):
        g = uniform_random_graph(100, 500, seed=1)
        assert g.num_vertices == 100
        assert g.num_edges == 500

    def test_less_skewed_than_power_law(self):
        uni = uniform_random_graph(1000, 16000, seed=4)
        pl = power_law_graph(1000, 16000, seed=4)
        assert (
            gini_coefficient(uni.out_degree())
            < gini_coefficient(pl.out_degree())
        )


class TestDeterministicShapes:
    def test_grid_degree_bounds(self):
        g = grid_graph(4, 5)
        assert g.num_vertices == 20
        degrees = g.out_degree()
        assert degrees.min() == 2  # corners
        assert degrees.max() == 4  # interior

    def test_grid_is_symmetric(self):
        g = grid_graph(3, 3)
        edges = {(s, d) for s, d, _ in g.iter_edges()}
        assert all((d, s) in edges for s, d in edges)

    def test_chain_structure(self):
        g = chain_graph(10)
        assert g.num_edges == 9
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(9)) == []

    def test_star_structure(self):
        g = star_graph(5)
        assert g.num_vertices == 6
        assert g.out_degree(0) == 5
        assert all(g.out_degree(i) == 0 for i in range(1, 6))

    def test_complete_structure(self):
        g = complete_graph(4)
        assert g.num_edges == 12
        assert all(g.out_degree(v) == 3 for v in range(4))
