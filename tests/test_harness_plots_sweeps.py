"""ASCII plotting and design-sweep tests."""

import pytest

from repro.harness.plots import bar_chart, grouped_bar_chart, line_series
from repro.harness.sweeps import (
    sweep_bitmap_block,
    sweep_e_threshold,
    sweep_n_simt,
)


class TestBarChart:
    def test_bars_scale_to_max(self):
        out = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_title_and_unit(self):
        out = bar_chart({"x": 1.0}, title="T", unit="ms")
        assert out.startswith("T\n")
        assert "1.00ms" in out

    def test_empty(self):
        assert bar_chart({}, title="nothing") == "nothing"

    def test_zero_values(self):
        out = bar_chart({"a": 0.0, "b": 0.0})
        assert "#" not in out


class TestGroupedBarChart:
    def test_layout(self):
        out = grouped_bar_chart(
            ["g1", "g2"],
            {"sys1": [1.0, 2.0], "sys2": [2.0, 4.0]},
            width=8,
        )
        assert "g1:" in out and "g2:" in out
        assert out.count("sys1") == 2

    def test_rejects_ragged_series(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["g1"], {"s": [1.0, 2.0]})


class TestLineSeries:
    def test_markers_present(self):
        out = line_series(
            ["a", "b", "c"],
            {"up": [1.0, 2.0, 3.0], "down": [3.0, 2.0, 1.0]},
        )
        assert "U" in out and "D" in out
        assert "U=up" in out

    def test_min_max_labels(self):
        out = line_series(["x"], {"s": [5.0]})
        assert "max 5.00" in out
        assert "min 5.00" in out

    def test_rejects_ragged(self):
        with pytest.raises(ValueError):
            line_series(["a"], {"s": [1.0, 2.0]})

    def test_overlap_marker(self):
        out = line_series(["a"], {"sys": [1.0], "rig": [1.0]})
        assert "*" in out


class TestSweeps:
    """Sweeps on the small FR proxy to stay fast."""

    def test_e_threshold_monotone_ops(self):
        result = sweep_e_threshold("FR", "BFS", thresholds=(16, 128))
        ops = [row[1] for row in result.rows]
        assert ops[0] >= ops[1]

    def test_n_simt_efficiency_decreases(self):
        result = sweep_n_simt("FR", "BFS", lane_counts=(4, 16))
        assert result.rows[0][1] >= result.rows[1][1] - 1e-9

    def test_bitmap_block_slack_grows(self):
        result = sweep_bitmap_block("FR", "BFS", block_sizes=(64, 512))
        assert result.rows[0][2] <= result.rows[1][2]

    def test_sweep_renders(self):
        out = sweep_e_threshold("FR", "BFS", thresholds=(64,)).render()
        assert "eThreshold" in out
