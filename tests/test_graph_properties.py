"""Graph statistics (Fig. 2 support) tests."""

import numpy as np
import pytest

from repro.graph import (
    DEGREE_INTERVALS,
    cacheline_locality,
    degree_histogram,
    degree_interval_counts,
    gini_coefficient,
    load_imbalance,
    power_law_exponent_estimate,
)
from repro.graph.generators import power_law_graph, uniform_random_graph


class TestDegreeHistogram:
    def test_counts_sum_to_vertices(self, tiny_graph):
        hist = degree_histogram(tiny_graph)
        assert sum(hist.values()) == tiny_graph.num_vertices

    def test_exact_tiny(self, tiny_graph):
        hist = degree_histogram(tiny_graph)
        assert hist == {0: 1, 1: 3, 2: 2, 3: 1}


class TestDegreeIntervals:
    def test_paper_intervals_shape(self):
        assert DEGREE_INTERVALS[0] == (0, 0)
        assert DEGREE_INTERVALS[1] == (1, 2)
        assert len(DEGREE_INTERVALS) == 8

    def test_counts_partition_degrees(self):
        degrees = np.array([0, 1, 2, 3, 5, 10, 20, 40, 100])
        counts = degree_interval_counts(degrees)
        assert sum(counts) == degrees.size

    def test_exact_binning(self):
        counts = degree_interval_counts(np.array([0, 2, 4, 8, 16, 32, 64, 65]))
        assert counts == [1, 1, 1, 1, 1, 1, 1, 1]

    def test_empty(self):
        assert sum(degree_interval_counts(np.array([]))) == 0


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.full(100, 7.0)) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_near_one(self):
        values = np.zeros(1000)
        values[0] = 100.0
        assert gini_coefficient(values) > 0.99

    def test_empty_and_zero(self):
        assert gini_coefficient(np.array([])) == 0.0
        assert gini_coefficient(np.zeros(10)) == 0.0

    def test_power_law_more_skewed_than_uniform(self):
        pl = power_law_graph(1000, 10000, seed=1).out_degree()
        uni = uniform_random_graph(1000, 10000, seed=1).out_degree()
        assert gini_coefficient(pl) > gini_coefficient(uni)


class TestLoadImbalance:
    def test_balanced(self):
        assert load_imbalance(np.array([5, 5, 5, 5])) == 1.0

    def test_imbalanced(self):
        assert load_imbalance(np.array([10, 0, 0, 0])) == 4.0

    def test_degenerate(self):
        assert load_imbalance(np.array([])) == 1.0
        assert load_imbalance(np.zeros(4)) == 1.0


class TestCachelineLocality:
    def test_all_small_lists(self, small_chain):
        # Chain: every vertex has <= 1 edge; everything fits a cacheline.
        assert cacheline_locality(small_chain) == 1.0

    def test_star_hub_exceeds(self, small_star):
        # Hub has 40 edges (> 8 per 64B line); leaves have 0.
        frac = cacheline_locality(small_star)
        assert frac == pytest.approx(40 / 41)

    def test_empty_graph(self):
        from repro.graph import CSRGraph

        assert cacheline_locality(CSRGraph.empty(0)) == 1.0

    def test_paper_observation_on_power_law(self):
        # "many active vertices only possess 4-8 edges": most edge lists
        # fit one cacheline on a power-law graph with mean degree 8.
        g = power_law_graph(5000, 40000, seed=8)
        assert cacheline_locality(g) > 0.5


class TestPowerLawExponent:
    def test_estimates_in_plausible_range(self):
        g = power_law_graph(20000, 200000, exponent=2.1, seed=3)
        est = power_law_exponent_estimate(g, d_min=2)
        assert 1.5 < est < 4.0

    def test_nan_when_no_qualifying_vertices(self):
        from repro.graph import CSRGraph

        assert np.isnan(power_law_exponent_estimate(CSRGraph.empty(5)))
