"""Workload-balanced dispatch (Section 5.1.1) tests."""

import numpy as np
import pytest

from repro.core import balanced_dispatch, hash_dispatch, per_vertex_dispatch_ops


class TestBalancedDispatch:
    def test_conserves_edges(self):
        degrees = np.array([3, 300, 17, 0, 128, 1000])
        outcome = balanced_dispatch(degrees, num_pes=16, e_threshold=128)
        assert outcome.pe_loads.sum() == degrees.sum()

    def test_small_lists_stay_whole(self):
        outcome = balanced_dispatch(np.array([5, 7, 2]), num_pes=4, e_threshold=16)
        assert outcome.scheduling_ops == 3
        assert outcome.num_splits == 0

    def test_large_list_splits_evenly(self):
        outcome = balanced_dispatch(np.array([100]), num_pes=4, e_threshold=16)
        # ceil(100/16) = 7 chunks of 14-15 edges.
        assert outcome.scheduling_ops == 7
        assert outcome.num_splits == 1
        assert outcome.max_load <= 2 * 15

    def test_chunk_sizes_bounded_by_threshold(self):
        outcome = balanced_dispatch(np.array([129]), num_pes=16, e_threshold=128)
        assert outcome.scheduling_ops == 2
        assert outcome.max_load <= 128

    def test_balances_power_law_frontier(self, medium_powerlaw):
        # All degrees on this proxy sit below eThreshold, so balance comes
        # purely from round-robin chunk placement; residual variance stays
        # modest.
        degrees = medium_powerlaw.out_degree()
        outcome = balanced_dispatch(degrees)
        assert outcome.imbalance < 1.35

    def test_round_robin_avoids_remainder_pileup(self):
        # Many two-chunk vertices must not all land on PE0/PE1.
        degrees = np.full(64, 200)
        outcome = balanced_dispatch(degrees, num_pes=16, e_threshold=128)
        assert outcome.imbalance == pytest.approx(1.0, abs=0.05)

    def test_empty_frontier(self):
        outcome = balanced_dispatch(np.array([], dtype=np.int64))
        assert outcome.pe_loads.sum() == 0
        assert outcome.scheduling_ops == 0
        assert outcome.imbalance == 1.0

    def test_zero_degree_vertices_cost_one_op(self):
        outcome = balanced_dispatch(np.zeros(5, dtype=np.int64))
        assert outcome.scheduling_ops == 5
        assert outcome.pe_loads.sum() == 0

    def test_normalized_loads_mean_one(self):
        outcome = balanced_dispatch(np.array([10, 20, 30, 40]), num_pes=4)
        assert outcome.normalized_loads().mean() == pytest.approx(1.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            balanced_dispatch(np.array([1]), num_pes=0)
        with pytest.raises(ValueError):
            balanced_dispatch(np.array([1]), e_threshold=0)
        with pytest.raises(ValueError):
            balanced_dispatch(np.array([-1]))


class TestHashDispatch:
    def test_conserves_edges(self):
        ids = np.array([0, 1, 2, 17])
        degrees = np.array([5, 10, 15, 20])
        outcome = hash_dispatch(ids, degrees, num_pes=16)
        assert outcome.pe_loads.sum() == degrees.sum()

    def test_vertex_hash_placement(self):
        outcome = hash_dispatch(
            np.array([0, 16]), np.array([10, 20]), num_pes=16
        )
        assert outcome.pe_loads[0] == 30  # both hash to PE0

    def test_every_edge_is_a_scheduling_op(self):
        outcome = hash_dispatch(np.array([1, 2]), np.array([100, 50]))
        assert outcome.scheduling_ops == 150

    def test_hot_vertex_imbalance(self):
        ids = np.arange(16)
        degrees = np.ones(16, dtype=np.int64)
        degrees[3] = 1000
        outcome = hash_dispatch(ids, degrees, num_pes=16)
        assert outcome.imbalance > 10

    def test_balanced_beats_hash_on_skew(self, medium_powerlaw):
        degrees = medium_powerlaw.out_degree()
        ids = np.arange(medium_powerlaw.num_vertices)
        hashed = hash_dispatch(ids, degrees)
        balanced = balanced_dispatch(degrees)
        assert balanced.imbalance <= hashed.imbalance

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            hash_dispatch(np.array([1]), np.array([1, 2]))


class TestDispatchOpsClosedForm:
    def test_matches_full_dispatch(self):
        degrees = np.array([3, 300, 17, 0, 128, 1000, 127, 129])
        full = balanced_dispatch(degrees, e_threshold=128).scheduling_ops
        fast = per_vertex_dispatch_ops(degrees, e_threshold=128)
        assert fast == full

    def test_reduction_ratio_is_large_on_real_degrees(self, medium_powerlaw):
        degrees = medium_powerlaw.out_degree()
        ops = per_vertex_dispatch_ops(degrees)
        # Fig. 14a: ~94% fewer scheduling operations than per-edge.
        assert ops < 0.15 * degrees.sum()
