"""GraphDynS timing model tests: structure and ablation directionality."""

import pytest

from repro.graphdyns import GraphDynS, GraphDynSTimingModel
from repro.graphdyns.config import DEFAULT_CONFIG
from repro.vcpm import ALGORITHMS, run_vcpm


def _run_model(graph, algo="SSSP", config=DEFAULT_CONFIG, **kwargs):
    model = GraphDynSTimingModel(graph, ALGORITHMS[algo], config)
    result = run_vcpm(
        graph, ALGORITHMS[algo],
        source=kwargs.pop("source", 0),
        observers=[model],
        **kwargs,
    )
    return result, model


class TestReportStructure:
    def test_cycles_positive(self, medium_powerlaw):
        _, model = _run_model(medium_powerlaw)
        report = model.report()
        assert report.cycles > 0
        assert report.gteps > 0
        assert 0 < report.bandwidth_utilization <= 1.0

    def test_one_phase_per_iteration(self, medium_powerlaw):
        result, model = _run_model(medium_powerlaw)
        assert len(model.phases) == result.num_iterations

    def test_phase_totals_sum(self, medium_powerlaw):
        _, model = _run_model(medium_powerlaw)
        report = model.report()
        assert report.cycles == pytest.approx(
            report.scatter_cycles_total() + report.apply_cycles_total()
        )

    def test_edges_processed_matches_functional(self, medium_powerlaw):
        result, model = _run_model(medium_powerlaw)
        assert model.edges_processed == result.total_edges_processed

    def test_scatter_bound_by_slowest_subdatapath(self, medium_powerlaw):
        _, model = _run_model(medium_powerlaw)
        for phase in model.phases:
            if phase.scatter_cycles == 0:
                continue
            assert phase.scatter_cycles >= phase.scatter_compute_cycles
            assert phase.scatter_cycles >= phase.scatter_memory_cycles
            assert phase.scatter_cycles >= phase.scatter_update_cycles

    def test_traffic_recorded(self, medium_powerlaw):
        _, model = _run_model(medium_powerlaw)
        report = model.report()
        assert report.total_traffic_bytes > 0
        assert report.traffic.total_read > report.traffic.total_write

    def test_zero_stalls_with_atomic_optimization(self, medium_powerlaw):
        _, model = _run_model(medium_powerlaw)
        assert model.stall_cycles == 0


class TestAblationDirectionality:
    @pytest.fixture(scope="class")
    def reports(self, medium_powerlaw):
        configs = {
            "full": DEFAULT_CONFIG,
            "no_wb": DEFAULT_CONFIG.with_ablation(workload_balance=False),
            "no_ep": DEFAULT_CONFIG.with_ablation(exact_prefetch=False),
            "no_ao": DEFAULT_CONFIG.with_ablation(atomic_optimization=False),
            "no_us": DEFAULT_CONFIG.with_ablation(update_scheduling=False),
        }
        models = {
            name: GraphDynSTimingModel(
                medium_powerlaw, ALGORITHMS["SSSP"], cfg
            )
            for name, cfg in configs.items()
        }
        run_vcpm(
            medium_powerlaw, ALGORITHMS["SSSP"], source=0,
            observers=list(models.values()),
        )
        return {name: m.report() for name, m in models.items()}

    def test_full_config_fastest(self, reports):
        # Tiny (<0.1%) rounding differences in lane packing are tolerated.
        full = reports["full"].cycles
        for name, report in reports.items():
            assert report.cycles >= 0.999 * full, name

    def test_disabling_ep_adds_traffic(self, reports):
        assert (
            reports["no_ep"].total_traffic_bytes
            > reports["full"].total_traffic_bytes
        )

    def test_disabling_ao_adds_stalls(self, reports):
        assert reports["no_ao"].stall_cycles > 0
        assert reports["full"].stall_cycles == 0

    def test_disabling_us_adds_update_operations(self, reports):
        assert (
            reports["no_us"].update_operations
            > reports["full"].update_operations
        )

    def test_disabling_wb_adds_scheduling_ops(self, reports):
        assert (
            reports["no_wb"].scheduling_ops
            > reports["full"].scheduling_ops
        )


class TestUEScaling:
    def test_fewer_ues_never_faster(self, medium_powerlaw):
        models = {
            n: GraphDynSTimingModel(
                medium_powerlaw, ALGORITHMS["PR"],
                DEFAULT_CONFIG.with_num_ues(n),
            )
            for n in (32, 128)
        }
        run_vcpm(
            medium_powerlaw, ALGORITHMS["PR"], max_iterations=3,
            pr_tolerance=0.0, observers=list(models.values()),
        )
        assert models[32].total_cycles >= models[128].total_cycles


class TestAcceleratorFacade:
    def test_run_returns_consistent_pair(self, small_powerlaw):
        result, report = GraphDynS().run(
            small_powerlaw, ALGORITHMS["BFS"], source=0
        )
        assert report.system == "GraphDynS"
        assert report.algorithm == "BFS"
        assert report.iterations == result.num_iterations

    def test_pr_high_throughput_on_dense_iterations(self, medium_powerlaw):
        _, bfs = GraphDynS().run(medium_powerlaw, ALGORITHMS["BFS"], source=0)
        _, pr = GraphDynS().run(
            medium_powerlaw, ALGORITHMS["PR"], max_iterations=5
        )
        # PR streams every edge every iteration: far better GTEPS.
        assert pr.gteps > bfs.gteps
