"""Golden-master regression suite.

The canonical-report JSON of a small evaluation matrix and the exporter
output of a hand-built recorder are pinned byte-for-byte under
``tests/goldens/``.  Any change to the timing models, serialization, or
exporters that perturbs results shows up as a byte diff here.

Refresh intentionally-changed goldens with::

    pytest tests/test_goldens.py --update-goldens

On mismatch the freshly computed payload is written to
``tests/goldens/_diff/`` so CI can upload it as an artifact and a human
can diff the two files directly.
"""

import json
import pathlib

import pytest

from repro.harness.service import RunService, canonical_reports_json
from repro.obs import TraceRecorder, use_recorder
from repro.obs.export import chrome_trace, to_jsonl

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"
DIFF_DIR = GOLDEN_DIR / "_diff"

#: The pinned sub-matrix: one source-based cheap cell, one weighted, one
#: accumulating, on the smallest RMAT proxy and the smallest real proxy.
ALGOS = ["BFS", "SSSP", "PR"]
GRAPHS = ["RM22", "FR"]


def _check_or_update(name: str, payload: str, update: bool) -> None:
    """Compare ``payload`` byte-for-byte against the named golden."""
    golden = GOLDEN_DIR / name
    if update:
        golden.parent.mkdir(parents=True, exist_ok=True)
        golden.write_text(payload)
        return
    if not golden.exists():
        pytest.fail(
            f"golden {golden} missing; generate it with "
            "`pytest tests/test_goldens.py --update-goldens`"
        )
    expected = golden.read_text()
    if payload != expected:
        actual_path = DIFF_DIR / name
        actual_path.parent.mkdir(parents=True, exist_ok=True)
        actual_path.write_text(payload)
        pytest.fail(
            f"golden mismatch for {name}: current output written to "
            f"{actual_path}; diff it against {golden} (or rerun with "
            "--update-goldens if the change is intentional)"
        )


def _matrix_json(**service_kwargs) -> str:
    service = RunService(use_cache=False, **service_kwargs)
    cells = service.matrix(ALGOS, GRAPHS)
    return canonical_reports_json(cells)


def _golden_recorder() -> TraceRecorder:
    """A small, fully deterministic recorder exercising every feature."""
    rec = TraceRecorder()
    with use_recorder(rec):
        with rec.span("run", track="main", label="golden"):
            with rec.span("phase", track="main", iteration=0):
                rec.clock.advance(10.0)
                rec.complete_span(
                    "sub", begin=2.0, duration=5.0, track="sub", pe=3
                )
            rec.event("milestone", track="main", note="half")
            with rec.span("phase", track="main", iteration=1):
                rec.clock.advance(2.5)
        rec.counter("edges").add(7)
        rec.counter("edges").add(3)
        rec.gauge("util").set(0.5)
        rec.histogram("deg", edges=(1.0, 2.0, 4.0)).observe_many(
            [0.5, 1.0, 3.0, 9.0]
        )
    rec.finish()
    return rec


class TestMatrixGolden:
    def test_reports_byte_identical(self, update_goldens):
        _check_or_update(
            "matrix_reports.json", _matrix_json(), update_goldens
        )

    def test_traced_run_byte_identical(self, update_goldens):
        """Observability on must not perturb any reported number."""
        if update_goldens:
            pytest.skip("golden written by test_reports_byte_identical")
        with use_recorder(TraceRecorder()):
            traced = _matrix_json()
        _check_or_update("matrix_reports.json", traced, update=False)


class TestPlanGolden:
    """Pin the planner's canonical plan JSON, cold and warm.

    The plan dict embeds the spec, the content-addressed cache key of
    every grid cell, the reuse-ordered schedule, and the integer cost
    model — so this golden catches drift in any of spec serialization,
    cache-key derivation, classification, ordering, or cost estimation.
    """

    SPEC = (
        "name: golden-plan\n"
        "algorithms: [BFS, PR]\n"
        "graphs: [RM12, RM13]\n"
        "select: [cycles, gteps]\n"
    )

    def test_cold_plan_byte_identical(self, update_goldens):
        from repro.harness import planner
        from repro.harness.specs import parse_spec

        spec = parse_spec(self.SPEC)
        services = planner.services_for_spec(
            spec, cache_dir=None, use_cache=False
        )
        payload = planner.canonical_plan_json(
            planner.build_plan(spec, services)
        )
        _check_or_update("plans/plan_cold.json", payload, update_goldens)

    def test_warm_plan_byte_identical(self, update_goldens, tmp_path):
        from repro.harness import planner
        from repro.harness.specs import parse_spec

        spec = parse_spec(self.SPEC)
        RunService(cache_dir=str(tmp_path)).matrix(["BFS"], ["RM12"])
        services = planner.services_for_spec(spec, cache_dir=str(tmp_path))
        payload = planner.canonical_plan_json(
            planner.build_plan(spec, services)
        )
        assert str(tmp_path) not in payload  # no host paths in the plan
        _check_or_update("plans/plan_warm.json", payload, update_goldens)


class TestExporterGolden:
    def test_jsonl_stable(self, update_goldens):
        _check_or_update(
            "exporter_trace.jsonl", to_jsonl(_golden_recorder()), update_goldens
        )

    def test_chrome_trace_stable(self, update_goldens):
        payload = json.dumps(
            chrome_trace(_golden_recorder()), sort_keys=True, indent=1
        )
        _check_or_update("exporter_chrome.json", payload, update_goldens)
