"""Sliced execution invariants and report serialization tests."""

import numpy as np
import pytest

from repro.graphdyns import GraphDynS
from repro.metrics import (
    load_reports,
    report_from_dict,
    report_to_dict,
    save_reports,
)
from repro.vcpm import ALGORITHMS, run_vcpm, run_vcpm_sliced


def _finite_equal(a, b):
    return np.array_equal(
        np.nan_to_num(a, posinf=1e30, neginf=-1e30),
        np.nan_to_num(b, posinf=1e30, neginf=-1e30),
    )


class TestSlicedExecution:
    @pytest.mark.parametrize("algo", ["BFS", "SSSP", "CC", "SSWP"])
    def test_slicing_never_changes_results(self, algo, small_powerlaw):
        unsliced = run_vcpm(small_powerlaw, ALGORITHMS[algo], source=0)
        # Capacity for 64 vertices -> ~8 slices on this graph.
        sliced = run_vcpm_sliced(
            small_powerlaw, ALGORITHMS[algo], vb_capacity_bytes=256, source=0
        )
        assert _finite_equal(unsliced.properties, sliced.properties)

    def test_pagerank_sliced(self, tiny_graph):
        unsliced = run_vcpm(
            tiny_graph, ALGORITHMS["PR"], max_iterations=5, pr_tolerance=0.0
        )
        sliced = run_vcpm_sliced(
            tiny_graph, ALGORITHMS["PR"], vb_capacity_bytes=8,
            max_iterations=5, pr_tolerance=0.0,
        )
        assert np.allclose(unsliced.properties, sliced.properties)

    def test_single_slice_is_unsliced(self, tiny_graph):
        sliced = run_vcpm_sliced(
            tiny_graph, ALGORITHMS["BFS"],
            vb_capacity_bytes=10**9, source=0,
        )
        unsliced = run_vcpm(tiny_graph, ALGORITHMS["BFS"], source=0)
        assert _finite_equal(unsliced.properties, sliced.properties)
        assert sliced.num_iterations == unsliced.num_iterations

    def test_iteration_traces_match_unsliced(self, small_powerlaw):
        # Slicing changes memory behaviour, not the algorithm: per-
        # iteration edge/update counts are identical.
        unsliced = run_vcpm(small_powerlaw, ALGORITHMS["SSSP"], source=0)
        sliced = run_vcpm_sliced(
            small_powerlaw, ALGORITHMS["SSSP"], vb_capacity_bytes=512,
            source=0,
        )
        assert [t.num_edges for t in sliced.iterations] == [
            t.num_edges for t in unsliced.iterations
        ]
        assert [t.num_modified for t in sliced.iterations] == [
            t.num_modified for t in unsliced.iterations
        ]

    def test_source_required(self, tiny_graph):
        with pytest.raises(ValueError):
            run_vcpm_sliced(
                tiny_graph, ALGORITHMS["BFS"], vb_capacity_bytes=64,
                source=None,
            )


class TestReportSerialization:
    @pytest.fixture(scope="class")
    def report(self, medium_powerlaw):
        _, report = GraphDynS().run(
            medium_powerlaw, ALGORITHMS["SSSP"], source=0
        )
        return report

    def test_roundtrip_preserves_scalars(self, report):
        rebuilt = report_from_dict(report_to_dict(report))
        assert rebuilt.system == report.system
        assert rebuilt.cycles == report.cycles
        assert rebuilt.edges_processed == report.edges_processed
        assert rebuilt.scheduling_ops == report.scheduling_ops

    def test_roundtrip_preserves_traffic(self, report):
        rebuilt = report_from_dict(report_to_dict(report))
        assert rebuilt.traffic.total == report.traffic.total
        assert rebuilt.traffic.breakdown() == report.traffic.breakdown()

    def test_roundtrip_preserves_derived_metrics(self, report):
        rebuilt = report_from_dict(report_to_dict(report))
        assert rebuilt.gteps == pytest.approx(report.gteps)
        assert rebuilt.bandwidth_utilization == pytest.approx(
            report.bandwidth_utilization
        )

    def test_roundtrip_preserves_phases(self, report):
        rebuilt = report_from_dict(report_to_dict(report))
        assert len(rebuilt.phases) == len(report.phases)
        assert rebuilt.phases[0].scatter_cycles == pytest.approx(
            report.phases[0].scatter_cycles
        )

    def test_file_roundtrip(self, report, tmp_path):
        path = str(tmp_path / "results.json")
        save_reports([report, report], path)
        loaded = load_reports(path)
        assert len(loaded) == 2
        assert loaded[0].cycles == report.cycles

    def test_json_is_human_readable(self, report, tmp_path):
        import json

        path = str(tmp_path / "r.json")
        save_reports([report], path)
        with open(path) as handle:
            data = json.load(handle)
        assert data[0]["derived"]["gteps"] > 0
