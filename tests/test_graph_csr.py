"""CSR graph structure tests."""

import numpy as np
import pytest

from repro.graph import CSRGraph, GraphError


class TestConstruction:
    def test_from_edge_list_basic(self):
        g = CSRGraph.from_edge_list(3, [(0, 1), (0, 2), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.neighbors(1)) == [2]
        assert list(g.neighbors(2)) == []

    def test_from_edge_list_unsorted_sources(self):
        g = CSRGraph.from_edge_list(3, [(2, 0), (0, 1), (1, 2), (0, 2)])
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.neighbors(2)) == [0]

    def test_from_edge_list_preserves_weights(self):
        g = CSRGraph.from_edge_list(
            2, [(0, 1), (1, 0)], weights=[2.5, 7.0]
        )
        assert g.edge_weights(0)[0] == pytest.approx(2.5)
        assert g.edge_weights(1)[0] == pytest.approx(7.0)

    def test_from_edge_list_default_weights_are_one(self):
        g = CSRGraph.from_edge_list(2, [(0, 1)])
        assert g.weights[0] == 1.0

    def test_duplicate_edges_retained(self):
        g = CSRGraph.from_edge_list(2, [(0, 1), (0, 1)])
        assert g.num_edges == 2

    def test_self_loops_retained(self):
        g = CSRGraph.from_edge_list(2, [(0, 0)])
        assert list(g.neighbors(0)) == [0]

    def test_empty_graph(self):
        g = CSRGraph.empty(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.edge_to_vertex_ratio == 0.0

    def test_zero_vertex_graph(self):
        g = CSRGraph.empty(0)
        assert g.num_vertices == 0
        assert g.edge_to_vertex_ratio == 0.0

    def test_offsets_dtype_normalized(self):
        g = CSRGraph(
            offsets=np.array([0, 1], dtype=np.int32),
            edges=np.array([0], dtype=np.int32),
            weights=np.array([1.0], dtype=np.float64),
        )
        assert g.offsets.dtype == np.int64
        assert g.edges.dtype == np.int64
        assert g.weights.dtype == np.float32


class TestValidation:
    def test_rejects_negative_num_vertices(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edge_list(-1, [])

    def test_rejects_source_out_of_range(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edge_list(2, [(2, 0)])

    def test_rejects_destination_out_of_range(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edge_list(2, [(0, 5)])

    def test_rejects_bad_weights_shape(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edge_list(2, [(0, 1)], weights=[1.0, 2.0])

    def test_rejects_decreasing_offsets(self):
        with pytest.raises(GraphError):
            CSRGraph(
                offsets=np.array([0, 2, 1]),
                edges=np.array([0, 0]),
                weights=np.ones(2, dtype=np.float32),
            )

    def test_rejects_offsets_not_starting_at_zero(self):
        with pytest.raises(GraphError):
            CSRGraph(
                offsets=np.array([1, 2]),
                edges=np.array([0, 0]),
                weights=np.ones(2, dtype=np.float32),
            )

    def test_rejects_offsets_not_ending_at_num_edges(self):
        with pytest.raises(GraphError):
            CSRGraph(
                offsets=np.array([0, 1]),
                edges=np.array([0, 0]),
                weights=np.ones(2, dtype=np.float32),
            )

    def test_rejects_mismatched_weights(self):
        with pytest.raises(GraphError):
            CSRGraph(
                offsets=np.array([0, 1]),
                edges=np.array([0]),
                weights=np.ones(2, dtype=np.float32),
            )

    def test_rejects_malformed_edge_list(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edge_list(2, np.zeros((2, 3)))


class TestAccessors:
    def test_out_degree_array(self, tiny_graph):
        degrees = tiny_graph.out_degree()
        assert degrees.tolist() == [3, 2, 1, 1, 2, 1, 0]

    def test_out_degree_single(self, tiny_graph):
        assert tiny_graph.out_degree(0) == 3
        assert tiny_graph.out_degree(6) == 0

    def test_iter_edges_order_and_count(self, tiny_graph):
        triples = list(tiny_graph.iter_edges())
        assert len(triples) == tiny_graph.num_edges
        assert triples[0] == (0, 1, 3.0)
        # Sources are non-decreasing in CSR order.
        sources = [s for s, _, _ in triples]
        assert sources == sorted(sources)

    def test_edge_sources_matches_iter(self, tiny_graph):
        sources = tiny_graph.edge_sources()
        expected = [s for s, _, _ in tiny_graph.iter_edges()]
        assert sources.tolist() == expected

    def test_edge_sources_empty(self):
        assert CSRGraph.empty(3).edge_sources().size == 0

    def test_edge_to_vertex_ratio(self, tiny_graph):
        assert tiny_graph.edge_to_vertex_ratio == pytest.approx(10 / 7)


class TestTransformations:
    def test_reverse_swaps_edges(self, tiny_graph):
        rev = tiny_graph.reverse()
        assert rev.num_edges == tiny_graph.num_edges
        fwd = {(s, d) for s, d, _ in tiny_graph.iter_edges()}
        back = {(d, s) for s, d, _ in rev.iter_edges()}
        assert fwd == back

    def test_reverse_preserves_weight_multiset(self, tiny_graph):
        rev = tiny_graph.reverse()
        assert sorted(rev.weights.tolist()) == sorted(
            tiny_graph.weights.tolist()
        )

    def test_double_reverse_is_identity(self, tiny_graph):
        rr = tiny_graph.reverse().reverse()
        assert np.array_equal(rr.offsets, tiny_graph.offsets)
        assert np.array_equal(rr.edges, tiny_graph.edges)

    def test_with_weights(self, tiny_graph):
        new = tiny_graph.with_weights(np.zeros(tiny_graph.num_edges))
        assert np.all(new.weights == 0)
        assert np.array_equal(new.edges, tiny_graph.edges)

    def test_with_random_integer_weights_range(self, small_powerlaw):
        g = small_powerlaw.with_random_integer_weights(0, 255, seed=3)
        assert g.weights.min() >= 0
        assert g.weights.max() <= 255
        assert np.all(g.weights == np.floor(g.weights))

    def test_with_random_integer_weights_deterministic(self, small_powerlaw):
        a = small_powerlaw.with_random_integer_weights(seed=5)
        b = small_powerlaw.with_random_integer_weights(seed=5)
        assert np.array_equal(a.weights, b.weights)

    def test_subgraph_slice_keeps_only_destination_interval(self, tiny_graph):
        sliced = tiny_graph.subgraph_slice(3, 5)
        assert sliced.num_vertices == tiny_graph.num_vertices
        for _, dst, _ in sliced.iter_edges():
            assert 3 <= dst < 5

    def test_subgraph_slices_partition_edges(self, tiny_graph):
        total = sum(
            tiny_graph.subgraph_slice(lo, lo + 3).num_edges
            for lo in range(0, 9, 3)
        )
        assert total == tiny_graph.num_edges


class TestStorage:
    def test_storage_grows_with_source_ids(self, tiny_graph):
        base = tiny_graph.storage_bytes()
        tagged = tiny_graph.storage_bytes(include_source_ids=True)
        assert tagged == base + 4 * tiny_graph.num_edges

    def test_storage_metadata_factor(self, tiny_graph):
        base = tiny_graph.storage_bytes()
        doubled = tiny_graph.storage_bytes(metadata_factor=1.0)
        assert doubled == 2 * base

    def test_storage_unweighted_edges_smaller(self, tiny_graph):
        weighted = tiny_graph.storage_bytes(edge_bytes=8)
        unweighted = tiny_graph.storage_bytes(edge_bytes=4)
        assert weighted - unweighted == 4 * tiny_graph.num_edges
