"""Setup shim enabling legacy editable installs (offline env without wheel)."""

from setuptools import setup

setup()
