"""Graph construction helpers and structural transforms.

Includes the preprocessing transforms that GPU frameworks lean on
(Section 1: "Most GPU-based solutions rely on preprocessing to tackle these
irregularities ... However, the preprocessing is costly"):

* :func:`sort_by_degree` -- degree-descending vertex relabeling, the
  classic reordering that regularizes warp workloads;
* :func:`symmetrize` -- make every edge bidirectional (many frameworks
  preprocess directed inputs this way);
* :func:`deduplicate` / :func:`remove_self_loops` -- cleanup passes.

Each transform reports its own cost in "touched bytes" so the preprocessing
-overhead experiment can weigh benefit against cost.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Mapping, Optional, Tuple

import numpy as np

from .csr import CSRGraph

__all__ = [
    "from_adjacency",
    "symmetrize",
    "deduplicate",
    "remove_self_loops",
    "sort_by_degree",
    "relabel",
    "TransformCost",
]


@dataclasses.dataclass(frozen=True)
class TransformCost:
    """Cost accounting for a preprocessing transform.

    ``touched_bytes`` approximates the memory traffic of performing the
    transform (read every edge + write every edge + permutation tables);
    the preprocessing experiment converts this into time on the target
    system's bandwidth.
    """

    name: str
    touched_bytes: int

    def seconds_at(self, bytes_per_second: float) -> float:
        """Transform time on a memory system of the given bandwidth."""
        if bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")
        return self.touched_bytes / bytes_per_second


def from_adjacency(
    adjacency: Mapping[int, Iterable[int]],
    num_vertices: Optional[int] = None,
    name: str = "adjacency",
) -> CSRGraph:
    """Build a graph from ``{src: [dst, ...]}``."""
    edges = [
        (src, dst) for src, dsts in adjacency.items() for dst in dsts
    ]
    if num_vertices is None:
        flat = [v for pair in edges for v in pair] + list(adjacency)
        num_vertices = max(flat, default=-1) + 1
    return CSRGraph.from_edge_list(num_vertices, edges, name=name)


def symmetrize(graph: CSRGraph) -> Tuple[CSRGraph, TransformCost]:
    """Add the reverse of every edge (weights copied); dedupes the result."""
    sources = graph.edge_sources()
    fwd = np.stack([sources, graph.edges], axis=1)
    bwd = np.stack([graph.edges, sources], axis=1)
    pairs = np.concatenate([fwd, bwd])
    weights = np.concatenate([graph.weights, graph.weights])
    combined = CSRGraph.from_edge_list(
        graph.num_vertices, pairs, weights, name=f"{graph.name}+sym"
    )
    result, _ = deduplicate(combined)
    cost = TransformCost(
        name="symmetrize",
        touched_bytes=graph.num_edges * 8 * 4,  # read + write both copies
    )
    return result, cost


def deduplicate(graph: CSRGraph) -> Tuple[CSRGraph, TransformCost]:
    """Drop duplicate ``(src, dst)`` pairs, keeping the first weight."""
    sources = graph.edge_sources()
    keys = sources * graph.num_vertices + graph.edges
    _, first_index = np.unique(keys, return_index=True)
    first_index.sort()
    pairs = np.stack([sources[first_index], graph.edges[first_index]], axis=1)
    result = CSRGraph.from_edge_list(
        graph.num_vertices,
        pairs,
        graph.weights[first_index],
        name=graph.name,
    )
    cost = TransformCost(
        name="deduplicate", touched_bytes=graph.num_edges * 8 * 3
    )
    return result, cost


def remove_self_loops(graph: CSRGraph) -> Tuple[CSRGraph, TransformCost]:
    """Drop ``(v, v)`` edges."""
    sources = graph.edge_sources()
    keep = sources != graph.edges
    pairs = np.stack([sources[keep], graph.edges[keep]], axis=1)
    result = CSRGraph.from_edge_list(
        graph.num_vertices, pairs, graph.weights[keep], name=graph.name
    )
    cost = TransformCost(
        name="remove_self_loops", touched_bytes=graph.num_edges * 8 * 2
    )
    return result, cost


def relabel(
    graph: CSRGraph, permutation: np.ndarray, name: Optional[str] = None
) -> CSRGraph:
    """Renumber vertices: new id of vertex ``v`` is ``permutation[v]``."""
    permutation = np.asarray(permutation, dtype=np.int64)
    if permutation.shape != (graph.num_vertices,):
        raise ValueError("permutation must have one entry per vertex")
    if not np.array_equal(np.sort(permutation), np.arange(graph.num_vertices)):
        raise ValueError("permutation must be a bijection on vertex ids")
    sources = permutation[graph.edge_sources()]
    destinations = permutation[graph.edges]
    pairs = np.stack([sources, destinations], axis=1)
    return CSRGraph.from_edge_list(
        graph.num_vertices, pairs, graph.weights,
        name=name or f"{graph.name}+relabel",
    )


def sort_by_degree(
    graph: CSRGraph, descending: bool = True
) -> Tuple[CSRGraph, TransformCost]:
    """Relabel vertices in (out-)degree order -- GPU-style preprocessing.

    Degree-sorted numbering groups similar-degree vertices, which is what
    frontier-partitioned GPU kernels (and Tigr/CuSha-style transforms)
    exploit; the cost is a full permutation of the graph.
    """
    degrees = graph.out_degree()
    order = np.argsort(-degrees if descending else degrees, kind="stable")
    permutation = np.empty(graph.num_vertices, dtype=np.int64)
    permutation[order] = np.arange(graph.num_vertices)
    result = relabel(graph, permutation, name=f"{graph.name}+degsort")
    cost = TransformCost(
        name="sort_by_degree",
        # Read + rewrite every edge and offset, plus the permutation pair.
        touched_bytes=graph.num_edges * 8 * 2 + graph.num_vertices * 8 * 3,
    )
    return result, cost
