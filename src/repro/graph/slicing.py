"""Graph slicing for graphs whose temporary properties exceed the Vertex Buffer.

Section 4.2.1 of the paper: "To process larger graphs (i.e., VB cannot hold
all temporary vertex property), the graph is sliced into several slices and a
single slice is processed at a time with the slicing technique proposed in
Graphicionado."

A slice covers a contiguous destination-vertex interval; during a sliced
iteration every slice re-reads the active vertex data, which is the source of
the gentle throughput decline in Fig. 14f.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List

import numpy as np

from .csr import CSRGraph

__all__ = ["Slice", "SlicePlan", "plan_slices"]


@dataclasses.dataclass(frozen=True)
class Slice:
    """One destination-vertex interval ``[vertex_lo, vertex_hi)``."""

    index: int
    vertex_lo: int
    vertex_hi: int

    @property
    def num_vertices(self) -> int:
        return self.vertex_hi - self.vertex_lo

    def contains(self, vertex: int) -> bool:
        return self.vertex_lo <= vertex < self.vertex_hi


@dataclasses.dataclass(frozen=True)
class SlicePlan:
    """How a graph is partitioned across Vertex Buffer residencies."""

    slices: List[Slice]
    vb_capacity_vertices: int

    @property
    def num_slices(self) -> int:
        return len(self.slices)

    @property
    def is_sliced(self) -> bool:
        return self.num_slices > 1

    def __iter__(self) -> Iterator[Slice]:
        return iter(self.slices)

    def slice_of(self, vertex: int) -> Slice:
        """The slice holding ``vertex``'s temporary property."""
        idx = vertex // self.vb_capacity_vertices
        return self.slices[idx]

    def edges_per_slice(self, graph: CSRGraph) -> np.ndarray:
        """Edge count landing in each slice (by destination)."""
        counts = np.zeros(self.num_slices, dtype=np.int64)
        slice_ids = np.minimum(
            graph.edges // self.vb_capacity_vertices, self.num_slices - 1
        )
        np.add.at(counts, slice_ids, 1)
        return counts


def plan_slices(
    num_vertices: int,
    vb_capacity_bytes: int,
    tprop_bytes: int = 4,
) -> SlicePlan:
    """Partition ``num_vertices`` into VB-resident slices.

    Args:
        num_vertices: total vertex count.
        vb_capacity_bytes: aggregate Vertex Buffer capacity (GraphDynS:
            128 UEs x 256 KB = 32 MB; Graphicionado: 64 MB).
        tprop_bytes: bytes per temporary property entry.
    """
    if vb_capacity_bytes <= 0:
        raise ValueError("vb_capacity_bytes must be positive")
    capacity_vertices = max(1, vb_capacity_bytes // tprop_bytes)
    num_slices = max(1, -(-num_vertices // capacity_vertices))
    slices = [
        Slice(
            index=i,
            vertex_lo=i * capacity_vertices,
            vertex_hi=min((i + 1) * capacity_vertices, num_vertices),
        )
        for i in range(num_slices)
    ]
    return SlicePlan(slices=slices, vb_capacity_vertices=capacity_vertices)
