"""Graph slicing for graphs whose temporary properties exceed the Vertex Buffer.

Section 4.2.1 of the paper: "To process larger graphs (i.e., VB cannot hold
all temporary vertex property), the graph is sliced into several slices and a
single slice is processed at a time with the slicing technique proposed in
Graphicionado."

A slice covers a contiguous destination-vertex interval; during a sliced
iteration every slice re-reads the active vertex data, which is the source of
the gentle throughput decline in Fig. 14f.

Two layers of destination partitioning live here:

* :class:`SlicePlan` — the paper's VB-residency slicing: how one
  processing unit walks a vertex interval one VB-load at a time.
* :class:`PartitionPlan` — coarse destination-contiguous *shards* for
  out-of-core / parallel execution: each shard owns a disjoint interval
  of destinations (hence a disjoint segment of temporary properties) and
  can run Scatter independently.  A shard *composes with* VB slicing —
  :meth:`PartitionPlan.vb_plan` yields a shard-local ``SlicePlan`` whose
  slices tile that shard's interval — rather than replacing it.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List

import numpy as np

from .csr import CSRGraph

__all__ = [
    "Slice",
    "SlicePlan",
    "plan_slices",
    "Shard",
    "PartitionPlan",
    "plan_partitions",
]


@dataclasses.dataclass(frozen=True)
class Slice:
    """One destination-vertex interval ``[vertex_lo, vertex_hi)``."""

    index: int
    vertex_lo: int
    vertex_hi: int

    @property
    def num_vertices(self) -> int:
        return self.vertex_hi - self.vertex_lo

    def contains(self, vertex: int) -> bool:
        return self.vertex_lo <= vertex < self.vertex_hi


@dataclasses.dataclass(frozen=True)
class SlicePlan:
    """How a vertex interval is partitioned across VB residencies.

    ``origin`` is the first vertex id the plan covers — 0 for a whole
    graph, ``shard.vertex_lo`` for a shard-local plan produced by
    :meth:`PartitionPlan.vb_plan`.
    """

    slices: List[Slice]
    vb_capacity_vertices: int
    origin: int = 0

    @property
    def num_slices(self) -> int:
        return len(self.slices)

    @property
    def is_sliced(self) -> bool:
        return self.num_slices > 1

    def __iter__(self) -> Iterator[Slice]:
        return iter(self.slices)

    def slice_of(self, vertex: int) -> Slice:
        """The slice holding ``vertex``'s temporary property."""
        idx = (vertex - self.origin) // self.vb_capacity_vertices
        return self.slices[idx]

    def edges_per_slice(self, graph: CSRGraph) -> np.ndarray:
        """Edge count landing in each slice (by destination).

        Destinations outside the covered interval are clipped to the
        nearest boundary slice (only relevant for shard-local plans fed
        a whole graph).
        """
        counts = np.zeros(self.num_slices, dtype=np.int64)
        slice_ids = np.clip(
            (graph.edges - self.origin) // self.vb_capacity_vertices,
            0,
            self.num_slices - 1,
        )
        np.add.at(counts, slice_ids, 1)
        return counts


def plan_slices(
    num_vertices: int,
    vb_capacity_bytes: int,
    tprop_bytes: int = 4,
    origin: int = 0,
) -> SlicePlan:
    """Partition ``num_vertices`` vertices into VB-resident slices.

    Args:
        num_vertices: vertex count of the covered interval.
        vb_capacity_bytes: aggregate Vertex Buffer capacity (GraphDynS:
            128 UEs x 256 KB = 32 MB; Graphicionado: 64 MB).
        tprop_bytes: bytes per temporary property entry.
        origin: first vertex id of the covered interval (non-zero for
            shard-local plans).
    """
    if vb_capacity_bytes <= 0:
        raise ValueError("vb_capacity_bytes must be positive")
    capacity_vertices = max(1, vb_capacity_bytes // tprop_bytes)
    num_slices = max(1, -(-num_vertices // capacity_vertices))
    slices = [
        Slice(
            index=i,
            vertex_lo=origin + i * capacity_vertices,
            vertex_hi=origin + min((i + 1) * capacity_vertices, num_vertices),
        )
        for i in range(num_slices)
    ]
    return SlicePlan(
        slices=slices, vb_capacity_vertices=capacity_vertices, origin=origin
    )


@dataclasses.dataclass(frozen=True)
class Shard:
    """One destination-contiguous shard ``[vertex_lo, vertex_hi)``.

    A shard owns a disjoint segment of the temporary-property array, so
    its Scatter phase can run independently of every other shard and the
    per-destination accumulation order within the segment is unchanged —
    the root of the byte-identical merge-at-Apply invariant.
    """

    index: int
    vertex_lo: int
    vertex_hi: int

    @property
    def num_vertices(self) -> int:
        return self.vertex_hi - self.vertex_lo

    def contains(self, vertex: int) -> bool:
        return self.vertex_lo <= vertex < self.vertex_hi


@dataclasses.dataclass(frozen=True)
class PartitionPlan:
    """Destination-contiguous shards tiling ``[0, num_vertices)``.

    Shards are coarser than (and orthogonal to) VB slices: each shard may
    itself be VB-sliced via :meth:`vb_plan` when its temporary properties
    exceed the Vertex Buffer.
    """

    shards: List[Shard]
    num_vertices: int

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def is_partitioned(self) -> bool:
        return self.num_shards > 1

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.shards)

    def shard_ids(self, vertices: np.ndarray) -> np.ndarray:
        """Shard index owning each vertex id in ``vertices``."""
        bounds = np.array([s.vertex_hi for s in self.shards], dtype=np.int64)
        return np.searchsorted(bounds, np.asarray(vertices), side="right")

    def shard_of(self, vertex: int) -> Shard:
        """The shard owning ``vertex``'s temporary property."""
        if not 0 <= vertex < self.num_vertices:
            raise IndexError(f"vertex {vertex} outside [0, {self.num_vertices})")
        return self.shards[int(self.shard_ids(np.array([vertex]))[0])]

    def edges_per_shard(self, graph: CSRGraph) -> np.ndarray:
        """Edge count landing in each shard (by destination)."""
        counts = np.zeros(self.num_shards, dtype=np.int64)
        np.add.at(counts, self.shard_ids(graph.edges), 1)
        return counts

    def vb_plan(
        self,
        shard: Shard,
        vb_capacity_bytes: int,
        tprop_bytes: int = 4,
    ) -> SlicePlan:
        """Shard-local VB slicing: slices tile ``shard``'s interval.

        This is the composition point between the two layers — a sharded
        run applies Section 4.2.1 slicing *within* each shard.
        """
        return plan_slices(
            shard.num_vertices,
            vb_capacity_bytes,
            tprop_bytes=tprop_bytes,
            origin=shard.vertex_lo,
        )


def plan_partitions(num_vertices: int, num_shards: int) -> PartitionPlan:
    """Split ``[0, num_vertices)`` into ``num_shards`` contiguous shards.

    Shards are near-equal (sizes differ by at most one vertex); a request
    for more shards than vertices is clamped so no shard is empty —
    except the degenerate empty graph, which gets one empty shard so the
    plan still tiles ``[0, 0)`` exactly.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if num_vertices < 0:
        raise ValueError("num_vertices must be non-negative")
    effective = min(num_shards, num_vertices) if num_vertices else 1
    base, extra = divmod(num_vertices, effective)
    shards: List[Shard] = []
    lo = 0
    for index in range(effective):
        hi = lo + base + (1 if index < extra else 0)
        shards.append(Shard(index=index, vertex_lo=lo, vertex_hi=hi))
        lo = hi
    return PartitionPlan(shards=shards, num_vertices=num_vertices)
