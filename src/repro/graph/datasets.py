"""Dataset registry reproducing Table 4 of the paper at proxy scale.

The paper evaluates on six SuiteSparse real-world graphs (0.8M-7.4M vertices,
10M-235M edges) and five RMAT graphs (scales 22-26).  Simulating graphs of
that size with a Python cycle model is intractable, so each real-world graph
is replaced by a *proxy*: a synthetic power-law graph scaled down ~64x that
preserves the two structural quantities the evaluation is sensitive to:

* the **edge-to-vertex ratio** (drives PR throughput, HO's speedup, Fig. 14f),
* the **degree skew** (drives workload irregularity and crossbar contention).

The registry records both the paper's original dimensions and the proxy's, so
benchmark output can print them side by side.
"""

from __future__ import annotations

import atexit
import dataclasses
import hashlib
import json
import threading
import warnings
from collections import ChainMap
from typing import Dict, List, Optional, Tuple

from . import dynamic as _dynamic
from .csr import CSRGraph
from .generators import rmat_edge_chunks, power_law_graph, rmat_graph
from .storage import (
    STORAGE_FORMAT_VERSION,
    STORAGE_KINDS,
    GraphStorage,
    MmapStorage,
    assemble_csr,
    create_storage,
)

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "ALIASES",
    "PAPER_DATASETS",
    "REAL_WORLD",
    "RMAT_SCALING",
    "RMAT_PAPER",
    "load",
    "resolve_key",
    "available",
    "fingerprint",
    "clear_cache",
    "is_static_key",
    "is_dynamic",
    "generation",
    "SpillCleanupWarning",
]

#: Scale-down factor applied to the paper's vertex counts.
PROXY_SCALE = 64


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """One row of Table 4, plus the proxy parameters used in this repo."""

    key: str
    full_name: str
    paper_vertices: int
    paper_edges: int
    proxy_vertices: int
    proxy_edges: int
    description: str
    exponent: float = 2.1
    rmat_scale: Optional[int] = None
    rmat_a: float = 0.57
    rmat_b: float = 0.19
    rmat_c: float = 0.19
    seed: int = 7
    #: Paper-scale specs are built through the streaming RMAT generator
    #: so they assemble out-of-core under a memory budget; their edge
    #: stream is deliberately storage-independent (identical arrays for
    #: ``storage="memory"`` and ``storage="mmap"``).
    paper_scale: bool = False

    @property
    def edge_to_vertex_ratio(self) -> float:
        return self.paper_edges / self.paper_vertices

    def _chunk_factory(self):
        assert self.rmat_scale is not None
        return lambda: rmat_edge_chunks(
            self.rmat_scale,
            edge_factor=16,
            a=self.rmat_a,
            b=self.rmat_b,
            c=self.rmat_c,
            seed=self.seed,
        )

    def build(self) -> CSRGraph:
        """Materialize the graph in memory."""
        if self.paper_scale:
            return assemble_csr(
                self.proxy_vertices, self._chunk_factory(), name=self.key
            )
        if self.rmat_scale is not None:
            return rmat_graph(
                self.rmat_scale,
                edge_factor=16,
                a=self.rmat_a,
                b=self.rmat_b,
                c=self.rmat_c,
                seed=self.seed,
                name=self.key,
            )
        return power_law_graph(
            self.proxy_vertices,
            self.proxy_edges,
            exponent=self.exponent,
            seed=self.seed,
            name=self.key,
        )

    def build_into(self, storage: GraphStorage) -> CSRGraph:
        """Materialize the graph inside ``storage``.

        Paper-scale specs stream straight into a :class:`MmapStorage`
        (never holding the full edge set in memory); everything else is
        built in memory and then adopted (spilled) by the backend.
        """
        if self.paper_scale and isinstance(storage, MmapStorage):
            return assemble_csr(
                self.proxy_vertices,
                self._chunk_factory(),
                storage=storage,
                name=self.key,
            )
        return storage.adopt(self.build())


def _real(key, full_name, pv, pe, desc, exponent=2.1, seed=7):
    """Helper: derive proxy dimensions preserving the edge/vertex ratio."""
    proxy_v = max(1024, pv // PROXY_SCALE // 1000 * 1000)
    ratio = pe / pv
    proxy_e = int(proxy_v * ratio)
    return DatasetSpec(
        key=key,
        full_name=full_name,
        paper_vertices=pv,
        paper_edges=pe,
        proxy_vertices=proxy_v,
        proxy_edges=proxy_e,
        description=desc,
        exponent=exponent,
        seed=seed,
    )


#: The six real-world rows of Table 4.
REAL_WORLD: List[DatasetSpec] = [
    _real("FR", "Flickr", 820_000, 9_840_000, "Flickr Crawl", seed=11),
    _real("PK", "Pokec", 1_630_000, 30_620_000, "Pokec Social Network", seed=12),
    _real("LJ", "LiveJournal", 4_840_000, 68_990_000, "LiveJournal Follower", seed=13),
    _real("HO", "Hollywood", 1_140_000, 113_900_000, "Movie Actors Social", seed=14),
    _real("IN", "Indochina-04", 7_410_000, 194_110_000, "Crawl of Indochina",
          exponent=1.9, seed=15),
    _real("OR", "Orkut", 3_070_000, 234_370_000, "Orkut Social Network", seed=16),
]

def _rmat_spec(paper_scale: int, proxy_scale: int) -> DatasetSpec:
    """RMAT proxy whose degree skew matches the paper-scale graph.

    Graph500 RMAT quadrant probabilities factor almost exactly into
    independent row/column choices with dense-half probability
    x = a + b = 0.76 (0.76^2 = 0.578 ~ a).  The hottest vertex's expected
    edge share is x^scale, so a proxy at a smaller scale must use
    x' = x^(paper_scale / proxy_scale) to keep the same head mass.
    """
    x = 0.76 ** (paper_scale / proxy_scale)
    return DatasetSpec(
        key=f"RM{paper_scale}",
        full_name=f"RMAT scale {paper_scale}",
        paper_vertices=(1 << paper_scale),
        paper_edges=(1 << paper_scale) * 16,
        proxy_vertices=(1 << proxy_scale),
        proxy_edges=(1 << proxy_scale) * 16,
        description="Synthetic Graph",
        rmat_scale=proxy_scale,
        rmat_a=x * x,
        rmat_b=x * (1.0 - x),
        rmat_c=(1.0 - x) * x,
        seed=20 + proxy_scale,
    )


#: The five RMAT rows of Table 4 (paper scales 22-26 -> proxy scales 12-16).
RMAT_SCALING: List[DatasetSpec] = [
    _rmat_spec(paper_scale, proxy_scale)
    for paper_scale, proxy_scale in zip(range(22, 27), range(12, 17))
]

DATASETS: Dict[str, DatasetSpec] = {
    spec.key: spec for spec in (*REAL_WORLD, *RMAT_SCALING)
}


def _paper_spec(scale: int) -> DatasetSpec:
    """True paper-scale RMAT row (no 64x proxy shrink).

    Uses the standard Graph500 quadrant probabilities (the proxy rows
    instead warp them to preserve skew across the scale gap -- at full
    scale no warp is needed).
    """
    return DatasetSpec(
        key=f"RM{scale}-FULL",
        full_name=f"RMAT scale {scale} (paper scale)",
        paper_vertices=(1 << scale),
        paper_edges=(1 << scale) * 16,
        proxy_vertices=(1 << scale),
        proxy_edges=(1 << scale) * 16,
        description="Synthetic Graph (paper scale, out-of-core)",
        rmat_scale=scale,
        seed=40 + scale,
        paper_scale=True,
    )


#: Paper-scale RMAT graphs assembled out-of-core.  RM22-FULL..RM26-FULL
#: are the actual Table 4 RMAT rows; RM18-FULL is a mid-size stepping
#: stone used by the memory-footprint benchmarks.  These live in a
#: separate registry (not ``DATASETS``) so the default tier-1 matrix and
#: :func:`available` ordering stay exactly the Table 4 proxy set.
RMAT_PAPER: List[DatasetSpec] = [
    _paper_spec(scale) for scale in (18, 22, 23, 24, 25, 26)
]

PAPER_DATASETS: Dict[str, DatasetSpec] = {
    spec.key: spec for spec in RMAT_PAPER
}

# A *live* union view (not a snapshot): tests and tools that patch a
# spec in DATASETS must be seen by resolve_key/fingerprint immediately.
_REGISTRY: "ChainMap[str, DatasetSpec]" = ChainMap(DATASETS, PAPER_DATASETS)

#: Alternate spellings accepted by :func:`load`: the RMAT rows can be
#: addressed by their *proxy* scale as well as the paper scale ("RM12" is
#: the scale-12 proxy of the paper's RM22, and so on).
ALIASES: Dict[str, str] = {
    f"RM{spec.rmat_scale}": spec.key for spec in RMAT_SCALING
}

#: Memoized graphs keyed by ``(canonical_key, storage_kind)``.
_cache: Dict[Tuple[str, str], CSRGraph] = {}
#: Open spill backends backing the mmap entries of ``_cache``.
_storages: Dict[Tuple[str, str], GraphStorage] = {}
_cache_lock = threading.Lock()


class SpillCleanupWarning(UserWarning):
    """clear_cache skipped a spill backend still in use elsewhere."""


#: Warn-once latch for :class:`SpillCleanupWarning` (a long-lived daemon
#: calling clear_cache repeatedly must not spam one warning per sweep).
_cleanup_warned = False


def is_static_key(key: str) -> bool:
    """Whether ``key`` names a static registry entry or alias.

    Exists so the dynamic layer can check for collisions without going
    through :func:`resolve_key` (which would recurse into lazy churn-key
    materialization).
    """
    folded = key.upper()
    return folded in _REGISTRY or folded in ALIASES


def resolve_key(key: str) -> str:
    """Canonical registry key for ``key`` (case-insensitive, aliases ok).

    Resolves proxy datasets, paper-scale ``*-FULL`` datasets, the
    proxy-scale RMAT aliases, registered dynamic graphs, and derived
    churn keys (``FR~C4`` = dataset ``FR`` after 4 deterministic churn
    batches — materialized lazily and registered on first resolution).

    Raises:
        KeyError: the key matches neither a registry entry, an alias,
            a dynamic registration, nor the churn-key naming scheme.
    """
    folded = key.upper()
    if folded in _REGISTRY:
        return folded
    if folded in ALIASES:
        return ALIASES[folded]
    if _dynamic.is_registered(folded):
        return folded
    if _dynamic.materialize_churn_key(folded) is not None:
        return folded
    raise KeyError(
        f"unknown dataset {key!r}; available: {sorted(_REGISTRY)} "
        f"(aliases: {sorted(ALIASES)}; "
        f"dynamic: {_dynamic.registered_keys()})"
    )


def is_dynamic(key: str) -> bool:
    """Whether ``key`` resolves to a registered dynamic graph.

    Unlike :func:`resolve_key` this never materializes derived churn
    keys — it only reports what is registered *now*.
    """
    folded = key.upper()
    return _dynamic.is_registered(folded) and not is_static_key(folded)


def generation(key: str) -> int:
    """Current mutation generation of a dynamic dataset.

    Static datasets are immutable by construction; their generation is
    defined as 0 forever.
    """
    folded = key.upper()
    if _dynamic.is_registered(folded):
        return _dynamic.get(folded).generation
    resolve_key(folded)  # raise KeyError on unknown keys
    return 0


def get_spec(key: str) -> DatasetSpec:
    """The :class:`DatasetSpec` for ``key`` (case-insensitive, aliases ok).

    The public registry accessor: gives planners and cost models the
    proxy vertex/edge counts without loading (or building) the graph.

    Dynamic graphs get a synthetic spec whose proxy dimensions track the
    *current* snapshot, so planner cost estimates stay truthful as the
    graph churns.

    Raises:
        KeyError: the key matches neither a registry entry nor an alias.
    """
    folded = resolve_key(key)
    if folded in _REGISTRY:
        return _REGISTRY[folded]
    dyn = _dynamic.get(folded)
    return DatasetSpec(
        key=dyn.key,
        full_name=f"{dyn.key} (dynamic, generation {dyn.generation})",
        paper_vertices=dyn.num_vertices,
        paper_edges=dyn.num_edges,
        proxy_vertices=dyn.num_vertices,
        proxy_edges=dyn.num_edges,
        description="Evolving graph (batched edge churn)",
    )


def load(key: str, use_cache: bool = True, storage: str = "memory") -> CSRGraph:
    """Load (and memoize) a dataset by its Table 4 key, e.g. ``"LJ"``.

    Keys are case-insensitive and accept the proxy-scale RMAT aliases
    ("RM16" -> "RM26") plus the paper-scale ``RM22-FULL``.. keys.  The
    memo is shared process-wide and identity-stable — repeated suite,
    CLI, or parallel run-service calls never regenerate an identical
    graph.  Thread-safe: concurrent first loads race on the build but
    :func:`dict.setdefault` guarantees all callers see one canonical
    instance.

    Args:
        key: dataset key or alias.
        use_cache: memoize the loaded graph process-wide.
        storage: ``"memory"`` (default, arrays resident) or ``"mmap"``
            (arrays spilled to disk and memory-mapped read-only; the
            spill directory lives under ``$REPRO_SPILL_DIR`` or the
            system temp dir and is removed by :func:`clear_cache` /
            interpreter exit).  Graph *content* is identical across
            storage kinds — only residency differs.
    """
    key = resolve_key(key)
    if storage not in STORAGE_KINDS:
        raise ValueError(
            f"unknown storage kind {storage!r}; expected one of {STORAGE_KINDS}"
        )
    if key not in _REGISTRY:
        # Dynamic graph: always hand out the live snapshot.  The memo
        # would serve stale pre-mutation arrays, and spilling a mutable
        # graph to mmap would freeze it, so both are bypassed — content
        # is storage-independent here by construction (always resident).
        return _dynamic.get(key).graph
    cache_key = (key, storage)
    if use_cache:
        with _cache_lock:
            if cache_key in _cache:
                return _cache[cache_key]
    spec = _REGISTRY[key]
    if storage == "memory":
        graph = spec.build()
        backend: Optional[GraphStorage] = None
    else:
        backend = create_storage(storage)
        try:
            graph = spec.build_into(backend)
        except BaseException:
            backend.close()
            raise
    if use_cache:
        with _cache_lock:
            winner = _cache.setdefault(cache_key, graph)
            if winner is graph and backend is not None:
                _storages[cache_key] = backend
            elif winner is not graph and backend is not None:
                backend.close()  # lost the race; drop our duplicate spill
            return winner
    if backend is not None:
        # Uncached mmap load: tie the spill's lifetime to the graph so the
        # temp directory survives exactly as long as the arrays are
        # reachable (MmapStorage's finalizer reclaims it afterwards).
        object.__setattr__(graph, "_storage", backend)
    return graph


def clear_cache() -> None:
    """Drop all memoized graphs and close their spill backends.

    Closing unmaps every mmap-backed array and deletes owned spill
    directories, so repeated matrix runs can't accumulate open file
    descriptors or temp files.  Registered via :mod:`atexit` as a
    last-resort cleanup.

    Robust by design: a spill that cannot be closed (still mapped by a
    concurrent worker, already reclaimed, disk error) is *skipped* with
    a single :class:`SpillCleanupWarning` instead of aborting the sweep
    mid-cleanup and leaking every backend after the failing one.
    Orphans skipped here are reclaimed later by
    :func:`repro.graph.storage.gc_stale_spills` once their owner exits.
    """
    global _cleanup_warned
    with _cache_lock:
        _cache.clear()
        storages = list(_storages.values())
        _storages.clear()
    failures = []
    for backend in storages:
        try:
            backend.close()
        except Exception as exc:  # noqa: BLE001 - cleanup must finish
            failures.append((backend, exc))
    if failures and not _cleanup_warned:
        _cleanup_warned = True
        detail = "; ".join(
            f"{type(b).__name__}({getattr(b, 'directory', '?')}): {e!r}"
            for b, e in failures
        )
        warnings.warn(
            f"clear_cache skipped {len(failures)} spill backend(s) still "
            f"in use or unreachable: {detail}",
            SpillCleanupWarning,
            stacklevel=2,
        )


atexit.register(clear_cache)


def fingerprint(key: str) -> str:
    """Stable digest of everything that determines a dataset's content.

    Covers every :class:`DatasetSpec` field, the global proxy scale, and
    the on-disk storage format version, so the run-service cache is
    invalidated whenever a dataset definition (seed, exponent,
    dimensions...) or the spill layout changes.  Deliberately does *not*
    depend on the storage kind used to load the graph: memory and mmap
    loads produce identical arrays, hence identical fingerprints.
    """
    key = resolve_key(key)
    if key not in _REGISTRY:
        # Dynamic graphs fingerprint by *content* (a digest of the
        # current CSR arrays, memoized under the generation counter).
        # Mutating the graph changes the fingerprint — and with it every
        # run-service cache key — while applying a batch and then its
        # inverse restores the original fingerprint, legitimately
        # re-addressing results computed for the original content.
        payload = _dynamic.get(key).fingerprint_payload()
    else:
        payload = dataclasses.asdict(_REGISTRY[key])
        payload["proxy_scale"] = PROXY_SCALE
        payload["storage_format"] = STORAGE_FORMAT_VERSION
    text = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def available(
    include_aliases: bool = False,
    include_paper_scale: bool = False,
    include_dynamic: bool = False,
) -> List[str]:
    """Registered dataset keys in Table 4 order.

    Args:
        include_aliases: append the proxy-scale RMAT aliases
            (``RM12``..``RM16``) after the canonical keys.
        include_paper_scale: append the paper-scale ``*-FULL`` keys.
        include_dynamic: append registered dynamic-graph keys (in
            registration order).
    """
    keys = list(DATASETS)
    if include_aliases:
        keys.extend(sorted(ALIASES))
    if include_paper_scale:
        keys.extend(PAPER_DATASETS)
    if include_dynamic:
        keys.extend(_dynamic.registered_keys())
    return keys
