"""Dataset registry reproducing Table 4 of the paper at proxy scale.

The paper evaluates on six SuiteSparse real-world graphs (0.8M-7.4M vertices,
10M-235M edges) and five RMAT graphs (scales 22-26).  Simulating graphs of
that size with a Python cycle model is intractable, so each real-world graph
is replaced by a *proxy*: a synthetic power-law graph scaled down ~64x that
preserves the two structural quantities the evaluation is sensitive to:

* the **edge-to-vertex ratio** (drives PR throughput, HO's speedup, Fig. 14f),
* the **degree skew** (drives workload irregularity and crossbar contention).

The registry records both the paper's original dimensions and the proxy's, so
benchmark output can print them side by side.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from typing import Dict, List, Optional

from .csr import CSRGraph
from .generators import power_law_graph, rmat_graph

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "ALIASES",
    "REAL_WORLD",
    "RMAT_SCALING",
    "load",
    "resolve_key",
    "available",
    "fingerprint",
    "clear_cache",
]

#: Scale-down factor applied to the paper's vertex counts.
PROXY_SCALE = 64


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """One row of Table 4, plus the proxy parameters used in this repo."""

    key: str
    full_name: str
    paper_vertices: int
    paper_edges: int
    proxy_vertices: int
    proxy_edges: int
    description: str
    exponent: float = 2.1
    rmat_scale: Optional[int] = None
    rmat_a: float = 0.57
    rmat_b: float = 0.19
    rmat_c: float = 0.19
    seed: int = 7

    @property
    def edge_to_vertex_ratio(self) -> float:
        return self.paper_edges / self.paper_vertices

    def build(self) -> CSRGraph:
        """Materialize the proxy graph."""
        if self.rmat_scale is not None:
            return rmat_graph(
                self.rmat_scale,
                edge_factor=16,
                a=self.rmat_a,
                b=self.rmat_b,
                c=self.rmat_c,
                seed=self.seed,
                name=self.key,
            )
        return power_law_graph(
            self.proxy_vertices,
            self.proxy_edges,
            exponent=self.exponent,
            seed=self.seed,
            name=self.key,
        )


def _real(key, full_name, pv, pe, desc, exponent=2.1, seed=7):
    """Helper: derive proxy dimensions preserving the edge/vertex ratio."""
    proxy_v = max(1024, pv // PROXY_SCALE // 1000 * 1000)
    ratio = pe / pv
    proxy_e = int(proxy_v * ratio)
    return DatasetSpec(
        key=key,
        full_name=full_name,
        paper_vertices=pv,
        paper_edges=pe,
        proxy_vertices=proxy_v,
        proxy_edges=proxy_e,
        description=desc,
        exponent=exponent,
        seed=seed,
    )


#: The six real-world rows of Table 4.
REAL_WORLD: List[DatasetSpec] = [
    _real("FR", "Flickr", 820_000, 9_840_000, "Flickr Crawl", seed=11),
    _real("PK", "Pokec", 1_630_000, 30_620_000, "Pokec Social Network", seed=12),
    _real("LJ", "LiveJournal", 4_840_000, 68_990_000, "LiveJournal Follower", seed=13),
    _real("HO", "Hollywood", 1_140_000, 113_900_000, "Movie Actors Social", seed=14),
    _real("IN", "Indochina-04", 7_410_000, 194_110_000, "Crawl of Indochina",
          exponent=1.9, seed=15),
    _real("OR", "Orkut", 3_070_000, 234_370_000, "Orkut Social Network", seed=16),
]

def _rmat_spec(paper_scale: int, proxy_scale: int) -> DatasetSpec:
    """RMAT proxy whose degree skew matches the paper-scale graph.

    Graph500 RMAT quadrant probabilities factor almost exactly into
    independent row/column choices with dense-half probability
    x = a + b = 0.76 (0.76^2 = 0.578 ~ a).  The hottest vertex's expected
    edge share is x^scale, so a proxy at a smaller scale must use
    x' = x^(paper_scale / proxy_scale) to keep the same head mass.
    """
    x = 0.76 ** (paper_scale / proxy_scale)
    return DatasetSpec(
        key=f"RM{paper_scale}",
        full_name=f"RMAT scale {paper_scale}",
        paper_vertices=(1 << paper_scale),
        paper_edges=(1 << paper_scale) * 16,
        proxy_vertices=(1 << proxy_scale),
        proxy_edges=(1 << proxy_scale) * 16,
        description="Synthetic Graph",
        rmat_scale=proxy_scale,
        rmat_a=x * x,
        rmat_b=x * (1.0 - x),
        rmat_c=(1.0 - x) * x,
        seed=20 + proxy_scale,
    )


#: The five RMAT rows of Table 4 (paper scales 22-26 -> proxy scales 12-16).
RMAT_SCALING: List[DatasetSpec] = [
    _rmat_spec(paper_scale, proxy_scale)
    for paper_scale, proxy_scale in zip(range(22, 27), range(12, 17))
]

DATASETS: Dict[str, DatasetSpec] = {
    spec.key: spec for spec in (*REAL_WORLD, *RMAT_SCALING)
}

#: Alternate spellings accepted by :func:`load`: the RMAT rows can be
#: addressed by their *proxy* scale as well as the paper scale ("RM12" is
#: the scale-12 proxy of the paper's RM22, and so on).
ALIASES: Dict[str, str] = {
    f"RM{spec.rmat_scale}": spec.key for spec in RMAT_SCALING
}

_cache: Dict[str, CSRGraph] = {}
_cache_lock = threading.Lock()


def resolve_key(key: str) -> str:
    """Canonical registry key for ``key`` (case-insensitive, aliases ok).

    Raises:
        KeyError: the key matches neither a registry entry nor an alias.
    """
    folded = key.upper()
    if folded in DATASETS:
        return folded
    if folded in ALIASES:
        return ALIASES[folded]
    raise KeyError(
        f"unknown dataset {key!r}; available: {sorted(DATASETS)} "
        f"(aliases: {sorted(ALIASES)})"
    )


def load(key: str, use_cache: bool = True) -> CSRGraph:
    """Load (and memoize) a proxy dataset by its Table 4 key, e.g. ``"LJ"``.

    Keys are case-insensitive and accept the proxy-scale RMAT aliases
    ("RM16" -> "RM26").  The memo is shared process-wide and
    identity-stable — repeated suite, CLI, or parallel run-service calls
    never regenerate an identical proxy graph.  Thread-safe: concurrent
    first loads race on the build but :func:`dict.setdefault` guarantees
    all callers see one canonical instance.
    """
    key = resolve_key(key)
    if use_cache:
        with _cache_lock:
            if key in _cache:
                return _cache[key]
    graph = DATASETS[key].build()
    if use_cache:
        with _cache_lock:
            return _cache.setdefault(key, graph)
    return graph


def clear_cache() -> None:
    """Drop all memoized proxy graphs (mainly for tests)."""
    with _cache_lock:
        _cache.clear()


def fingerprint(key: str) -> str:
    """Stable digest of everything that determines a proxy graph.

    Covers every :class:`DatasetSpec` field plus the global proxy scale,
    so the run-service cache is invalidated whenever a dataset definition
    (seed, exponent, dimensions...) changes.
    """
    key = resolve_key(key)
    payload = dataclasses.asdict(DATASETS[key])
    payload["proxy_scale"] = PROXY_SCALE
    text = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def available() -> List[str]:
    """All registered dataset keys in Table 4 order."""
    return list(DATASETS)
