"""Compressed Sparse Row (CSR) graph representation.

The CSR format is the storage layout assumed throughout the GraphDynS paper
(Section 2.1, Fig. 1): three one-dimensional arrays

* ``offsets``   -- for each vertex, the index into ``edges`` where its
  outgoing edge list starts.  ``offsets`` has ``num_vertices + 1`` entries so
  that the edge list of vertex ``v`` is ``edges[offsets[v]:offsets[v + 1]]``.
* ``edges``     -- destination vertex ids of every edge, grouped by source.
* ``weights``   -- per-edge weights (parallel to ``edges``).

Vertex property arrays are owned by the algorithm state, not by the graph.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["CSRGraph", "GraphError"]


class GraphError(ValueError):
    """Raised when a graph is structurally invalid."""


@dataclasses.dataclass(frozen=True)
class CSRGraph:
    """An immutable directed graph in CSR format.

    Attributes:
        offsets: ``int64`` array of length ``num_vertices + 1``.
        edges: ``int64`` array of destination ids, length ``num_edges``.
        weights: ``float32`` array of edge weights, length ``num_edges``.
        name: optional human-readable dataset name.
        validate: run the structural validation scan on construction.
            Trusted constructors (the out-of-core storage layer, whose
            spills were validated when written) pass ``False`` so that
            opening a memory-mapped paper-scale graph does not page
            every array byte in just to re-check invariants.
    """

    offsets: np.ndarray
    edges: np.ndarray
    weights: np.ndarray
    name: str = "graph"
    validate: bool = dataclasses.field(default=True, compare=False)

    def __post_init__(self) -> None:
        offsets = np.ascontiguousarray(self.offsets, dtype=np.int64)
        edges = np.ascontiguousarray(self.edges, dtype=np.int64)
        weights = np.ascontiguousarray(self.weights, dtype=np.float32)
        object.__setattr__(self, "offsets", offsets)
        object.__setattr__(self, "edges", edges)
        object.__setattr__(self, "weights", weights)
        if self.validate:
            self._validate()

    def _validate(self) -> None:
        if self.offsets.ndim != 1 or self.offsets.size < 1:
            raise GraphError("offsets must be a 1-D array with >= 1 entry")
        if self.offsets[0] != 0:
            raise GraphError("offsets must start at 0")
        if self.offsets[-1] != self.edges.size:
            raise GraphError(
                "offsets must end at num_edges "
                f"(got {self.offsets[-1]}, expected {self.edges.size})"
            )
        if np.any(np.diff(self.offsets) < 0):
            raise GraphError("offsets must be non-decreasing")
        if self.weights.size != self.edges.size:
            raise GraphError("weights must be parallel to edges")
        if self.edges.size and (
            self.edges.min() < 0 or self.edges.max() >= self.num_vertices
        ):
            raise GraphError("edge destination out of range")

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self.offsets.size - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self.edges.size

    @property
    def edge_to_vertex_ratio(self) -> float:
        """Average out-degree (the paper calls this edge-to-vertex ratio)."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    # ------------------------------------------------------------------
    # Per-vertex access
    # ------------------------------------------------------------------
    def out_degree(self, vertex: Optional[int] = None) -> np.ndarray:
        """Out-degree of one vertex, or the full degree array when omitted."""
        degrees = np.diff(self.offsets)
        if vertex is None:
            return degrees
        return degrees[vertex]

    def neighbors(self, vertex: int) -> np.ndarray:
        """Destination ids of ``vertex``'s outgoing edges."""
        return self.edges[self.offsets[vertex]:self.offsets[vertex + 1]]

    def edge_weights(self, vertex: int) -> np.ndarray:
        """Weights of ``vertex``'s outgoing edges."""
        return self.weights[self.offsets[vertex]:self.offsets[vertex + 1]]

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(src, dst, weight)`` triples in CSR order."""
        for src in range(self.num_vertices):
            start, stop = self.offsets[src], self.offsets[src + 1]
            for idx in range(start, stop):
                yield src, int(self.edges[idx]), float(self.weights[idx])

    def edge_sources(self) -> np.ndarray:
        """Source vertex id of each edge (expanded from offsets).

        This materializes the ``src_vid`` field that Graphicionado stores
        with every edge (and GraphDynS deliberately omits).
        """
        if self.num_edges == 0:
            return np.zeros(0, dtype=np.int64)
        counts = np.diff(self.offsets)
        return np.repeat(np.arange(self.num_vertices, dtype=np.int64), counts)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_list(
        cls,
        num_vertices: int,
        edge_list: Sequence[Tuple[int, int]] | np.ndarray,
        weights: Optional[Sequence[float] | np.ndarray] = None,
        name: str = "graph",
    ) -> "CSRGraph":
        """Build a CSR graph from an ``(src, dst)`` edge list.

        Edges are sorted by source (stable in destination order).  Duplicate
        edges are retained; self-loops are retained.
        """
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        arr = np.asarray(edge_list, dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphError("edge_list must be an (E, 2) array of (src, dst)")
        src, dst = arr[:, 0], arr[:, 1]
        if arr.shape[0]:
            if src.min() < 0 or src.max() >= num_vertices:
                raise GraphError("edge source out of range")
            if dst.min() < 0 or dst.max() >= num_vertices:
                raise GraphError("edge destination out of range")
        if weights is None:
            wts = np.ones(arr.shape[0], dtype=np.float32)
        else:
            wts = np.asarray(weights, dtype=np.float32)
            if wts.shape != (arr.shape[0],):
                raise GraphError("weights must be parallel to edge_list")
        order = np.argsort(src, kind="stable")
        src, dst, wts = src[order], dst[order], wts[order]
        offsets = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(offsets, src + 1, 1)
        offsets = np.cumsum(offsets)
        return cls(offsets=offsets, edges=dst, weights=wts, name=name)

    @classmethod
    def empty(cls, num_vertices: int = 0, name: str = "empty") -> "CSRGraph":
        """A graph with ``num_vertices`` vertices and no edges."""
        return cls(
            offsets=np.zeros(num_vertices + 1, dtype=np.int64),
            edges=np.zeros(0, dtype=np.int64),
            weights=np.zeros(0, dtype=np.float32),
            name=name,
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def reverse(self) -> "CSRGraph":
        """The transpose graph (all edges reversed)."""
        sources = self.edge_sources()
        pairs = np.stack([self.edges, sources], axis=1)
        return CSRGraph.from_edge_list(
            self.num_vertices, pairs, self.weights, name=f"{self.name}^T"
        )

    def with_weights(self, weights: np.ndarray, name: Optional[str] = None) -> "CSRGraph":
        """A copy of this graph with different edge weights."""
        return CSRGraph(
            offsets=self.offsets,
            edges=self.edges,
            weights=np.asarray(weights, dtype=np.float32),
            name=name or self.name,
        )

    def with_random_integer_weights(
        self, low: int = 0, high: int = 255, seed: int = 0
    ) -> "CSRGraph":
        """Assign uniform random integer weights in ``[low, high]``.

        The paper assigns random integer weights between 0 and 255 to
        unweighted real-world graphs (Section 6).
        """
        rng = np.random.default_rng(seed)
        wts = rng.integers(low, high + 1, size=self.num_edges).astype(np.float32)
        return self.with_weights(wts)

    def subgraph_slice(self, vertex_lo: int, vertex_hi: int) -> "CSRGraph":
        """Edges whose *destination* falls in ``[vertex_lo, vertex_hi)``.

        Used by the slicing technique (Section 4.2.1): a slice keeps every
        source vertex but only the edges that update the resident interval of
        temporary vertex properties.
        """
        mask = (self.edges >= vertex_lo) & (self.edges < vertex_hi)
        sources = self.edge_sources()[mask]
        pairs = np.stack([sources, self.edges[mask]], axis=1)
        return CSRGraph.from_edge_list(
            self.num_vertices,
            pairs,
            self.weights[mask],
            name=f"{self.name}[{vertex_lo}:{vertex_hi})",
        )

    # ------------------------------------------------------------------
    # Storage accounting (used by the Fig. 11 experiment)
    # ------------------------------------------------------------------
    def storage_bytes(
        self,
        edge_bytes: int = 8,
        offset_bytes: int = 8,
        property_bytes: int = 4,
        include_source_ids: bool = False,
        metadata_factor: float = 0.0,
    ) -> int:
        """Bytes of off-chip storage this graph occupies at runtime.

        Args:
            edge_bytes: bytes per edge record (dst id + weight).
            offset_bytes: bytes per offset entry.
            property_bytes: bytes per vertex property value.
            include_source_ids: add 4 bytes/edge for ``src_vid``
                (Graphicionado's layout).
            metadata_factor: extra storage as a multiple of the base graph
                (Gunrock's preprocessing metadata is > 2x per the paper).
        """
        base = (
            self.num_edges * edge_bytes
            + (self.num_vertices + 1) * offset_bytes
            + self.num_vertices * property_bytes * 2  # prop + tProp
        )
        if include_source_ids:
            base += self.num_edges * 4
        return int(base * (1.0 + metadata_factor))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, V={self.num_vertices}, "
            f"E={self.num_edges})"
        )
