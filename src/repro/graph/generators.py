"""Synthetic graph generators.

Two families matter for the paper's evaluation:

* **RMAT** (Fig. 14f, Table 4): the Graph500 recursive-matrix generator.
  The paper uses scales 22-26 with edge factor 16; we implement the same
  generator and (per DESIGN.md) evaluate it at reduced scales.
* **Power-law proxies** (Table 4 real-world graphs): a Chung-Lu style
  generator that hits a target vertex count, edge count, and degree-skew, so
  the scaled-down proxies show the same irregularity behaviour (degree
  variance drives workload irregularity; frontier evolution drives update
  irregularity).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from .csr import CSRGraph

__all__ = [
    "rmat_graph",
    "rmat_edge_chunks",
    "RMAT_CHUNK_EDGES",
    "power_law_graph",
    "uniform_random_graph",
    "grid_graph",
    "chain_graph",
    "star_graph",
    "complete_graph",
]

#: Fixed chunk size of the streaming RMAT generator.  Part of the
#: deterministic definition of every paper-scale dataset (chunks are
#: seeded independently, so a different chunk size is a different edge
#: stream); change it only together with the dataset fingerprint.
RMAT_CHUNK_EDGES = 1 << 20

# Standard Graph500 RMAT partition probabilities.
_RMAT_A, _RMAT_B, _RMAT_C, _RMAT_D = 0.57, 0.19, 0.19, 0.05


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    a: float = _RMAT_A,
    b: float = _RMAT_B,
    c: float = _RMAT_C,
    seed: int = 0,
    name: Optional[str] = None,
) -> CSRGraph:
    """Generate an RMAT graph with ``2**scale`` vertices.

    Follows the Graph500 reference generator: each edge picks a quadrant of
    the adjacency matrix recursively, with per-level probability noise.
    Weights are uniform integers in [0, 255] like the paper's setup.

    Args:
        scale: log2 of the vertex count.
        edge_factor: edges per vertex (Graph500 uses 16).
        a, b, c: RMAT quadrant probabilities (d is the remainder).
        seed: RNG seed for reproducibility.
        name: dataset name; defaults to ``RMAT<scale>``.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("RMAT probabilities must sum to <= 1")
    rng = np.random.default_rng(seed)
    num_vertices = 1 << scale
    num_edges = num_vertices * edge_factor

    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    ab = a + b
    a_norm = a / (a + c) if (a + c) else 0.5
    for level in range(scale):
        bit = 1 << (scale - 1 - level)
        # Add noise per level as in the Graph500 generator.
        r_row = rng.random(num_edges)
        r_col = rng.random(num_edges)
        row_bit = r_row > ab
        # Column probability depends on which row half was chosen.
        p_col = np.where(row_bit, c / (c + d) if (c + d) else 0.5, a_norm)
        col_bit = r_col > p_col
        src += row_bit * bit
        dst += col_bit * bit

    # Permute vertex ids to remove the locality bias of raw RMAT output.
    perm = rng.permutation(num_vertices)
    src, dst = perm[src], perm[dst]
    weights = rng.integers(0, 256, size=num_edges).astype(np.float32)
    pairs = np.stack([src, dst], axis=1)
    return CSRGraph.from_edge_list(
        num_vertices, pairs, weights, name=name or f"RMAT{scale}"
    )


def _rmat_quadrant_bits(
    rng: np.random.Generator,
    count: int,
    scale: int,
    a: float,
    b: float,
    c: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Raw (pre-permutation) RMAT endpoints for ``count`` edges."""
    d = 1.0 - a - b - c
    src = np.zeros(count, dtype=np.int64)
    dst = np.zeros(count, dtype=np.int64)
    ab = a + b
    a_norm = a / (a + c) if (a + c) else 0.5
    c_norm = c / (c + d) if (c + d) else 0.5
    for level in range(scale):
        bit = 1 << (scale - 1 - level)
        r_row = rng.random(count)
        r_col = rng.random(count)
        row_bit = r_row > ab
        p_col = np.where(row_bit, c_norm, a_norm)
        col_bit = r_col > p_col
        src += row_bit * bit
        dst += col_bit * bit
    return src, dst


def rmat_edge_chunks(
    scale: int,
    edge_factor: int = 16,
    a: float = _RMAT_A,
    b: float = _RMAT_B,
    c: float = _RMAT_C,
    seed: int = 0,
    chunk_edges: int = RMAT_CHUNK_EDGES,
) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Stream an RMAT graph as ``(src, dst, weight)`` chunks.

    The out-of-core twin of :func:`rmat_graph`: the same quadrant
    recursion and [0, 255] integer weights, but never more than one
    chunk of edges resident at a time, which is what lets the
    paper-scale datasets (``RM22-FULL``..) be assembled under a memory
    budget via :func:`repro.graph.storage.assemble_csr`.

    Each chunk draws from an independent child of
    ``np.random.SeedSequence(seed)``, so the stream is deterministic
    *and* repeatable: two calls with identical arguments yield identical
    chunk sequences (the two-pass assembler depends on this).  Note the
    stream differs from :func:`rmat_graph`'s single-pass draw at equal
    seeds -- the chunked stream is its own (equally valid) graph
    definition.

    The id-decorrelating vertex permutation of :func:`rmat_graph` is
    preserved: one permutation is drawn from the first child seed and
    applied to every chunk.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    if chunk_edges < 1:
        raise ValueError("chunk_edges must be positive")
    if 1.0 - a - b - c < 0:
        raise ValueError("RMAT probabilities must sum to <= 1")
    num_vertices = 1 << scale
    num_edges = num_vertices * edge_factor
    num_chunks = -(-num_edges // chunk_edges)
    children = np.random.SeedSequence(seed).spawn(num_chunks + 1)
    perm = np.random.default_rng(children[0]).permutation(num_vertices)
    produced = 0
    for index in range(num_chunks):
        count = min(chunk_edges, num_edges - produced)
        produced += count
        rng = np.random.default_rng(children[index + 1])
        src, dst = _rmat_quadrant_bits(rng, count, scale, a, b, c)
        weights = rng.integers(0, 256, size=count).astype(np.float32)
        yield perm[src], perm[dst], weights


def power_law_graph(
    num_vertices: int,
    num_edges: int,
    exponent: float = 2.1,
    max_share: float = 0.0015,
    seed: int = 0,
    name: str = "powerlaw",
) -> CSRGraph:
    """Chung-Lu style power-law graph with a fixed edge budget.

    Vertex ``i`` receives an attachment weight ``(i + 1) ** -1/(exponent-1)``
    (a Zipf-like profile); sources and destinations are drawn independently
    in proportion to those weights, which yields the heavy-tailed in/out
    degree distributions that drive the paper's workload irregularity.

    ``max_share`` caps any single vertex's expected share of the edges.  At
    proxy scale an uncapped Zipf head would concentrate several percent of
    all edges on one vertex -- far beyond the real graphs of Table 4, where
    the hottest vertex holds well under a percent of edges -- distorting
    crossbar/UE contention.  The cap keeps the tail heavy while matching
    realistic head mass.

    Args:
        num_vertices: vertex count of the proxy.
        num_edges: directed edge count.
        exponent: target power-law exponent (2-3 typical for social graphs).
        max_share: cap on one vertex's expected fraction of endpoints.
        seed: RNG seed.
        name: dataset name.
    """
    if num_vertices < 1:
        raise ValueError("num_vertices must be >= 1")
    if num_edges < 0:
        raise ValueError("num_edges must be >= 0")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    attach = ranks ** (-1.0 / (exponent - 1.0))
    attach /= attach.sum()
    if max_share is not None:
        floor_share = 1.0 / (num_vertices * 10.0)
        cap = max(max_share, floor_share)
        for _ in range(4):  # clip-and-renormalize to a fixpoint
            attach = np.minimum(attach, cap)
            attach /= attach.sum()
    src = rng.choice(num_vertices, size=num_edges, p=attach)
    dst = rng.choice(num_vertices, size=num_edges, p=attach)
    # Shuffle ids so vertex id does not correlate with degree (mirrors the
    # arbitrary vertex numbering of crawled graphs).
    perm = rng.permutation(num_vertices)
    src, dst = perm[src], perm[dst]
    weights = rng.integers(0, 256, size=num_edges).astype(np.float32)
    pairs = np.stack([src, dst], axis=1)
    return CSRGraph.from_edge_list(num_vertices, pairs, weights, name=name)


def uniform_random_graph(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    name: str = "uniform",
) -> CSRGraph:
    """Erdos-Renyi style graph: endpoints drawn uniformly at random."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges)
    dst = rng.integers(0, num_vertices, size=num_edges)
    weights = rng.integers(0, 256, size=num_edges).astype(np.float32)
    pairs = np.stack([src, dst], axis=1)
    return CSRGraph.from_edge_list(num_vertices, pairs, weights, name=name)


def grid_graph(rows: int, cols: int, name: str = "grid") -> CSRGraph:
    """2-D grid with 4-neighbour connectivity (deterministic, for tests)."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
                edges.append((v + 1, v))
            if r + 1 < rows:
                edges.append((v, v + cols))
                edges.append((v + cols, v))
    return CSRGraph.from_edge_list(rows * cols, edges, name=name)


def chain_graph(num_vertices: int, name: str = "chain") -> CSRGraph:
    """Directed path 0 -> 1 -> ... -> n-1 (worst case for frontier width)."""
    edges = [(i, i + 1) for i in range(num_vertices - 1)]
    return CSRGraph.from_edge_list(num_vertices, edges, name=name)


def star_graph(num_leaves: int, name: str = "star") -> CSRGraph:
    """Hub vertex 0 pointing at ``num_leaves`` leaves (max degree skew)."""
    edges = [(0, i) for i in range(1, num_leaves + 1)]
    return CSRGraph.from_edge_list(num_leaves + 1, edges, name=name)


def complete_graph(num_vertices: int, name: str = "complete") -> CSRGraph:
    """All-pairs directed graph without self loops."""
    edges = [
        (u, v)
        for u in range(num_vertices)
        for v in range(num_vertices)
        if u != v
    ]
    return CSRGraph.from_edge_list(num_vertices, edges, name=name)
