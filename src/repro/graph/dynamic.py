"""Evolving graphs: batched edge churn over CSR with generation counters.

The paper's Table 4 operating points are all *static* snapshots.  This
module opens the evolving-graph workload axis (ROADMAP item 3b, after
Gunrock's frontier-delta formulation, arXiv:1701.01170): a
:class:`DynamicGraph` wraps a CSR snapshot and applies *batches* of edge
insertions/deletions, advancing a strictly monotone **generation
counter** with every batch (the generation-based invalidation design of
SNIPPETS.md snippet 2).

Three invariants make the rest of the platform sound as graphs mutate:

* **Canonical edge order.**  After every mutation the snapshot's edges
  are re-sorted into the canonical ``(src, dst, weight)`` order, so the
  CSR arrays are a pure function of the edge *multiset*.  Applying a
  batch and then its :meth:`EdgeBatch.inverse` therefore restores the
  exact original arrays — and the exact original fingerprint.
* **Content fingerprints, invalidated by generation.**  Each snapshot
  carries a sha256 of its arrays, recomputed exactly when the generation
  advances (never per read).  ``datasets.fingerprint()`` folds it into
  the run-service cache keys, so a mutated graph can never serve a stale
  cell, while an apply+inverse round trip legitimately re-addresses the
  original cached result.
* **Fixed vertex set.**  Batches mutate edges only; ``num_vertices``
  never changes, which keeps property arrays, slicing plans, and source
  vertices valid across generations.

Deterministic churn traces (:func:`churn_batches`) and the derived
``<BASE>~C<N>`` dataset naming scheme (:func:`derive_churned`) make
evolving-graph experiments reproducible from a key alone.
"""

from __future__ import annotations

import dataclasses
import hashlib
import re
import threading
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .csr import CSRGraph, GraphError

__all__ = [
    "DYNAMIC_SCHEMA_VERSION",
    "CHURN_KEY_RE",
    "DynamicGraphError",
    "EdgeBatch",
    "DynamicGraph",
    "churn_batches",
    "derive_churned",
    "register",
    "unregister",
    "get",
    "is_registered",
    "registered_keys",
]

#: Version of the mutation/canonicalization semantics.  Folded into
#: dynamic dataset fingerprints so cache entries cannot survive a change
#: to how batches are applied.
DYNAMIC_SCHEMA_VERSION = 1

#: Derived churned-dataset keys: ``FR~C4`` is dataset ``FR`` after 4
#: deterministic churn batches (see :func:`derive_churned`).
CHURN_KEY_RE = re.compile(r"^(?P<base>[A-Z0-9\-]+)~C(?P<batches>[0-9]+)$")


class DynamicGraphError(ValueError):
    """Raised when a batch is malformed or references absent edges."""


def _as_pairs(pairs, what: str) -> np.ndarray:
    arr = np.asarray(pairs, dtype=np.int64)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise DynamicGraphError(f"{what} must be an (N, 2) array of (src, dst)")
    return arr


@dataclasses.dataclass(frozen=True)
class EdgeBatch:
    """One churn step: edges to insert and edges to delete.

    Deletes identify edges by the full ``(src, dst, weight)`` triple, so
    a batch is exactly invertible: :meth:`inverse` re-inserts what was
    deleted (with the original weights) and deletes what was inserted.

    Attributes:
        inserts: ``(K, 2)`` int64 array of ``(src, dst)`` pairs to add.
        insert_weights: ``(K,)`` float32 weights of the inserted edges.
        deletes: ``(M, 2)`` int64 array of ``(src, dst)`` pairs to remove.
        delete_weights: ``(M,)`` float32 weights identifying the removed
            edges (one matching occurrence is removed per entry).
    """

    inserts: np.ndarray
    insert_weights: np.ndarray
    deletes: np.ndarray
    delete_weights: np.ndarray

    def __post_init__(self) -> None:
        inserts = _as_pairs(self.inserts, "inserts")
        deletes = _as_pairs(self.deletes, "deletes")
        ins_w = np.asarray(self.insert_weights, dtype=np.float32)
        del_w = np.asarray(self.delete_weights, dtype=np.float32)
        if ins_w.shape != (inserts.shape[0],):
            raise DynamicGraphError("insert_weights must be parallel to inserts")
        if del_w.shape != (deletes.shape[0],):
            raise DynamicGraphError("delete_weights must be parallel to deletes")
        object.__setattr__(self, "inserts", inserts)
        object.__setattr__(self, "insert_weights", ins_w)
        object.__setattr__(self, "deletes", deletes)
        object.__setattr__(self, "delete_weights", del_w)

    @classmethod
    def of(
        cls,
        inserts=(),
        insert_weights: Optional[np.ndarray] = None,
        deletes=(),
        delete_weights: Optional[np.ndarray] = None,
    ) -> "EdgeBatch":
        """Convenience constructor; missing insert weights default to 1."""
        ins = _as_pairs(inserts, "inserts")
        dels = _as_pairs(deletes, "deletes")
        if insert_weights is None:
            insert_weights = np.ones(ins.shape[0], dtype=np.float32)
        if delete_weights is None:
            delete_weights = np.ones(dels.shape[0], dtype=np.float32)
        return cls(ins, insert_weights, dels, delete_weights)

    @property
    def num_inserts(self) -> int:
        return int(self.inserts.shape[0])

    @property
    def num_deletes(self) -> int:
        return int(self.deletes.shape[0])

    @property
    def size(self) -> int:
        return self.num_inserts + self.num_deletes

    @property
    def insert_only(self) -> bool:
        """Whether the batch grows the edge set monotonically.

        Insert-only batches are the ones the incremental engine can
        recompute from frontier deltas (monotone fixpoints only shrink
        toward the new optimum); any deletion forces a full rerun.
        """
        return self.num_deletes == 0

    def inverse(self) -> "EdgeBatch":
        """The batch that exactly undoes this one."""
        return EdgeBatch(
            inserts=self.deletes,
            insert_weights=self.delete_weights,
            deletes=self.inserts,
            delete_weights=self.insert_weights,
        )

    def touched_vertices(self) -> np.ndarray:
        """Sorted unique endpoints of every inserted/deleted edge."""
        parts = [self.inserts.ravel(), self.deletes.ravel()]
        flat = np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
        return np.unique(flat)

    def seed_vertices(self) -> np.ndarray:
        """Sorted unique *sources* of inserted edges.

        Re-scattering exactly these vertices is sufficient to reach the
        new monotone fixpoint after an insert-only batch: new edges only
        emanate from them, and any improved destination re-activates
        through the normal frontier mechanics.
        """
        if self.num_inserts == 0:
            return np.zeros(0, dtype=np.int64)
        return np.unique(self.inserts[:, 0])

    def digest(self) -> str:
        """Stable short digest of the batch content."""
        h = hashlib.sha256()
        for arr in (
            self.inserts,
            self.insert_weights,
            self.deletes,
            self.delete_weights,
        ):
            h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()[:16]


def _canonical_csr(
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray,
    name: str,
) -> CSRGraph:
    """CSR in canonical ``(src, dst, weight)`` lexicographic edge order."""
    order = np.lexsort((weights, dst, src))
    src = src[order]
    dst = dst[order]
    weights = weights[order]
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.add.at(offsets, src + 1, 1)
    offsets = np.cumsum(offsets)
    return CSRGraph(offsets=offsets, edges=dst, weights=weights, name=name)


def _content_fingerprint(graph: CSRGraph) -> str:
    h = hashlib.sha256()
    h.update(np.int64(graph.num_vertices).tobytes())
    h.update(np.ascontiguousarray(graph.offsets).tobytes())
    h.update(np.ascontiguousarray(graph.edges).tobytes())
    h.update(np.ascontiguousarray(graph.weights).tobytes())
    return h.hexdigest()[:16]


def _remove_multiset(
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray,
    del_pairs: np.ndarray,
    del_weights: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Remove one matching occurrence per delete triple (vectorized).

    Raises:
        DynamicGraphError: a delete names more occurrences of a triple
            than the graph holds.
    """
    order = np.lexsort((weights, dst, src))
    s_s, s_d, s_w = src[order], dst[order], weights[order]

    dorder = np.lexsort((del_weights, del_pairs[:, 1], del_pairs[:, 0]))
    d_s = del_pairs[dorder, 0]
    d_d = del_pairs[dorder, 1]
    d_w = del_weights[dorder]

    keep = np.ones(src.size, dtype=bool)
    i = 0
    while i < d_s.size:
        j = i
        while (
            j + 1 < d_s.size
            and d_s[j + 1] == d_s[i]
            and d_d[j + 1] == d_d[i]
            and d_w[j + 1] == d_w[i]
        ):
            j += 1
        count = j - i + 1
        # Range of matching edges in the sorted triple arrays.
        lo = int(np.searchsorted(s_s, d_s[i], side="left"))
        hi = int(np.searchsorted(s_s, d_s[i], side="right"))
        seg_d = s_d[lo:hi]
        d_lo = lo + int(np.searchsorted(seg_d, d_d[i], side="left"))
        d_hi = lo + int(np.searchsorted(seg_d, d_d[i], side="right"))
        seg_w = s_w[d_lo:d_hi]
        w_lo = d_lo + int(np.searchsorted(seg_w, d_w[i], side="left"))
        w_hi = d_lo + int(np.searchsorted(seg_w, d_w[i], side="right"))
        available = w_hi - w_lo
        if available < count:
            raise DynamicGraphError(
                f"cannot delete edge ({int(d_s[i])}, {int(d_d[i])}, "
                f"{float(d_w[i])}): {count} requested, {available} present"
            )
        keep[order[w_lo:w_lo + count]] = False
        i = j + 1
    return src[keep], dst[keep], weights[keep]


class DynamicGraph:
    """A mutable graph: a canonical CSR snapshot plus a generation counter.

    Thread-safe for the registry surfaces that read it concurrently with
    mutation (snapshot, generation, and fingerprint reads are atomic
    swaps under a lock).
    """

    def __init__(self, graph: CSRGraph, key: Optional[str] = None) -> None:
        self.key = (key or graph.name).upper()
        sources = graph.edge_sources()
        self._lock = threading.Lock()
        self._graph = _canonical_csr(
            graph.num_vertices,
            sources,
            np.asarray(graph.edges),
            np.asarray(graph.weights),
            self.key,
        )
        self._generation = 0
        self._content_fp = _content_fingerprint(self._graph)
        #: Digest breadcrumbs of every applied batch, for audit.
        self.history: List[str] = []
        #: Set by :func:`derive_churned` for keys materialized from the
        #: ``<BASE>~C<N>`` naming scheme.
        self.derived_from: Optional[Tuple[str, int, int, int]] = None

    # ------------------------------------------------------------------
    # Snapshot accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        """The current immutable CSR snapshot (canonical edge order)."""
        with self._lock:
            return self._graph

    @property
    def generation(self) -> int:
        """Strictly monotone mutation counter (0 at registration)."""
        with self._lock:
            return self._generation

    @property
    def content_fingerprint(self) -> str:
        """sha256 digest of the snapshot arrays.

        Recomputed exactly when :attr:`generation` advances — the
        generation counter *is* the invalidation tag for this memo — so
        reading it is O(1) no matter how large the graph is.
        """
        with self._lock:
            return self._content_fp

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply(self, batch: EdgeBatch) -> np.ndarray:
        """Apply one batch; returns the touched (endpoint) vertex ids.

        Every apply — even of an empty batch — advances the generation
        by exactly one, rebuilds the canonical snapshot, and refreshes
        the content fingerprint.

        Raises:
            DynamicGraphError: an endpoint is out of range or a delete
                references an edge the graph does not contain.
        """
        with self._lock:
            graph = self._graph
            num_vertices = graph.num_vertices
            for pairs, what in ((batch.inserts, "insert"), (batch.deletes, "delete")):
                if pairs.size and (
                    pairs.min() < 0 or pairs.max() >= num_vertices
                ):
                    raise DynamicGraphError(
                        f"{what} endpoint out of range for V={num_vertices}"
                    )
            src = graph.edge_sources()
            dst = np.asarray(graph.edges)
            wts = np.asarray(graph.weights)
            if batch.num_deletes:
                src, dst, wts = _remove_multiset(
                    src, dst, wts, batch.deletes, batch.delete_weights
                )
            if batch.num_inserts:
                src = np.concatenate([src, batch.inserts[:, 0]])
                dst = np.concatenate([dst, batch.inserts[:, 1]])
                wts = np.concatenate([wts, batch.insert_weights])
            self._graph = _canonical_csr(num_vertices, src, dst, wts, self.key)
            self._generation += 1
            self._content_fp = _content_fingerprint(self._graph)
            self.history.append(batch.digest())
        return batch.touched_vertices()

    def fingerprint_payload(self) -> Dict[str, object]:
        """What :func:`repro.graph.datasets.fingerprint` hashes.

        Content-addressed on purpose: the generation counter is *not*
        part of the payload, so an apply+inverse round trip restores the
        original fingerprint (and legitimately re-addresses any cached
        results of the original content).  The generation's job is to
        invalidate the fingerprint memo, not to name the content.
        """
        with self._lock:
            return {
                "dynamic": True,
                "key": self.key,
                "content": self._content_fp,
                "num_vertices": self._graph.num_vertices,
                "num_edges": self._graph.num_edges,
                "dynamic_schema": DYNAMIC_SCHEMA_VERSION,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicGraph({self.key!r}, V={self.num_vertices}, "
            f"E={self.num_edges}, gen={self.generation})"
        )


# ----------------------------------------------------------------------
# Deterministic churn traces
# ----------------------------------------------------------------------
def churn_batches(
    graph: CSRGraph,
    num_batches: int,
    batch_edges: int,
    insert_fraction: float = 0.5,
    seed: int = 0,
    max_weight: int = 255,
) -> Iterator[EdgeBatch]:
    """Deterministic sequence of valid churn batches for ``graph``.

    Each batch inserts ``round(batch_edges * insert_fraction)`` random
    edges (uniform endpoints, integer weights in ``[1, max_weight]``,
    matching the paper's weight convention) and deletes the remainder
    from edges that exist *at that point of the trace* — the generator
    tracks the evolving edge multiset, so every yielded batch applies
    cleanly in sequence.

    Same ``(graph, parameters, seed)`` always yields identical batches.
    """
    if num_batches < 0 or batch_edges < 0:
        raise DynamicGraphError("num_batches and batch_edges must be >= 0")
    if not (0.0 <= insert_fraction <= 1.0):
        raise DynamicGraphError("insert_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    num_vertices = graph.num_vertices
    src = list(graph.edge_sources())
    dst = list(graph.edges)
    wts = list(np.asarray(graph.weights))
    for _ in range(num_batches):
        n_ins = int(round(batch_edges * insert_fraction))
        n_del = min(batch_edges - n_ins, len(src))
        deletes = np.zeros((n_del, 2), dtype=np.int64)
        delete_weights = np.zeros(n_del, dtype=np.float32)
        if n_del:
            victims = rng.choice(len(src), size=n_del, replace=False)
            for out, idx in enumerate(sorted(victims, reverse=True)):
                deletes[out, 0] = src[idx]
                deletes[out, 1] = dst[idx]
                delete_weights[out] = wts[idx]
                src[idx] = src[-1]
                dst[idx] = dst[-1]
                wts[idx] = wts[-1]
                src.pop()
                dst.pop()
                wts.pop()
        inserts = np.zeros((n_ins, 2), dtype=np.int64)
        insert_weights = np.zeros(n_ins, dtype=np.float32)
        if n_ins and num_vertices:
            inserts[:, 0] = rng.integers(0, num_vertices, size=n_ins)
            inserts[:, 1] = rng.integers(0, num_vertices, size=n_ins)
            insert_weights[:] = rng.integers(
                1, max_weight + 1, size=n_ins
            ).astype(np.float32)
            for k in range(n_ins):
                src.append(np.int64(inserts[k, 0]))
                dst.append(np.int64(inserts[k, 1]))
                wts.append(np.float32(insert_weights[k]))
        yield EdgeBatch(inserts, insert_weights, deletes, delete_weights)


# ----------------------------------------------------------------------
# Dynamic dataset registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, DynamicGraph] = {}
_registry_lock = threading.Lock()


def register(dynamic: DynamicGraph, replace: bool = False) -> DynamicGraph:
    """Register a dynamic graph as a loadable dataset.

    The key becomes addressable through ``repro.graph.datasets`` —
    ``load``/``fingerprint``/``resolve_key``/``get_spec`` — and hence
    through every harness surface (run service, planner, daemon, CLI).

    Raises:
        ValueError: the key is already registered (static or dynamic)
            and ``replace`` is false.
    """
    # Imported here: datasets imports this module at top level.
    from . import datasets

    key = dynamic.key
    with _registry_lock:
        if not replace:
            if key in _REGISTRY:
                raise ValueError(f"dynamic graph {key!r} already registered")
            # Static-registry check only (full resolve_key would recurse
            # into lazy ~C materialization, which calls back into here).
            if datasets.is_static_key(key):
                raise ValueError(
                    f"{key!r} already names a static dataset or alias"
                )
        _REGISTRY[key] = dynamic
    return dynamic


def unregister(key: str) -> None:
    """Remove a dynamic registration (mainly for tests)."""
    with _registry_lock:
        _REGISTRY.pop(key.upper(), None)


def get(key: str) -> DynamicGraph:
    """The registered :class:`DynamicGraph` for ``key``.

    Raises:
        KeyError: not a registered dynamic graph.
    """
    folded = key.upper()
    with _registry_lock:
        if folded not in _REGISTRY:
            raise KeyError(f"unknown dynamic graph {key!r}")
        return _REGISTRY[folded]


def is_registered(key: str) -> bool:
    with _registry_lock:
        return key.upper() in _REGISTRY


def registered_keys() -> List[str]:
    """Registered dynamic keys, in registration order."""
    with _registry_lock:
        return list(_REGISTRY)


def default_churn_params(base_edges: int, batches: int) -> Tuple[int, int]:
    """(batch_edges, seed) the ``<BASE>~C<N>`` scheme derives from a key."""
    return max(8, base_edges // 64), 1000 + batches


def derive_churned(
    base_key: str,
    batches: int,
    batch_edges: Optional[int] = None,
    seed: Optional[int] = None,
    insert_fraction: float = 0.5,
    key: Optional[str] = None,
    replace: bool = False,
) -> DynamicGraph:
    """Materialize and register ``<base>~C<batches>``.

    The derivation is a pure function of ``(base dataset content,
    batches, batch_edges, seed)``: any process — a planner rendering a
    spec, a daemon validating a job, a test — that resolves the same key
    builds the same content, which is what makes the key a sound cache
    address.

    Default parameters (when the key comes from the naming scheme):
    ``batch_edges = max(8, E/64)`` and ``seed = 1000 + batches``, with a
    50/50 insert/delete mix.
    """
    from . import datasets

    base = datasets.load(base_key)
    default_edges, default_seed = default_churn_params(
        base.num_edges, batches
    )
    if batch_edges is None:
        batch_edges = default_edges
    if seed is None:
        seed = default_seed
    folded = (key or f"{datasets.resolve_key(base_key)}~C{batches}").upper()
    dynamic = DynamicGraph(base, key=folded)
    for batch in churn_batches(
        dynamic.graph,
        num_batches=batches,
        batch_edges=batch_edges,
        insert_fraction=insert_fraction,
        seed=seed,
    ):
        dynamic.apply(batch)
    dynamic.derived_from = (
        datasets.resolve_key(base_key),
        batches,
        int(batch_edges),
        int(seed),
    )
    return register(dynamic, replace=replace)


def materialize_churn_key(folded_key: str) -> Optional[DynamicGraph]:
    """Derive a ``<BASE>~C<N>`` key lazily, if the pattern matches.

    Returns ``None`` when the key does not match the scheme or its base
    is unknown; used by ``datasets.resolve_key`` as the last lookup
    tier.
    """
    from . import datasets

    match = CHURN_KEY_RE.match(folded_key)
    if match is None:
        return None
    if not datasets.is_static_key(match.group("base")):
        return None
    try:
        return derive_churned(
            match.group("base"), int(match.group("batches")), key=folded_key
        )
    except ValueError:
        # Lost a concurrent-materialization race: both derivations built
        # identical content, so the winner's registration is ours too.
        if is_registered(folded_key):
            return get(folded_key)
        raise


def validate_graph_error_type() -> type:
    """The error type shared with the static CSR layer (API affordance)."""
    return GraphError
