"""Graph file I/O.

Three interchange formats:

* **Matrix Market** (``.mtx``) -- the format the SuiteSparse collection
  (Table 4's source) distributes graphs in.  Coordinate format, general or
  symmetric, pattern (unweighted) or real (weighted).
* **Edge list** (``.txt``/``.el``) -- whitespace-separated ``src dst
  [weight]`` lines, ``#`` comments; the SNAP convention.
* **NPZ** (``.npz``) -- the library's native binary format: the three CSR
  arrays verbatim (fast, lossless round trip).
"""

from __future__ import annotations

import os
from typing import List, Optional

import numpy as np

from .csr import CSRGraph, GraphError

__all__ = [
    "save_npz",
    "load_npz",
    "save_edge_list",
    "load_edge_list",
    "save_matrix_market",
    "load_matrix_market",
    "load_any",
]


# ----------------------------------------------------------------------
# NPZ
# ----------------------------------------------------------------------
def save_npz(graph: CSRGraph, path: str) -> None:
    """Write the CSR arrays to a compressed ``.npz`` file."""
    np.savez_compressed(
        path,
        offsets=graph.offsets,
        edges=graph.edges,
        weights=graph.weights,
        name=np.asarray(graph.name),
    )


def load_npz(path: str) -> CSRGraph:
    """Read a graph written by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        return CSRGraph(
            offsets=data["offsets"],
            edges=data["edges"],
            weights=data["weights"],
            name=str(data["name"]),
        )


# ----------------------------------------------------------------------
# Edge list
# ----------------------------------------------------------------------
def save_edge_list(graph: CSRGraph, path: str, write_weights: bool = True) -> None:
    """Write ``src dst [weight]`` lines (SNAP-style)."""
    with open(path, "w") as handle:
        handle.write(f"# {graph.name}\n")
        handle.write(
            f"# vertices: {graph.num_vertices} edges: {graph.num_edges}\n"
        )
        for src, dst, weight in graph.iter_edges():
            if write_weights:
                handle.write(f"{src} {dst} {weight:g}\n")
            else:
                handle.write(f"{src} {dst}\n")


def load_edge_list(
    path: str, num_vertices: Optional[int] = None, name: Optional[str] = None
) -> CSRGraph:
    """Read a SNAP-style edge list.

    Vertex count defaults to ``max id + 1``.  Lines starting with ``#`` or
    ``%`` are comments; fields are whitespace separated.
    """
    sources: List[int] = []
    destinations: List[int] = []
    weights: List[float] = []
    any_weights = False
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            fields = line.split()
            if len(fields) < 2:
                raise GraphError(
                    f"{path}:{line_number}: expected 'src dst [weight]'"
                )
            sources.append(int(fields[0]))
            destinations.append(int(fields[1]))
            if len(fields) >= 3:
                weights.append(float(fields[2]))
                any_weights = True
            else:
                weights.append(1.0)
    if num_vertices is None:
        num_vertices = (
            max(max(sources, default=-1), max(destinations, default=-1)) + 1
        )
    pairs = np.asarray(
        list(zip(sources, destinations)), dtype=np.int64
    ).reshape(-1, 2)
    return CSRGraph.from_edge_list(
        num_vertices,
        pairs,
        np.asarray(weights, dtype=np.float32) if any_weights else None,
        name=name or os.path.basename(path),
    )


# ----------------------------------------------------------------------
# Matrix Market
# ----------------------------------------------------------------------
def save_matrix_market(graph: CSRGraph, path: str, pattern: bool = False) -> None:
    """Write coordinate Matrix Market (1-based, general, real or pattern)."""
    kind = "pattern" if pattern else "real"
    with open(path, "w") as handle:
        handle.write(f"%%MatrixMarket matrix coordinate {kind} general\n")
        handle.write(f"% {graph.name}\n")
        handle.write(
            f"{graph.num_vertices} {graph.num_vertices} {graph.num_edges}\n"
        )
        for src, dst, weight in graph.iter_edges():
            if pattern:
                handle.write(f"{src + 1} {dst + 1}\n")
            else:
                handle.write(f"{src + 1} {dst + 1} {weight:g}\n")


def load_matrix_market(path: str, name: Optional[str] = None) -> CSRGraph:
    """Read a coordinate Matrix Market file.

    Supports ``general`` and ``symmetric`` storage (symmetric entries are
    mirrored), ``real``/``integer``/``pattern`` fields.
    """
    with open(path) as handle:
        header = handle.readline()
        if not header.startswith("%%MatrixMarket"):
            raise GraphError(f"{path}: missing MatrixMarket header")
        tokens = header.lower().split()
        if "coordinate" not in tokens:
            raise GraphError(f"{path}: only coordinate format is supported")
        symmetric = "symmetric" in tokens
        pattern = "pattern" in tokens

        size_line = None
        for line in handle:
            stripped = line.strip()
            if stripped and not stripped.startswith("%"):
                size_line = stripped
                break
        if size_line is None:
            raise GraphError(f"{path}: missing size line")
        rows, cols, entries = (int(x) for x in size_line.split()[:3])
        num_vertices = max(rows, cols)

        sources: List[int] = []
        destinations: List[int] = []
        weights: List[float] = []
        for line in handle:
            stripped = line.strip()
            if not stripped or stripped.startswith("%"):
                continue
            fields = stripped.split()
            src, dst = int(fields[0]) - 1, int(fields[1]) - 1
            weight = 1.0 if pattern or len(fields) < 3 else float(fields[2])
            sources.append(src)
            destinations.append(dst)
            weights.append(weight)
            if symmetric and src != dst:
                sources.append(dst)
                destinations.append(src)
                weights.append(weight)

    if len(weights) < entries:
        raise GraphError(
            f"{path}: expected {entries} entries, found {len(weights)}"
        )
    pairs = np.asarray(
        list(zip(sources, destinations)), dtype=np.int64
    ).reshape(-1, 2)
    return CSRGraph.from_edge_list(
        num_vertices,
        pairs,
        np.asarray(weights, dtype=np.float32),
        name=name or os.path.basename(path),
    )


def load_any(path: str) -> CSRGraph:
    """Dispatch on file extension: ``.npz``, ``.mtx``, else edge list."""
    lower = path.lower()
    if lower.endswith(".npz"):
        return load_npz(path)
    if lower.endswith(".mtx"):
        return load_matrix_market(path)
    return load_edge_list(path)
