"""Structural graph statistics used by the irregularity analysis (Fig. 2).

These functions quantify the three irregularities of Section 3.1:

* ``degree_histogram`` / ``degree_interval_counts`` -- workload irregularity
  (how skewed is the per-thread work).
* ``gini_coefficient`` / ``load_imbalance`` -- scalar skew summaries.
* ``cacheline_locality`` -- traversal irregularity (how many edge lists fit
  in a 64-byte cacheline, Section 4.1.2).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .csr import CSRGraph

__all__ = [
    "degree_histogram",
    "degree_interval_counts",
    "DEGREE_INTERVALS",
    "gini_coefficient",
    "load_imbalance",
    "cacheline_locality",
    "power_law_exponent_estimate",
]

#: The degree intervals plotted in Fig. 2 of the paper.
DEGREE_INTERVALS: List[Tuple[int, int]] = [
    (0, 0),
    (1, 2),
    (3, 4),
    (5, 8),
    (9, 16),
    (17, 32),
    (33, 64),
    (65, 1 << 62),
]


def degree_histogram(graph: CSRGraph) -> Dict[int, int]:
    """Map out-degree -> number of vertices with that degree."""
    degrees = graph.out_degree()
    values, counts = np.unique(degrees, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def degree_interval_counts(
    degrees: np.ndarray,
    intervals: Sequence[Tuple[int, int]] = tuple(DEGREE_INTERVALS),
) -> List[int]:
    """Count how many entries of ``degrees`` fall in each interval.

    Used per-iteration on the degrees of *active* vertices to regenerate the
    stacked bars of Fig. 2.
    """
    degrees = np.asarray(degrees)
    return [int(np.count_nonzero((degrees >= lo) & (degrees <= hi)))
            for lo, hi in intervals]


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative distribution (0=equal, ->1=skewed)."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    n = values.size
    if n == 0:
        return 0.0
    total = values.sum()
    if total == 0:
        return 0.0
    index = np.arange(1, n + 1)
    return float((2 * (index * values).sum()) / (n * total) - (n + 1) / n)


def load_imbalance(loads: np.ndarray) -> float:
    """Max/mean load ratio; 1.0 is perfectly balanced."""
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0 or loads.mean() == 0:
        return 1.0
    return float(loads.max() / loads.mean())


def cacheline_locality(
    graph: CSRGraph, cacheline_bytes: int = 64, edge_bytes: int = 8
) -> float:
    """Fraction of vertices whose whole edge list fits in one cacheline.

    The paper observes (Section 4.1.2) that many active vertices have only
    4-8 edges, smaller than one 64-byte cacheline, which makes edge-list
    accesses the bottleneck once vertex properties are on-chip.
    """
    per_line = max(1, cacheline_bytes // edge_bytes)
    degrees = graph.out_degree()
    if degrees.size == 0:
        return 1.0
    return float(np.count_nonzero(degrees <= per_line) / degrees.size)


def power_law_exponent_estimate(graph: CSRGraph, d_min: int = 1) -> float:
    """MLE estimate of the power-law exponent of the out-degree distribution.

    Uses the discrete Hill estimator: alpha = 1 + n / sum(ln(d / (d_min-0.5)))
    over degrees >= d_min.  Returns ``nan`` when no vertex qualifies.
    """
    degrees = graph.out_degree()
    degrees = degrees[degrees >= d_min].astype(np.float64)
    if degrees.size == 0:
        return float("nan")
    return float(1.0 + degrees.size / np.log(degrees / (d_min - 0.5)).sum())
