"""Out-of-core CSR storage backends.

The paper's headline results run on 10^7-10^8-edge graphs; holding three
fully-materialized CSR arrays (plus generation temporaries) in a Python
process puts those operating points out of reach.  This module is the
storage seam that closes the gap:

``GraphStorage``
    The backend contract: ``adopt`` takes ownership of a graph's arrays
    (possibly rewriting them into a different residency) and ``close``
    releases every OS resource deterministically.  Storages are context
    managers, so spill files can never outlive the code that needs them.

``InMemoryStorage``
    The historical default: arrays live on the heap, ``adopt`` is the
    identity, ``close`` is a no-op.

``MmapStorage``
    The out-of-core backend: arrays are spilled once to ``.npy`` member
    files under a spill directory and reopened memory-mapped read-only
    (``np.load(..., mmap_mode="r")``), so a :class:`CSRGraph` never
    fully materializes -- the OS pages CSR data in and out on demand,
    and concurrent worker processes mapping the same spill share one
    page-cache copy instead of multiplying resident memory.

``assemble_csr``
    Two-pass out-of-core CSR construction from an edge-chunk stream:
    pass 1 counts per-source degrees, pass 2 places each chunk into the
    (possibly memory-mapped) destination arrays through per-vertex
    cursors.  Peak resident memory is one chunk plus two vertex-sized
    arrays, independent of the edge count -- this is what makes the
    paper-scale RMAT specs (``RM22-FULL``..) buildable at all.

Every spill directory records :data:`STORAGE_FORMAT_VERSION` in its
``meta.json``; the dataset fingerprint folds the same constant in, so a
format change invalidates persistent results instead of misreading them.
"""

from __future__ import annotations

import abc
import glob
import json
import os
import shutil
import tempfile
import time
import weakref
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from .csr import CSRGraph, GraphError

__all__ = [
    "STORAGE_FORMAT_VERSION",
    "STORAGE_KINDS",
    "StorageError",
    "GraphStorage",
    "InMemoryStorage",
    "MmapStorage",
    "create_storage",
    "assemble_csr",
    "gc_stale_spills",
    "spill_dir_root",
]

#: Version of the on-disk spill layout; folded into dataset fingerprints.
STORAGE_FORMAT_VERSION = 1

#: Registered storage backend kinds, in preference order.
STORAGE_KINDS: Tuple[str, ...] = ("memory", "mmap")

#: Environment override for where spill directories are created.
SPILL_DIR_ENV = "REPRO_SPILL_DIR"

_SPILL_META = "meta.json"
_SPILL_MEMBERS = ("offsets", "edges", "weights")
#: Ownership marker written into every *owned* anonymous spill dir so a
#: garbage collector can tell live spills (owner pid still running) from
#: orphans left behind by a killed process.
_SPILL_OWNER = "owner.json"
_SPILL_PREFIX = "repro-spill-"


class StorageError(RuntimeError):
    """A storage backend was used after close, or a spill is invalid."""


def spill_dir_root() -> str:
    """Directory under which anonymous spill directories are created."""
    return os.environ.get(SPILL_DIR_ENV) or tempfile.gettempdir()


class GraphStorage(abc.ABC):
    """Where a :class:`CSRGraph`'s arrays live.

    A storage is a context manager owning OS resources (spill files,
    memory maps).  ``adopt`` rewrites a graph into this storage's
    residency; ``close`` releases everything deterministically --
    repeated matrix runs must never leak file descriptors or temp
    directories (``clear_cache`` in :mod:`repro.graph.datasets` closes
    every storage it opened).
    """

    kind: str = "?"

    def __init__(self) -> None:
        self._closed = False

    # -- contract ------------------------------------------------------
    @abc.abstractmethod
    def adopt(self, graph: CSRGraph) -> CSRGraph:
        """A graph equal to ``graph`` whose arrays live in this storage."""

    def close(self) -> None:
        """Release maps/files; idempotent."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"{type(self).__name__} is closed")

    # -- context management --------------------------------------------
    def __enter__(self) -> "GraphStorage":
        self._check_open()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return f"<{type(self).__name__} kind={self.kind} {state}>"


class InMemoryStorage(GraphStorage):
    """Heap-resident arrays: the historical default behaviour."""

    kind = "memory"

    def adopt(self, graph: CSRGraph) -> CSRGraph:
        self._check_open()
        return graph


class MmapStorage(GraphStorage):
    """Arrays spilled to ``.npy`` files and memory-mapped read-only.

    Args:
        directory: spill directory; created (and owned, i.e. removed on
            :meth:`close`) when ``None``.
        keep: keep the spill directory on close even when owned; useful
            for warm restarts of paper-scale graphs.
    """

    kind = "mmap"

    def __init__(
        self, directory: Optional[str] = None, keep: bool = False
    ) -> None:
        super().__init__()
        if directory is None:
            directory = tempfile.mkdtemp(
                prefix=_SPILL_PREFIX, dir=spill_dir_root()
            )
            self._owned = True
            _write_spill_owner(directory)
        else:
            os.makedirs(directory, exist_ok=True)
            self._owned = False
        self.directory = directory
        self.keep = keep
        self._maps: List[np.ndarray] = []
        # Last-resort cleanup if the owner forgets to close(); the
        # deterministic path is close()/clear_cache()/context exit.
        self._finalizer = weakref.finalize(
            self, _cleanup_spill, directory if self._owned and not keep else None
        )

    # -- helpers -------------------------------------------------------
    def _member_path(self, member: str) -> str:
        return os.path.join(self.directory, f"{member}.npy")

    def _write_meta(self, graph: CSRGraph) -> None:
        meta = {
            "format": STORAGE_FORMAT_VERSION,
            "name": graph.name,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
        }
        path = os.path.join(self.directory, _SPILL_META)
        with open(path, "w") as handle:
            json.dump(meta, handle, sort_keys=True)

    def _read_meta(self) -> dict:
        path = os.path.join(self.directory, _SPILL_META)
        try:
            with open(path) as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(f"invalid spill at {self.directory}: {exc}")
        if meta.get("format") != STORAGE_FORMAT_VERSION:
            raise StorageError(
                f"spill at {self.directory} has format "
                f"{meta.get('format')!r}, expected {STORAGE_FORMAT_VERSION}"
            )
        return meta

    def _map_member(self, member: str) -> np.ndarray:
        array = np.load(self._member_path(member), mmap_mode="r")
        self._maps.append(array)
        return array

    def _graph_from_maps(self, name: str) -> CSRGraph:
        # The spill was validated (or assembled) when written; skip the
        # full-array validation scan so opening a paper-scale spill does
        # not page every byte in.
        return CSRGraph(
            offsets=self._map_member("offsets"),
            edges=self._map_member("edges"),
            weights=self._map_member("weights"),
            name=name,
            validate=False,
        )

    # -- contract ------------------------------------------------------
    def adopt(self, graph: CSRGraph) -> CSRGraph:
        """Spill ``graph``'s arrays and return an mmap-backed twin."""
        self._check_open()
        for member in _SPILL_MEMBERS:
            np.save(self._member_path(member), getattr(graph, member))
        self._write_meta(graph)
        return self._graph_from_maps(graph.name)

    def load(self) -> CSRGraph:
        """Reopen an existing spill directory written by :meth:`adopt`."""
        self._check_open()
        meta = self._read_meta()
        for member in _SPILL_MEMBERS:
            if not os.path.exists(self._member_path(member)):
                raise StorageError(
                    f"spill at {self.directory} is missing {member}.npy"
                )
        return self._graph_from_maps(str(meta.get("name", "spill")))

    def allocate_member(
        self, member: str, shape: Tuple[int, ...], dtype: np.dtype
    ) -> np.memmap:
        """Create a writable ``.npy`` memmap for out-of-core assembly."""
        self._check_open()
        array = np.lib.format.open_memmap(
            self._member_path(member), mode="w+", dtype=dtype, shape=shape
        )
        self._maps.append(array)
        return array

    def seal(self, name: str) -> CSRGraph:
        """Flush writable members and reopen everything read-only."""
        self._check_open()
        self._release_maps()
        graph = self._graph_from_maps(name)
        meta_graph = graph
        self._write_meta(meta_graph)
        return graph

    # -- cleanup -------------------------------------------------------
    def _release_maps(self) -> None:
        for array in self._maps:
            mm = getattr(array, "_mmap", None)
            if mm is not None:
                try:
                    array.flush()
                except (ValueError, OSError):  # read-only or already gone
                    pass
                try:
                    mm.close()
                except (BufferError, OSError):
                    # A live external view still references the buffer;
                    # dropping our reference is the best we can do.
                    pass
        self._maps.clear()

    def close(self) -> None:
        if self._closed:
            return
        self._release_maps()
        self._finalizer.detach()
        if self._owned and not self.keep:
            shutil.rmtree(self.directory, ignore_errors=True)
        super().close()


def _cleanup_spill(directory: Optional[str]) -> None:
    if directory:
        shutil.rmtree(directory, ignore_errors=True)


def _write_spill_owner(directory: str) -> None:
    payload = {"pid": os.getpid(), "created": time.time()}
    try:
        with open(os.path.join(directory, _SPILL_OWNER), "w") as handle:
            json.dump(payload, handle, sort_keys=True)
    except OSError:  # ownership marking is best-effort, never fatal
        pass


def _pid_alive(pid: int) -> bool:
    """True when ``pid`` exists (signal-0 probe; EPERM counts as alive)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return False
    return True


def spill_owner_pid(directory: str) -> Optional[int]:
    """The pid recorded in a spill's ownership marker, if readable."""
    try:
        with open(os.path.join(directory, _SPILL_OWNER)) as handle:
            return int(json.load(handle)["pid"])
    except (OSError, ValueError, KeyError, TypeError):
        return None


def gc_stale_spills(
    root: Optional[str] = None, grace_seconds: float = 60.0
) -> List[str]:
    """Remove orphaned ``repro-spill-*`` directories; return what was removed.

    A spill is an *orphan* when its recorded owner pid no longer exists;
    a spill with no readable owner marker (pre-marker layout, or torn by
    a kill) is only collected once it has been idle for ``grace_seconds``
    — never a directory another live process may still be mapping.  The
    serving daemon calls this at startup so repeated crash/restart
    cycles cannot leak temp space.
    """
    removed: List[str] = []
    now = time.time()
    pattern = os.path.join(root or spill_dir_root(), _SPILL_PREFIX + "*")
    for directory in sorted(glob.glob(pattern)):
        if not os.path.isdir(directory):
            continue
        pid = spill_owner_pid(directory)
        if pid is not None:
            if pid == os.getpid() or _pid_alive(pid):
                continue
        else:
            try:
                age = now - os.path.getmtime(directory)
            except OSError:
                continue
            if age < grace_seconds:
                continue
        shutil.rmtree(directory, ignore_errors=True)
        removed.append(directory)
    return removed


def create_storage(kind: str, **options: object) -> GraphStorage:
    """Instantiate a storage backend by kind (``"memory"``/``"mmap"``)."""
    folded = kind.lower()
    if folded == "memory":
        return InMemoryStorage()
    if folded == "mmap":
        return MmapStorage(**options)  # type: ignore[arg-type]
    raise ValueError(
        f"unknown storage kind {kind!r}; expected one of {STORAGE_KINDS}"
    )


# ----------------------------------------------------------------------
# Out-of-core CSR assembly
# ----------------------------------------------------------------------

EdgeChunk = Tuple[np.ndarray, np.ndarray, np.ndarray]


def _chunk_positions(
    src: np.ndarray, cursor: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Destination indices for one chunk's edges, stable within sources.

    Returns ``(order, positions)`` where ``order`` stably sorts the
    chunk by source and ``positions[i]`` is the CSR slot of the
    ``order[i]``-th edge.  ``cursor`` (next free slot per vertex) is
    advanced in place.
    """
    order = np.argsort(src, kind="stable")
    s_sorted = src[order]
    # Group boundaries of the sorted sources: ramp within each group.
    first = np.flatnonzero(np.r_[True, s_sorted[1:] != s_sorted[:-1]])
    sizes = np.diff(np.r_[first, s_sorted.size])
    ramp = np.arange(s_sorted.size, dtype=np.int64) - np.repeat(first, sizes)
    group_sources = s_sorted[first]
    positions = np.repeat(cursor[group_sources], sizes) + ramp
    cursor[group_sources] += sizes
    return order, positions


def assemble_csr(
    num_vertices: int,
    chunk_factory: Callable[[], Iterable[EdgeChunk]],
    storage: Optional[GraphStorage] = None,
    name: str = "graph",
) -> CSRGraph:
    """Build a CSR graph from an edge-chunk stream without materializing it.

    Two passes over ``chunk_factory()`` (which must yield the *same*
    chunk sequence each call): pass 1 accumulates per-source degree
    counts into the offsets array; pass 2 places every chunk's edges
    into the destination arrays through per-vertex cursors, stable in
    generation order within each source -- exactly the ordering
    :meth:`CSRGraph.from_edge_list` produces, so in-memory and
    out-of-core assembly of the same stream are array-identical.

    Args:
        num_vertices: total vertex count.
        chunk_factory: zero-argument callable returning an iterable of
            ``(src, dst, weight)`` array triples.
        storage: where the destination arrays live; in-memory when
            ``None``.  :class:`MmapStorage` keeps peak residency at one
            chunk plus two vertex-sized arrays.
        name: dataset name of the assembled graph.
    """
    if num_vertices < 0:
        raise GraphError("num_vertices must be non-negative")
    counts = np.zeros(num_vertices + 1, dtype=np.int64)
    num_edges = 0
    for src, dst, _w in chunk_factory():
        src = np.asarray(src, dtype=np.int64)
        if src.size and (src.min() < 0 or src.max() >= num_vertices):
            raise GraphError("edge source out of range")
        counts[1:] += np.bincount(src, minlength=num_vertices)
        num_edges += src.size
    offsets = np.cumsum(counts)

    if isinstance(storage, MmapStorage):
        offsets_out = storage.allocate_member(
            "offsets", (num_vertices + 1,), np.dtype(np.int64)
        )
        edges_out = storage.allocate_member(
            "edges", (num_edges,), np.dtype(np.int64)
        )
        weights_out = storage.allocate_member(
            "weights", (num_edges,), np.dtype(np.float32)
        )
    else:
        offsets_out = np.zeros(num_vertices + 1, dtype=np.int64)
        edges_out = np.zeros(num_edges, dtype=np.int64)
        weights_out = np.zeros(num_edges, dtype=np.float32)
    offsets_out[:] = offsets

    cursor = offsets[:-1].copy()
    placed = 0
    for src, dst, w in chunk_factory():
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        w = np.asarray(w, dtype=np.float32)
        if dst.size and (dst.min() < 0 or dst.max() >= num_vertices):
            raise GraphError("edge destination out of range")
        if not (src.size == dst.size == w.size):
            raise GraphError("chunk arrays must be parallel")
        if src.size == 0:
            continue
        order, positions = _chunk_positions(src, cursor)
        edges_out[positions] = dst[order]
        weights_out[positions] = w[order]
        placed += src.size
    if placed != num_edges:
        raise GraphError(
            f"chunk_factory yielded {placed} edges on pass 2, "
            f"expected {num_edges} (streams must be repeatable)"
        )

    if isinstance(storage, MmapStorage):
        return storage.seal(name)
    graph = CSRGraph(
        offsets=offsets_out, edges=edges_out, weights=weights_out, name=name
    )
    if storage is not None:
        return storage.adopt(graph)
    return graph


def iter_edge_blocks(
    graph: CSRGraph, block_edges: int = 1 << 20
) -> Iterator[Tuple[int, int]]:
    """Yield ``[edge_lo, edge_hi)`` index blocks of roughly equal size.

    A convenience for streaming over a (possibly memory-mapped) edge
    array without materializing derived per-edge temporaries all at
    once.
    """
    if block_edges < 1:
        raise ValueError("block_edges must be positive")
    total = graph.num_edges
    for lo in range(0, total, block_edges):
        yield lo, min(lo + block_edges, total)
