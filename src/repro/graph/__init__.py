"""Graph substrate: CSR storage, generators, Table 4 dataset proxies."""

from .csr import CSRGraph, GraphError
from .generators import (
    chain_graph,
    complete_graph,
    grid_graph,
    power_law_graph,
    rmat_graph,
    star_graph,
    uniform_random_graph,
)
from .datasets import DATASETS, REAL_WORLD, RMAT_SCALING, DatasetSpec, load
from .properties import (
    DEGREE_INTERVALS,
    cacheline_locality,
    degree_histogram,
    degree_interval_counts,
    gini_coefficient,
    load_imbalance,
    power_law_exponent_estimate,
)
from .slicing import Slice, SlicePlan, plan_slices
from .builders import (
    TransformCost,
    deduplicate,
    from_adjacency,
    relabel,
    remove_self_loops,
    sort_by_degree,
    symmetrize,
)
from . import io

__all__ = [
    "CSRGraph",
    "GraphError",
    "rmat_graph",
    "power_law_graph",
    "uniform_random_graph",
    "grid_graph",
    "chain_graph",
    "star_graph",
    "complete_graph",
    "DATASETS",
    "REAL_WORLD",
    "RMAT_SCALING",
    "DatasetSpec",
    "load",
    "DEGREE_INTERVALS",
    "degree_histogram",
    "degree_interval_counts",
    "gini_coefficient",
    "load_imbalance",
    "cacheline_locality",
    "power_law_exponent_estimate",
    "Slice",
    "SlicePlan",
    "plan_slices",
    "TransformCost",
    "deduplicate",
    "from_adjacency",
    "relabel",
    "remove_self_loops",
    "sort_by_degree",
    "symmetrize",
    "io",
]
