"""Energy integration (Figs. 9 and 10).

The paper's methodology: chip energy = synthesized module power x modeled
execution time; memory energy = 7 pJ/bit x HBM traffic.  Fig. 10 shows the
result -- ~92% of GraphDynS energy is HBM, because graph analytics has an
"extremely low computation-to-communication ratio".
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..metrics.counters import RunReport
from .components import (
    DCA_BUDGET,
    GRAPHDYNS_BUDGET,
    GRAPHICIONADO_BUDGET,
    HBM_PJ_PER_BIT,
    ComponentBudget,
)

__all__ = ["EnergyReport", "energy_report", "gpu_energy_report"]


@dataclasses.dataclass(frozen=True)
class EnergyReport:
    """Joule-level outcome of one run."""

    system: str
    algorithm: str
    graph_name: str
    chip_energy_j: float
    hbm_energy_j: float
    component_energy_j: Dict[str, float]

    @property
    def total_j(self) -> float:
        return self.chip_energy_j + self.hbm_energy_j

    @property
    def hbm_fraction(self) -> float:
        """HBM share of total energy (the ~92% of Fig. 10)."""
        total = self.total_j
        if total <= 0:
            return 0.0
        return self.hbm_energy_j / total

    def breakdown(self) -> Dict[str, float]:
        """Component -> fraction of total energy (Fig. 10's bars)."""
        total = self.total_j
        if total <= 0:
            return {}
        shares = {
            name: energy / total
            for name, energy in self.component_energy_j.items()
        }
        shares["HBM"] = self.hbm_fraction
        return shares

    def normalized_to(self, baseline: "EnergyReport") -> float:
        """This run's energy as a fraction of ``baseline``'s (Fig. 9)."""
        if baseline.total_j <= 0:
            return 0.0
        return self.total_j / baseline.total_j


def energy_report(
    report: RunReport, budget: ComponentBudget
) -> EnergyReport:
    """Energy of an accelerator run from its RunReport and power budget."""
    seconds = report.seconds
    chip = budget.total_power_w * seconds
    per_component = {
        name: budget.power_of(name) * seconds
        for name in budget.power_shares
    }
    hbm = report.total_traffic_bytes * 8 * HBM_PJ_PER_BIT * 1e-12
    return EnergyReport(
        system=report.system,
        algorithm=report.algorithm,
        graph_name=report.graph_name,
        chip_energy_j=chip,
        hbm_energy_j=hbm,
        component_energy_j=per_component,
    )


def gpu_energy_report(report: RunReport, average_power_w: float) -> EnergyReport:
    """Energy of a GPU run: board power x time + HBM2 traffic energy."""
    seconds = report.seconds
    chip = average_power_w * seconds
    hbm = report.total_traffic_bytes * 8 * HBM_PJ_PER_BIT * 1e-12
    return EnergyReport(
        system=report.system,
        algorithm=report.algorithm,
        graph_name=report.graph_name,
        chip_energy_j=chip,
        hbm_energy_j=hbm,
        component_energy_j={"GPU": chip},
    )


def graphdyns_energy(report: RunReport) -> EnergyReport:
    """Convenience wrapper with the Fig. 8 budget."""
    return energy_report(report, GRAPHDYNS_BUDGET)


def graphicionado_energy(report: RunReport) -> EnergyReport:
    """Convenience wrapper with the derived Graphicionado budget."""
    return energy_report(report, GRAPHICIONADO_BUDGET)


def dca_energy(report: RunReport) -> EnergyReport:
    """Convenience wrapper with the derived DCA budget."""
    return energy_report(report, DCA_BUDGET)
