"""Component power and area tables (Fig. 8, Section 7).

The paper implements each module in Verilog, synthesizes with a TSMC 16 nm
library, and reports totals of **3.38 W** and **12.08 mm^2** for GraphDynS
with the breakdown of Fig. 8.  Graphicionado's numbers follow from the
paper's statement that GraphDynS needs only 68% of its power and 57% of its
area.  The GPU's average board power is part of :class:`repro.gpu.config.
GPUConfig`.

HBM access energy is 7 pJ/bit (O'Connor, Memory Forum 2014), the same
constant the paper uses.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

__all__ = [
    "ComponentBudget",
    "DCA_BUDGET",
    "GRAPHDYNS_BUDGET",
    "GRAPHICIONADO_BUDGET",
    "HBM_PJ_PER_BIT",
]

#: HBM 1.0 access energy used throughout the paper's methodology.
HBM_PJ_PER_BIT = 7.0


@dataclasses.dataclass(frozen=True)
class ComponentBudget:
    """Synthesized power/area of one accelerator, with per-module shares."""

    name: str
    total_power_w: float
    total_area_mm2: float
    power_shares: Dict[str, float]
    area_shares: Dict[str, float]

    def power_of(self, component: str) -> float:
        """Watts drawn by one module."""
        return self.total_power_w * self.power_shares[component]

    def area_of(self, component: str) -> float:
        """mm^2 occupied by one module."""
        return self.total_area_mm2 * self.area_shares[component]

    def validate(self) -> None:
        """Shares must each sum to 1 (within float tolerance)."""
        for shares in (self.power_shares, self.area_shares):
            total = sum(shares.values())
            if abs(total - 1.0) > 1e-6:
                raise ValueError(f"shares sum to {total}, expected 1.0")


#: Fig. 8: Dispatcher 1%/0.5%, Processor 59%/8%, Updater 36%/89.5%,
#: Prefetcher 4%/2% (power/area).
GRAPHDYNS_BUDGET = ComponentBudget(
    name="GraphDynS",
    total_power_w=3.38,
    total_area_mm2=12.08,
    power_shares={
        "Dispatcher": 0.01,
        "Processor": 0.59,
        "Updater": 0.36,
        "Prefetcher": 0.04,
    },
    area_shares={
        "Dispatcher": 0.005,
        "Processor": 0.08,
        "Updater": 0.895,
        "Prefetcher": 0.02,
    },
)

#: The DCA follow-up keeps GraphDynS's aggregate lanes and buffering but
#: deletes the centralized structures (128-radix crossbar, central
#: dispatcher front-end), whose arbitration logic dominates the Updater's
#: power share; a light ring router replaces them.  Budget derived from
#: the Fig. 8 split: Updater power shrinks by the crossbar's share,
#: everything else carries over at GraphDynS magnitudes.
DCA_BUDGET = ComponentBudget(
    name="DCA",
    total_power_w=2.92,
    total_area_mm2=9.84,
    power_shares={
        "Lanes": 0.66,
        "Router": 0.09,
        "Prefetcher": 0.05,
        "VertexBuffers": 0.20,
    },
    area_shares={
        "Lanes": 0.18,
        "Router": 0.04,
        "Prefetcher": 0.02,
        "VertexBuffers": 0.76,
    },
)

#: Derived: GraphDynS power/area are 68% / 57% of Graphicionado's.
GRAPHICIONADO_BUDGET = ComponentBudget(
    name="Graphicionado",
    total_power_w=3.38 / 0.68,
    total_area_mm2=12.08 / 0.57,
    power_shares={
        # Graphicionado's eDRAM dominates both budgets; the paper gives no
        # per-module split, so the dominant split is eDRAM vs pipelines.
        "Pipelines": 0.35,
        "eDRAM": 0.65,
    },
    area_shares={
        "Pipelines": 0.06,
        "eDRAM": 0.94,
    },
)
