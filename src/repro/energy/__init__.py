"""Energy and area models (Figs. 8-10)."""

from .components import (
    GRAPHDYNS_BUDGET,
    GRAPHICIONADO_BUDGET,
    HBM_PJ_PER_BIT,
    ComponentBudget,
)
from .model import (
    EnergyReport,
    energy_report,
    gpu_energy_report,
    graphdyns_energy,
    graphicionado_energy,
)

__all__ = [
    "GRAPHDYNS_BUDGET",
    "GRAPHICIONADO_BUDGET",
    "HBM_PJ_PER_BIT",
    "ComponentBudget",
    "EnergyReport",
    "energy_report",
    "gpu_energy_report",
    "graphdyns_energy",
    "graphicionado_energy",
]
