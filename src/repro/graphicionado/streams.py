"""Component-level Graphicionado stream model.

The functional mirror of :mod:`repro.graphdyns`'s component path, built
from the Graphicionado design as the GraphDynS paper describes it:

* **source-oriented streams** walk each active vertex's edge list
  *sequentially*, reading ``src_vid``-tagged edge records and detecting the
  end of the list by a tag mismatch (one sentinel read per vertex);
* edges hash to streams by **source vertex id** (no splitting);
* **destination-oriented reduce engines** (hash by destination) perform
  the Reduce with stall-on-conflict atomicity;
* the **Apply unit** walks *every* vertex each iteration and emits
  ``(vid, prop)`` activation records one at a time.

Integration tests assert this path computes exactly what the vectorized
engine computes, and that its counted inefficiencies (sentinel reads,
per-edge scheduling, full-vertex apply) match the closed forms the timing
model charges.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.reduce_pipeline import StallingReducePipeline
from ..graph.csr import CSRGraph
from ..vcpm.spec import AlgorithmSpec
from .config import GRAPHICIONADO_CONFIG, GraphicionadoConfig

__all__ = ["StreamRunResult", "GraphicionadoStreams"]


@dataclasses.dataclass
class StreamRunResult:
    """Outcome of a component-level Graphicionado run."""

    properties: np.ndarray
    num_iterations: int
    converged: bool
    edge_records_read: int   # includes sentinel reads
    edges_processed: int
    scheduling_ops: int
    apply_operations: int
    atomic_stall_cycles: int

    @property
    def sentinel_reads(self) -> int:
        """Wasted edge-record fetches (the src_vid end-of-list probes)."""
        return self.edge_records_read - self.edges_processed


class GraphicionadoStreams:
    """The baseline pipeline, stream by stream."""

    def __init__(
        self,
        spec: AlgorithmSpec,
        config: GraphicionadoConfig = GRAPHICIONADO_CONFIG,
    ) -> None:
        self.spec = spec
        self.config = config

    # ------------------------------------------------------------------
    def _walk_edge_list(
        self, graph: CSRGraph, vertex: int
    ) -> Tuple[List[int], int]:
        """Sequentially read edge records until the src tag mismatches.

        Returns the edge indices of ``vertex`` and the number of records
        *fetched* (edges + the sentinel probe, unless the array ends).
        """
        start = int(graph.offsets[vertex])
        stop = int(graph.offsets[vertex + 1])
        indices = list(range(start, stop))
        fetched = len(indices)
        if stop < graph.num_edges:
            fetched += 1  # the mismatching record that ends the walk
        return indices, fetched

    # ------------------------------------------------------------------
    def run(
        self,
        graph: CSRGraph,
        source: Optional[int] = 0,
        max_iterations: Optional[int] = None,
    ) -> StreamRunResult:
        """Execute the algorithm through the stream pipeline."""
        spec = self.spec
        cfg = self.config
        num_vertices = graph.num_vertices
        if max_iterations is None:
            max_iterations = spec.default_max_iterations
        if not spec.needs_source:
            source = None

        prop = spec.initial_prop(num_vertices, source)
        deg = graph.out_degree().astype(np.float64)
        c_prop = deg if spec.uses_degree_cprop else np.zeros(num_vertices)
        if spec.uses_degree_cprop and num_vertices:
            prop = prop / np.maximum(c_prop, 1.0)
        t_prop: Dict[int, float] = {}

        if spec.all_vertices_active_initially:
            active = list(range(num_vertices))
        elif source is not None and num_vertices:
            active = [source]
        else:
            active = []

        edge_records_read = 0
        edges_processed = 0
        scheduling_ops = 0
        apply_operations = 0
        stall_cycles = 0
        converged = False
        iterations = 0

        for _ in range(max_iterations):
            if not active:
                converged = True
                break

            # --- Scatter: per-stream sequential edge walks ---
            per_engine_ops: List[List[Tuple[int, float]]] = [
                [] for _ in range(cfg.num_streams)
            ]
            for vertex in active:
                indices, fetched = self._walk_edge_list(graph, vertex)
                edge_records_read += fetched
                for edge_index in indices:
                    dst = int(graph.edges[edge_index])
                    value = spec.process_edge_scalar(
                        float(prop[vertex]), float(graph.weights[edge_index])
                    )
                    # Destination-hash to a reduce engine; every edge is a
                    # front-end scheduling decision.
                    per_engine_ops[dst % cfg.num_streams].append((dst, value))
                    scheduling_ops += 1
                    edges_processed += 1

            # --- Reduce engines: stall-on-conflict pipelines ---
            # Tier-routed: the scalar pipeline is the reference; the
            # vectorized/compiled kernels are bit-identical (oracle-
            # checked) renderings of the same recurrence + fold.
            from ..kernels.tiers import active_tier

            tier = active_tier()
            for ops in per_engine_ops:
                if not ops:
                    continue
                seeded = {
                    addr: t_prop.get(addr, spec.reduce_op.identity)
                    for addr, _ in ops
                }
                if tier == "scalar":
                    outcome = StallingReducePipeline(spec.reduce_op).run(ops, seeded)
                else:
                    from ..kernels.reduce import split_ops, stalling_run

                    addrs, values = split_ops(ops)
                    outcome = stalling_run(
                        addrs, values, spec.reduce_op, vb=seeded, tier=tier
                    )
                stall_cycles += outcome.stall_cycles
                t_prop.update(outcome.vb)

            # --- Apply: every vertex, every iteration ---
            old_prop = prop.copy()
            next_active: List[int] = []
            identity = spec.reduce_op.identity
            for vid in range(num_vertices):
                apply_operations += 1
                result = spec.apply_scalar(
                    float(prop[vid]),
                    t_prop.get(vid, identity),
                    float(c_prop[vid]),
                )
                if prop[vid] != result:
                    prop[vid] = result
                    next_active.append(vid)
            iterations += 1

            if spec.resets_tprop_each_iteration:
                t_prop = {}
                if float(np.abs(prop - old_prop).sum()) < 1e-7:
                    converged = True
                    break
                active = list(range(num_vertices))
            else:
                active = next_active
                if not active:
                    converged = True
                    break

        return StreamRunResult(
            properties=prop,
            num_iterations=iterations,
            converged=converged,
            edge_records_read=edge_records_read,
            edges_processed=edges_processed,
            scheduling_ops=scheduling_ops,
            apply_operations=apply_operations,
            atomic_stall_cycles=stall_cycles,
        )
