"""Graphicionado baseline configuration (Table 3, middle column).

Graphicionado (Ham et al., MICRO 2016) as the GraphDynS paper models it:
128 streams at 1 GHz, a 64 MB on-chip eDRAM that caches the temporary
vertex properties *and* the offset array (twice GraphDynS's 32 MB), and the
same 512 GB/s HBM 1.0.

Its documented inefficiencies, all reproduced here (Section 3.2):

* hash-based workload distribution -> pipeline imbalance ("only half of the
  pipelines experiencing workloads most of the time"),
* stall-on-conflict atomicity (up to 20% extra execution time),
* ``src_vid``-tagged edge records (1.65x edge traffic vs GraphDynS) with a
  sentinel read past the end of each edge list,
* full-vertex Apply every iteration (20% extra time, 40% extra energy),
* uncoalesced active-vertex stores.
"""

from __future__ import annotations

import dataclasses

from ..memory.hbm import HBM1_512GBS, HBMConfig

__all__ = ["GraphicionadoConfig", "GRAPHICIONADO_CONFIG"]


@dataclasses.dataclass(frozen=True)
class GraphicionadoConfig:
    """Parameters of the Graphicionado model."""

    frequency_hz: float = 1e9
    num_streams: int = 128
    edram_bytes: int = 64 * 1024 * 1024
    hbm: HBMConfig = HBM1_512GBS
    #: In-flight window for stall-on-conflict atomicity: conflicts only
    #: stall when they collide inside one reduce engine's short pipeline.
    conflict_window: int = 8
    #: Extra cycles per detected RAW conflict (pipeline bubble).
    conflict_stall_cycles: float = 2.0
    #: Edge record bytes: src_vid + dst (+ weight).
    edge_bytes_weighted: int = 12
    edge_bytes_unweighted: int = 8
    #: Active vertex record: (vid, prop).
    active_record_bytes: int = 8

    @property
    def vb_capacity_bytes(self) -> int:
        """Temporary-property capacity: 2x GraphDynS (Section 7.2 notes
        Graphicionado "can cache 2x temporary vertex property"), which is
        why its RMAT-scaling curve declines one scale later."""
        return self.edram_bytes


#: The configuration evaluated in Section 7.
GRAPHICIONADO_CONFIG = GraphicionadoConfig()
