"""Per-iteration timing model of the Graphicionado baseline.

Same observer interface as :class:`~repro.graphdyns.timing.
GraphDynSTimingModel`, so one functional run can drive both models on
identical data-dependent behaviour.  The structural differences:

* **dispatch**: whole edge lists hash to streams by source vertex id -- no
  splitting, no balancing; the busiest stream bounds compute throughput;
* **atomics**: RAW conflicts within the in-flight window stall the
  pipelines instead of being forwarded;
* **prefetch**: per-vertex edge fetches with ``src_vid`` records and a
  sentinel read (no coalescing, 1.65x edge bytes); the offset array lives
  in the second half of the 64 MB eDRAM so it costs no off-chip traffic;
* **apply**: every vertex is read, applied, and written every iteration;
  activations store ``(vid, prop)`` records one at a time.
"""

from __future__ import annotations

import dataclasses
from typing import List


from ..core.prefetch import plan_baseline_fetch
from ..core.scheduling import hash_dispatch
from ..graph.csr import CSRGraph
from ..graph.slicing import plan_slices
from ..memory.crossbar import Crossbar, grouped_duplicate_count
from ..memory.hbm import HBMModel
from ..memory.request import AccessPattern, Region
from ..memory.traffic import TrafficLedger
from ..metrics.counters import PhaseBreakdown, RunReport
from ..obs import get_recorder
from ..vcpm.engine import IterationData
from ..vcpm.spec import AlgorithmSpec
from .config import GRAPHICIONADO_CONFIG, GraphicionadoConfig

__all__ = ["GraphicionadoTimingModel"]


class GraphicionadoTimingModel:
    """Accumulates modeled cycles for one run on the baseline accelerator."""

    def __init__(
        self,
        graph: CSRGraph,
        spec: AlgorithmSpec,
        config: GraphicionadoConfig = GRAPHICIONADO_CONFIG,
    ) -> None:
        self.graph = graph
        self.spec = spec
        self.config = config
        self.hbm = HBMModel(config.hbm, owner="Graphicionado")
        self.traffic = TrafficLedger()
        # Destination-side: one reduce engine per stream, hash by dst.
        self.crossbar = Crossbar(config.num_streams, config.num_streams)
        self.slice_plan = plan_slices(
            graph.num_vertices, config.vb_capacity_bytes, tprop_bytes=4
        )
        self.phases: List[PhaseBreakdown] = []
        self.total_cycles = 0.0
        self.edges_processed = 0
        self.vertices_processed = 0
        self.scheduling_ops = 0
        self.update_operations = 0
        self.stall_cycles = 0.0

    def on_iteration(self, data: IterationData) -> None:
        rec = get_recorder()
        with rec.span(
            "graphicionado.iteration",
            track="Graphicionado",
            iteration=data.iteration,
        ):
            scatter = self._scatter_cycles(data)
            if rec.enabled:
                t0 = rec.clock.now
                rec.complete_span(
                    "scatter",
                    begin=t0,
                    duration=scatter.scatter_cycles,
                    track="Graphicionado",
                    edges=data.num_edges,
                )
                rec.complete_span(
                    "scatter.dispatch",
                    begin=t0,
                    duration=scatter.scatter_compute_cycles,
                    track="Graphicionado.compute",
                )
                rec.complete_span(
                    "scatter.prefetch",
                    begin=t0,
                    duration=scatter.scatter_memory_cycles,
                    track="Graphicionado.memory",
                )
                rec.complete_span(
                    "scatter.reduce",
                    begin=t0,
                    duration=scatter.scatter_update_cycles,
                    track="Graphicionado.update",
                )
            rec.clock.advance(scatter.scatter_cycles)
            apply_cycles = self._apply_cycles(data)
            if rec.enabled:
                rec.complete_span(
                    "apply",
                    begin=rec.clock.now,
                    duration=apply_cycles,
                    track="Graphicionado",
                )
                rec.counter("graphicionado.edges").add(data.num_edges)
                rec.counter("graphicionado.stall_cycles").add(
                    scatter.scatter_stall_cycles
                )
            rec.clock.advance(apply_cycles)
        phase = dataclasses.replace(scatter, apply_cycles=apply_cycles)
        self.phases.append(phase)
        self.total_cycles += phase.total_cycles
        self.edges_processed += data.num_edges

    # ------------------------------------------------------------------
    def _scatter_cycles(self, data: IterationData) -> PhaseBreakdown:
        cfg = self.config
        if data.num_edges == 0:
            return PhaseBreakdown(
                iteration=data.iteration, scatter_cycles=0.0, apply_cycles=0.0
            )

        # Hash-based source-side distribution: the busiest stream bounds
        # throughput (each stream retires one edge per cycle).
        outcome = hash_dispatch(
            data.active_ids, data.active_degrees, cfg.num_streams
        )
        # Every edge is a front-end scheduling decision.
        self.scheduling_ops += outcome.scheduling_ops
        compute_cycles = float(outcome.max_load)

        # Destination-side reduce engines, hash by dst, with stall-on-
        # conflict atomicity.
        xbar = self.crossbar.route_batch(data.edge_dst)
        conflicts = grouped_duplicate_count(data.edge_dst, cfg.conflict_window)
        stall = conflicts * cfg.conflict_stall_cycles
        update_cycles = float(xbar.cycles) + stall
        self.stall_cycles += stall

        plan = plan_baseline_fetch(
            data.active_offsets,
            data.active_degrees,
            weighted=self.spec.uses_weights,
            offset_cached_on_chip=True,
        )
        patterns = list(plan.patterns)
        num_slices = self.slice_plan.num_slices
        if num_slices > 1:
            patterns = [
                dataclasses.replace(
                    p, total_bytes=p.total_bytes * num_slices
                )
                if p.region is Region.ACTIVE_VERTEX
                else p
                for p in patterns
            ]
        service = self.hbm.service(patterns)
        self.traffic.add_all(patterns)

        startup = cfg.hbm.base_latency_cycles * num_slices
        # Graphicionado serializes the random access to each edge list's
        # start: no exact indication, so prefetch begins only after the
        # active vertex id arrives (extra latency per iteration).
        startup += cfg.hbm.base_latency_cycles
        total = max(compute_cycles, update_cycles, service.cycles) + startup
        return PhaseBreakdown(
            iteration=data.iteration,
            scatter_cycles=total,
            apply_cycles=0.0,
            scatter_compute_cycles=compute_cycles,
            scatter_memory_cycles=service.cycles,
            scatter_update_cycles=update_cycles,
            scatter_stall_cycles=stall,
        )

    # ------------------------------------------------------------------
    def _apply_cycles(self, data: IterationData) -> float:
        cfg = self.config
        num_vertices = data.num_vertices
        if num_vertices == 0:
            return 0.0
        # Full-vertex Apply: every property is checked every iteration.
        scheduled = num_vertices
        self.update_operations += scheduled
        self.vertices_processed += scheduled

        compute_cycles = scheduled / cfg.num_streams
        prop_bytes = 8 if self.spec.uses_degree_cprop else 4
        patterns = [
            AccessPattern(
                Region.VERTEX_PROP,
                total_bytes=scheduled * prop_bytes,
                run_bytes=float(scheduled * prop_bytes),
            ),
            AccessPattern(
                Region.VERTEX_PROP,
                total_bytes=scheduled * 4,
                run_bytes=float(scheduled) * 4.0,
                is_write=True,
            ),
        ]
        if data.num_activated:
            # Uncoalesced (vid, prop) stores as the branch fires.
            patterns.append(
                AccessPattern(
                    Region.ACTIVE_VERTEX,
                    total_bytes=data.num_activated * cfg.active_record_bytes,
                    run_bytes=float(cfg.active_record_bytes),
                    is_write=True,
                )
            )
        service = self.hbm.service(patterns)
        self.traffic.add_all(patterns)
        return (
            max(compute_cycles, service.cycles)
            + cfg.hbm.base_latency_cycles / 2.0
        )

    # ------------------------------------------------------------------
    def report(self) -> RunReport:
        edge_bytes = (
            self.config.edge_bytes_weighted
            if self.spec.uses_weights
            else self.config.edge_bytes_unweighted
        )
        storage = self.graph.storage_bytes(
            edge_bytes=edge_bytes - 4, include_source_ids=True
        )
        return RunReport(
            system="Graphicionado",
            algorithm=self.spec.name,
            graph_name=self.graph.name,
            cycles=self.total_cycles,
            frequency_hz=self.config.frequency_hz,
            edges_processed=self.edges_processed,
            vertices_processed=self.vertices_processed,
            iterations=len(self.phases),
            traffic=self.traffic,
            peak_bytes_per_cycle=self.config.hbm.peak_bytes_per_cycle,
            phases=self.phases,
            scheduling_ops=self.scheduling_ops,
            update_operations=self.update_operations,
            stall_cycles=self.stall_cycles,
            storage_bytes=storage,
        )
