"""Graphicionado baseline accelerator model."""

from .config import GRAPHICIONADO_CONFIG, GraphicionadoConfig
from .timing import GraphicionadoTimingModel
from .streams import GraphicionadoStreams, StreamRunResult
from .accelerator import Graphicionado

__all__ = [
    "GRAPHICIONADO_CONFIG",
    "GraphicionadoConfig",
    "GraphicionadoTimingModel",
    "GraphicionadoStreams",
    "StreamRunResult",
    "Graphicionado",
]
