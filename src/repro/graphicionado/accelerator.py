"""Graphicionado baseline top level."""

from __future__ import annotations

from typing import Optional, Tuple

from ..graph.csr import CSRGraph
from ..metrics.counters import RunReport
from ..vcpm.engine import VCPMResult, run_vcpm
from ..vcpm.spec import AlgorithmSpec
from .config import GRAPHICIONADO_CONFIG, GraphicionadoConfig
from .timing import GraphicionadoTimingModel

__all__ = ["Graphicionado"]


class Graphicionado:
    """The state-of-the-art graph accelerator the paper compares against."""

    def __init__(
        self, config: GraphicionadoConfig = GRAPHICIONADO_CONFIG
    ) -> None:
        self.config = config

    def run(
        self,
        graph: CSRGraph,
        spec: AlgorithmSpec,
        source: Optional[int] = 0,
        max_iterations: Optional[int] = None,
    ) -> Tuple[VCPMResult, RunReport]:
        """Execute ``spec`` on ``graph`` under the baseline timing model."""
        timing = GraphicionadoTimingModel(graph, spec, self.config)
        result = run_vcpm(
            graph,
            spec,
            source=source,
            max_iterations=max_iterations,
            observers=[timing],
        )
        return result, timing.report()
