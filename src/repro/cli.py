"""Command-line interface.

::

    python -m repro run --graph LJ --algo SSSP --system graphdyns
    python -m repro compare --graph HO --algo PR
    python -m repro figure fig6 fig7
    python -m repro report -o EXPERIMENTS.md
    python -m repro datasets
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from .energy.model import (
    gpu_energy_report,
    graphdyns_energy,
    graphicionado_energy,
)
from .gpu.config import V100_GUNROCK
from .gpu.gunrock import Gunrock
from .graph import datasets
from .graphdyns.accelerator import GraphDynS
from .graphicionado.accelerator import Graphicionado
from .harness import experiments, figures, tables
from .harness.io import render_table
from .vcpm.algorithms import algorithm_names

__all__ = ["main", "build_parser"]

_SYSTEMS = {
    "graphdyns": GraphDynS,
    "graphicionado": Graphicionado,
    "gunrock": Gunrock,
}

_FIGURES: Dict[str, Callable[[], "figures.FigureResult"]] = {
    "table1": tables.table1,
    "table2": tables.table2,
    "table3": tables.table3,
    "table4": tables.table4,
    "fig2": figures.figure2,
    "fig6": figures.figure6,
    "fig7": figures.figure7,
    "fig8": figures.figure8,
    "fig9": figures.figure9,
    "fig10": figures.figure10,
    "fig11": figures.figure11,
    "fig12": figures.figure12,
    "fig13": figures.figure13,
    "fig14a": figures.figure14a,
    "fig14b": figures.figure14b,
    "fig14c": figures.figure14c,
    "fig14d": figures.figure14d,
    "fig14e": figures.figure14e,
    "fig14f": figures.figure14f,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphDynS (MICRO 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one algorithm on one system")
    run.add_argument("--graph", default="LJ", help="Table 4 dataset key")
    run.add_argument(
        "--algo", default="SSSP", choices=algorithm_names(), help="algorithm"
    )
    run.add_argument(
        "--system",
        default="graphdyns",
        choices=sorted(_SYSTEMS),
        help="which accelerator model",
    )
    run.add_argument("--source", type=int, default=0, help="source vertex")

    compare = sub.add_parser("compare", help="run all three systems")
    compare.add_argument("--graph", default="LJ")
    compare.add_argument("--algo", default="SSSP", choices=algorithm_names())

    figure = sub.add_parser("figure", help="regenerate paper figures/tables")
    figure.add_argument(
        "names",
        nargs="+",
        choices=sorted(_FIGURES) + ["all"],
        help="artifacts to regenerate",
    )

    report = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md (slow: full evaluation)"
    )
    report.add_argument("-o", "--output", default="EXPERIMENTS.md")

    sub.add_parser("datasets", help="list the Table 4 proxies")

    validate = sub.add_parser(
        "validate",
        help="self-check: all execution engines agree on random graphs",
    )
    validate.add_argument("--seeds", type=int, default=3)
    validate.add_argument("--vertices", type=int, default=200)
    validate.add_argument("--edges", type=int, default=1000)

    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    graph = datasets.load(args.graph)
    accelerator = _SYSTEMS[args.system]()
    from .vcpm.algorithms import get_algorithm

    result, report = accelerator.run(
        graph, get_algorithm(args.algo), source=args.source
    )
    print(
        render_table(
            ["metric", "value"],
            [
                ["system", report.system],
                ["graph", f"{args.graph} (V={graph.num_vertices:,}, E={graph.num_edges:,})"],
                ["iterations", report.iterations],
                ["converged", result.converged],
                ["modeled cycles", f"{report.cycles:,.0f}"],
                ["time (us)", f"{report.seconds * 1e6:.1f}"],
                ["GTEPS", f"{report.gteps:.2f}"],
                ["bandwidth util", f"{report.bandwidth_utilization:.0%}"],
                ["traffic (MB)", f"{report.total_traffic_bytes / 1e6:.2f}"],
            ],
            title=f"{args.algo} on {args.graph} ({args.system})",
        )
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = datasets.load(args.graph)
    cell = experiments.run_cell(graph, args.algo, args.graph)
    gunrock = cell.reports["Gunrock"]
    rows = []
    for system in ("Gunrock", "Graphicionado", "GraphDynS"):
        report = cell.reports[system]
        energy = cell.energy[system]
        rows.append(
            [
                system,
                f"{report.gteps:.1f}",
                f"{report.speedup_over(gunrock):.2f}x",
                f"{report.total_traffic_bytes / 1e6:.1f}",
                f"{energy.total_j * 1e3:.2f}",
            ]
        )
    print(
        render_table(
            ["system", "GTEPS", "speedup", "traffic_MB", "energy_mJ"],
            rows,
            title=f"{args.algo} on {args.graph}",
        )
    )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    names: List[str] = (
        sorted(_FIGURES) if "all" in args.names else args.names
    )
    suite = experiments.ExperimentSuite()
    for name in names:
        fn = _FIGURES[name]
        try:
            result = fn(suite)  # type: ignore[call-arg]
        except TypeError:
            result = fn()
        print(result.render())
        print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .harness.report import generate_experiments_md

    content = generate_experiments_md()
    with open(args.output, "w") as handle:
        handle.write(content)
    print(f"wrote {args.output} ({len(content.splitlines())} lines)")
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    print(tables.table4().render())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .harness.validation import validate_all

    outcomes = validate_all(
        seeds=args.seeds, vertices=args.vertices, edges=args.edges
    )
    failures = [o for o in outcomes if not o.agreed]
    rows = [
        [o.graph_name, o.algorithm, o.engines_checked,
         "ok" if o.agreed else f"FAIL: {o.detail}"]
        for o in outcomes
    ]
    print(
        render_table(
            ["graph", "algo", "engines", "status"],
            rows,
            title="cross-engine validation",
        )
    )
    print(f"\n{len(outcomes) - len(failures)}/{len(outcomes)} checks passed")
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "figure": _cmd_figure,
        "report": _cmd_report,
        "datasets": _cmd_datasets,
        "validate": _cmd_validate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
