"""Command-line interface.

::

    python -m repro run --graph LJ --algo SSSP --system graphdyns
    python -m repro trace bfs RM16 --out trace.json
    python -m repro compare --graph HO --algo PR
    python -m repro figure fig6 fig7 --jobs 4
    python -m repro matrix --jobs 4 --checkpoint sweep.jsonl -o reports.json
    python -m repro matrix --resume sweep.jsonl -o reports.json
    python -m repro plan examples/specs/table4.yaml
    python -m repro run-spec examples/specs/table4.yaml --jobs 4 -o out.json
    python -m repro report -o EXPERIMENTS.md
    python -m repro serve --port 8177 --journal jobs.jsonl
    python -m repro submit --algorithms BFS --graphs FR --wait -o out.json
    python -m repro jobs --url http://127.0.0.1:8177
    python -m repro backends
    python -m repro datasets

Systems are resolved through the :mod:`repro.backends` registry, so a
newly registered backend is immediately runnable and comparable.  The
``figure``/``report``/``compare`` commands share a persistent result
cache (disable with ``--no-cache``; relocate with ``--cache-dir``) and
can fan the evaluation matrix out across workers with ``--jobs``.

``matrix`` runs the evaluation matrix through the resilience layer
(:mod:`repro.harness.resilience`): per-cell timeouts, bounded retries
with jittered backoff, process→thread→serial executor degradation, and
a checkpoint manifest (``--checkpoint``/``--resume``) so a killed sweep
re-executes only its unfinished cells.  ``--inject`` enables the
deterministic fault hooks (``crash:N``, ``hang:N:SECONDS``, ``kill:N``,
``flaky-store:N``, ``corrupt-cache:N``) used by the failure-mode tests.

``plan``/``run-spec`` are the declarative surface
(:mod:`repro.harness.specs` + :mod:`repro.harness.planner`): a YAML
spec describes a backend x algorithm x graph x config-override grid
with filters, selected report fields, and named outputs; ``plan``
classifies every cell against the persistent cache without executing
(``--url`` plans against a daemon's cache and in-flight jobs), and
``run-spec`` executes only the pending cells (``--dry-run`` prints the
plan table; ``--url`` fans pending cells into a daemon's job queue).

``serve`` runs the durable simulation daemon
(:mod:`repro.harness.serve`): an HTTP/JSON job API with a write-ahead
journal (crash-safe resume), request coalescing, admission control with
per-client rate limits and 429/503 + Retry-After backpressure, and
graceful drain on SIGTERM.  ``submit``/``jobs`` are its thin clients.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional

from . import backends
from .graph import datasets
from .harness import figures, tables  # noqa: F401 - builder registry deps
from .harness.experiments import ExperimentSuite
from .harness.io import render_table
from .harness.specs import OUTPUT_BUILDERS
from .vcpm.algorithms import algorithm_names, get_algorithm

__all__ = ["main", "build_parser", "DEFAULT_CACHE_DIR"]

#: Where `figure`/`report`/`compare` persist results unless overridden.
DEFAULT_CACHE_DIR = os.environ.get(
    "REPRO_CACHE_DIR", os.path.join("~", ".cache", "repro")
)

# The figure registry and the spec language's `outputs` builders are the
# same mapping, so a builder added there is immediately addressable both
# from `repro figure <name>` and from a spec's outputs clause.
_FIGURES: Dict[str, Callable[[], "figures.FigureResult"]] = dict(
    OUTPUT_BUILDERS
)

#: Figures that consume the shared suite (worth pre-warming in parallel).
_MATRIX_FIGURES = {"fig6", "fig7", "fig9", "fig10", "fig11", "fig12", "fig13"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphDynS (MICRO 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Cache/pool knobs alone (no storage/shards/kernel-tier): the
    # spec-driven commands take those axes from the spec itself.
    cache_flags = argparse.ArgumentParser(add_help=False)
    cache_flags.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads for the evaluation matrix (default: 1)",
    )
    cache_flags.add_argument(
        "--cache-dir",
        default=None,
        help=f"persistent result cache directory "
        f"(default: {DEFAULT_CACHE_DIR})",
    )
    cache_flags.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache",
    )
    cache_flags.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="worker pool kind for --jobs > 1: 'thread' shares one "
        "interpreter, 'process' bypasses the GIL (default: thread)",
    )

    # Out-of-core / sharding knobs, shared by run, trace, and every
    # service-backed command.  Results are byte-identical across all
    # storage x shards combinations; only residency and fan-out change.
    sharding_flags = argparse.ArgumentParser(add_help=False)
    sharding_flags.add_argument(
        "--storage",
        choices=("memory", "mmap"),
        default="memory",
        help="graph storage backend: 'memory' holds CSR arrays resident, "
        "'mmap' spills them to disk and memory-maps (required for the "
        "paper-scale *-FULL datasets) (default: memory)",
    )
    sharding_flags.add_argument(
        "--shards",
        type=int,
        default=1,
        help="destination-contiguous shards for the Scatter phase; "
        "results are byte-identical to --shards 1 (default: 1)",
    )
    sharding_flags.add_argument(
        "--kernel-tier",
        choices=("auto", "scalar", "vectorized", "compiled"),
        default="auto",
        help="kernel tier for the hot loops: 'scalar' (pure-Python "
        "references), 'vectorized' (numpy closed forms), 'compiled' "
        "(native numba/cffi kernels; falls back to vectorized with a "
        "warning when unavailable); 'auto' picks the best available. "
        "Results are byte-identical across tiers (default: auto)",
    )
    service_flags = argparse.ArgumentParser(
        add_help=False, parents=[cache_flags, sharding_flags]
    )

    run = sub.add_parser(
        "run", parents=[sharding_flags], help="run one algorithm on one system"
    )
    run.add_argument("--graph", default="LJ", help="Table 4 dataset key")
    run.add_argument(
        "--algo", default="SSSP", choices=algorithm_names(), help="algorithm"
    )
    run.add_argument(
        "--system",
        default="graphdyns",
        choices=backends.available_keys(),
        help="which registered backend",
    )
    run.add_argument("--source", type=int, default=0, help="source vertex")
    run.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top-20 cumulative entries",
    )
    run.add_argument(
        "--obs",
        action="store_true",
        help="record spans/instruments and write a Chrome trace",
    )
    run.add_argument(
        "--obs-out",
        default="obs-trace.json",
        help="Chrome trace path for --obs (default: obs-trace.json)",
    )

    trace = sub.add_parser(
        "trace",
        parents=[sharding_flags],
        help="run one cell under the span recorder and export the trace",
    )
    trace.add_argument("algo", help="algorithm (case-insensitive, e.g. bfs)")
    trace.add_argument(
        "graph", help="Table 4 dataset key or proxy alias (e.g. RM16)"
    )
    trace.add_argument(
        "--system",
        default="graphdyns",
        choices=backends.available_keys(),
        help="which registered backend to trace",
    )
    trace.add_argument("--source", type=int, default=0, help="source vertex")
    trace.add_argument(
        "--out", default="trace.json", help="output path (default: trace.json)"
    )
    trace.add_argument(
        "--format",
        choices=("chrome", "jsonl", "stats"),
        default="chrome",
        help="chrome (chrome://tracing), jsonl (spans+instruments), or "
        "stats (flat table) (default: chrome)",
    )

    compare = sub.add_parser(
        "compare",
        parents=[service_flags],
        help="run every registered backend",
    )
    compare.add_argument("--graph", default="LJ")
    compare.add_argument("--algo", default="SSSP", choices=algorithm_names())

    figure = sub.add_parser(
        "figure",
        parents=[service_flags],
        help="regenerate paper figures/tables",
    )
    figure.add_argument(
        "names",
        nargs="+",
        choices=sorted(_FIGURES) + ["all"],
        help="artifacts to regenerate",
    )

    matrix = sub.add_parser(
        "matrix",
        parents=[service_flags],
        help="run the evaluation matrix under the resilience layer",
    )
    matrix.add_argument(
        "--algorithms",
        nargs="+",
        default=None,
        choices=algorithm_names(),
        help="algorithms to run (default: all; ignored with --resume "
        "unless given)",
    )
    matrix.add_argument(
        "--graphs",
        nargs="+",
        default=None,
        help="Table 4 dataset keys (default: the six real-world proxies)",
    )
    matrix.add_argument(
        "--retries",
        type=int,
        default=3,
        help="max attempts per cell before the sweep aborts (default: 3)",
    )
    matrix.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-cell attempt deadline in seconds (default: none)",
    )
    matrix.add_argument(
        "--backoff",
        type=float,
        default=0.05,
        help="base retry backoff in seconds, doubled per attempt with "
        "deterministic jitter (default: 0.05)",
    )
    matrix.add_argument(
        "--checkpoint",
        default=None,
        metavar="MANIFEST",
        help="journal completed cells to this manifest file",
    )
    matrix.add_argument(
        "--resume",
        default=None,
        metavar="MANIFEST",
        help="resume the sweep recorded in this manifest: only "
        "unfinished cells are executed (finished ones replay from the "
        "persistent cache)",
    )
    matrix.add_argument(
        "--inject",
        action="append",
        default=[],
        metavar="FAULT",
        help="deterministic fault injection for failure drills, e.g. "
        "crash:2, hang:1:0.5, kill:1, flaky-store:1, corrupt-cache:1 "
        "(repeatable)",
    )
    matrix.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the canonical RunReport JSON of every cell here",
    )
    matrix.add_argument(
        "--obs",
        action="store_true",
        help="record spans/instruments for executed cells and write a "
        "Chrome trace",
    )
    matrix.add_argument(
        "--obs-out",
        default="obs-trace.json",
        help="Chrome trace path for --obs (default: obs-trace.json)",
    )

    report = sub.add_parser(
        "report",
        parents=[service_flags],
        help="regenerate EXPERIMENTS.md (slow: full evaluation)",
    )
    report.add_argument("-o", "--output", default="EXPERIMENTS.md")

    plan = sub.add_parser(
        "plan",
        parents=[cache_flags],
        help="classify a declarative experiment spec against the cache "
        "(never executes)",
    )
    plan.add_argument("spec", help="path to a YAML experiment spec")
    plan.add_argument(
        "--json",
        action="store_true",
        help="print the canonical plan JSON instead of the table",
    )
    plan.add_argument(
        "--url",
        default=None,
        help="plan against a running daemon's cache and in-flight jobs "
        "(POST /v1/plans dry-run) instead of the local cache",
    )

    run_spec = sub.add_parser(
        "run-spec",
        parents=[cache_flags],
        help="plan and execute a declarative experiment spec",
    )
    run_spec.add_argument("spec", help="path to a YAML experiment spec")
    run_spec.add_argument(
        "--dry-run",
        action="store_true",
        help="print the plan table and exit without executing anything",
    )
    run_spec.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the canonical RunReport JSON of every grid cell here",
    )
    run_spec.add_argument(
        "--plan-out",
        default=None,
        help="write the canonical plan JSON here",
    )
    run_spec.add_argument(
        "--url",
        default=None,
        help="submit the plan to a running daemon (pending cells fan "
        "into its job queue) instead of executing locally",
    )
    run_spec.add_argument(
        "--priority",
        type=int,
        default=None,
        help="daemon queue priority for --url submissions "
        "(default: the spec's own priority)",
    )

    serve = sub.add_parser(
        "serve",
        parents=[sharding_flags],
        help="run the durable, admission-controlled simulation daemon",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8177,
        help="listen port; 0 picks an ephemeral port (use --announce to "
        "learn it) (default: 8177)",
    )
    serve.add_argument(
        "--journal",
        default="repro-jobs.jsonl",
        metavar="WAL",
        help="write-ahead job journal; restarting against the same file "
        "resumes every unfinished job (default: repro-jobs.jsonl)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help=f"persistent result cache directory "
        f"(default: {DEFAULT_CACHE_DIR})",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache (crash-safe resume "
        "then re-executes finished cells instead of replaying them)",
    )
    serve.add_argument(
        "--capacity",
        type=int,
        default=64,
        help="bounded queue capacity; beyond it submissions are shed or "
        "rejected with 503 + Retry-After (default: 64)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=None,
        help="per-client token-bucket rate in jobs/second; over-budget "
        "clients get 429 + Retry-After (default: unlimited)",
    )
    serve.add_argument(
        "--burst",
        type=float,
        default=10.0,
        help="per-client token-bucket burst capacity (default: 10)",
    )
    serve.add_argument(
        "--max-running",
        type=int,
        default=1,
        help="jobs executing concurrently (each may fan cells out "
        "internally via --jobs) (default: 1)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads per job's cell matrix (default: 1)",
    )
    serve.add_argument(
        "--executor",
        choices=("thread", "process", "serial"),
        default="thread",
        help="base executor tier; under load jobs degrade "
        "process->thread->serial automatically (default: thread)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-job wall-clock deadline; the watchdog abandons "
        "over-budget jobs (default: none)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        help="grace period for running jobs on SIGTERM (default: 5)",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=3,
        help="max attempts per cell (default: 3)",
    )
    serve.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        help="per-cell attempt deadline in seconds (default: none)",
    )
    serve.add_argument(
        "--inject",
        action="append",
        default=[],
        metavar="FAULT",
        help="deterministic fault injection for failure drills, e.g. "
        "kill-daemon:2, flaky-journal:1:2, queue-overflow:3:5 "
        "(repeatable)",
    )
    serve.add_argument(
        "--announce",
        default=None,
        metavar="PATH",
        help="write {pid, port, url} JSON here once the daemon is ready",
    )

    submit = sub.add_parser(
        "submit", help="submit a job to a running simulation daemon"
    )
    submit.add_argument(
        "--url",
        default="http://127.0.0.1:8177",
        help="daemon base URL (default: http://127.0.0.1:8177)",
    )
    submit.add_argument(
        "--algorithms",
        nargs="+",
        required=True,
        choices=algorithm_names(),
    )
    submit.add_argument(
        "--graphs",
        nargs="+",
        required=True,
        help="Table 4 dataset keys, e.g. FR PK RM22",
    )
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--client", default="cli")
    submit.add_argument(
        "--wait",
        action="store_true",
        help="poll until the job finishes and print its final state",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="--wait polling budget in seconds (default: 600)",
    )
    submit.add_argument(
        "-o",
        "--output",
        default=None,
        help="with --wait: write the job's canonical RunReport JSON here",
    )

    jobs_cmd = sub.add_parser(
        "jobs", help="list or inspect jobs on a running simulation daemon"
    )
    jobs_cmd.add_argument(
        "--url",
        default="http://127.0.0.1:8177",
        help="daemon base URL (default: http://127.0.0.1:8177)",
    )
    jobs_cmd.add_argument(
        "job_id",
        nargs="?",
        default=None,
        help="job id to inspect (default: list all jobs)",
    )

    sub.add_parser("backends", help="list registered accelerator backends")
    sub.add_parser("datasets", help="list the Table 4 proxies")

    validate = sub.add_parser(
        "validate",
        help="self-check: all execution engines agree on random graphs",
    )
    validate.add_argument("--seeds", type=int, default=3)
    validate.add_argument("--vertices", type=int, default=200)
    validate.add_argument("--edges", type=int, default=1000)

    churn = sub.add_parser(
        "churn",
        help="evolving-graph session: apply deterministic churn batches "
        "and compare incremental recomputation against full reruns",
    )
    churn.add_argument("--graph", default="FR", help="base dataset key")
    churn.add_argument(
        "--algo", default="BFS", choices=algorithm_names(), help="algorithm"
    )
    churn.add_argument(
        "--batches", type=int, default=8, help="churn batches to apply"
    )
    churn.add_argument(
        "--batch-edges", type=int, default=64, help="edge mutations per batch"
    )
    churn.add_argument(
        "--insert-fraction",
        type=float,
        default=0.5,
        help="fraction of each batch that inserts (the rest deletes); "
        "1.0 keeps every step on the frontier-delta path (default: 0.5)",
    )
    churn.add_argument("--seed", type=int, default=0, help="churn trace seed")
    churn.add_argument("--source", type=int, default=0, help="source vertex")

    return parser


def _suite_from_args(args: argparse.Namespace) -> ExperimentSuite:
    """An ExperimentSuite honouring the shared service flags."""
    cache_dir: Optional[str]
    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = args.cache_dir or DEFAULT_CACHE_DIR
    return ExperimentSuite(
        cache_dir=cache_dir,
        use_cache=not args.no_cache,
        jobs=args.jobs,
        executor=args.executor,
        storage=args.storage,
        shards=args.shards,
        kernel_tier=args.kernel_tier,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    if args.profile:
        return _profiled(lambda: _cmd_run_body(args))
    return _cmd_run_body(args)


def _profiled(fn: Callable[[], int]) -> int:
    """Run ``fn`` under cProfile, print top-20 cumulative entries.

    Keeps future hot spots discoverable from the CLI without editing
    code: ``repro run --graph RM22 --algo SSSP --profile``.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        status = fn()
    finally:
        profiler.disable()
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
    return status


def _cmd_run_body(args: argparse.Namespace) -> int:
    from .kernels.tiers import use_tier
    from .obs import NULL_RECORDER, TraceRecorder, use_recorder

    graph = datasets.load(args.graph, storage=args.storage)
    backend = backends.create(args.system)
    recorder = TraceRecorder() if args.obs else NULL_RECORDER
    with use_recorder(recorder), use_tier(args.kernel_tier) as kernel_tier:
        result, report = backend.run(
            graph,
            get_algorithm(args.algo),
            source=args.source,
            shards=args.shards,
        )
    if args.obs:
        from .obs.export import write_chrome_trace

        recorder.finish()
        write_chrome_trace(recorder, args.obs_out)
        print(f"wrote {args.obs_out} ({len(recorder.spans)} spans)")
    print(
        render_table(
            ["metric", "value"],
            [
                ["system", report.system],
                ["graph", f"{args.graph} (V={graph.num_vertices:,}, E={graph.num_edges:,})"],
                ["iterations", report.iterations],
                ["converged", result.converged],
                ["kernel tier", kernel_tier],
                ["modeled cycles", f"{report.cycles:,.0f}"],
                ["time (us)", f"{report.seconds * 1e6:.1f}"],
                ["GTEPS", f"{report.gteps:.2f}"],
                ["bandwidth util", f"{report.bandwidth_utilization:.0%}"],
                ["traffic (MB)", f"{report.total_traffic_bytes / 1e6:.2f}"],
            ],
            title=f"{args.algo} on {args.graph} ({args.system})",
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import math

    from .obs import TraceRecorder, use_recorder
    from .obs.export import stats_rows, to_jsonl, write_chrome_trace

    from .kernels.tiers import use_tier

    spec = get_algorithm(args.algo)  # raises on unknown, case-insensitive
    graph = datasets.load(args.graph, storage=args.storage)
    backend = backends.create(args.system)
    recorder = TraceRecorder()
    with use_recorder(recorder), use_tier(args.kernel_tier):
        result, report = backend.run(
            graph, spec, source=args.source, shards=args.shards
        )
    recorder.finish()

    if args.format == "chrome":
        write_chrome_trace(recorder, args.out)
    elif args.format == "jsonl":
        with open(args.out, "w") as handle:
            handle.write(to_jsonl(recorder))
    else:
        headers, rows = stats_rows(recorder)
        with open(args.out, "w") as handle:
            handle.write(render_table(headers, rows) + "\n")
    print(
        f"wrote {args.out} ({len(recorder.spans)} spans, "
        f"{len(recorder.events)} events)"
    )

    # Reconcile the recorded spans against the report's cycle breakdown:
    # per-phase span totals are summed in recording order, so they match
    # the report float-for-float; the clock accumulates across phases and
    # is compared with a tolerance.
    totals = recorder.span_totals(track=report.system)
    scatter = totals.get("scatter", (0, 0.0))[1]
    apply_total = totals.get("apply", (0, 0.0))[1]
    rows = [
        ["iterations", report.iterations, report.iterations, "yes"],
        [
            "scatter cycles",
            f"{scatter:,.0f}",
            f"{report.scatter_cycles_total():,.0f}",
            "yes" if scatter == report.scatter_cycles_total() else "NO",
        ],
        [
            "apply cycles",
            f"{apply_total:,.0f}",
            f"{report.apply_cycles_total():,.0f}",
            "yes" if apply_total == report.apply_cycles_total() else "NO",
        ],
        [
            "total cycles",
            f"{recorder.clock.now:,.0f}",
            f"{report.cycles:,.0f}",
            "yes" if math.isclose(recorder.clock.now, report.cycles) else "NO",
        ],
    ]
    print(
        render_table(
            ["metric", "trace", "report", "reconciled"],
            rows,
            title=(
                f"{spec.name} on {args.graph} ({report.system}), "
                f"converged={result.converged}"
            ),
        )
    )
    reconciled = (
        scatter == report.scatter_cycles_total()
        and apply_total == report.apply_cycles_total()
        and math.isclose(recorder.clock.now, report.cycles)
    )
    return 0 if reconciled else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    suite = _suite_from_args(args)
    cell = suite.cell(args.algo, args.graph)
    names = list(cell.reports)
    baseline_name = "Gunrock" if "Gunrock" in cell.reports else names[0]
    if baseline_name in names:  # baseline row first
        names.remove(baseline_name)
        names.insert(0, baseline_name)
    baseline = cell.reports[baseline_name]
    rows = []
    for system in names:
        report = cell.reports[system]
        energy = cell.energy[system]
        rows.append(
            [
                system,
                f"{report.gteps:.1f}",
                f"{report.speedup_over(baseline):.2f}x",
                f"{report.total_traffic_bytes / 1e6:.1f}",
                f"{energy.total_j * 1e3:.2f}",
            ]
        )
    print(
        render_table(
            ["system", "GTEPS", "speedup", "traffic_MB", "energy_mJ"],
            rows,
            title=f"{args.algo} on {args.graph}",
        )
    )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    names: List[str] = (
        sorted(_FIGURES) if "all" in args.names else args.names
    )
    suite = _suite_from_args(args)
    if args.jobs > 1 and any(n in _MATRIX_FIGURES for n in names):
        suite.matrix()  # resolve all cells in parallel up front
    for name in names:
        fn = _FIGURES[name]
        try:
            result = fn(suite)  # type: ignore[call-arg]
        except TypeError:
            result = fn()
        print(result.render())
        print()
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    from .harness.faults import build_injector
    from .harness.resilience import RetryPolicy
    from .harness.service import canonical_reports_json

    cache_dir: Optional[str]
    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = args.cache_dir or DEFAULT_CACHE_DIR
    manifest_path = args.resume or args.checkpoint
    suite = ExperimentSuite(
        cache_dir=cache_dir,
        use_cache=not args.no_cache,
        jobs=args.jobs,
        executor=args.executor,
        storage=args.storage,
        shards=args.shards,
        kernel_tier=args.kernel_tier,
        resilience=RetryPolicy(
            max_attempts=max(args.retries, 1),
            backoff_base=args.backoff,
            timeout=args.timeout,
        ),
        faults=build_injector(args.inject),
        manifest_path=manifest_path,
        resume=args.resume is not None,
    )
    from .obs import NULL_RECORDER, TraceRecorder, use_recorder

    recorder = TraceRecorder() if args.obs else NULL_RECORDER
    with use_recorder(recorder):
        cells = suite.service.matrix(args.algorithms, args.graphs)
    if args.obs:
        from .obs.export import write_chrome_trace

        recorder.finish()
        write_chrome_trace(recorder, args.obs_out)
        print(f"wrote {args.obs_out} ({len(recorder.spans)} spans)")
    if args.output:
        payload = canonical_reports_json(cells)
        with open(args.output, "w") as handle:
            handle.write(payload)
        print(f"wrote {args.output} ({len(cells)} cells)")
    stats = suite.service.stats
    print(
        render_table(
            ["counter", "value"],
            [
                ["cells", len(cells)],
                ["cache hits", stats.hits],
                ["executed (misses)", stats.misses],
                ["stores", stats.stores],
                ["store failures", stats.store_failures],
                ["retries", stats.retries],
                ["timeouts", stats.timeouts],
                ["executor degradations", stats.degradations],
            ],
            title="matrix run (resilient)",
        )
    )
    if manifest_path:
        print(f"checkpoint manifest: {manifest_path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .harness.report import generate_experiments_md

    suite = _suite_from_args(args)
    if args.jobs > 1:
        suite.matrix()
    content = generate_experiments_md(suite)
    with open(args.output, "w") as handle:
        handle.write(content)
    print(f"wrote {args.output} ({len(content.splitlines())} lines)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .harness.serve import DaemonConfig, SimulationDaemon

    cache_dir: Optional[str]
    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = args.cache_dir or DEFAULT_CACHE_DIR
    config = DaemonConfig(
        host=args.host,
        port=args.port,
        journal_path=args.journal,
        cache_dir=cache_dir,
        use_cache=not args.no_cache,
        capacity=args.capacity,
        rate=args.rate,
        burst=args.burst,
        max_running=args.max_running,
        job_deadline=args.deadline,
        drain_timeout=args.drain_timeout,
        executor=args.executor,
        jobs=args.jobs,
        storage=args.storage,
        shards=args.shards,
        kernel_tier=args.kernel_tier,
        retries=args.retries,
        cell_timeout=args.cell_timeout,
        inject=tuple(args.inject),
        announce=args.announce,
    )
    daemon = SimulationDaemon(config)
    resumed = daemon.stats.resumed
    daemon.run_forever()
    print(
        f"daemon exited cleanly (resumed {resumed} job(s) at startup, "
        f"completed {daemon.stats.completed})"
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .harness.serve import fetch_result, submit_job, wait_for_job

    status, headers, body = submit_job(
        args.url,
        args.algorithms,
        args.graphs,
        priority=args.priority,
        client=args.client,
    )
    if status != 202 or not isinstance(body, dict):
        retry = headers.get("Retry-After")
        hint = f" (Retry-After: {retry}s)" if retry else ""
        print(f"rejected [{status}]{hint}: {body}", file=sys.stderr)
        return 1
    job = body["job"]
    verb = "coalesced into" if body.get("coalesced") else "accepted as"
    print(f"{verb} {job['id']} (state: {job['state']})")
    if not args.wait:
        return 0
    final = wait_for_job(args.url, job["id"], timeout=args.timeout)
    print(f"final state: {final['state']}")
    if final["state"] != "done":
        if final.get("error"):
            print(f"error: {final['error']}", file=sys.stderr)
        return 1
    if args.output:
        status, text = fetch_result(args.url, job["id"])
        if status != 200:
            print(f"result fetch failed [{status}]: {text}", file=sys.stderr)
            return 1
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json as _json

    from .harness.serve import http_json

    if args.job_id:
        status, _, body = http_json(f"{args.url}/v1/jobs/{args.job_id}")
        print(_json.dumps(body, indent=2, sort_keys=True))
        return 0 if status == 200 else 1
    status, _, body = http_json(f"{args.url}/v1/jobs")
    if status != 200 or not isinstance(body, dict):
        print(f"daemon error [{status}]: {body}", file=sys.stderr)
        return 1
    rows = [
        [
            job["id"],
            job["state"],
            job["client"],
            job["priority"],
            ",".join(job["algorithms"]),
            ",".join(job["graphs"]),
        ]
        for job in body.get("jobs", [])
    ]
    print(
        render_table(
            ["id", "state", "client", "prio", "algorithms", "graphs"],
            rows,
            title=f"daemon jobs ({len(rows)})",
        )
    )
    return 0


def _cmd_backends(_: argparse.Namespace) -> int:
    rows = []
    for name in backends.available():
        backend = backends.create(name)
        rows.append(
            [
                name,
                name.lower(),
                type(backend.config).__name__,
                backend.config_digest(),
            ]
        )
    print(
        render_table(
            ["backend", "cli_key", "config", "config_digest"],
            rows,
            title=f"registered backends ({len(rows)})",
        )
    )
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    print(tables.table4().render())
    alias_rows = [
        [alias, canonical, "proxy-scale RMAT alias"]
        for alias, canonical in sorted(datasets.ALIASES.items())
    ]
    paper_rows = [
        [
            spec.key,
            spec.key,
            f"paper scale (V={spec.proxy_vertices:,}, "
            f"E={spec.proxy_edges:,}; use --storage mmap)",
        ]
        for spec in datasets.RMAT_PAPER
    ]
    print()
    print(
        render_table(
            ["key", "resolves_to", "notes"],
            alias_rows + paper_rows,
            title="aliases and paper-scale keys (also accepted by --graph)",
        )
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .harness.validation import validate_all

    outcomes = validate_all(
        seeds=args.seeds, vertices=args.vertices, edges=args.edges
    )
    failures = [o for o in outcomes if not o.agreed]
    rows = [
        [o.graph_name, o.algorithm, o.engines_checked,
         "ok" if o.agreed else f"FAIL: {o.detail}"]
        for o in outcomes
    ]
    print(
        render_table(
            ["graph", "algo", "engines", "status"],
            rows,
            title="cross-engine validation",
        )
    )
    print(f"\n{len(outcomes) - len(failures)}/{len(outcomes)} checks passed")
    return 1 if failures else 0


def _load_spec_for_cli(path: str):
    """Parse a spec file; prints the SpecError and returns None on failure."""
    from .harness.specs import SpecError, load_spec

    try:
        return load_spec(path)
    except SpecError as exc:
        print(f"spec error: {exc}", file=sys.stderr)
        return None


def _services_for_cli(args: argparse.Namespace, spec):
    from .harness import planner

    cache_dir: Optional[str]
    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = args.cache_dir or DEFAULT_CACHE_DIR
    return planner.services_for_spec(
        spec,
        cache_dir=cache_dir,
        use_cache=not args.no_cache,
        jobs=args.jobs,
        executor=args.executor,
    )


def _cmd_plan(args: argparse.Namespace) -> int:
    import json

    from .harness import planner

    if args.url:
        from .harness.serve import submit_plan

        try:
            with open(args.spec) as handle:
                text = handle.read()
        except OSError as exc:
            print(f"spec error: {exc}", file=sys.stderr)
            return 2
        status, _, body = submit_plan(args.url, yaml_text=text, dry_run=True)
        if status != 200 or not isinstance(body, dict):
            error = body.get("error") if isinstance(body, dict) else body
            print(f"daemon rejected plan ({status}): {error}", file=sys.stderr)
            return 1
        print(json.dumps(body["plan"], indent=2, sort_keys=True))
        return 0

    spec = _load_spec_for_cli(args.spec)
    if spec is None:
        return 2
    services = _services_for_cli(args, spec)
    plan = planner.build_plan(spec, services)
    if args.json:
        print(planner.canonical_plan_json(plan))
    else:
        print(planner.render_plan_table(plan))
    return 0


def _cmd_run_spec(args: argparse.Namespace) -> int:
    import json

    from .harness import planner
    from .harness.service import canonical_reports_json

    if args.url:
        from .harness.serve import submit_plan

        try:
            with open(args.spec) as handle:
                text = handle.read()
        except OSError as exc:
            print(f"spec error: {exc}", file=sys.stderr)
            return 2
        status, _, body = submit_plan(
            args.url,
            yaml_text=text,
            priority=args.priority,
            dry_run=args.dry_run,
        )
        print(json.dumps(body, indent=2, sort_keys=True))
        return 0 if status in (200, 202) else 1

    spec = _load_spec_for_cli(args.spec)
    if spec is None:
        return 2
    services = _services_for_cli(args, spec)
    plan = planner.build_plan(spec, services)
    print(planner.render_plan_table(plan))
    if args.plan_out:
        with open(args.plan_out, "w") as handle:
            handle.write(planner.canonical_plan_json(plan))
        print(f"\nwrote plan to {args.plan_out}")
    if args.dry_run:
        return 0

    results = planner.execute_plan(plan, services)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(canonical_reports_json(results))
        print(f"wrote {len(results)} cell reports to {args.output}")

    rows = []
    fields = list(spec.select) or ["cycles", "gteps", "speedup"]
    for row in planner.summarize(spec, plan, results):
        rows.append(
            [row["override"], row["algorithm"], row["graph"], row["system"]]
            + [
                "-" if row[f] is None else f"{row[f]:.6g}"
                for f in fields
            ]
        )
    print()
    print(
        render_table(
            ["override", "algo", "graph", "system"] + fields,
            rows,
            title=f"spec {spec.name}",
        )
    )
    for name, result in planner.build_outputs(spec, services).items():
        print()
        print(f"# output: {name}")
        print(result.render())
    return 0


def _cmd_churn(args: argparse.Namespace) -> int:
    import time

    from .graph import dynamic
    from .metrics.counters import ChurnStats
    from .vcpm import run_vcpm, run_vcpm_incremental

    base = datasets.load(args.graph)
    key = f"{datasets.resolve_key(args.graph)}-CHURN"
    dyn = dynamic.DynamicGraph(base, key=key)
    dynamic.register(dyn, replace=True)
    spec = get_algorithm(args.algo)
    stats = ChurnStats()
    rows = []
    try:
        previous = run_vcpm(dyn.graph, spec, source=args.source)
        batches = dynamic.churn_batches(
            dyn.graph,
            num_batches=args.batches,
            batch_edges=args.batch_edges,
            insert_fraction=args.insert_fraction,
            seed=args.seed,
        )
        for index, batch in enumerate(batches):
            dyn.apply(batch)
            stats.record_batch(batch)
            t0 = time.perf_counter()
            outcome = run_vcpm_incremental(
                dyn.graph, spec, batch, previous, source=args.source
            )
            incremental_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            reference = run_vcpm(dyn.graph, spec, source=args.source)
            full_s = time.perf_counter() - t0
            identical = (
                outcome.result.properties.tobytes()
                == reference.properties.tobytes()
            )
            stats.record(outcome)
            rows.append(
                [
                    index,
                    outcome.mode,
                    outcome.seed_count,
                    outcome.result.num_iterations,
                    f"{incremental_s * 1e3:.2f}",
                    f"{full_s * 1e3:.2f}",
                    f"{full_s / max(incremental_s, 1e-9):.2f}x",
                    identical,
                ]
            )
            if not identical:
                print(
                    f"ERROR: batch {index}: incremental result diverged "
                    "from the full rerun"
                )
                return 1
            previous = outcome.result
    finally:
        dynamic.unregister(key)
    print(
        render_table(
            [
                "batch",
                "mode",
                "seeds",
                "iters",
                "incr (ms)",
                "full (ms)",
                "speedup",
                "bit-identical",
            ],
            rows,
            title=f"{args.algo} on {args.graph} under churn "
            f"({args.batch_edges} edges/batch, "
            f"{args.insert_fraction:.0%} inserts)",
        )
    )
    print(
        f"\n{stats.batches_applied} batches "
        f"(+{stats.edges_inserted}/-{stats.edges_deleted} edges), "
        f"generation {dyn.generation}; "
        f"delta path on {stats.delta_runs}/{stats.steps} steps "
        f"({stats.delta_fraction:.0%}), "
        f"{stats.delta_edges_processed:,} vs "
        f"{stats.full_edges_processed:,} edges processed"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "trace": _cmd_trace,
        "compare": _cmd_compare,
        "figure": _cmd_figure,
        "matrix": _cmd_matrix,
        "plan": _cmd_plan,
        "run-spec": _cmd_run_spec,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "report": _cmd_report,
        "backends": _cmd_backends,
        "datasets": _cmd_datasets,
        "validate": _cmd_validate,
        "churn": _cmd_churn,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
