"""Warp-level divergence statistics.

GPU vertex-centric kernels assign one frontier vertex per thread; a warp of
32 threads therefore runs for its *maximum* member's edge count while the
other lanes idle -- the GPU face of workload irregularity (Section 3.1
cites 25-39% utilization loss).  These helpers quantify that effect from a
frontier's degree sequence.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["WarpStats", "warp_divergence"]


@dataclasses.dataclass(frozen=True)
class WarpStats:
    """Divergence outcome of mapping one frontier onto warps."""

    num_warps: int
    total_work: int
    serialized_work: int

    @property
    def efficiency(self) -> float:
        """Useful-lane fraction (1.0 = perfectly uniform degrees)."""
        if self.serialized_work == 0:
            return 1.0
        return self.total_work / self.serialized_work

    @property
    def excess_work(self) -> int:
        """Idle-lane cycles caused by intra-warp degree variance."""
        return self.serialized_work - self.total_work


def warp_divergence(degrees: np.ndarray, warp_size: int = 32) -> WarpStats:
    """Map a frontier's degree sequence onto warps, one vertex per lane.

    ``serialized_work`` is ``warp_size * max(degree in warp)`` summed over
    warps -- the lane-cycles actually consumed.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    n = degrees.size
    if n == 0:
        return WarpStats(num_warps=0, total_work=0, serialized_work=0)
    num_warps = -(-n // warp_size)
    padded = np.zeros(num_warps * warp_size, dtype=np.int64)
    padded[:n] = degrees
    per_warp_max = padded.reshape(num_warps, warp_size).max(axis=1)
    return WarpStats(
        num_warps=num_warps,
        total_work=int(degrees.sum()),
        serialized_work=int(per_warp_max.sum() * warp_size),
    )
