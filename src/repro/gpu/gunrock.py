"""Gunrock-on-V100 performance model.

Per-iteration structure of a push-based Gunrock primitive:

1. **advance** -- expand the frontier's edges; memory-bound: every
   destination-property access is a random sector, edge lists stream in
   frontier order;
2. **filter/compaction** -- Gunrock's online preprocessing: scan the
   frontier, partition by degree (TWC), compact the output frontier; costs
   both traffic and a kernel launch;
3. **apply-style update** -- property writes for updated vertices.

Compute time follows warp divergence (partially balanced by TWC); memory
time follows the HBM2 model; atomics add serialization on hot vertices.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


from ..graph.csr import CSRGraph
from ..memory.crossbar import grouped_duplicate_count
from ..memory.hbm import HBMModel
from ..memory.request import AccessPattern, Region
from ..memory.traffic import TrafficLedger
from ..metrics.counters import PhaseBreakdown, RunReport
from ..obs import get_recorder
from ..vcpm.engine import IterationData, VCPMResult, run_vcpm
from ..vcpm.spec import AlgorithmSpec
from .config import V100_GUNROCK, GPUConfig
from .warp import warp_divergence

__all__ = ["GunrockTimingModel", "Gunrock"]


class GunrockTimingModel:
    """Accumulates modeled GPU cycles for one run."""

    def __init__(
        self,
        graph: CSRGraph,
        spec: AlgorithmSpec,
        config: GPUConfig = V100_GUNROCK,
    ) -> None:
        self.graph = graph
        self.spec = spec
        self.config = config
        self.hbm = HBMModel(config.hbm, owner="Gunrock")
        self.traffic = TrafficLedger()
        self.phases: List[PhaseBreakdown] = []
        self.total_cycles = 0.0
        self.edges_processed = 0
        self.vertices_processed = 0
        self.stall_cycles = 0.0
        self.warp_excess_work = 0

    def _is_idempotent(self) -> bool:
        """BFS/CC-style primitives: monotonic min over unweighted edges.

        Gunrock implements these with idempotent status updates rather than
        atomic read-modify-writes.
        """
        from ..vcpm.spec import ReduceOp

        return (
            self.spec.reduce_op is ReduceOp.MIN
            and not self.spec.uses_weights
        )

    def _is_pull_based(self) -> bool:
        """Accumulating primitives (PR) run pull-based without atomics."""
        from ..vcpm.spec import ReduceOp

        return self.spec.reduce_op is ReduceOp.SUM

    def on_iteration(self, data: IterationData) -> None:
        cfg = self.config
        num_edges = data.num_edges
        # Gunrock's online filtering prunes redundant label-propagation
        # work (the reason the paper's CC speedups over Gunrock are lowest).
        if self.spec.name == "CC":
            num_edges = int(num_edges * cfg.cc_filter_work_factor)

        # ------------------------- compute -------------------------
        warp = warp_divergence(data.active_degrees, cfg.warp_size)
        self.warp_excess_work += warp.excess_work
        # TWC recovers most of the divergence; the residue still serializes.
        effective_work = (
            warp.total_work
            + cfg.residual_divergence * warp.excess_work
        )
        compute_cycles = effective_work / cfg.peak_edges_per_cycle

        # ------------------------- memory --------------------------
        patterns: List[AccessPattern] = []
        num_active = data.num_active
        if num_active:
            # Frontier read + offset gather (random sectors).
            patterns.append(
                AccessPattern(
                    Region.ACTIVE_VERTEX,
                    total_bytes=num_active * 4,
                    run_bytes=float(max(num_active * 4, 1)),
                )
            )
            patterns.append(
                AccessPattern(
                    Region.OFFSET,
                    total_bytes=num_active * cfg.sector_bytes,
                    run_bytes=float(cfg.sector_bytes),
                )
            )
        if num_edges:
            edge_bytes = 8 if self.spec.uses_weights else 4
            nonzero = data.active_degrees[data.active_degrees > 0]
            mean_list = float(nonzero.mean()) if nonzero.size else 1.0
            # Edge lists stream per frontier vertex.
            patterns.append(
                AccessPattern(
                    Region.EDGE,
                    total_bytes=num_edges * edge_bytes,
                    run_bytes=mean_list * edge_bytes,
                )
            )
            # Destination-property gathers/atomics: one sector per edge
            # miss.  BFS/CC-style idempotent primitives touch a compact
            # status array instead of a full property sector.
            hit_rate = (
                cfg.pull_l2_hit_rate
                if self._is_pull_based()
                else cfg.l2_hit_rate
            )
            miss = 1.0 - hit_rate
            idempotent = self._is_idempotent()
            gather_bytes = (
                cfg.idempotent_gather_bytes if idempotent else cfg.sector_bytes
            )
            patterns.append(
                AccessPattern(
                    Region.TEMP_PROP,
                    total_bytes=int(num_edges * gather_bytes * miss),
                    run_bytes=float(gather_bytes),
                )
            )
            patterns.append(
                AccessPattern(
                    Region.TEMP_PROP,
                    total_bytes=int(
                        num_edges
                        * gather_bytes
                        * miss
                        * cfg.dirty_writeback_fraction
                    ),
                    run_bytes=float(gather_bytes),
                    is_write=True,
                )
            )
            # Online preprocessing (TWC partitioning + compaction scans).
            patterns.append(
                AccessPattern(
                    Region.METADATA,
                    total_bytes=(
                        num_active * cfg.preprocess_bytes_per_vertex
                        + num_edges * cfg.preprocess_bytes_per_edge
                    ),
                    run_bytes=256.0,
                )
            )
        # Apply-side property update: touched vertices, sector-granular.
        if data.num_modified:
            patterns.append(
                AccessPattern(
                    Region.VERTEX_PROP,
                    total_bytes=data.num_modified * cfg.sector_bytes,
                    run_bytes=float(cfg.sector_bytes),
                    is_write=True,
                )
            )
        if data.num_activated:
            patterns.append(
                AccessPattern(
                    Region.ACTIVE_VERTEX,
                    total_bytes=data.num_activated * 4,
                    run_bytes=float(max(data.num_activated, 1)) * 4.0,
                    is_write=True,
                )
            )
        service = self.hbm.service(patterns)
        self.traffic.add_all(patterns)

        # ------------------------- atomics -------------------------
        if self._is_idempotent() or self._is_pull_based():
            atomic_cycles = 0.0  # no read-modify-write contention
        else:
            conflicts = grouped_duplicate_count(
                data.edge_dst, cfg.atomic_window
            )
            atomic_cycles = conflicts * cfg.atomic_stall_cycles
        self.stall_cycles += atomic_cycles

        overhead = cfg.kernels_per_iteration * cfg.kernel_overhead_cycles
        total = (
            max(compute_cycles, service.cycles) + atomic_cycles + overhead
        )
        rec = get_recorder()
        if rec.enabled:
            # The whole Gunrock iteration reports as one scatter phase
            # (apply cost is folded in), so "scatter" covers `total`.
            t0 = rec.clock.now
            advance_cycles = max(compute_cycles, service.cycles)
            rec.complete_span(
                "scatter",
                begin=t0,
                duration=total,
                track="Gunrock",
                iteration=data.iteration,
                edges=num_edges,
            )
            rec.complete_span(
                "advance.compute",
                begin=t0,
                duration=compute_cycles,
                track="Gunrock.compute",
            )
            rec.complete_span(
                "advance.memory",
                begin=t0,
                duration=service.cycles,
                track="Gunrock.memory",
            )
            if atomic_cycles:
                rec.complete_span(
                    "atomics",
                    begin=t0 + advance_cycles,
                    duration=atomic_cycles,
                    track="Gunrock",
                )
            rec.complete_span(
                "kernel_overhead",
                begin=t0 + total - overhead,
                duration=overhead,
                track="Gunrock",
            )
            rec.counter("gunrock.edges").add(num_edges)
            rec.counter("gunrock.stall_cycles").add(atomic_cycles)
        rec.clock.advance(total)
        self.phases.append(
            PhaseBreakdown(
                iteration=data.iteration,
                scatter_cycles=total,
                apply_cycles=0.0,
                scatter_compute_cycles=compute_cycles,
                scatter_memory_cycles=service.cycles,
                scatter_stall_cycles=atomic_cycles,
            )
        )
        self.total_cycles += total
        self.edges_processed += num_edges
        self.vertices_processed += data.num_modified

    def report(self) -> RunReport:
        edge_bytes = 8 if self.spec.uses_weights else 4
        storage = self.graph.storage_bytes(
            edge_bytes=edge_bytes,
            include_source_ids=False,
            metadata_factor=self.config.metadata_storage_factor,
        )
        return RunReport(
            system="Gunrock",
            algorithm=self.spec.name,
            graph_name=self.graph.name,
            cycles=self.total_cycles,
            frequency_hz=self.config.frequency_hz,
            edges_processed=self.edges_processed,
            vertices_processed=self.vertices_processed,
            iterations=len(self.phases),
            traffic=self.traffic,
            peak_bytes_per_cycle=self.config.hbm.peak_bytes_per_cycle,
            phases=self.phases,
            stall_cycles=self.stall_cycles,
            storage_bytes=storage,
            extra={"warp_excess_work": float(self.warp_excess_work)},
        )


class Gunrock:
    """The GPU baseline of Table 3."""

    def __init__(self, config: GPUConfig = V100_GUNROCK) -> None:
        self.config = config

    def run(
        self,
        graph: CSRGraph,
        spec: AlgorithmSpec,
        source: Optional[int] = 0,
        max_iterations: Optional[int] = None,
    ) -> Tuple[VCPMResult, RunReport]:
        """Execute ``spec`` on ``graph`` under the GPU timing model."""
        timing = GunrockTimingModel(graph, spec, self.config)
        result = run_vcpm(
            graph,
            spec,
            source=source,
            max_iterations=max_iterations,
            observers=[timing],
        )
        return result, timing.report()
