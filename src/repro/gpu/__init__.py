"""GPU (Gunrock on V100) baseline model."""

from .config import GPUConfig, V100_GUNROCK
from .warp import WarpStats, warp_divergence
from .gunrock import Gunrock, GunrockTimingModel

__all__ = [
    "GPUConfig",
    "V100_GUNROCK",
    "WarpStats",
    "warp_divergence",
    "Gunrock",
    "GunrockTimingModel",
]
