"""GPU (Gunrock on NVIDIA V100) model configuration (Table 3, right column).

The paper measures Gunrock on real hardware; we replace it (see DESIGN.md)
with a performance model built from the inefficiency sources the paper and
its citations document for GPU graph processing:

* memory divergence -- a random 4-byte vertex-property access still moves a
  full 32-byte sector; L2 hit rates for graph traversal are ~10% [4],
* workload divergence -- warps process one vertex per lane, so a warp costs
  its *maximum* member degree (partially mitigated by Gunrock's TWC
  load-balancing),
* atomic serialization on hot destination vertices,
* online preprocessing/filtering -- Gunrock's per-iteration load-balancing
  scans and frontier compaction, which the paper says can reach 2x the
  processing time and >2x graph storage.

Scale note: the kernel-launch overhead is scaled down with the proxy graphs
(DESIGN.md) so the model stays in the paper's amortization regime; a
full-size 5 us launch cost against 64x-smaller graphs would spuriously
dominate.
"""

from __future__ import annotations

import dataclasses

from ..memory.hbm import HBM2_900GBS, HBMConfig

__all__ = ["GPUConfig", "V100_GUNROCK"]


@dataclasses.dataclass(frozen=True)
class GPUConfig:
    """Parameters of the GPU performance model."""

    frequency_hz: float = 1.25e9
    num_cores: int = 5120
    warp_size: int = 32
    num_sms: int = 80
    onchip_bytes: int = 34 * 1024 * 1024
    hbm: HBMConfig = HBM2_900GBS
    #: Effective peak edge-processing rate of the advance kernel
    #: (edges/cycle across the device, before divergence losses).
    peak_edges_per_cycle: float = 160.0
    #: Fraction of the max-degree excess a warp still pays after Gunrock's
    #: TWC load balancing (0 = perfect balance, 1 = naive vertex-per-thread).
    residual_divergence: float = 0.35
    #: Memory sector size: one random access moves this many bytes.
    sector_bytes: int = 32
    #: Effective on-chip hit rate for random vertex-property accesses.
    #: V100's 6 MB L2 + 34 MB aggregate on-chip storage capture roughly
    #: half of the hot-vertex gathers on power-law graphs; held constant
    #: across graph scale per DESIGN.md and calibrated so modeled Gunrock
    #: traffic lands at the paper's ~2.8x GraphDynS (Fig. 12).
    l2_hit_rate: float = 0.50
    #: Pull-based primitives (PR) gather source ranks across the *whole*
    #: vertex set every iteration -- no frontier locality -- so their hit
    #: rate is materially lower.
    pull_l2_hit_rate: float = 0.30
    #: Fraction of gathers that also write back a dirty sector.
    dirty_writeback_fraction: float = 0.25
    #: BFS/CC use idempotent status updates (no atomic read-modify-write;
    #: Gunrock's best case): gathers touch a compact status array.
    idempotent_gather_bytes: int = 8
    #: Kernel launches per iteration (advance + filter + compaction).
    kernels_per_iteration: int = 3
    #: Launch + sync overhead per kernel, in GPU cycles (scaled down).
    kernel_overhead_cycles: float = 700.0
    #: Extra cycles per same-address atomic collision in flight.
    atomic_stall_cycles: float = 1.0
    #: Window of concurrently in-flight updates for collision counting.
    atomic_window: int = 256
    #: Fraction of scatter work Gunrock's online frontier filtering removes
    #: for label-propagation primitives (CC): the paper credits Gunrock's
    #: preprocessing with "efficiently reducing unnecessary workloads".
    cc_filter_work_factor: float = 0.45
    #: Per-iteration preprocessing traffic factors (bytes per frontier
    #: vertex and per edge) for TWC partitioning metadata.
    preprocess_bytes_per_vertex: int = 16
    preprocess_bytes_per_edge: int = 4
    #: Board power while the kernel executes (memory-bound graph kernels
    #: draw well under TDP; calibrated to the paper's 11.6x energy ratio).
    average_power_w: float = 52.0
    #: Storage overhead for preprocessing metadata: the paper states
    #: Gunrock "uses more than 2x storage than original graph data for
    #: storing preprocessing metadata" (Fig. 11 discussion).
    metadata_storage_factor: float = 2.0


#: The baseline of Table 3.
V100_GUNROCK = GPUConfig()
