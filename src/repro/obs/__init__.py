"""Unified observability layer: spans, instruments, exporters.

The paper's whole argument is a set of breakdowns -- where cycles, bytes
and energy go, per pipeline stage (Figs. 8-14).  This package turns
every such breakdown into a query over one event stream:

* a hierarchical **span tracer** stamped by a deterministic clock keyed
  to *simulated cycles* (never wall time),
* a **metric-instrument registry** (counters, gauges, fixed-bucket
  histograms) whose serialized form is reproducible byte for byte,
* **exporters**: JSONL, Chrome ``trace_event`` (``chrome://tracing``),
  and a flat stats table.

Everything is behind a :class:`NullRecorder` default, so instrumented
hot paths cost a few attribute lookups per phase when tracing is off and
all results stay bit-identical.  Enable per block::

    from repro.obs import TraceRecorder, use_recorder
    from repro.obs.export import write_chrome_trace

    recorder = TraceRecorder()
    with use_recorder(recorder):
        GraphDynS().run(graph, get_algorithm("BFS"), source=0)
    write_chrome_trace(recorder, "trace.json")

or from the CLI: ``repro trace bfs RM16 --out trace.json``.
"""

from .clock import DeterministicClock, NullClock
from .export import chrome_trace, stats_rows, to_jsonl, write_chrome_trace
from .instruments import (
    DEFAULT_BUCKET_EDGES,
    Counter,
    Gauge,
    Histogram,
    InstrumentRegistry,
)
from .recorder import (
    NULL_RECORDER,
    NullRecorder,
    PointEvent,
    Recorder,
    SpanRecord,
    TraceRecorder,
    get_recorder,
    use_recorder,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKET_EDGES",
    "DeterministicClock",
    "Gauge",
    "Histogram",
    "InstrumentRegistry",
    "NULL_RECORDER",
    "NullClock",
    "NullRecorder",
    "PointEvent",
    "Recorder",
    "SpanRecord",
    "TraceRecorder",
    "chrome_trace",
    "get_recorder",
    "stats_rows",
    "to_jsonl",
    "use_recorder",
    "write_chrome_trace",
]
