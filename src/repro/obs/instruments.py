"""Metric instruments: counters, gauges, histograms with fixed buckets.

Three instrument kinds, deliberately narrow so their output is fully
reproducible:

* :class:`Counter` -- monotonically non-decreasing accumulator (bytes
  moved, edges processed, cache hits).  Negative increments are an error.
* :class:`Gauge` -- last-write-wins sample (current utilization).
* :class:`Histogram` -- observation counts over *fixed* bucket edges
  chosen at creation time, never rebalanced, so two runs of the same
  workload serialize to identical bucket vectors.

Instruments are owned by an :class:`InstrumentRegistry` (one per
recorder) and addressed by name; requesting the same name twice returns
the same instrument.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKET_EDGES",
    "Gauge",
    "Histogram",
    "InstrumentRegistry",
]

#: Power-of-two edges covering 1 .. 1Mi; the default for size-like
#: distributions (frontier widths, degrees, burst bytes).
DEFAULT_BUCKET_EDGES: Tuple[float, ...] = tuple(
    float(1 << k) for k in range(0, 21)
)


@dataclasses.dataclass
class Counter:
    """Monotonic accumulator."""

    name: str
    value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        self.value += amount


@dataclasses.dataclass
class Gauge:
    """Last-write-wins sample."""

    name: str
    value: float = 0.0
    updates: int = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1


class Histogram:
    """Observation counts over fixed, strictly increasing bucket edges.

    ``edges = (e0, .., eN)`` defines ``N + 2`` buckets:
    ``(-inf, e0], (e0, e1], .., (eN, +inf)``.  An observation lands in
    bucket ``bisect_left(edges, value)``... more precisely the first
    bucket whose upper edge is >= the value, which keeps integer-valued
    observations on power-of-two edges in the intuitive bucket.
    """

    __slots__ = ("name", "edges", "counts", "count", "total")

    def __init__(
        self, name: str, edges: Sequence[float] = DEFAULT_BUCKET_EDGES
    ) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ValueError(f"histogram {name!r} needs >= 1 edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(
                f"histogram {name!r} edges must be strictly increasing: {edges}"
            )
        self.name = name
        self.edges = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0

    def bucket_index(self, value: float) -> int:
        """Index of the bucket ``value`` falls into."""
        return bisect.bisect_left(self.edges, float(value))

    def observe(self, value: float) -> None:
        self.counts[self.bucket_index(value)] += 1
        self.count += 1
        self.total += float(value)

    def observe_many(self, values: Iterable[float]) -> None:
        """Bulk observation; vectorized for numpy arrays."""
        try:
            import numpy as np

            arr = np.asarray(values, dtype=np.float64)
        except (TypeError, ValueError):
            for value in values:
                self.observe(value)
            return
        if arr.size == 0:
            return
        idx = np.searchsorted(np.asarray(self.edges), arr, side="left")
        for bucket, n in zip(*np.unique(idx, return_counts=True)):
            self.counts[int(bucket)] += int(n)
        self.count += int(arr.size)
        self.total += float(arr.sum())

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class InstrumentRegistry:
    """Named instruments of one recorder; create-on-first-use."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name)
        return inst

    def histogram(
        self, name: str, edges: Optional[Sequence[float]] = None
    ) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(
                name, edges if edges is not None else DEFAULT_BUCKET_EDGES
            )
        elif edges is not None and tuple(float(e) for e in edges) != inst.edges:
            raise ValueError(
                f"histogram {name!r} already registered with different edges"
            )
        return inst

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministic (sorted-name) dump of every instrument."""
        out: Dict[str, Dict[str, object]] = {}
        for name in sorted(self.counters):
            out[name] = {"kind": "counter", "value": self.counters[name].value}
        for name in sorted(self.gauges):
            gauge = self.gauges[name]
            out[name] = {
                "kind": "gauge",
                "value": gauge.value,
                "updates": gauge.updates,
            }
        for name in sorted(self.histograms):
            hist = self.histograms[name]
            out[name] = {
                "kind": "histogram",
                "edges": list(hist.edges),
                "counts": list(hist.counts),
                "count": hist.count,
                "total": hist.total,
            }
        return out
