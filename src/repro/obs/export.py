"""Exporters: JSONL event stream, Chrome ``trace_event``, flat stats.

All three formats are deterministic functions of the recorder's state:
spans are emitted in (begin, span_id) order, instruments in sorted-name
order, and every JSON document is dumped with sorted keys -- so a traced
run can be golden-mastered byte for byte.

* :func:`to_jsonl` -- one self-describing JSON object per line
  (``{"type": "span" | "event" | "instrument", ...}``), the archival
  format the regression suite diffs.
* :func:`chrome_trace` / :func:`write_chrome_trace` -- the Chrome
  ``trace_event`` JSON object format; load the file in
  ``chrome://tracing`` (or https://ui.perfetto.dev) to see the span
  tree as a flame chart, one row per track, timestamps in simulated
  cycles (rendered as microseconds).
* :func:`stats_rows` -- a flat (headers, rows) table of span totals and
  instrument values for CLI display.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from .recorder import TraceRecorder

__all__ = [
    "chrome_trace",
    "stats_rows",
    "to_jsonl",
    "write_chrome_trace",
]


def _sorted_spans(recorder: TraceRecorder):
    return sorted(recorder.spans, key=lambda s: (s.begin, s.span_id))


def to_jsonl(recorder: TraceRecorder) -> str:
    """The full recorder state as deterministic JSON lines."""
    lines: List[str] = []
    for span in _sorted_spans(recorder):
        lines.append(
            json.dumps(
                {
                    "type": "span",
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "name": span.name,
                    "track": span.track,
                    "begin": span.begin,
                    "end": span.end if span.end is not None else span.begin,
                    "duration": span.duration,
                    "attrs": span.attrs,
                },
                sort_keys=True,
            )
        )
    for event in recorder.events:
        lines.append(
            json.dumps(
                {
                    "type": "event",
                    "name": event.name,
                    "track": event.track,
                    "at": event.at,
                    "attrs": event.attrs,
                },
                sort_keys=True,
            )
        )
    for name, payload in recorder.instruments.snapshot().items():
        record = {"type": "instrument", "name": name}
        record.update(payload)
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + "\n" if lines else ""


def chrome_trace(recorder: TraceRecorder, pid: int = 0) -> Dict[str, object]:
    """The recorder as a Chrome ``trace_event`` JSON object.

    Tracks map to thread lanes (with ``thread_name`` metadata), spans to
    complete (``ph: "X"``) events, point events to instants, and each
    counter to one final-value counter sample.  Timestamps are simulated
    cycles emitted in the format's microsecond field.
    """
    tracks = recorder.tracks()
    tid_of = {track: tid for tid, track in enumerate(tracks)}
    events: List[Dict[str, object]] = []
    for track in tracks:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid_of[track],
                "args": {"name": track},
            }
        )
    for span in _sorted_spans(recorder):
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.track,
                "pid": pid,
                "tid": tid_of[span.track],
                "ts": span.begin,
                "dur": span.duration,
                "args": dict(sorted(span.attrs.items())),
            }
        )
    for event in recorder.events:
        events.append(
            {
                "ph": "i",
                "s": "t",
                "name": event.name,
                "cat": event.track,
                "pid": pid,
                "tid": tid_of.get(event.track, len(tracks)),
                "ts": event.at,
                "args": dict(sorted(event.attrs.items())),
            }
        )
    final_ts = recorder.clock.now
    for name, counter in sorted(recorder.instruments.counters.items()):
        events.append(
            {
                "ph": "C",
                "name": name,
                "pid": pid,
                "tid": 0,
                "ts": final_ts,
                "args": {"value": counter.value},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated-cycles",
            "source": "repro.obs",
        },
    }


def write_chrome_trace(
    recorder: TraceRecorder, path: str, pid: int = 0
) -> None:
    """Serialize :func:`chrome_trace` to ``path`` (sorted keys)."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(recorder, pid=pid), handle, sort_keys=True)


def stats_rows(
    recorder: TraceRecorder,
) -> Tuple[List[str], List[List[object]]]:
    """Flat summary table: per-track span totals, then instruments."""
    headers = ["kind", "name", "count", "value"]
    rows: List[List[object]] = []
    for track in recorder.tracks():
        for name, (count, total) in recorder.span_totals(track).items():
            rows.append(
                ["span", f"{track}/{name}", count, f"{total:,.1f}"]
            )
    snapshot = recorder.instruments.snapshot()
    for name, payload in snapshot.items():
        kind = payload["kind"]
        if kind == "counter":
            rows.append(["counter", name, "", f"{payload['value']:,.1f}"])
        elif kind == "gauge":
            rows.append(
                ["gauge", name, payload["updates"], f"{payload['value']:,.4f}"]
            )
        else:
            rows.append(
                [
                    "histogram",
                    name,
                    payload["count"],
                    f"mean={payload['total'] / payload['count']:,.1f}"
                    if payload["count"]
                    else "mean=0",
                ]
            )
    return headers, rows
