"""Deterministic clocks for the observability layer.

The tracer never reads wall time: span begin/end stamps come from a
:class:`DeterministicClock` that only moves when instrumented code tells
it to -- the timing models advance it by the *modeled* cycles of each
phase, so span durations are simulated cycles and two runs of the same
workload produce byte-identical traces.  :class:`NullClock` is the
zero-cost stand-in behind :class:`~repro.obs.recorder.NullRecorder`.
"""

from __future__ import annotations

__all__ = ["DeterministicClock", "NullClock"]


class DeterministicClock:
    """A clock that advances only by explicit, non-negative deltas."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time (cycles since the trace began)."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` cycles; returns the new time."""
        delta = float(delta)
        if delta < 0:
            raise ValueError(f"clock cannot run backwards (delta={delta})")
        self._now += delta
        return self._now

    def tick(self, delta: float = 1.0) -> float:
        """Advance by one (or ``delta``) ordering step.

        Used by layers with no cycle model of their own (the component
        micro-models, the run service) so their spans still order
        deterministically on the shared timeline.
        """
        return self.advance(delta)


class NullClock:
    """Time-less clock behind the no-op recorder: never moves."""

    __slots__ = ()

    @property
    def now(self) -> float:
        return 0.0

    def advance(self, delta: float) -> float:  # noqa: ARG002 - no-op
        return 0.0

    def tick(self, delta: float = 1.0) -> float:  # noqa: ARG002 - no-op
        return 0.0
