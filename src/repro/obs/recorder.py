"""Span tracer: the recorder protocol, the no-op default, and the tracer.

Three moving parts:

* :class:`NullRecorder` -- the process-wide default.  Every method is a
  no-op returning a shared singleton, so instrumented hot paths cost a
  couple of attribute lookups per *phase* (never per edge) when tracing
  is off, and all existing results stay bit-identical.
* :class:`TraceRecorder` -- the real thing: a hierarchical span tree
  stamped by a :class:`~repro.obs.clock.DeterministicClock`, a metric
  :class:`~repro.obs.instruments.InstrumentRegistry`, and a point-event
  log.  Span nesting is per-thread (a thread-local open-span stack);
  shared state is lock-protected so a ``jobs > 1`` matrix can trace,
  though the single timeline is only *meaningful* for serial runs.
* the **ambient recorder stack** -- instrumented code asks
  :func:`get_recorder` for the current recorder; :func:`use_recorder`
  installs one for the duration of a ``with`` block.

Two ways to record a span:

* ``with rec.span("scatter", track="GraphDynS"):`` -- begin/end stamped
  from the clock at enter/exit; whatever the body advances the clock by
  becomes the duration.  Nesting is guaranteed by construction.
* ``rec.complete_span("scatter.prefetch", begin=t0, duration=c)`` --
  an explicit-interval span for quantities known only after the fact
  (the timing models compute a phase's cycles, then stamp it).  It is
  attached as a child of the currently open span.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .clock import DeterministicClock, NullClock
from .instruments import Counter, Gauge, Histogram, InstrumentRegistry

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "PointEvent",
    "Recorder",
    "SpanRecord",
    "TraceRecorder",
    "get_recorder",
    "use_recorder",
]


@dataclasses.dataclass
class SpanRecord:
    """One node of the span tree."""

    span_id: int
    parent_id: Optional[int]
    name: str
    track: str
    begin: float
    end: Optional[float] = None
    attrs: Dict[str, object] = dataclasses.field(default_factory=dict)
    #: Exact measured duration, set when the span was recorded via
    #: ``complete_span(duration=...)``.  ``end - begin`` re-rounds at the
    #: clock's magnitude; keeping the original value lets span totals
    #: reconcile float-for-float with the run report's phase sums.
    exact_duration: Optional[float] = None

    @property
    def duration(self) -> float:
        if self.exact_duration is not None:
            return self.exact_duration
        return (self.end if self.end is not None else self.begin) - self.begin

    @property
    def closed(self) -> bool:
        return self.end is not None


@dataclasses.dataclass(frozen=True)
class PointEvent:
    """An instant (zero-duration) annotation on the timeline."""

    name: str
    at: float
    track: str
    attrs: Dict[str, object] = dataclasses.field(default_factory=dict)


class _SpanHandle:
    """Context manager binding one :class:`SpanRecord` to the tracer."""

    __slots__ = ("_recorder", "record")

    def __init__(self, recorder: "TraceRecorder", record: SpanRecord) -> None:
        self._recorder = recorder
        self.record = record

    def annotate(self, **attrs: object) -> "_SpanHandle":
        self.record.attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._recorder._close_span(self.record)


class _NullSpan:
    """Shared no-op stand-in for :class:`_SpanHandle`."""

    __slots__ = ()

    def annotate(self, **attrs: object) -> "_NullSpan":  # noqa: ARG002
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind."""

    __slots__ = ()
    value = 0.0
    count = 0

    def add(self, amount: float = 1.0) -> None:  # noqa: ARG002
        return None

    def set(self, value: float) -> None:  # noqa: ARG002
        return None

    def observe(self, value: float) -> None:  # noqa: ARG002
        return None

    def observe_many(self, values: object) -> None:  # noqa: ARG002
        return None


_NULL_SPAN = _NullSpan()
_NULL_INSTRUMENT = _NullInstrument()


class NullRecorder:
    """The disabled recorder: every operation is a cheap no-op."""

    enabled = False

    def __init__(self) -> None:
        self.clock = NullClock()

    def span(self, name: str, track: str = "main", **attrs: object) -> _NullSpan:  # noqa: ARG002
        return _NULL_SPAN

    def complete_span(self, *args: object, **kwargs: object) -> None:  # noqa: ARG002
        return None

    def event(self, name: str, track: str = "main", **attrs: object) -> None:  # noqa: ARG002
        return None

    def counter(self, name: str) -> _NullInstrument:  # noqa: ARG002
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:  # noqa: ARG002
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, edges: Optional[Sequence[float]] = None  # noqa: ARG002
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT


class TraceRecorder:
    """Collects spans, point events, and instruments for one session."""

    enabled = True

    def __init__(self, clock: Optional[DeterministicClock] = None) -> None:
        self.clock = clock if clock is not None else DeterministicClock()
        self.instruments = InstrumentRegistry()
        self.spans: List[SpanRecord] = []
        self.events: List[PointEvent] = []
        self._lock = threading.RLock()
        self._tls = threading.local()
        self._next_id = 0

    # ------------------------------------------------------------------
    # Span plumbing
    # ------------------------------------------------------------------
    def _stack(self) -> List[SpanRecord]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def span(
        self, name: str, track: str = "main", **attrs: object
    ) -> _SpanHandle:
        """Open a span; close it by exiting the returned context manager."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            record = SpanRecord(
                span_id=self._new_id(),
                parent_id=parent.span_id if parent else None,
                name=name,
                track=track,
                begin=self.clock.now,
                attrs=dict(attrs),
            )
            self.spans.append(record)
        stack.append(record)
        return _SpanHandle(self, record)

    def _close_span(self, record: SpanRecord) -> None:
        stack = self._stack()
        if not stack or stack[-1] is not record:
            raise RuntimeError(
                f"span {record.name!r} closed out of order "
                "(enter/exit must nest)"
            )
        stack.pop()
        record.end = self.clock.now

    def complete_span(
        self,
        name: str,
        begin: float,
        end: Optional[float] = None,
        duration: Optional[float] = None,
        track: Optional[str] = None,
        **attrs: object,
    ) -> SpanRecord:
        """Record an already-measured interval as a child of the open span."""
        if (end is None) == (duration is None):
            raise ValueError("pass exactly one of end= or duration=")
        if end is None:
            if duration < 0:  # type: ignore[operator]
                raise ValueError(f"span {name!r} has negative duration")
            end = begin + float(duration)  # type: ignore[arg-type]
        elif end < begin:
            raise ValueError(f"span {name!r} ends before it begins")
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            record = SpanRecord(
                span_id=self._new_id(),
                parent_id=parent.span_id if parent else None,
                name=name,
                track=track if track is not None
                else (parent.track if parent else "main"),
                begin=float(begin),
                end=float(end),
                attrs=dict(attrs),
                exact_duration=(
                    float(duration) if duration is not None else None
                ),
            )
            self.spans.append(record)
        return record

    def event(self, name: str, track: str = "main", **attrs: object) -> None:
        with self._lock:
            self.events.append(
                PointEvent(name=name, at=self.clock.now, track=track,
                           attrs=dict(attrs))
            )

    def finish(self) -> None:
        """Close any spans left open (this thread) at the current time."""
        stack = self._stack()
        while stack:
            stack[-1].end = self.clock.now
            stack.pop()

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            return self.instruments.counter(name)

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self.instruments.gauge(name)

    def histogram(
        self, name: str, edges: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            return self.instruments.histogram(name, edges)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def tracks(self) -> List[str]:
        seen = {s.track for s in self.spans} | {e.track for e in self.events}
        return sorted(seen)

    def span_totals(
        self, track: Optional[str] = None
    ) -> Dict[str, Tuple[int, float]]:
        """Span name -> (count, total duration), optionally one track only.

        Durations are summed in recording order, so a stage's total here
        is float-identical to the same sum taken over the run report's
        per-iteration phase list.
        """
        totals: Dict[str, Tuple[int, float]] = {}
        for span in self.spans:
            if track is not None and span.track != track:
                continue
            count, total = totals.get(span.name, (0, 0.0))
            totals[span.name] = (count + 1, total + span.duration)
        return dict(sorted(totals.items()))

    def children_of(self, span_id: Optional[int]) -> List[SpanRecord]:
        return [s for s in self.spans if s.parent_id == span_id]


Recorder = Union[NullRecorder, TraceRecorder]

#: Process-wide default: observability off, zero overhead.
NULL_RECORDER = NullRecorder()

_ACTIVE: List[Recorder] = [NULL_RECORDER]


def get_recorder() -> Recorder:
    """The ambient recorder (the innermost :func:`use_recorder`)."""
    return _ACTIVE[-1]


@contextlib.contextmanager
def use_recorder(recorder: Recorder) -> Iterator[Recorder]:
    """Install ``recorder`` as the ambient recorder for this block.

    The stack is process-global on purpose: worker threads spawned inside
    the block observe the same recorder.
    """
    _ACTIVE.append(recorder)
    try:
        yield recorder
    finally:
        _ACTIVE.pop()
