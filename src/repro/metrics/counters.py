"""Run-level performance accounting shared by all accelerator models."""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from ..memory.traffic import TrafficLedger

__all__ = ["CacheStats", "ChurnStats", "PhaseBreakdown", "RunReport"]


@dataclasses.dataclass
class CacheStats:
    """Counters exposed by ``RunService.stats``.

    The first block tracks the reuse tiers of the run service; the
    second tracks the resilience layer (``repro.harness.resilience``):
    how often cells had to be retried, timed out, or fell back to a
    less parallel executor, and how often persisting a result failed.
    """

    hits: int = 0  # served from the persistent cache
    misses: int = 0  # executed from scratch
    stores: int = 0  # written to the persistent cache
    memory_hits: int = 0  # served from the in-process memo

    store_failures: int = 0  # persistent-cache writes that failed for good
    retries: int = 0  # cell/store attempts repeated after a transient error
    timeouts: int = 0  # attempts abandoned at the per-cell deadline
    degradations: int = 0  # executor fallbacks (process -> thread -> serial)

    @property
    def requests(self) -> int:
        return self.hits + self.misses + self.memory_hits

    @property
    def hit_rate(self) -> float:
        """Persistent-cache hit fraction over cold (non-memo) requests."""
        cold = self.hits + self.misses
        if cold == 0:
            return 0.0
        return self.hits / cold

    @property
    def recoveries(self) -> int:
        """Total corrective actions taken by the resilience layer."""
        return self.retries + self.timeouts + self.degradations


@dataclasses.dataclass
class ChurnStats:
    """Counters for an evolving-graph (churn) session.

    Tracks how often incremental recomputation actually took the
    frontier-delta path versus falling back to the reference full rerun,
    and how much work each path performed — the quantities
    ``benchmarks/bench_dynamic.py`` and ``repro churn`` report.
    """

    batches_applied: int = 0  # EdgeBatch.apply calls
    edges_inserted: int = 0
    edges_deleted: int = 0
    delta_runs: int = 0  # incremental steps that used frontier deltas
    full_runs: int = 0  # incremental steps that fell back to full rerun
    delta_iterations: int = 0  # engine iterations spent in delta runs
    full_iterations: int = 0  # engine iterations spent in full reruns
    delta_edges_processed: int = 0
    full_edges_processed: int = 0

    @property
    def steps(self) -> int:
        return self.delta_runs + self.full_runs

    @property
    def delta_fraction(self) -> float:
        """Share of recomputation steps that avoided a full rerun."""
        if self.steps == 0:
            return 0.0
        return self.delta_runs / self.steps

    def record(self, outcome) -> None:
        """Fold one :class:`repro.vcpm.incremental.IncrementalOutcome` in."""
        if outcome.used_delta:
            self.delta_runs += 1
            self.delta_iterations += outcome.result.num_iterations
            self.delta_edges_processed += outcome.result.total_edges_processed
        else:
            self.full_runs += 1
            self.full_iterations += outcome.result.num_iterations
            self.full_edges_processed += outcome.result.total_edges_processed

    def record_batch(self, batch) -> None:
        """Fold one applied :class:`repro.graph.dynamic.EdgeBatch` in."""
        self.batches_applied += 1
        self.edges_inserted += batch.num_inserts
        self.edges_deleted += batch.num_deletes


@dataclasses.dataclass
class PhaseBreakdown:
    """Cycle totals of one iteration, split by phase and bound."""

    iteration: int
    scatter_cycles: float
    apply_cycles: float
    scatter_compute_cycles: float = 0.0
    scatter_memory_cycles: float = 0.0
    scatter_update_cycles: float = 0.0
    scatter_stall_cycles: float = 0.0
    apply_compute_cycles: float = 0.0
    apply_memory_cycles: float = 0.0

    @property
    def total_cycles(self) -> float:
        return self.scatter_cycles + self.apply_cycles


@dataclasses.dataclass
class RunReport:
    """Complete modeled outcome of one (algorithm, graph, system) run.

    This is the record every figure/table regenerator consumes.
    """

    system: str
    algorithm: str
    graph_name: str
    cycles: float
    frequency_hz: float
    edges_processed: int
    vertices_processed: int
    iterations: int
    traffic: TrafficLedger
    #: Peak memory bandwidth in bytes per cycle of this system's clock.
    peak_bytes_per_cycle: float
    phases: List[PhaseBreakdown] = dataclasses.field(default_factory=list)
    scheduling_ops: int = 0
    update_operations: int = 0
    stall_cycles: float = 0.0
    storage_bytes: int = 0
    extra: Dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Modeled execution time."""
        if self.frequency_hz <= 0:
            return 0.0
        return self.cycles / self.frequency_hz

    @property
    def gteps(self) -> float:
        """Giga-traversed-edges per second (Fig. 7's metric)."""
        seconds = self.seconds
        if seconds <= 0:
            return 0.0
        return self.edges_processed / seconds / 1e9

    @property
    def total_traffic_bytes(self) -> int:
        return self.traffic.total

    @property
    def bandwidth_utilization(self) -> float:
        """Average bandwidth utilization over the whole run (Fig. 13).

        Bytes actually moved divided by what the memory system could have
        moved during the modeled execution time -- compute- or
        latency-bound stretches leave the channels idle and lower this.
        """
        if self.cycles <= 0 or self.peak_bytes_per_cycle <= 0:
            return 0.0
        return min(
            1.0, self.traffic.total / (self.cycles * self.peak_bytes_per_cycle)
        )

    def speedup_over(self, baseline: "RunReport") -> float:
        """Execution-time ratio baseline/self (>1 means self is faster)."""
        if self.seconds <= 0:
            return float("inf")
        return baseline.seconds / self.seconds

    def scatter_cycles_total(self) -> float:
        return sum(p.scatter_cycles for p in self.phases)

    def apply_cycles_total(self) -> float:
        return sum(p.apply_cycles for p in self.phases)
