"""Performance accounting structures."""

from .counters import CacheStats, PhaseBreakdown, RunReport
from .serialize import (
    SCHEMA_VERSION,
    SchemaMismatchError,
    load_reports,
    report_from_dict,
    report_to_dict,
    save_reports,
)

__all__ = [
    "CacheStats",
    "PhaseBreakdown",
    "RunReport",
    "SCHEMA_VERSION",
    "SchemaMismatchError",
    "load_reports",
    "report_from_dict",
    "report_to_dict",
    "save_reports",
]
