"""Performance accounting structures."""

from .counters import PhaseBreakdown, RunReport
from .serialize import (
    load_reports,
    report_from_dict,
    report_to_dict,
    save_reports,
)

__all__ = [
    "PhaseBreakdown",
    "RunReport",
    "load_reports",
    "report_from_dict",
    "report_to_dict",
    "save_reports",
]
