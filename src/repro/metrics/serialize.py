"""JSON (de)serialization of run reports.

Lets benchmark results be archived and diffed across commits::

    from repro.metrics.serialize import report_to_dict, save_reports
    save_reports([report], "results.json")
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from ..memory.request import Region
from ..memory.traffic import TrafficLedger
from .counters import PhaseBreakdown, RunReport

__all__ = [
    "SCHEMA_VERSION",
    "SchemaMismatchError",
    "json_scalar_default",
    "report_to_dict",
    "report_from_dict",
    "save_reports",
    "load_reports",
]


def json_scalar_default(obj: Any) -> Any:
    """``json.dumps(default=...)`` hook normalizing numpy scalars.

    Canonical JSON (report bytes, plan goldens) must not depend on
    whether a count arrived as ``int`` or ``np.int64``: ``json.dumps``
    rejects the latter outright, and ``np.float64`` repr differs from
    the float repr on some interpreter builds.  Converting through the
    native Python types pins one byte representation across Python
    3.9–3.12 and numpy versions.  Anything non-numpy still raises
    ``TypeError``, preserving ``json.dumps`` strictness.
    """
    import numpy as np

    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    raise TypeError(
        f"Object of type {type(obj).__name__} is not JSON serializable"
    )

#: Version stamp written into every serialized report.  Bump whenever the
#: dict layout changes incompatibly; readers reject mismatched stamps so a
#: stale archive (or run-service cache entry) fails loudly instead of
#: being silently misread.
SCHEMA_VERSION = 2


class SchemaMismatchError(ValueError):
    """A serialized report was written under an incompatible schema."""


def report_to_dict(report: RunReport) -> Dict[str, Any]:
    """Lossless dict form of a :class:`RunReport`."""
    return {
        "schema": SCHEMA_VERSION,
        "system": report.system,
        "algorithm": report.algorithm,
        "graph_name": report.graph_name,
        "cycles": report.cycles,
        "frequency_hz": report.frequency_hz,
        "edges_processed": report.edges_processed,
        "vertices_processed": report.vertices_processed,
        "iterations": report.iterations,
        "peak_bytes_per_cycle": report.peak_bytes_per_cycle,
        "scheduling_ops": report.scheduling_ops,
        "update_operations": report.update_operations,
        "stall_cycles": report.stall_cycles,
        "storage_bytes": report.storage_bytes,
        "extra": dict(report.extra),
        "traffic": {
            "read": {r.value: b for r, b in report.traffic.read_bytes.items()},
            "write": {r.value: b for r, b in report.traffic.write_bytes.items()},
        },
        "phases": [
            {
                "iteration": p.iteration,
                "scatter_cycles": p.scatter_cycles,
                "apply_cycles": p.apply_cycles,
                "scatter_compute_cycles": p.scatter_compute_cycles,
                "scatter_memory_cycles": p.scatter_memory_cycles,
                "scatter_update_cycles": p.scatter_update_cycles,
                "scatter_stall_cycles": p.scatter_stall_cycles,
                "apply_compute_cycles": p.apply_compute_cycles,
                "apply_memory_cycles": p.apply_memory_cycles,
            }
            for p in report.phases
        ],
        # Derived metrics included for human readers; ignored on load.
        "derived": {
            "seconds": report.seconds,
            "gteps": report.gteps,
            "bandwidth_utilization": report.bandwidth_utilization,
        },
    }


def report_from_dict(data: Dict[str, Any]) -> RunReport:
    """Rebuild a :class:`RunReport` written by :func:`report_to_dict`.

    Raises:
        SchemaMismatchError: the dict carries a ``schema`` stamp from an
            incompatible serializer version.  Stamp-less dicts (written
            before versioning existed) are accepted as legacy.
    """
    stamp = data.get("schema", SCHEMA_VERSION)
    if stamp != SCHEMA_VERSION:
        raise SchemaMismatchError(
            f"report schema {stamp!r} incompatible with "
            f"supported version {SCHEMA_VERSION}"
        )
    ledger = TrafficLedger()
    for region_name, amount in data["traffic"]["read"].items():
        ledger.read_bytes[Region(region_name)] = amount
    for region_name, amount in data["traffic"]["write"].items():
        ledger.write_bytes[Region(region_name)] = amount
    phases = [
        PhaseBreakdown(**phase) for phase in data.get("phases", [])
    ]
    return RunReport(
        system=data["system"],
        algorithm=data["algorithm"],
        graph_name=data["graph_name"],
        cycles=data["cycles"],
        frequency_hz=data["frequency_hz"],
        edges_processed=data["edges_processed"],
        vertices_processed=data["vertices_processed"],
        iterations=data["iterations"],
        traffic=ledger,
        peak_bytes_per_cycle=data["peak_bytes_per_cycle"],
        phases=phases,
        scheduling_ops=data.get("scheduling_ops", 0),
        update_operations=data.get("update_operations", 0),
        stall_cycles=data.get("stall_cycles", 0.0),
        storage_bytes=data.get("storage_bytes", 0),
        extra=dict(data.get("extra", {})),
    )


def save_reports(reports: Iterable[RunReport], path: str) -> None:
    """Write reports as a JSON array."""
    with open(path, "w") as handle:
        json.dump([report_to_dict(r) for r in reports], handle, indent=2)


def load_reports(path: str) -> List[RunReport]:
    """Read reports written by :func:`save_reports`."""
    with open(path) as handle:
        return [report_from_dict(d) for d in json.load(handle)]
