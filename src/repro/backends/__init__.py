"""Pluggable accelerator backends.

``repro.backends`` decouples *which systems are compared* from *how the
comparison runs*: the harness asks the registry for backends by name and
drives them all through one functional VCPM run per cell.  The three
systems of the paper register themselves on import; adding a fourth is
one adapter class plus one :func:`register` call — no harness, CLI, or
benchmark change required.
"""

from .base import Backend, BaseBackend, config_digest
from .registry import (
    available,
    available_keys,
    create,
    get,
    is_registered,
    register,
    unregister,
)
from .builtin import (
    DCABackend,
    GraphDynSBackend,
    GraphicionadoBackend,
    GunrockBackend,
    register_builtin_backends,
)

__all__ = [
    "Backend",
    "BaseBackend",
    "config_digest",
    "register",
    "unregister",
    "get",
    "create",
    "available",
    "available_keys",
    "is_registered",
    "DCABackend",
    "GraphDynSBackend",
    "GraphicionadoBackend",
    "GunrockBackend",
    "register_builtin_backends",
]
