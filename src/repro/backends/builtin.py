"""Adapters for the built-in systems: the paper's three, plus DCA.

Each adapter is a thin shim: the physics lives in the system packages,
the adapter owns naming, config plumbing, and the energy hookup.
Importing this module registers all four — the paper's evaluation trio
in the figures' presentation order (GraphDynS, Graphicionado, Gunrock),
then the DCA follow-up (arXiv:2202.11343), which the figures omit so
the paper's three-system columns stay untouched.
"""

from __future__ import annotations

from ..dca.config import DCA_CONFIG, DCAConfig
from ..dca.timing import DCATimingModel
from ..energy.model import (
    EnergyReport,
    dca_energy,
    gpu_energy_report,
    graphdyns_energy,
    graphicionado_energy,
)
from ..gpu.config import GPUConfig, V100_GUNROCK
from ..gpu.gunrock import GunrockTimingModel
from ..graph.csr import CSRGraph
from ..graphdyns.config import DEFAULT_CONFIG, GraphDynSConfig
from ..graphdyns.timing import GraphDynSTimingModel
from ..graphicionado.config import GRAPHICIONADO_CONFIG, GraphicionadoConfig
from ..graphicionado.timing import GraphicionadoTimingModel
from ..metrics.counters import RunReport
from ..vcpm.spec import AlgorithmSpec
from .base import BaseBackend
from .registry import register

__all__ = [
    "GraphDynSBackend",
    "GraphicionadoBackend",
    "GunrockBackend",
    "DCABackend",
    "register_builtin_backends",
]


class GraphDynSBackend(BaseBackend):
    """The paper's accelerator: decoupled datapath + dynamic scheduling."""

    name = "GraphDynS"

    def __init__(self, config: GraphDynSConfig = DEFAULT_CONFIG) -> None:
        self.config = config

    def make_observer(
        self, graph: CSRGraph, spec: AlgorithmSpec
    ) -> GraphDynSTimingModel:
        return GraphDynSTimingModel(graph, spec, self.config)

    def energy(self, report: RunReport) -> EnergyReport:
        return graphdyns_energy(report)


class GraphicionadoBackend(BaseBackend):
    """The state-of-the-art ASIC baseline."""

    name = "Graphicionado"

    def __init__(
        self, config: GraphicionadoConfig = GRAPHICIONADO_CONFIG
    ) -> None:
        self.config = config

    def make_observer(
        self, graph: CSRGraph, spec: AlgorithmSpec
    ) -> GraphicionadoTimingModel:
        return GraphicionadoTimingModel(graph, spec, self.config)

    def energy(self, report: RunReport) -> EnergyReport:
        return graphicionado_energy(report)


class GunrockBackend(BaseBackend):
    """The GPU software baseline (Gunrock on a V100)."""

    name = "Gunrock"

    def __init__(self, config: GPUConfig = V100_GUNROCK) -> None:
        self.config = config

    def make_observer(
        self, graph: CSRGraph, spec: AlgorithmSpec
    ) -> GunrockTimingModel:
        return GunrockTimingModel(graph, spec, self.config)

    def energy(self, report: RunReport) -> EnergyReport:
        return gpu_energy_report(report, self.config.average_power_w)


class DCABackend(BaseBackend):
    """The follow-up decentralized-datapath accelerator (arXiv:2202.11343)."""

    name = "DCA"

    def __init__(self, config: DCAConfig = DCA_CONFIG) -> None:
        self.config = config

    def make_observer(
        self, graph: CSRGraph, spec: AlgorithmSpec
    ) -> DCATimingModel:
        return DCATimingModel(graph, spec, self.config)

    def energy(self, report: RunReport) -> EnergyReport:
        return dca_energy(report)


def register_builtin_backends(replace: bool = True) -> None:
    """(Re-)register the four built-in systems."""
    register("GraphDynS", GraphDynSBackend, replace=replace)
    register("Graphicionado", GraphicionadoBackend, replace=replace)
    register("Gunrock", GunrockBackend, replace=replace)
    register("DCA", DCABackend, replace=replace)


register_builtin_backends()
