"""String-keyed backend registry.

Lookup is case-insensitive (``"graphdyns"``, ``"GraphDynS"`` and
``"GRAPHDYNS"`` all resolve), while :func:`available` preserves each
backend's display name and registration order — the order figures list
systems in.

Registering a new system::

    from repro.backends import BaseBackend, register

    class MyAcceleratorBackend(BaseBackend):
        name = "MyAccelerator"
        ...

    register("MyAccelerator", MyAcceleratorBackend)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .base import Backend

__all__ = [
    "register",
    "unregister",
    "get",
    "create",
    "available",
    "available_keys",
    "is_registered",
]

#: canonical (lowercase) key -> factory. A factory is any callable
#: returning a Backend; called with no arguments for the default
#: configuration, or with one positional config argument.
_FACTORIES: Dict[str, Callable[..., Backend]] = {}

#: canonical key -> display name, in registration order.
_DISPLAY: Dict[str, str] = {}


def register(
    name: str,
    factory: Callable[..., Backend],
    *,
    replace: bool = False,
) -> None:
    """Register a backend factory under ``name``.

    Args:
        name: display name (lookup is case-insensitive).
        factory: callable returning a :class:`Backend`; it must accept
            zero arguments (default config) and may accept one positional
            config argument.
        replace: allow overwriting an existing registration.

    Raises:
        ValueError: the name is already taken and ``replace`` is false.
    """
    key = name.lower()
    if key in _FACTORIES and not replace:
        raise ValueError(
            f"backend {name!r} already registered; pass replace=True "
            "to override"
        )
    _FACTORIES[key] = factory
    _DISPLAY[key] = name


def unregister(name: str) -> None:
    """Remove a registration (mainly for tests)."""
    key = name.lower()
    _FACTORIES.pop(key, None)
    _DISPLAY.pop(key, None)


def get(name: str) -> Callable[..., Backend]:
    """The factory registered under ``name``.

    Raises:
        KeyError: unknown name; the message lists every available backend.
    """
    key = name.lower()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown backend {name!r}; available: {available()}"
        )
    return _FACTORIES[key]


def create(name: str, config: Optional[object] = None) -> Backend:
    """Instantiate the backend registered under ``name``.

    ``config`` (when given) is forwarded to the factory, overriding the
    system's default hardware configuration.
    """
    factory = get(name)
    if config is None:
        return factory()
    return factory(config)


def available() -> List[str]:
    """Display names of all registered backends, in registration order."""
    return list(_DISPLAY.values())


def available_keys() -> List[str]:
    """Canonical lowercase keys, in registration order (CLI choices)."""
    return list(_FACTORIES)


def is_registered(name: str) -> bool:
    return name.lower() in _FACTORIES
