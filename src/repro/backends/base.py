"""Backend abstraction: one uniform surface per modeled system.

A *backend* packages everything the harness needs to evaluate one
accelerator model on one (graph, algorithm) cell:

* a display ``name`` (the key used in figures and reports),
* an observer factory (``make_observer``) producing the system's timing
  model for one run of the functional VCPM engine,
* ``report``/``energy`` hooks turning that observer into the
  :class:`~repro.metrics.counters.RunReport` and
  :class:`~repro.energy.model.EnergyReport` every regenerator consumes,
* a stable ``config_digest`` so cached results are invalidated whenever
  the hardware configuration changes.

The physics stays in the system packages (``repro.graphdyns``,
``repro.graphicionado``, ``repro.gpu``); adapters in
:mod:`repro.backends.builtin` own only naming, config plumbing, and the
energy hookup.  Adding a fourth system is one adapter class plus one
:func:`repro.backends.registry.register` call.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Optional, Protocol, Tuple, runtime_checkable

from ..energy.model import EnergyReport
from ..graph.csr import CSRGraph
from ..metrics.counters import RunReport
from ..vcpm.engine import IterationObserver, VCPMResult, run_vcpm
from ..vcpm.partitioned import ShardRunner, run_vcpm_partitioned
from ..vcpm.spec import AlgorithmSpec

__all__ = ["Backend", "BaseBackend", "config_digest"]


def config_digest(config: Any) -> str:
    """Stable short digest of a (possibly nested) dataclass config.

    Used to key cached results: any field change — bandwidth, UE count,
    ablation switches — yields a different digest, so stale cache entries
    can never be mistaken for current ones.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = dataclasses.asdict(config)
    else:
        payload = config
    text = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@runtime_checkable
class Backend(Protocol):
    """What the run service requires of an accelerator backend."""

    name: str

    def config_digest(self) -> str:
        """Digest of the hardware configuration (cache invalidation key)."""
        ...  # pragma: no cover - protocol

    def make_observer(
        self, graph: CSRGraph, spec: AlgorithmSpec
    ) -> IterationObserver:
        """A fresh timing model observing one functional run."""
        ...  # pragma: no cover - protocol

    def report(self, observer: IterationObserver) -> RunReport:
        """The finished observer's RunReport."""
        ...  # pragma: no cover - protocol

    def energy(self, report: RunReport) -> EnergyReport:
        """This system's energy integration of a RunReport."""
        ...  # pragma: no cover - protocol


class BaseBackend:
    """Shared plumbing for concrete backends.

    Subclasses set :attr:`name`, store their configuration in
    :attr:`config`, and implement :meth:`make_observer` and
    :meth:`energy`; everything else (digesting, reporting, standalone
    runs) is uniform.
    """

    name: str = "?"
    config: Any = None

    def config_digest(self) -> str:
        return config_digest(self.config)

    def make_observer(
        self, graph: CSRGraph, spec: AlgorithmSpec
    ) -> IterationObserver:
        raise NotImplementedError

    def report(self, observer: IterationObserver) -> RunReport:
        return observer.report()  # type: ignore[attr-defined]

    def energy(self, report: RunReport) -> EnergyReport:
        raise NotImplementedError

    def run(
        self,
        graph: CSRGraph,
        spec: AlgorithmSpec,
        source: Optional[int] = 0,
        max_iterations: Optional[int] = None,
        shards: int = 1,
        shard_runner: Optional["ShardRunner"] = None,
        graph_ref: Optional[Tuple[str, str]] = None,
    ) -> Tuple[VCPMResult, RunReport]:
        """Standalone single-system run (the CLI ``run`` path).

        ``shards > 1`` (or an explicit ``shard_runner``) routes through
        the destination-sharded engine; the observer still sees the full
        merged iteration stream, so reports are identical to the
        unsharded path.
        """
        observer = self.make_observer(graph, spec)
        if shards > 1 or shard_runner is not None:
            result = run_vcpm_partitioned(
                graph,
                spec,
                shards=shards,
                source=source,
                max_iterations=max_iterations,
                observers=[observer],
                shard_runner=shard_runner,
                graph_ref=graph_ref,
            )
        else:
            result = run_vcpm(
                graph,
                spec,
                source=source,
                max_iterations=max_iterations,
                observers=[observer],
            )
        return result, self.report(observer)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} cfg={self.config_digest()}>"
