"""Experiment harness: run the evaluation matrix, regenerate every figure."""

from .io import format_si, geomean, render_table
from .service import (
    CacheStats,
    RunRequest,
    RunService,
    default_backends,
    execute_cell,
)
from .experiments import (
    REAL_WORLD_KEYS,
    SYSTEMS,
    CellResult,
    ExperimentSuite,
    run_cell,
)
from .figures import (
    FigureResult,
    figure2,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14a,
    figure14b,
    figure14c,
    figure14d,
    figure14e,
    figure14f,
)
from .tables import table1, table2, table3, table4
from .plots import bar_chart, grouped_bar_chart, line_series
from .sweeps import (
    sweep_bandwidth,
    sweep_bitmap_block,
    sweep_e_threshold,
    sweep_n_simt,
)
from .report import ExperimentRecord, build_report, generate_experiments_md
from .validation import ValidationOutcome, validate_all, validate_engines

__all__ = [
    "format_si",
    "geomean",
    "render_table",
    "CacheStats",
    "RunRequest",
    "RunService",
    "default_backends",
    "execute_cell",
    "REAL_WORLD_KEYS",
    "SYSTEMS",
    "CellResult",
    "ExperimentSuite",
    "run_cell",
    "FigureResult",
    "figure2",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14a",
    "figure14b",
    "figure14c",
    "figure14d",
    "figure14e",
    "figure14f",
    "table1",
    "table2",
    "table3",
    "table4",
    "bar_chart",
    "grouped_bar_chart",
    "line_series",
    "sweep_bandwidth",
    "sweep_bitmap_block",
    "sweep_e_threshold",
    "sweep_n_simt",
    "ExperimentRecord",
    "build_report",
    "generate_experiments_md",
    "ValidationOutcome",
    "validate_all",
    "validate_engines",
]
