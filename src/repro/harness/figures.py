"""Regenerators for every figure of the paper's evaluation (Section 7).

Each ``figureN`` function returns a small result object carrying the raw
series plus a ``render()`` producing the rows/series the paper plots.  The
benchmark harness calls these; EXPERIMENTS.md records the outcomes against
the paper's numbers.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.scheduling import balanced_dispatch
from ..energy.components import GRAPHDYNS_BUDGET
from ..graph import datasets
from ..graph.properties import DEGREE_INTERVALS, degree_interval_counts
from ..graphdyns.config import DEFAULT_CONFIG
from ..graphdyns.timing import GraphDynSTimingModel
from ..graphicionado.timing import GraphicionadoTimingModel
from ..vcpm.algorithms import algorithm_names, get_algorithm
from ..vcpm.engine import IterationData, run_vcpm
from .experiments import REAL_WORLD_KEYS, ExperimentSuite
from .io import geomean, render_table

__all__ = [
    "traffic_breakdown",
    "figure2",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14a",
    "figure14b",
    "figure14c",
    "figure14d",
    "figure14e",
    "figure14f",
]


# ----------------------------------------------------------------------
# Generic result container
# ----------------------------------------------------------------------
@dataclasses.dataclass
class FigureResult:
    """A reproduced figure: titled rows with named columns."""

    figure: str
    headers: List[str]
    rows: List[List[object]]
    notes: str = ""

    def render(self) -> str:
        table = render_table(self.headers, self.rows, title=self.figure)
        if self.notes:
            table += f"\n{self.notes}"
        return table


# ----------------------------------------------------------------------
# Traffic breakdown (supports the Fig. 12 discussion)
# ----------------------------------------------------------------------
def traffic_breakdown(
    suite: Optional[ExperimentSuite] = None,
    algorithm: str = "SSSP",
    graph_key: str = "LJ",
) -> FigureResult:
    """Per-region off-chip traffic of the three systems on one cell.

    Makes the Fig. 12 narrative concrete: GraphDynS pays extra *offset*
    traffic (Algorithm 2 reads the offset array each Apply phase) but wins
    it back several times over on edges (no src_vid) and vertex data
    (selective updates); Gunrock's sector-granular gathers dominate its
    column.
    """
    suite = suite or ExperimentSuite()
    cell = suite.cell(algorithm, graph_key)
    from ..memory.request import Region

    rows: List[List[object]] = []
    for region in Region:
        row: List[object] = [region.value]
        for system in ("Gunrock", "Graphicionado", "GraphDynS"):
            row.append(
                cell.reports[system].traffic.region_total(region) / 1e6
            )
        if any(isinstance(v, float) and v > 0 for v in row[1:]):
            rows.append(row)
    rows.append(
        [
            "TOTAL",
            *[
                cell.reports[s].traffic.total / 1e6
                for s in ("Gunrock", "Graphicionado", "GraphDynS")
            ],
        ]
    )
    return FigureResult(
        figure=f"Traffic breakdown by region, MB ({algorithm} on {graph_key})",
        headers=["region", "Gunrock", "Graphicionado", "GraphDynS"],
        rows=rows,
    )


# ----------------------------------------------------------------------
# Fig. 2 -- irregularity characterization
# ----------------------------------------------------------------------
class _Fig2Observer:
    """Collects active-degree histograms and update counts per iteration."""

    def __init__(self) -> None:
        self.rows: List[List[object]] = []

    def on_iteration(self, data: IterationData) -> None:
        counts = degree_interval_counts(data.active_degrees)
        self.rows.append([data.iteration + 1, *counts, data.num_modified])


def figure2(
    graph_key: str = "FR", algorithm: str = "SSSP", max_iterations: int = 25
) -> FigureResult:
    """Active vertices per degree interval and updates per iteration.

    The paper plots SSSP on Flickr: degree skew within every iteration
    (workload irregularity) and few updates relative to vertex count
    (update irregularity; 76% of iterations update <10% of vertices).
    """
    graph = datasets.load(graph_key)
    spec = get_algorithm(algorithm)
    observer = _Fig2Observer()
    run_vcpm(
        graph, spec, source=0, observers=[observer], max_iterations=max_iterations
    )
    headers = ["iter"] + [
        f"deg[{lo},{'inf' if hi > 10**9 else hi}]" for lo, hi in DEGREE_INTERVALS
    ] + ["#updates"]
    return FigureResult(
        figure=f"Fig. 2: active-vertex degree intervals + updates "
        f"({algorithm} on {graph_key} proxy)",
        headers=headers,
        rows=observer.rows,
    )


# ----------------------------------------------------------------------
# Figs. 6/7/9/11/12/13 -- matrix figures over (algorithm x graph)
# ----------------------------------------------------------------------
def _matrix_figure(
    suite: ExperimentSuite,
    figure: str,
    value_headers: Sequence[str],
    cell_values,
    algorithms: Optional[Sequence[str]] = None,
    graph_keys: Optional[Sequence[str]] = None,
    gm_positive: bool = True,
) -> FigureResult:
    algorithms = list(algorithms or algorithm_names())
    graph_keys = list(graph_keys or REAL_WORLD_KEYS)
    rows: List[List[object]] = []
    series: Dict[str, List[float]] = {h: [] for h in value_headers}
    for algorithm in algorithms:
        for graph_key in graph_keys:
            cell = suite.cell(algorithm, graph_key)
            values = cell_values(cell)
            rows.append([algorithm, graph_key, *values])
            for header, value in zip(value_headers, values):
                series[header].append(value)
    gm_row: List[object] = ["GM", "-"]
    for header in value_headers:
        vals = [v for v in series[header] if v > 0]
        gm_row.append(geomean(vals) if (gm_positive and vals) else float("nan"))
    rows.append(gm_row)
    return FigureResult(
        figure=figure,
        headers=["algo", "graph", *value_headers],
        rows=rows,
    )


def figure6(
    suite: Optional[ExperimentSuite] = None,
    algorithms: Optional[Sequence[str]] = None,
    graph_keys: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Speedup over Gunrock (paper GM: Graphicionado ~2.3x, GraphDynS 4.4x)."""
    suite = suite or ExperimentSuite()
    return _matrix_figure(
        suite,
        "Fig. 6: speedup over Gunrock",
        ["Graphicionado", "GraphDynS"],
        lambda cell: [
            cell.speedup_over_gunrock("Graphicionado"),
            cell.speedup_over_gunrock("GraphDynS"),
        ],
        algorithms,
        graph_keys,
    )


def figure7(
    suite: Optional[ExperimentSuite] = None,
    algorithms: Optional[Sequence[str]] = None,
    graph_keys: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Throughput in GTEPS (paper GM: 8 / 21 / 43; peak 128)."""
    suite = suite or ExperimentSuite()
    return _matrix_figure(
        suite,
        "Fig. 7: throughput (GTEPS)",
        ["Gunrock", "Graphicionado", "GraphDynS"],
        lambda cell: [
            cell.reports["Gunrock"].gteps,
            cell.reports["Graphicionado"].gteps,
            cell.reports["GraphDynS"].gteps,
        ],
        algorithms,
        graph_keys,
    )


def figure8() -> FigureResult:
    """Power and area breakdown of GraphDynS (3.38 W, 12.08 mm^2)."""
    budget = GRAPHDYNS_BUDGET
    budget.validate()
    rows = [
        [
            name,
            budget.power_of(name),
            100.0 * budget.power_shares[name],
            budget.area_of(name),
            100.0 * budget.area_shares[name],
        ]
        for name in budget.power_shares
    ]
    rows.append(
        ["TOTAL", budget.total_power_w, 100.0, budget.total_area_mm2, 100.0]
    )
    return FigureResult(
        figure="Fig. 8: GraphDynS power/area breakdown",
        headers=["component", "power_w", "power_%", "area_mm2", "area_%"],
        rows=rows,
    )


def figure9(
    suite: Optional[ExperimentSuite] = None,
    algorithms: Optional[Sequence[str]] = None,
    graph_keys: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Energy normalized to Gunrock, in percent (paper GM: GraphDynS 8.6%)."""
    suite = suite or ExperimentSuite()
    return _matrix_figure(
        suite,
        "Fig. 9: energy normalized to Gunrock (%)",
        ["Graphicionado", "GraphDynS"],
        lambda cell: [
            100.0 * cell.energy_vs_gunrock("Graphicionado"),
            100.0 * cell.energy_vs_gunrock("GraphDynS"),
        ],
        algorithms,
        graph_keys,
    )


def figure10(
    suite: Optional[ExperimentSuite] = None,
    algorithms: Optional[Sequence[str]] = None,
    graph_keys: Optional[Sequence[str]] = None,
) -> FigureResult:
    """GraphDynS energy breakdown (paper: ~92% HBM, Processor 4%, Updater 3%)."""
    suite = suite or ExperimentSuite()
    algorithms = list(algorithms or algorithm_names())
    graph_keys = list(graph_keys or REAL_WORLD_KEYS)
    components = ["Prefetcher", "Dispatcher", "Processor", "Updater", "HBM"]
    rows: List[List[object]] = []
    series: Dict[str, List[float]] = {c: [] for c in components}
    for algorithm in algorithms:
        for graph_key in graph_keys:
            cell = suite.cell(algorithm, graph_key)
            breakdown = cell.energy["GraphDynS"].breakdown()
            values = [100.0 * breakdown.get(c, 0.0) for c in components]
            rows.append([algorithm, graph_key, *values])
            for c, v in zip(components, values):
                series[c].append(v)
    rows.append(
        ["MEAN", "-", *[float(np.mean(series[c])) for c in components]]
    )
    return FigureResult(
        figure="Fig. 10: GraphDynS energy breakdown (%)",
        headers=["algo", "graph", *components],
        rows=rows,
    )


def figure11(
    suite: Optional[ExperimentSuite] = None,
    algorithms: Optional[Sequence[str]] = None,
    graph_keys: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Off-chip storage normalized to Gunrock (paper GM: 63% / 35%)."""
    suite = suite or ExperimentSuite()
    return _matrix_figure(
        suite,
        "Fig. 11: off-chip storage normalized to Gunrock (%)",
        ["Graphicionado", "GraphDynS"],
        lambda cell: [
            100.0
            * cell.reports["Graphicionado"].storage_bytes
            / cell.reports["Gunrock"].storage_bytes,
            100.0
            * cell.reports["GraphDynS"].storage_bytes
            / cell.reports["Gunrock"].storage_bytes,
        ],
        algorithms,
        graph_keys,
    )


def figure12(
    suite: Optional[ExperimentSuite] = None,
    algorithms: Optional[Sequence[str]] = None,
    graph_keys: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Memory accesses normalized to Gunrock (paper GM: 53% / 36%)."""
    suite = suite or ExperimentSuite()
    return _matrix_figure(
        suite,
        "Fig. 12: memory accesses normalized to Gunrock (%)",
        ["Graphicionado", "GraphDynS"],
        lambda cell: [
            100.0
            * cell.reports["Graphicionado"].traffic.normalized_to(
                cell.reports["Gunrock"].traffic
            ),
            100.0
            * cell.reports["GraphDynS"].traffic.normalized_to(
                cell.reports["Gunrock"].traffic
            ),
        ],
        algorithms,
        graph_keys,
    )


def figure13(
    suite: Optional[ExperimentSuite] = None,
    algorithms: Optional[Sequence[str]] = None,
    graph_keys: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Memory bandwidth utilization (paper GM: 31% / ~56% / 56%)."""
    suite = suite or ExperimentSuite()
    return _matrix_figure(
        suite,
        "Fig. 13: bandwidth utilization (%)",
        ["Gunrock", "Graphicionado", "GraphDynS"],
        lambda cell: [
            100.0 * cell.reports["Gunrock"].bandwidth_utilization,
            100.0 * cell.reports["Graphicionado"].bandwidth_utilization,
            100.0 * cell.reports["GraphDynS"].bandwidth_utilization,
        ],
        algorithms,
        graph_keys,
    )


# ----------------------------------------------------------------------
# Fig. 14 -- scheduling-optimization and scalability studies
# ----------------------------------------------------------------------
def figure14a(
    graph_key: str = "LJ", algorithms: Optional[Sequence[str]] = None
) -> FigureResult:
    """Scheduling-operation reduction from coarse-grained dispatch (~94%).

    Baseline: one scheduling decision per edge (fine-grained streaming).
    GraphDynS: one decision per whole small list / per sub-list.
    """
    algorithms = list(algorithms or algorithm_names())
    graph = datasets.load(graph_key)
    rows: List[List[object]] = []
    reductions: List[float] = []
    for algorithm in algorithms:
        spec = get_algorithm(algorithm)
        model = GraphDynSTimingModel(graph, spec)
        result = run_vcpm(graph, spec, source=0, observers=[model])
        fine_grained = result.total_edges_processed
        coarse = model.scheduling_ops
        reduction = 100.0 * (1.0 - coarse / max(fine_grained, 1))
        rows.append([algorithm, fine_grained, coarse, reduction])
        reductions.append(reduction)
    rows.append(["GM", "-", "-", geomean(reductions)])
    return FigureResult(
        figure=f"Fig. 14a: scheduling reduction on {graph_key} (%)",
        headers=["algo", "per-edge ops", "GraphDynS ops", "reduction_%"],
        rows=rows,
    )


class _Fig14bObserver:
    """Tracks per-PE normalized loads of the heaviest iterations.

    The paper plots the "several heaviest workload iterations"; iterations
    with only a handful of edges are not meaningful balance samples, so
    anything below ``min_edges`` is excluded.
    """

    def __init__(
        self, num_pes: int = 16, top_k: int = 8, min_edges: int = 4096
    ) -> None:
        self.num_pes = num_pes
        self.top_k = top_k
        self.min_edges = min_edges
        self._iterations: List[Tuple[int, np.ndarray]] = []

    def on_iteration(self, data: IterationData) -> None:
        if data.num_edges < self.min_edges:
            return
        outcome = balanced_dispatch(data.active_degrees, self.num_pes)
        self._iterations.append((data.num_edges, outcome.normalized_loads()))

    def heaviest(self) -> List[np.ndarray]:
        ranked = sorted(self._iterations, key=lambda kv: -kv[0])
        return [loads for _, loads in ranked[: self.top_k]]


def figure14b(
    graph_key: str = "LJ", algorithm: str = "SSWP"
) -> FigureResult:
    """Normalized per-PE workload in the heaviest iterations (~1.0)."""
    graph = datasets.load(graph_key)
    spec = get_algorithm(algorithm)
    observer = _Fig14bObserver()
    run_vcpm(graph, spec, source=0, observers=[observer])
    rows: List[List[object]] = []
    for rank, loads in enumerate(observer.heaviest(), 1):
        rows.append([rank, *[float(x) for x in loads]])
    return FigureResult(
        figure=f"Fig. 14b: normalized per-PE workload ({algorithm} on {graph_key})",
        headers=["iter_rank", *[f"PE{i}" for i in range(16)]],
        rows=rows,
    )


#: The cumulative optimization points of Fig. 14c.
ABLATION_STEPS: List[Tuple[str, Dict[str, bool]]] = [
    ("WB", dict(workload_balance=True, exact_prefetch=False,
                atomic_optimization=False, update_scheduling=False)),
    ("WE", dict(workload_balance=True, exact_prefetch=True,
                atomic_optimization=False, update_scheduling=False)),
    ("WEA", dict(workload_balance=True, exact_prefetch=True,
                 atomic_optimization=True, update_scheduling=False)),
    ("WEAU", dict(workload_balance=True, exact_prefetch=True,
                  atomic_optimization=True, update_scheduling=True)),
]


@functools.lru_cache(maxsize=64)
def _ablation_reports(graph_key: str, algorithm: str):
    """Graphicionado + the four ablation configs, one functional run.

    Memoized: Figs. 14c and 14d share these runs.
    """
    graph = datasets.load(graph_key)
    spec = get_algorithm(algorithm)
    baseline = GraphicionadoTimingModel(graph, spec)
    ablations = {
        label: GraphDynSTimingModel(
            graph, spec, DEFAULT_CONFIG.with_ablation(**switches)
        )
        for label, switches in ABLATION_STEPS
    }
    run_vcpm(
        graph,
        spec,
        source=0,
        observers=[baseline, *ablations.values()],
    )
    return baseline.report(), {
        label: model.report() for label, model in ablations.items()
    }


def figure14c(
    graph_key: str = "LJ", algorithms: Optional[Sequence[str]] = None
) -> FigureResult:
    """Ablation speedups vs Graphicionado (paper GM: WE 1.39, WEA 1.57, WEAU 1.8)."""
    algorithms = list(algorithms or algorithm_names())
    rows: List[List[object]] = []
    series: Dict[str, List[float]] = {label: [] for label, _ in ABLATION_STEPS}
    for algorithm in algorithms:
        base, reports = _ablation_reports(graph_key, algorithm)
        values = []
        for label, _ in ABLATION_STEPS:
            speedup = reports[label].speedup_over(base)
            values.append(speedup)
            series[label].append(speedup)
        rows.append([algorithm, *values])
    rows.append(
        ["GM", *[geomean(series[label]) for label, _ in ABLATION_STEPS]]
    )
    return FigureResult(
        figure=f"Fig. 14c: ablation speedup vs Graphicionado on {graph_key}",
        headers=["algo", *[label for label, _ in ABLATION_STEPS]],
        rows=rows,
    )


def figure14d(
    graph_key: str = "LJ", algorithms: Optional[Sequence[str]] = None
) -> FigureResult:
    """Off-chip access reduction from EP (~30%) and US (~18%)."""
    algorithms = list(algorithms or algorithm_names())
    rows: List[List[object]] = []
    ep_series: List[float] = []
    us_series: List[float] = []
    for algorithm in algorithms:
        _, reports = _ablation_reports(graph_key, algorithm)
        ep = 100.0 * (
            1.0 - reports["WE"].total_traffic_bytes
            / max(reports["WB"].total_traffic_bytes, 1)
        )
        us = 100.0 * (
            1.0 - reports["WEAU"].total_traffic_bytes
            / max(reports["WEA"].total_traffic_bytes, 1)
        )
        rows.append([algorithm, ep, us])
        ep_series.append(ep)
        us_series.append(us)
    rows.append(
        ["MEAN", float(np.mean(ep_series)), float(np.mean(us_series))]
    )
    return FigureResult(
        figure=f"Fig. 14d: access reduction on {graph_key} (%)",
        headers=["algo", "EP", "US"],
        rows=rows,
    )


def figure14e(
    graph_key: str = "LJ",
    algorithms: Optional[Sequence[str]] = None,
    ue_counts: Sequence[int] = (256, 128, 64, 32),
) -> FigureResult:
    """Performance vs number of UEs, normalized to 128 (PR/CC degrade most)."""
    algorithms = list(algorithms or algorithm_names())
    graph = datasets.load(graph_key)
    rows: List[List[object]] = []
    for algorithm in algorithms:
        spec = get_algorithm(algorithm)
        models = {
            n: GraphDynSTimingModel(
                graph, spec, DEFAULT_CONFIG.with_num_ues(n)
            )
            for n in ue_counts
        }
        run_vcpm(graph, spec, source=0, observers=list(models.values()))
        baseline_cycles = models[128].total_cycles
        rows.append(
            [
                algorithm,
                *[
                    100.0 * baseline_cycles / max(models[n].total_cycles, 1e-9)
                    for n in ue_counts
                ],
            ]
        )
    return FigureResult(
        figure=f"Fig. 14e: performance vs #UEs on {graph_key} (% of 128 UEs)",
        headers=["algo", *[str(n) for n in ue_counts]],
        rows=rows,
    )


def figure14f(
    rmat_keys: Sequence[str] = ("RM22", "RM23", "RM24", "RM25", "RM26"),
    algorithm: str = "PR",
) -> FigureResult:
    """PR throughput across the RMAT scaling suite.

    The paper's trend: throughput declines gently once the temporary
    properties outgrow the Vertex Buffer and slicing kicks in; Graphicionado
    declines one scale later because its eDRAM is twice as large.  The RMAT
    proxies are 1024x smaller than the paper's scales 22-26 (DESIGN.md), so
    both buffer capacities are scaled by the same factor to stay in the
    same slicing regime.
    """
    scale_factor = 1024
    gds_config = dataclasses.replace(
        DEFAULT_CONFIG,
        vb_bytes_per_ue=max(DEFAULT_CONFIG.vb_bytes_per_ue // scale_factor, 64),
    )
    from ..graphicionado.config import GRAPHICIONADO_CONFIG

    gio_config = dataclasses.replace(
        GRAPHICIONADO_CONFIG,
        edram_bytes=max(GRAPHICIONADO_CONFIG.edram_bytes // scale_factor, 128),
    )
    rows: List[List[object]] = []
    for key in rmat_keys:
        graph = datasets.load(key)
        spec = get_algorithm(algorithm)
        gds = GraphDynSTimingModel(graph, spec, gds_config)
        gio = GraphicionadoTimingModel(graph, spec, gio_config)
        run_vcpm(graph, spec, source=0, observers=[gds, gio])
        rows.append(
            [
                key,
                graph.num_vertices,
                graph.num_edges,
                gds.report().gteps,
                gio.report().gteps,
                gds.slice_plan.num_slices,
                gio.slice_plan.num_slices,
            ]
        )
    return FigureResult(
        figure=f"Fig. 14f: {algorithm} throughput over RMAT scaling (GTEPS)",
        headers=[
            "graph", "V", "E", "GraphDynS", "Graphicionado",
            "GDS_slices", "GIO_slices",
        ],
        rows=rows,
    )
