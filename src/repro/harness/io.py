"""Plain-text rendering helpers for experiment output."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

__all__ = ["render_table", "geomean", "format_si"]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table.

    Numbers are right-aligned; everything is stringified with ``str``.
    """
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 100:
            return f"{cell:.0f}"
        if magnitude >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3f}"
    return str(cell)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's GM bars); zero/negative values rejected."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_si(value: float, unit: str = "") -> str:
    """Human format with SI prefixes (1.5e9 -> '1.50 G')."""
    for threshold, prefix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= threshold:
            return f"{value / threshold:.2f} {prefix}{unit}"
    return f"{value:.2f} {unit}"
