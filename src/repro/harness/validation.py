"""Cross-engine validation: every execution path computes the same thing.

The repository has five ways to execute a VCPM algorithm:

1. the vectorized functional engine (Algorithm 1),
2. the scalar optimized programming model (Algorithm 2),
3. pull mode,
4. functionally-sliced mode,
5. the component-level micro-architecture path.

They exist for different purposes (speed, fidelity, validation), but they
must agree bit-for-bit on properties.  This module sweeps random graphs
through all five -- plus the compiled rendering of Algorithm 2 whenever a
native kernel provider is available -- and reports any divergence: the
repository's self-check, exposed as ``python -m repro validate``.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.generators import power_law_graph, uniform_random_graph
from ..graphdyns.accelerator import GraphDynS
from ..kernels.tiers import compiled_available
from ..vcpm.algorithms import ALGORITHMS
from ..vcpm.engine import run_vcpm
from ..vcpm.optimized import run_optimized
from ..vcpm.pull import run_vcpm_pull
from ..vcpm.sliced import run_vcpm_sliced

__all__ = ["ValidationOutcome", "validate_engines", "validate_all"]


@dataclasses.dataclass(frozen=True)
class ValidationOutcome:
    """Result of one (graph, algorithm) cross-engine check."""

    graph_name: str
    algorithm: str
    engines_checked: int
    agreed: bool
    detail: str = ""


def _canon(properties: np.ndarray) -> np.ndarray:
    return np.nan_to_num(properties, posinf=1e30, neginf=-1e30)


def validate_engines(
    graph: CSRGraph,
    algorithm: str,
    source: int = 0,
    include_component_level: bool = True,
    max_iterations: Optional[int] = None,
) -> ValidationOutcome:
    """Run every engine on one graph and compare properties."""
    spec = ALGORITHMS[algorithm.upper()]
    kwargs = {}
    if spec.resets_tprop_each_iteration:
        max_iterations = max_iterations or 5
        kwargs["pr_tolerance"] = 0.0

    baseline = run_vcpm(
        graph, spec, source=source, max_iterations=max_iterations, **kwargs
    )
    reference = _canon(baseline.properties)

    candidates = {
        "optimized": run_optimized(
            graph, spec, source=source, max_iterations=max_iterations,
            **({"pr_tolerance": 0.0} if "pr_tolerance" in kwargs else {}),
        ).properties,
        "pull": run_vcpm_pull(
            graph, spec, source=source, max_iterations=max_iterations, **kwargs
        ).properties,
        "sliced": run_vcpm_sliced(
            graph, spec, vb_capacity_bytes=max(graph.num_vertices, 8),
            source=source, max_iterations=max_iterations, **kwargs
        ).properties,
    }
    if compiled_available():
        candidates["compiled"] = run_optimized(
            graph, spec, source=source, max_iterations=max_iterations,
            kernel="compiled",
            **({"pr_tolerance": 0.0} if "pr_tolerance" in kwargs else {}),
        ).properties
    if include_component_level:
        candidates["component"] = GraphDynS().run_component_level(
            graph, spec, source=source, max_iterations=max_iterations
        ).properties

    for name, properties in candidates.items():
        got = _canon(properties)
        if not np.allclose(got, reference, rtol=1e-9, atol=1e-12):
            worst = int(np.argmax(np.abs(got - reference)))
            return ValidationOutcome(
                graph_name=graph.name,
                algorithm=spec.name,
                engines_checked=len(candidates) + 1,
                agreed=False,
                detail=(
                    f"{name} diverges at vertex {worst}: "
                    f"{got[worst]} vs {reference[worst]}"
                ),
            )
    return ValidationOutcome(
        graph_name=graph.name,
        algorithm=spec.name,
        engines_checked=len(candidates) + 1,
        agreed=True,
    )


def validate_all(
    seeds: int = 3,
    vertices: int = 200,
    edges: int = 1000,
    include_component_level: bool = True,
) -> List[ValidationOutcome]:
    """The full self-check: every algorithm on a battery of random graphs."""
    outcomes: List[ValidationOutcome] = []
    for seed in range(seeds):
        for make in (power_law_graph, uniform_random_graph):
            graph = make(
                vertices, edges, seed=seed,
                name=f"{make.__name__}-{seed}",
            )
            for algorithm in ALGORITHMS:
                outcomes.append(
                    validate_engines(
                        graph,
                        algorithm,
                        include_component_level=include_component_level,
                    )
                )
    return outcomes
