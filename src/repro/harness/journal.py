"""Durable write-ahead job journal for the simulation daemon.

The daemon (:mod:`repro.harness.serve`) must survive ``kill -9`` with no
lost work and no duplicated work.  The trick is the same one
:class:`~repro.harness.resilience.RunManifest` uses for sweeps, promoted
to a first-class write-ahead log:

* every job state transition is **appended before it is acted on**
  (``submit`` before enqueue, ``start`` before execution, ``done`` /
  ``fail`` / ``cancel`` after finalization), each line flushed and
  fsync'd, so the journal is never behind reality by more than one
  in-flight transition;
* the journal is **torn-tail tolerant**: a line half-written at the
  moment of a kill is skipped on load, and every complete line is
  self-contained JSON;
* appends are guarded by an **advisory ``fcntl.flock``**, so a daemon
  worker and a concurrent CLI process can share one journal without
  interleaving partial lines;
* the journal is **advisory about results**: cell results live in the
  content-addressed persistent cache, so replaying a ``submit``/
  ``start`` with no ``done`` merely re-executes the job — finished
  cells replay from the cache and the re-run is byte-identical.

``JobJournal.replay`` folds the event stream into the last-known state
of every job, which is exactly what the daemon needs at startup to
resume interrupted work.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import time
from typing import Dict, Iterator, List, Optional, Tuple

try:  # POSIX only; journal locking degrades to best-effort elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "JOURNAL_SCHEMA",
    "JobJournal",
    "JobRecord",
    "JournalError",
    "advisory_lock",
]

JOURNAL_SCHEMA = 1

#: Job states a journal replay can produce.  ``submitted`` and
#: ``started`` are the non-terminal states the daemon re-enqueues.
_TERMINAL = ("done", "failed", "cancelled", "shed")


class JournalError(RuntimeError):
    """The journal file is unusable (bad header, exhausted retries)."""


@contextlib.contextmanager
def advisory_lock(handle) -> Iterator[None]:
    """Hold an exclusive advisory ``flock`` on ``handle`` for the block.

    Advisory locks serialize *cooperating* writers (daemon workers, a
    CLI ``--resume``, tests) without affecting readers; on platforms
    without :mod:`fcntl` the lock degrades to a no-op, which matches the
    historical (unlocked) behaviour.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platform
        yield
        return
    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
    try:
        yield
    finally:
        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def locked_append_line(path: str, text: str) -> None:
    """Append one ``\\n``-terminated line under the advisory lock.

    Flush + fsync before releasing the lock: once this returns, the line
    survives a ``kill -9`` of the writer; if the writer dies *inside*
    the call, the worst case is a torn tail line, which every reader in
    this package skips.
    """
    with open(path, "a") as handle:
        with advisory_lock(handle):
            handle.write(text + "\n")
            handle.flush()
            os.fsync(handle.fileno())


@dataclasses.dataclass
class JobRecord:
    """The folded (last-known) state of one journaled job."""

    job_id: str
    seq: int
    spec: Dict[str, object]
    priority: int = 0
    client: str = "anonymous"
    job_key: str = ""
    coalesced_with: Optional[str] = None
    state: str = "submitted"
    error: Optional[str] = None
    result_digest: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL

    @property
    def unfinished(self) -> bool:
        """True when the daemon must re-enqueue this job at startup."""
        return not self.terminal


class JobJournal:
    """Append-only JSONL write-ahead log of daemon job lifecycles.

    Line 1 is a schema header; every following line is one event::

        {"kind": "repro-job-journal", "schema": 1}
        {"event": "submit", "id": "j000001-ab12cd34", "seq": 1, ...}
        {"event": "start", "id": "j000001-ab12cd34"}
        {"event": "done", "id": "j000001-ab12cd34", "result_digest": "..."}

    Args:
        path: journal file; created (with header) when absent.
        faults: optional :class:`~repro.harness.faults.FaultInjector`
            whose ``on_journal`` hook can fail appends deterministically
            (the ``flaky-journal`` spec).
        max_attempts: bounded retries per append before
            :class:`JournalError` is raised; journal loss must be loud,
            never silent.
    """

    def __init__(
        self,
        path: str,
        faults=None,
        max_attempts: int = 3,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.path = path
        self.faults = faults
        self.max_attempts = max_attempts
        self.append_retries = 0
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        if not os.path.exists(path) or os.path.getsize(path) == 0:
            header = {"kind": "repro-job-journal", "schema": JOURNAL_SCHEMA}
            locked_append_line(path, json.dumps(header, sort_keys=True))

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, event: Dict[str, object]) -> None:
        """Durably append one event (bounded retries, then loud failure)."""
        text = json.dumps(event, sort_keys=True)
        token = f"{event.get('event')}:{event.get('id', '')}"
        attempt = 0
        while True:
            attempt += 1
            try:
                if self.faults is not None:
                    self.faults.on_journal(token, attempt)
                locked_append_line(self.path, text)
                return
            except OSError as exc:
                if attempt >= self.max_attempts:
                    raise JournalError(
                        f"journal append to {self.path} failed after "
                        f"{attempt} attempts: {exc!r}"
                    ) from exc
                self.append_retries += 1

    def submit(
        self,
        job_id: str,
        seq: int,
        spec: Dict[str, object],
        priority: int,
        client: str,
        job_key: str,
        coalesced_with: Optional[str] = None,
    ) -> None:
        self.append(
            {
                "event": "submit",
                "id": job_id,
                "seq": seq,
                "spec": spec,
                "priority": priority,
                "client": client,
                "job_key": job_key,
                "coalesced_with": coalesced_with,
            }
        )

    def start(self, job_id: str) -> None:
        self.append({"event": "start", "id": job_id})

    def done(self, job_id: str, result_digest: Optional[str] = None) -> None:
        self.append(
            {"event": "done", "id": job_id, "result_digest": result_digest}
        )

    def fail(self, job_id: str, error: str) -> None:
        self.append({"event": "fail", "id": job_id, "error": error})

    def cancel(self, job_id: str, reason: str = "cancelled") -> None:
        self.append({"event": "cancel", "id": job_id, "reason": reason})

    def resume(self, job_id: str) -> None:
        self.append({"event": "resume", "id": job_id})

    def plan(
        self,
        spec_name: str,
        spec_digest: str,
        cells: int,
        cached: int,
        pending: int,
        job_ids: List[str],
        client: str,
    ) -> None:
        """Record one planned submission (audit trail, not job state).

        The event carries no ``id`` on purpose: :meth:`replay` folds
        only per-job events, so plans are invisible to recovery — the
        fanned-out jobs each have their own ``submit`` lines and resume
        individually.
        """
        self.append(
            {
                "event": "plan",
                "spec_name": spec_name,
                "spec_digest": spec_digest,
                "cells": cells,
                "cached": cached,
                "pending": pending,
                "jobs": list(job_ids),
                "client": client,
            }
        )

    def shutdown(self) -> None:
        self.append({"event": "shutdown", "at": time.time()})

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @classmethod
    def replay(cls, path: str) -> Tuple[Dict[str, JobRecord], int]:
        """Fold the journal into per-job last-known states.

        Returns ``(records, max_seq)``; ``records`` preserves submission
        order (dicts are insertion-ordered).  Tolerates a torn tail and
        skips any undecodable line, mirroring
        :meth:`~repro.harness.resilience.RunManifest.load`.
        """
        with open(path) as handle:
            lines = handle.read().splitlines()
        if not lines:
            raise JournalError(f"journal {path} is empty")
        header = _parse_line(lines[0])
        if (
            header is None
            or header.get("kind") != "repro-job-journal"
            or header.get("schema") != JOURNAL_SCHEMA
        ):
            raise JournalError(
                f"{path} is not a schema-{JOURNAL_SCHEMA} job journal"
            )
        records: Dict[str, JobRecord] = {}
        max_seq = 0
        for line in lines[1:]:
            event = _parse_line(line)
            if event is None:
                continue  # torn tail from a kill mid-append
            kind = event.get("event")
            job_id = event.get("id")
            if kind == "submit" and isinstance(job_id, str):
                try:
                    seq = int(event["seq"])
                    spec = dict(event["spec"])
                except (KeyError, TypeError, ValueError):
                    continue
                max_seq = max(max_seq, seq)
                records[job_id] = JobRecord(
                    job_id=job_id,
                    seq=seq,
                    spec=spec,
                    priority=int(event.get("priority", 0)),
                    client=str(event.get("client", "anonymous")),
                    job_key=str(event.get("job_key", "")),
                    coalesced_with=event.get("coalesced_with"),
                )
            elif isinstance(job_id, str) and job_id in records:
                record = records[job_id]
                if kind == "start":
                    record.state = "started"
                elif kind == "done":
                    record.state = "done"
                    record.result_digest = event.get("result_digest")
                elif kind == "fail":
                    record.state = "failed"
                    record.error = str(event.get("error", ""))
                elif kind == "cancel":
                    reason = str(event.get("reason", "cancelled"))
                    record.state = "shed" if reason == "shed" else "cancelled"
                # "resume" leaves the folded state untouched: the job is
                # back in "submitted"/"started", both of which re-enqueue.
        return records, max_seq

    def unfinished(self) -> List[JobRecord]:
        """Jobs the daemon must pick back up, in submission order."""
        records, _ = self.replay(self.path)
        return [r for r in records.values() if r.unfinished]


def _parse_line(line: str) -> Optional[Dict[str, object]]:
    try:
        parsed = json.loads(line)
    except ValueError:
        return None
    return parsed if isinstance(parsed, dict) else None
