"""Declarative experiment specs: a YAML-first language over the run service.

Every sweep, ablation, and figure regeneration used to be hand-coded
Python.  This module gives the platform a *user-facing surface*: a small
declarative language describing **what** to run — a backend × algorithm
× graph × config-override grid, filter clauses, and named outputs
mapping onto the existing table/figure builders — which
:mod:`repro.harness.planner` compiles onto the run service (and the
daemon's job queue) with cache awareness.

Design decisions, in order of importance:

**A validated, typed AST.**
    :class:`ExperimentSpec` is a frozen dataclass tree.  Parsing always
    produces either a fully-validated spec (every algorithm, dataset,
    backend, override field, output builder, and report field checked
    against the live registries) or a :class:`SpecError` naming the
    offending field and line.  A raw traceback reaching a user is a bug;
    the fuzz battery in ``tests/test_specs_parser.py`` enforces that.

**A strict YAML subset, parsed in-repo.**
    Specs are YAML files, but the loader is a ~200-line strict-subset
    parser rather than a PyYAML dependency: block mappings and
    sequences, inline ``[a, b]`` lists and the empty ``{}``/``[]``
    flows, comments, and JSON-compatible scalars.  The subset is chosen
    so (a) tier-1 stays dependency-free, (b) every parse error carries
    an exact line number, and (c) :func:`dump_yaml` round-trips
    byte-deterministically — which is what makes spec digests and plan
    goldens stable.  Files emitted by :func:`dump_yaml` are valid YAML:
    when PyYAML happens to be installed, ``yaml.safe_load`` agrees with
    :func:`load_yaml` on them (cross-checked in the test suite).

**Includes compose, cycles fail loudly.**
    A spec may name ``include:`` files whose fields become defaults for
    the including spec (the includer wins key-by-key).  Cyclic includes
    raise :class:`SpecError` with the offending chain instead of
    recursing forever.

Example spec::

    name: table4-grid
    description: full Table 4 comparison grid
    algorithms: [BFS, SSSP, PR]
    graphs: [FR, PK, LJ]
    overrides:
      - name: base
      - name: half-simt
        graphdyns:
          n_simt: 4
    filter:
      exclude:
        - algorithm: PR
          graph: LJ
    outputs:
      speedups: fig6
      datasets: table4
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import backends as backend_registry
from ..graph import datasets
from ..graph.storage import STORAGE_KINDS
from ..vcpm.algorithms import algorithm_names, get_algorithm

__all__ = [
    "ExperimentSpec",
    "FilterSpec",
    "GridCell",
    "OutputSpec",
    "OverrideSpec",
    "OUTPUT_BUILDERS",
    "SELECTABLE_FIELDS",
    "SpecError",
    "dump_yaml",
    "load_spec",
    "load_yaml",
    "parse_spec",
    "spec_digest",
    "spec_from_dict",
    "spec_to_dict",
    "spec_to_yaml",
]

#: Kernel tiers a spec may request (mirrors repro.kernels.tiers; kept as
#: a literal so parsing a spec never imports the kernel stack).
_KERNEL_TIERS = ("auto", "scalar", "vectorized", "compiled", "batched", "event")

#: The default override name when a spec declares no overrides axis.
BASE_OVERRIDE = "base"

#: Report fields a ``select`` clause may project into summary tables.
SELECTABLE_FIELDS: Tuple[str, ...] = (
    "cycles",
    "seconds",
    "gteps",
    "iterations",
    "speedup",
    "traffic_mb",
    "energy_mj",
    "bandwidth_utilization",
)


class SpecError(ValueError):
    """A spec failed to parse or validate.

    Always carries enough context to act on: ``field`` (dotted path of
    the offending key, when known), ``line`` (1-based line in the spec
    text, when known), and ``source`` (the file path, when parsing a
    file).  The rendered message leads with that context so it can be
    surfaced to users verbatim — the parser's contract (enforced by the
    fuzz battery) is that malformed input of any kind raises *this*
    class, never a raw traceback.
    """

    def __init__(
        self,
        detail: str,
        field: Optional[str] = None,
        line: Optional[int] = None,
        source: Optional[str] = None,
    ) -> None:
        self.detail = detail
        self.field = field
        self.line = line
        self.source = source
        where = []
        if source:
            where.append(str(source))
        if line is not None:
            where.append(f"line {line}")
        prefix = f"[{', '.join(where)}] " if where else ""
        at = f"field {field!r}: " if field else ""
        super().__init__(f"{prefix}{at}{detail}")


# ======================================================================
# Strict YAML-subset loader / emitter
# ======================================================================

_PLAIN_KEY = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.\-]*$")
_INT = re.compile(r"^-?\d+$")
_FLOAT = re.compile(r"^-?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")


@dataclasses.dataclass
class _Line:
    number: int
    indent: int
    text: str  # content with indentation stripped


def _strip_comment(raw: str) -> str:
    """Remove a ``#`` comment, respecting single/double quotes."""
    out = []
    quote: Optional[str] = None
    i = 0
    while i < len(raw):
        ch = raw[i]
        if quote is None:
            if ch == "#" and (not out or out[-1] in " \t"):
                break
            if ch in "'\"":
                quote = ch
        elif ch == quote:
            # '' inside single quotes is an escaped quote, not a close.
            if quote == "'" and i + 1 < len(raw) and raw[i + 1] == "'":
                out.append(ch)
                i += 1
            elif quote == '"' and out and out[-1] == "\\":
                pass
            else:
                quote = None
        out.append(ch)
        i += 1
    return "".join(out).rstrip()


def _logical_lines(text: str) -> List[_Line]:
    lines: List[_Line] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise SpecError(
                "tab characters are not allowed in indentation",
                line=number,
            )
        content = _strip_comment(raw)
        stripped = content.strip()
        if not stripped:
            continue
        if stripped == "---":  # document marker: tolerated, ignored
            continue
        indent = len(content) - len(content.lstrip(" "))
        lines.append(_Line(number=number, indent=indent, text=stripped))
    return lines


def _parse_scalar(token: str, line: int) -> object:
    token = token.strip()
    if token == "" or token in ("~", "null", "Null", "NULL"):
        return None
    if token in ("true", "True", "TRUE"):
        return True
    if token in ("false", "False", "FALSE"):
        return False
    if token == "{}":
        return {}
    if token == "[]":
        return []
    if token.startswith("{"):
        raise SpecError(
            "flow mappings ('{...}') are not part of the spec subset; "
            "use block form",
            line=line,
        )
    if token.startswith("["):
        return _parse_inline_list(token, line)
    if token.startswith(("'", '"')):
        return _parse_quoted(token, line)
    if _INT.match(token):
        return int(token)
    if _FLOAT.match(token):
        return float(token)
    if token.startswith(("&", "*", "!", "|", ">", "%", "@", "`")):
        raise SpecError(
            f"unsupported YAML construct {token[:12]!r} (anchors, tags and "
            "block scalars are not part of the spec subset)",
            line=line,
        )
    return token


def _parse_quoted(token: str, line: int) -> str:
    quote = token[0]
    if len(token) < 2 or token[-1] != quote:
        raise SpecError(f"unterminated {quote} quoted string", line=line)
    body = token[1:-1]
    if quote == "'":
        if re.search(r"(?<!')'(?!')", body):
            raise SpecError(
                "single-quoted string closes early (escape a quote by "
                "doubling it)",
                line=line,
            )
        return body.replace("''", "'")
    out: List[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            if i + 1 >= len(body):
                raise SpecError("dangling escape in string", line=line)
            esc = body[i + 1]
            mapped = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc)
            if mapped is None:
                raise SpecError(f"unknown escape \\{esc}", line=line)
            out.append(mapped)
            i += 2
            continue
        if ch == '"':
            raise SpecError("double-quoted string closes early", line=line)
        out.append(ch)
        i += 1
    return "".join(out)


def _parse_inline_list(token: str, line: int) -> List[object]:
    if not token.endswith("]"):
        raise SpecError("unterminated inline list", line=line)
    body = token[1:-1].strip()
    if not body:
        return []
    items: List[str] = []
    depth = 0
    quote: Optional[str] = None
    current = ""
    for ch in body:
        if quote is not None:
            current += ch
            if ch == quote:
                quote = None
            continue
        if ch in "'\"":
            quote = ch
            current += ch
        elif ch == "[":
            depth += 1
            current += ch
        elif ch == "]":
            depth -= 1
            if depth < 0:
                raise SpecError("unbalanced ']' in inline list", line=line)
            current += ch
        elif ch == "," and depth == 0:
            items.append(current)
            current = ""
        else:
            current += ch
    if quote is not None:
        raise SpecError("unterminated string in inline list", line=line)
    if depth != 0:
        raise SpecError("unbalanced '[' in inline list", line=line)
    items.append(current)
    return [_parse_scalar(item, line) for item in items]


class _BlockParser:
    """Indentation-structured parser over the logical lines."""

    def __init__(self, lines: List[_Line]) -> None:
        self.lines = lines
        self.pos = 0
        #: path tuple -> source line number, for error reporting.
        self.linemap: Dict[Tuple[object, ...], int] = {}

    def peek(self) -> Optional[_Line]:
        return self.lines[self.pos] if self.pos < len(self.lines) else None

    def parse_block(self, indent: int, path: Tuple[object, ...]) -> object:
        line = self.peek()
        assert line is not None
        if line.text.startswith("- ") or line.text == "-":
            return self.parse_sequence(indent, path)
        return self.parse_mapping(indent, path)

    def parse_mapping(
        self, indent: int, path: Tuple[object, ...]
    ) -> Dict[str, object]:
        result: Dict[str, object] = {}
        while True:
            line = self.peek()
            if line is None or line.indent < indent:
                return result
            if line.indent > indent:
                raise SpecError(
                    f"unexpected indentation ({line.indent} spaces, "
                    f"expected {indent})",
                    line=line.number,
                )
            if line.text.startswith("- ") or line.text == "-":
                raise SpecError(
                    "sequence item found where a mapping key was expected",
                    line=line.number,
                )
            key, value_text = self._split_key(line)
            if key in result:
                raise SpecError(
                    f"duplicate key {key!r}",
                    field=".".join(str(p) for p in path + (key,)),
                    line=line.number,
                )
            child_path = path + (key,)
            self.linemap[child_path] = line.number
            self.pos += 1
            if value_text:
                result[key] = _parse_scalar(value_text, line.number)
            else:
                nxt = self.peek()
                if nxt is not None and nxt.indent > indent:
                    result[key] = self.parse_block(nxt.indent, child_path)
                else:
                    result[key] = None
        return result

    def parse_sequence(
        self, indent: int, path: Tuple[object, ...]
    ) -> List[object]:
        result: List[object] = []
        while True:
            line = self.peek()
            if line is None or line.indent < indent:
                return result
            if line.indent > indent:
                raise SpecError(
                    f"unexpected indentation ({line.indent} spaces, "
                    f"expected {indent})",
                    line=line.number,
                )
            if not (line.text.startswith("- ") or line.text == "-"):
                raise SpecError(
                    "mapping key found where a sequence item was expected",
                    line=line.number,
                )
            index = len(result)
            child_path = path + (index,)
            self.linemap[child_path] = line.number
            body = line.text[1:].strip()
            if not body:
                # "-" alone: the item is the following deeper block.
                self.pos += 1
                nxt = self.peek()
                if nxt is not None and nxt.indent > indent:
                    result.append(self.parse_block(nxt.indent, child_path))
                else:
                    result.append(None)
                continue
            if self._looks_like_mapping(body):
                # "- key: value": a mapping whose first entry sits on the
                # dash line; continuation lines are indented past the dash.
                item_indent = line.indent + (len(line.text) - len(body))
                self.lines[self.pos] = _Line(
                    number=line.number, indent=item_indent, text=body
                )
                result.append(self.parse_mapping(item_indent, child_path))
            else:
                self.pos += 1
                result.append(_parse_scalar(body, line.number))
        return result

    @staticmethod
    def _looks_like_mapping(body: str) -> bool:
        if body.startswith(("'", '"', "[", "{")):
            return False
        head = body.split(":", 1)
        if len(head) != 2:
            return False
        if head[1] and not head[1].startswith(" "):
            return False  # e.g. a URL or timestamp scalar
        return bool(_PLAIN_KEY.match(head[0].strip()))

    def _split_key(self, line: _Line) -> Tuple[str, str]:
        text = line.text
        if text.startswith(("'", '"')):
            quote = text[0]
            end = text.find(quote, 1)
            while quote == "'" and 0 < end < len(text) - 1 and text[end + 1] == "'":
                end = text.find(quote, end + 2)
            if end < 0 or end + 1 >= len(text) or text[end + 1] != ":":
                raise SpecError(
                    "expected 'key: value'", line=line.number
                )
            key = _parse_quoted(text[: end + 1], line.number)
            rest = text[end + 2 :].strip()
            return str(key), rest
        head, sep, rest = text.partition(":")
        if not sep or (rest and not rest.startswith(" ")):
            raise SpecError(
                f"expected 'key: value', got {text[:40]!r}",
                line=line.number,
            )
        key = head.strip()
        if not _PLAIN_KEY.match(key):
            raise SpecError(
                f"invalid mapping key {key!r}", line=line.number
            )
        return key, rest.strip()


def load_yaml(text: str) -> Tuple[object, Dict[Tuple[object, ...], int]]:
    """Parse the YAML subset; returns ``(data, path -> line map)``.

    Raises:
        SpecError: any syntactic problem, with an exact line number.
    """
    if not isinstance(text, str):
        raise SpecError(
            f"spec text must be a string, got {type(text).__name__}"
        )
    lines = _logical_lines(text)
    if not lines:
        return None, {}
    parser = _BlockParser(lines)
    first = parser.peek()
    assert first is not None
    if first.indent != 0:
        raise SpecError(
            "top-level content must start at column 0", line=first.number
        )
    data = parser.parse_block(0, ())
    leftover = parser.peek()
    if leftover is not None:
        raise SpecError(
            f"unparsed trailing content {leftover.text[:40]!r}",
            line=leftover.number,
        )
    return data, parser.linemap


_PLAIN_STRING = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-]*$")
_PLAIN_UNSAFE = frozenset(
    ("true", "false", "null", "True", "False", "Null", "TRUE", "FALSE", "NULL", "~")
)


def _dump_scalar(value: object) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        text = repr(value)
        if "inf" in text or "nan" in text:
            raise SpecError("non-finite floats cannot be written to a spec")
        return text
    if isinstance(value, str):
        if _PLAIN_STRING.match(value) and value not in _PLAIN_UNSAFE:
            return value
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
        return f'"{escaped}"'
    raise SpecError(f"cannot serialize {type(value).__name__} into a spec")


def dump_yaml(data: object, indent: int = 0) -> str:
    """Emit the YAML subset deterministically (inverse of :func:`load_yaml`).

    Mapping key order is preserved (specs are emitted from canonical
    dicts, so the output is byte-stable), scalars use JSON-compatible
    forms, and the result always re-parses to an equal structure — the
    round-trip property the hypothesis suite asserts.
    """
    pad = " " * indent
    if isinstance(data, Mapping):
        if not data:
            return pad + "{}"
        chunks = []
        for key, value in data.items():
            key_text = _dump_scalar(str(key))
            if isinstance(value, Mapping) and value:
                chunks.append(f"{pad}{key_text}:")
                chunks.append(dump_yaml(value, indent + 2))
            elif isinstance(value, (list, tuple)) and len(value):
                chunks.append(f"{pad}{key_text}:")
                chunks.append(dump_yaml(list(value), indent + 2))
            elif isinstance(value, (Mapping, list, tuple)):
                chunks.append(f"{pad}{key_text}: " + ("{}" if isinstance(value, Mapping) else "[]"))
            else:
                chunks.append(f"{pad}{key_text}: {_dump_scalar(value)}")
        return "\n".join(chunks)
    if isinstance(data, (list, tuple)):
        if not data:
            return pad + "[]"
        chunks = []
        for item in data:
            if isinstance(item, Mapping) and item:
                # "- " replaces the first two indent spaces of the item
                # block, putting its first key on the dash line.
                body = dump_yaml(item, indent + 2)
                chunks.append(pad + "- " + body[indent + 2 :])
            elif isinstance(item, (list, tuple)) and len(item):
                inline = ", ".join(_dump_scalar(x) for x in item)
                chunks.append(f"{pad}- [{inline}]")
            elif isinstance(item, Mapping):
                chunks.append(pad + "- {}")
            elif isinstance(item, (list, tuple)):
                chunks.append(pad + "- []")
            else:
                chunks.append(f"{pad}- {_dump_scalar(item)}")
        return "\n".join(chunks)
    return pad + _dump_scalar(data)


# ======================================================================
# Typed AST
# ======================================================================


@dataclasses.dataclass(frozen=True)
class OverrideSpec:
    """One point on the config-override grid axis.

    ``configs`` maps backend keys (lowercase) to ``(field, value)``
    pairs applied on top of that backend's default config with
    :func:`dataclasses.replace`; both levels are stored as sorted
    tuples so specs hash and compare structurally.
    """

    name: str
    configs: Tuple[Tuple[str, Tuple[Tuple[str, object], ...]], ...] = ()

    def config_mapping(self) -> Dict[str, Dict[str, object]]:
        return {
            backend: dict(fields) for backend, fields in self.configs
        }


@dataclasses.dataclass(frozen=True)
class FilterSpec:
    """Keep/exclude clauses applied to the expanded grid.

    ``algorithms``/``graphs`` are keep-only lists (empty = keep all);
    ``exclude`` removes individual ``(algorithm, graph)`` cells.
    """

    algorithms: Tuple[str, ...] = ()
    graphs: Tuple[str, ...] = ()
    exclude: Tuple[Tuple[str, str], ...] = ()

    def keeps(self, algorithm: str, graph: str) -> bool:
        if self.algorithms and algorithm not in self.algorithms:
            return False
        if self.graphs and graph not in self.graphs:
            return False
        return (algorithm, graph) not in self.exclude


@dataclasses.dataclass(frozen=True)
class OutputSpec:
    """A named artifact: ``builder`` is a key of :data:`OUTPUT_BUILDERS`."""

    name: str
    builder: str


@dataclasses.dataclass(frozen=True)
class GridCell:
    """One expanded grid point, pre-planning."""

    override: str
    algorithm: str
    graph: str


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """The validated root of one experiment description."""

    name: str
    description: str = ""
    #: Participating backends (display-name keys, case-insensitive);
    #: empty = every registered backend, in registration order.
    backends: Tuple[str, ...] = ()
    #: Grid axes.  Empty algorithms/graphs fall back to the full
    #: algorithm set / the six real-world proxies at expansion time.
    algorithms: Tuple[str, ...] = ()
    graphs: Tuple[str, ...] = ()
    overrides: Tuple[OverrideSpec, ...] = ()
    filter: FilterSpec = FilterSpec()
    select: Tuple[str, ...] = ()
    outputs: Tuple[OutputSpec, ...] = ()
    source: int = 0
    storage: str = "memory"
    shards: int = 1
    kernel_tier: str = "auto"
    priority: int = 0

    # -- expansion -----------------------------------------------------
    def effective_algorithms(self) -> Tuple[str, ...]:
        return self.algorithms or tuple(algorithm_names())

    def effective_graphs(self) -> Tuple[str, ...]:
        from .service import REAL_WORLD_KEYS

        return self.graphs or REAL_WORLD_KEYS

    def effective_overrides(self) -> Tuple[OverrideSpec, ...]:
        return self.overrides or (OverrideSpec(name=BASE_OVERRIDE),)

    def grid(self) -> List[GridCell]:
        """The filtered grid in canonical order.

        Canonical order is override-major, then algorithm-major with
        graphs minor — exactly the cell order of
        :meth:`repro.harness.service.RunService.run_matrix`, which is
        what makes spec-driven reports byte-comparable to the hand-coded
        path.
        """
        cells: List[GridCell] = []
        for override in self.effective_overrides():
            for algorithm in self.effective_algorithms():
                for graph in self.effective_graphs():
                    if self.filter.keeps(algorithm, graph):
                        cells.append(
                            GridCell(
                                override=override.name,
                                algorithm=algorithm,
                                graph=graph,
                            )
                        )
        return cells


def spec_digest(spec: ExperimentSpec) -> str:
    """Stable short digest of a spec's canonical dict form."""
    text = json.dumps(spec_to_dict(spec), sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


# ======================================================================
# dict <-> AST with validation
# ======================================================================

_TOP_LEVEL_KEYS = (
    "name",
    "description",
    "include",
    "backends",
    "algorithms",
    "graphs",
    "overrides",
    "filter",
    "select",
    "outputs",
    "source",
    "storage",
    "shards",
    "kernel_tier",
    "priority",
)

_FILTER_KEYS = ("algorithms", "graphs", "exclude")


def _builders() -> Dict[str, object]:
    """The live output-builder registry (import deferred: figures pull in
    the whole harness, which specs parsing should not require)."""
    from . import figures, tables

    return {
        "table1": tables.table1,
        "table2": tables.table2,
        "table3": tables.table3,
        "table4": tables.table4,
        "fig2": figures.figure2,
        "fig6": figures.figure6,
        "fig7": figures.figure7,
        "fig8": figures.figure8,
        "fig9": figures.figure9,
        "fig10": figures.figure10,
        "fig11": figures.figure11,
        "fig12": figures.figure12,
        "fig13": figures.figure13,
        "fig14a": figures.figure14a,
        "fig14b": figures.figure14b,
        "fig14c": figures.figure14c,
        "fig14d": figures.figure14d,
        "fig14e": figures.figure14e,
        "fig14f": figures.figure14f,
    }


class _Builders(Mapping):
    """Lazy, read-only view over :func:`_builders` (the CLI's registry)."""

    def __getitem__(self, key):
        return _builders()[key]

    def __iter__(self):
        return iter(_builders())

    def __len__(self):
        return len(_builders())


#: Named table/figure builders a spec ``outputs`` clause may reference.
OUTPUT_BUILDERS: Mapping = _Builders()


class _Context:
    """Carries the line map + source path through validation."""

    def __init__(
        self,
        linemap: Optional[Dict[Tuple[object, ...], int]] = None,
        source: Optional[str] = None,
    ) -> None:
        self.linemap = linemap or {}
        self.source = source

    def fail(self, path: Tuple[object, ...], detail: str) -> "SpecError":
        field = ".".join(str(p) for p in path) if path else None
        # Inline-list items have no line of their own; fall back to the
        # nearest enclosing key that does.
        probe = path
        line = self.linemap.get(probe)
        while line is None and probe:
            probe = probe[:-1]
            line = self.linemap.get(probe)
        return SpecError(
            detail,
            field=field,
            line=line,
            source=self.source,
        )


def _expect(
    ctx: _Context,
    path: Tuple[object, ...],
    value: object,
    kinds: tuple,
    what: str,
) -> object:
    if isinstance(value, bool) and bool not in kinds:
        raise ctx.fail(
            path, f"expected {what}, got boolean {value!r}"
        )
    if not isinstance(value, kinds):
        raise ctx.fail(
            path,
            f"expected {what}, got {type(value).__name__} ({value!r})",
        )
    return value


def _string_tuple(
    ctx: _Context, path: Tuple[object, ...], value: object, what: str
) -> Tuple[str, ...]:
    if value is None:
        return ()
    if isinstance(value, str):
        value = [value]
    _expect(ctx, path, value, (list,), f"a list of {what}")
    out: List[str] = []
    for index, item in enumerate(value):
        _expect(ctx, path + (index,), item, (str,), what)
        out.append(item)
    return tuple(out)


def _check_unknown_keys(
    ctx: _Context,
    path: Tuple[object, ...],
    data: Mapping,
    allowed: Sequence[str],
    what: str,
) -> None:
    for key in data:
        if key not in allowed:
            raise ctx.fail(
                path + (key,),
                f"unknown {what} key {key!r} (allowed: "
                f"{', '.join(allowed)})",
            )


def _validate_algorithm(
    ctx: _Context, path: Tuple[object, ...], name: str
) -> str:
    try:
        return get_algorithm(name).name
    except KeyError as exc:
        raise ctx.fail(path, str(exc.args[0] if exc.args else exc)) from exc


def _validate_graph(ctx: _Context, path: Tuple[object, ...], key: str) -> str:
    try:
        datasets.resolve_key(key)
    except KeyError as exc:
        raise ctx.fail(path, str(exc.args[0] if exc.args else exc)) from exc
    return key


def _validate_backend(
    ctx: _Context, path: Tuple[object, ...], name: str
) -> str:
    if not backend_registry.is_registered(name):
        raise ctx.fail(
            path,
            f"unknown backend {name!r}; available: "
            f"{backend_registry.available()}",
        )
    return name.lower()


def _validate_override_fields(
    ctx: _Context,
    path: Tuple[object, ...],
    backend_key: str,
    fields: Mapping,
) -> Tuple[Tuple[str, object], ...]:
    config = backend_registry.create(backend_key).config
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        known = {f.name for f in dataclasses.fields(config)}
    else:  # pragma: no cover - all builtin configs are dataclasses
        known = set()
    pairs: List[Tuple[str, object]] = []
    for field_name in sorted(fields):
        field_path = path + (field_name,)
        if known and field_name not in known:
            raise ctx.fail(
                field_path,
                f"backend {backend_key!r} config has no field "
                f"{field_name!r} (fields: {', '.join(sorted(known))})",
            )
        value = fields[field_name]
        _expect(
            ctx,
            field_path,
            value,
            (int, float, bool, str),
            "a scalar config value",
        )
        pairs.append((field_name, value))
    return tuple(pairs)


def _parse_override(
    ctx: _Context, path: Tuple[object, ...], data: object, index: int
) -> OverrideSpec:
    _expect(ctx, path, data, (Mapping,), "an override mapping")
    assert isinstance(data, Mapping)
    name = data.get("name")
    if name is None:
        raise ctx.fail(
            path, f"override #{index} is missing the required 'name' key"
        )
    _expect(ctx, path + ("name",), name, (str,), "an override name")
    configs: List[Tuple[str, Tuple[Tuple[str, object], ...]]] = []
    for key in sorted(k for k in data if k != "name"):
        backend_path = path + (key,)
        backend_key = _validate_backend(ctx, backend_path, key)
        fields = data[key]
        if fields is None:
            fields = {}
        _expect(
            ctx,
            backend_path,
            fields,
            (Mapping,),
            "a mapping of config fields",
        )
        configs.append(
            (
                backend_key,
                _validate_override_fields(
                    ctx, backend_path, backend_key, fields
                ),
            )
        )
    return OverrideSpec(name=name, configs=tuple(configs))


def _parse_filter(
    ctx: _Context, path: Tuple[object, ...], data: object
) -> FilterSpec:
    if data is None:
        return FilterSpec()
    _expect(ctx, path, data, (Mapping,), "a filter mapping")
    assert isinstance(data, Mapping)
    _check_unknown_keys(ctx, path, data, _FILTER_KEYS, "filter")
    algorithms = tuple(
        _validate_algorithm(ctx, path + ("algorithms", i), a)
        for i, a in enumerate(
            _string_tuple(
                ctx, path + ("algorithms",), data.get("algorithms"),
                "an algorithm name",
            )
        )
    )
    graphs = tuple(
        _validate_graph(ctx, path + ("graphs", i), g)
        for i, g in enumerate(
            _string_tuple(
                ctx, path + ("graphs",), data.get("graphs"),
                "a dataset key",
            )
        )
    )
    exclude: List[Tuple[str, str]] = []
    raw_exclude = data.get("exclude")
    if raw_exclude is not None:
        _expect(
            ctx,
            path + ("exclude",),
            raw_exclude,
            (list,),
            "a list of {algorithm, graph} cells",
        )
        for index, item in enumerate(raw_exclude):
            cell_path = path + ("exclude", index)
            _expect(
                ctx, cell_path, item, (Mapping,),
                "an {algorithm, graph} mapping",
            )
            assert isinstance(item, Mapping)
            _check_unknown_keys(
                ctx, cell_path, item, ("algorithm", "graph"), "exclude cell"
            )
            if "algorithm" not in item or "graph" not in item:
                raise ctx.fail(
                    cell_path,
                    "exclude cells need both 'algorithm' and 'graph'",
                )
            algo = _expect(
                ctx, cell_path + ("algorithm",), item["algorithm"], (str,),
                "an algorithm name",
            )
            graph = _expect(
                ctx, cell_path + ("graph",), item["graph"], (str,),
                "a dataset key",
            )
            exclude.append(
                (
                    _validate_algorithm(
                        ctx, cell_path + ("algorithm",), str(algo)
                    ),
                    _validate_graph(ctx, cell_path + ("graph",), str(graph)),
                )
            )
    return FilterSpec(
        algorithms=algorithms, graphs=graphs, exclude=tuple(exclude)
    )


def _parse_outputs(
    ctx: _Context, path: Tuple[object, ...], data: object
) -> Tuple[OutputSpec, ...]:
    if data is None:
        return ()
    _expect(
        ctx, path, data, (Mapping,), "a mapping of output name -> builder"
    )
    assert isinstance(data, Mapping)
    builders = _builders()
    out: List[OutputSpec] = []
    for name in sorted(data):
        builder = data[name]
        _expect(
            ctx, path + (name,), builder, (str,), "a builder name"
        )
        if builder not in builders:
            raise ctx.fail(
                path + (name,),
                f"unknown output builder {builder!r} (available: "
                f"{', '.join(sorted(builders))})",
            )
        out.append(OutputSpec(name=str(name), builder=str(builder)))
    return tuple(out)


def spec_from_dict(
    data: object,
    linemap: Optional[Dict[Tuple[object, ...], int]] = None,
    source: Optional[str] = None,
) -> ExperimentSpec:
    """Validate a parsed mapping into an :class:`ExperimentSpec`.

    Raises:
        SpecError: naming the offending field (dotted path) and, when a
            line map is available, the source line.
    """
    ctx = _Context(linemap, source)
    _expect(ctx, (), data, (Mapping,), "a spec mapping")
    assert isinstance(data, Mapping)
    _check_unknown_keys(ctx, (), data, _TOP_LEVEL_KEYS, "spec")
    name = data.get("name")
    if name is None:
        raise ctx.fail((), "spec is missing the required 'name' key")
    _expect(ctx, ("name",), name, (str,), "a spec name")
    if not str(name).strip():
        raise ctx.fail(("name",), "spec name must be non-empty")
    description = data.get("description", "")
    _expect(ctx, ("description",), description, (str,), "a description")

    backends = tuple(
        _validate_backend(ctx, ("backends", i), b)
        for i, b in enumerate(
            _string_tuple(
                ctx, ("backends",), data.get("backends"), "a backend name"
            )
        )
    )
    algorithms = tuple(
        _validate_algorithm(ctx, ("algorithms", i), a)
        for i, a in enumerate(
            _string_tuple(
                ctx, ("algorithms",), data.get("algorithms"),
                "an algorithm name",
            )
        )
    )
    graphs = tuple(
        _validate_graph(ctx, ("graphs", i), g)
        for i, g in enumerate(
            _string_tuple(
                ctx, ("graphs",), data.get("graphs"), "a dataset key"
            )
        )
    )

    raw_overrides = data.get("overrides")
    overrides: Tuple[OverrideSpec, ...] = ()
    if raw_overrides is not None:
        _expect(
            ctx, ("overrides",), raw_overrides, (list,),
            "a list of override mappings",
        )
        parsed: List[OverrideSpec] = []
        seen: set = set()
        for index, item in enumerate(raw_overrides):
            override = _parse_override(
                ctx, ("overrides", index), item, index
            )
            if override.name in seen:
                raise ctx.fail(
                    ("overrides", index, "name"),
                    f"duplicate override name {override.name!r}",
                )
            seen.add(override.name)
            parsed.append(override)
        overrides = tuple(parsed)

    select = _string_tuple(
        ctx, ("select",), data.get("select"), "a report field"
    )
    for i, field in enumerate(select):
        if field not in SELECTABLE_FIELDS:
            raise ctx.fail(
                ("select", i),
                f"unknown report field {field!r} (selectable: "
                f"{', '.join(SELECTABLE_FIELDS)})",
            )

    outputs = _parse_outputs(ctx, ("outputs",), data.get("outputs"))
    filter_spec = _parse_filter(ctx, ("filter",), data.get("filter"))

    source_vertex = data.get("source", 0)
    _expect(ctx, ("source",), source_vertex, (int,), "a vertex id")
    if int(source_vertex) < 0:
        raise ctx.fail(("source",), "source vertex must be >= 0")
    storage = data.get("storage", "memory")
    _expect(ctx, ("storage",), storage, (str,), "a storage kind")
    if storage not in STORAGE_KINDS:
        raise ctx.fail(
            ("storage",),
            f"unknown storage kind {storage!r} (expected one of "
            f"{STORAGE_KINDS})",
        )
    shards = data.get("shards", 1)
    _expect(ctx, ("shards",), shards, (int,), "a shard count")
    if int(shards) < 1:
        raise ctx.fail(("shards",), "shards must be >= 1")
    kernel_tier = data.get("kernel_tier", "auto")
    _expect(ctx, ("kernel_tier",), kernel_tier, (str,), "a kernel tier")
    if kernel_tier not in _KERNEL_TIERS:
        raise ctx.fail(
            ("kernel_tier",),
            f"unknown kernel tier {kernel_tier!r} (expected one of "
            f"{_KERNEL_TIERS})",
        )
    priority = data.get("priority", 0)
    _expect(ctx, ("priority",), priority, (int,), "an integer priority")

    # Filter clauses must intersect the declared axes, otherwise the
    # grid silently collapses to nothing — make that loud.
    spec = ExperimentSpec(
        name=str(name),
        description=str(description),
        backends=backends,
        algorithms=algorithms,
        graphs=graphs,
        overrides=overrides,
        filter=filter_spec,
        select=select,
        outputs=outputs,
        source=int(source_vertex),
        storage=str(storage),
        shards=int(shards),
        kernel_tier=str(kernel_tier),
        priority=int(priority),
    )
    if not spec.grid():
        raise ctx.fail(
            ("filter",),
            "the filter removes every cell of the grid "
            "(nothing would run)",
        )
    return spec


def spec_to_dict(spec: ExperimentSpec) -> Dict[str, object]:
    """Canonical plain-dict form (inverse of :func:`spec_from_dict`).

    Only non-default fields are emitted, in a fixed key order, so the
    dict (and hence :func:`spec_to_yaml` / :func:`spec_digest`) is
    byte-deterministic for a given spec.
    """
    out: Dict[str, object] = {"name": spec.name}
    if spec.description:
        out["description"] = spec.description
    if spec.backends:
        out["backends"] = list(spec.backends)
    if spec.algorithms:
        out["algorithms"] = list(spec.algorithms)
    if spec.graphs:
        out["graphs"] = list(spec.graphs)
    if spec.overrides:
        overrides: List[Dict[str, object]] = []
        for override in spec.overrides:
            entry: Dict[str, object] = {"name": override.name}
            for backend, fields in override.configs:
                entry[backend] = dict(fields)
            overrides.append(entry)
        out["overrides"] = overrides
    filter_dict: Dict[str, object] = {}
    if spec.filter.algorithms:
        filter_dict["algorithms"] = list(spec.filter.algorithms)
    if spec.filter.graphs:
        filter_dict["graphs"] = list(spec.filter.graphs)
    if spec.filter.exclude:
        filter_dict["exclude"] = [
            {"algorithm": a, "graph": g} for a, g in spec.filter.exclude
        ]
    if filter_dict:
        out["filter"] = filter_dict
    if spec.select:
        out["select"] = list(spec.select)
    if spec.outputs:
        out["outputs"] = {o.name: o.builder for o in spec.outputs}
    if spec.source:
        out["source"] = spec.source
    if spec.storage != "memory":
        out["storage"] = spec.storage
    if spec.shards != 1:
        out["shards"] = spec.shards
    if spec.kernel_tier != "auto":
        out["kernel_tier"] = spec.kernel_tier
    if spec.priority:
        out["priority"] = spec.priority
    return out


def spec_to_yaml(spec: ExperimentSpec) -> str:
    """The spec as canonical YAML-subset text (ends with a newline)."""
    return dump_yaml(spec_to_dict(spec)) + "\n"


# ======================================================================
# Text / file entry points (with include resolution)
# ======================================================================


def parse_spec(
    text: str,
    source: Optional[str] = None,
    _include_stack: Tuple[str, ...] = (),
) -> ExperimentSpec:
    """Parse and validate one spec from YAML-subset text.

    Raises:
        SpecError: for *any* malformed input — syntax, structure, or
            semantics — never a raw traceback.
    """
    data, linemap = load_yaml(text)
    if data is None:
        raise SpecError("spec is empty", source=source)
    ctx = _Context(linemap, source)
    _expect(ctx, (), data, (Mapping,), "a spec mapping")
    assert isinstance(data, Mapping)
    include = data.get("include")
    if include is not None:
        data = _resolve_includes(ctx, data, include, source, _include_stack)
    return spec_from_dict(data, linemap, source)


def _resolve_includes(
    ctx: _Context,
    data: Mapping,
    include: object,
    source: Optional[str],
    stack: Tuple[str, ...],
) -> Dict[str, object]:
    paths = _string_tuple(ctx, ("include",), include, "an include path")
    base = os.path.dirname(os.path.abspath(source)) if source else os.getcwd()
    merged: Dict[str, object] = {}
    for index, rel in enumerate(paths):
        resolved = os.path.normpath(os.path.join(base, rel))
        if resolved in stack:
            chain = " -> ".join(list(stack) + [resolved])
            raise ctx.fail(
                ("include", index), f"cyclic include: {chain}"
            )
        try:
            with open(resolved) as handle:
                text = handle.read()
        except OSError as exc:
            raise ctx.fail(
                ("include", index),
                f"cannot read include {rel!r}: {exc}",
            ) from exc
        child_data, child_linemap = load_yaml(text)
        child_ctx = _Context(child_linemap, resolved)
        _expect(child_ctx, (), child_data, (Mapping,), "a spec mapping")
        assert isinstance(child_data, Mapping)
        child_include = child_data.get("include")
        if child_include is not None:
            child_data = _resolve_includes(
                child_ctx,
                child_data,
                child_include,
                resolved,
                stack + (resolved,),
            )
        for key, value in child_data.items():
            if key != "include":
                merged[key] = value
    for key, value in data.items():
        if key != "include":
            merged[key] = value  # the including file wins
    return merged


def load_spec(path: str) -> ExperimentSpec:
    """Read, parse and validate a spec file.

    Raises:
        SpecError: unreadable file or malformed/invalid content.
    """
    resolved = os.path.abspath(path)
    try:
        with open(resolved) as handle:
            text = handle.read()
    except OSError as exc:
        raise SpecError(
            f"cannot read spec file: {exc}", source=path
        ) from exc
    return parse_spec(text, source=resolved, _include_stack=(resolved,))
