"""Run service: cached, parallel evaluation of (algorithm x graph) cells.

This layer sits between the backend registry and every consumer of
evaluation results (figures, tables, sweeps, benchmarks, CLI):

``RunRequest``
    What to run: algorithm, dataset key, the participating backends with
    their config digests, and the source vertex.

``RunService``
    Executes requests with three reuse tiers:

    1. an identity-stable in-process memo (what ``ExperimentSuite``
       always had),
    2. a content-addressed persistent JSON cache — the key hashes the
       request, the dataset fingerprint, the serializer schema version
       and the package version, so any change to configs, datasets, or
       code conventions invalidates stale entries instead of misreading
       them,
    3. parallel fan-out of cache-miss cells across a
       :class:`concurrent.futures.ThreadPoolExecutor` (one functional
       ``run_vcpm`` per cell still drives all backends' observers
       simultaneously; independent cells fan out across workers) or,
       with ``executor="process"``, across a
       :class:`concurrent.futures.ProcessPoolExecutor` so the numpy-and-
       Python cell work scales across cores instead of serializing on
       the GIL (requests, backends, and :class:`CellResult` are all
       picklable by construction).

Cell execution is deterministic and cells are independent, so a
``jobs=4`` matrix -- thread or process -- produces bit-identical
``RunReport`` JSON to a serial run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import threading
import warnings
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from .. import backends as backend_registry
from ..backends.base import Backend
from ..energy.model import EnergyReport
from ..graph import datasets
from ..graph.csr import CSRGraph
from ..metrics.counters import CacheStats, RunReport
from ..metrics.serialize import (
    SCHEMA_VERSION,
    SchemaMismatchError,
    json_scalar_default,
    report_from_dict,
    report_to_dict,
)
from ..graph.storage import STORAGE_KINDS
from ..obs import get_recorder
from ..vcpm.algorithms import algorithm_names, get_algorithm
from ..vcpm.engine import IterationTrace, VCPMResult, run_vcpm
from ..vcpm.partitioned import (
    ShardRunner,
    ShardScatterTask,
    run_vcpm_partitioned,
    scatter_shard_task,
)

__all__ = [
    "REAL_WORLD_KEYS",
    "CacheStats",
    "CacheStoreWarning",
    "CellExecutionError",
    "CellResult",
    "RunRequest",
    "RunService",
    "canonical_reports_json",
    "default_backends",
    "execute_cell",
]

#: The six real-world columns of every evaluation figure.
REAL_WORLD_KEYS: Tuple[str, ...] = ("FR", "PK", "LJ", "HO", "IN", "OR")


@dataclasses.dataclass
class CellResult:
    """All participating systems' outcomes for one (algorithm, graph) cell."""

    algorithm: str
    graph_key: str
    functional: VCPMResult
    reports: Dict[str, RunReport]
    energy: Dict[str, EnergyReport]

    def speedup_over_gunrock(self, system: str) -> float:
        return self.reports[system].speedup_over(self.reports["Gunrock"])

    def energy_vs_gunrock(self, system: str) -> float:
        return self.energy[system].normalized_to(self.energy["Gunrock"])


def default_backends(
    configs: Optional[Mapping[str, object]] = None,
) -> List[Backend]:
    """One instance of every registered backend, in registration order.

    Args:
        configs: optional per-backend config overrides, keyed by backend
            name (case-insensitive); e.g. ``{"graphdyns": my_config}``.
    """
    overrides = {k.lower(): v for k, v in (configs or {}).items()}
    return [
        backend_registry.create(name, overrides.get(name.lower()))
        for name in backend_registry.available()
    ]


def _cell_in_subprocess(
    backends: Sequence[Backend],
    algorithm: str,
    graph_key: str,
    source: int,
    storage: str = "memory",
    shards: int = 1,
    kernel_tier: str = "auto",
) -> "CellResult":
    """Worker entry point for ``executor="process"`` matrix fan-out.

    Module-level so :mod:`concurrent.futures` can pickle it by
    reference; the graph is (re)built inside the worker from the dataset
    registry (honouring the storage backend), which is deterministic, so
    the returned :class:`CellResult` is identical to an in-process
    execution.  Shards execute in-process inside the worker — the matrix
    already owns the process pool, and nesting pools per cell would
    oversubscribe it; the sharded *reduction structure* (and hence the
    byte-identical result) is preserved either way.
    """
    graph = datasets.load(graph_key, storage=storage)
    return execute_cell(
        graph,
        algorithm,
        graph_key=graph_key,
        source=source,
        backends=backends,
        shards=shards,
        kernel_tier=kernel_tier,
    )


def _shard_scatter_in_subprocess(task: ShardScatterTask) -> np.ndarray:
    """Worker entry point for per-shard Scatter fan-out.

    Re-loads the (typically mmap-backed) graph from the task's
    ``graph_ref`` through the worker's process-wide dataset memo — only
    the active/property arrays and the shard's segment cross the process
    boundary, never the CSR arrays.
    """
    if task.graph_ref is None:
        raise ValueError("process shard fan-out requires a graph_ref")
    graph_key, storage = task.graph_ref
    graph = datasets.load(graph_key, storage=storage)
    return scatter_shard_task(task, graph)


class _ProcessShardRunner:
    """Maps :class:`ShardScatterTask` batches onto a process pool.

    One runner (and pool) lives for the duration of one cell execution,
    amortizing worker start-up across all iterations of that cell.
    """

    def __init__(self, workers: int) -> None:
        self._pool = ProcessPoolExecutor(max_workers=max(1, workers))

    def __call__(self, tasks: List[ShardScatterTask]) -> List[np.ndarray]:
        return list(self._pool.map(_shard_scatter_in_subprocess, tasks))

    def close(self) -> None:
        self._pool.shutdown()


def execute_cell(
    graph: CSRGraph,
    algorithm: str,
    graph_key: Optional[str] = None,
    source: int = 0,
    backends: Optional[Sequence[Backend]] = None,
    shards: int = 1,
    shard_runner: Optional[ShardRunner] = None,
    graph_ref: Optional[Tuple[str, str]] = None,
    kernel_tier: Optional[str] = None,
) -> CellResult:
    """Run all backends on one (graph, algorithm) pair.

    One functional run drives every backend's observer simultaneously
    (they are independent observers of the same data-dependent
    behaviour), which both guarantees a fair comparison and keeps the
    whole matrix fast.  With ``shards > 1`` (or an explicit
    ``shard_runner``) the functional run routes through the
    destination-sharded engine; observers still see the full merged
    iteration stream, so the resulting reports are byte-identical to the
    unsharded path.

    ``kernel_tier`` scopes the kernel tier registry around the whole
    cell (``None`` inherits the ambient/env selection): every tier-routed
    seam inside -- reduce pipelines, drain engines, Algorithm 2 kernels
    -- resolves against it, and the resolved tier is recorded on the
    ambient recorder for attribution.  The tier never changes results,
    only which bit-identical implementation computes them.
    """
    from ..kernels.tiers import use_tier

    backends = list(backends) if backends is not None else default_backends()
    spec = get_algorithm(algorithm)
    with use_tier(kernel_tier) as resolved_tier:
        rec = get_recorder()
        if rec.enabled:
            rec.counter(f"kernels.tier.{resolved_tier}").add()
            rec.event(
                "kernels.tier",
                track="service",
                tier=resolved_tier,
                algorithm=spec.name,
                graph=graph_key or graph.name,
            )
        observers = {b.name: b.make_observer(graph, spec) for b in backends}
        if shards > 1 or shard_runner is not None:
            functional = run_vcpm_partitioned(
                graph,
                spec,
                shards=shards,
                source=source,
                observers=list(observers.values()),
                shard_runner=shard_runner,
                graph_ref=graph_ref,
            )
        else:
            functional = run_vcpm(
                graph, spec, source=source, observers=list(observers.values())
            )
        reports = {b.name: b.report(observers[b.name]) for b in backends}
        energy = {b.name: b.energy(reports[b.name]) for b in backends}
    return CellResult(
        algorithm=spec.name,
        graph_key=graph_key or graph.name,
        functional=functional,
        reports=reports,
        energy=energy,
    )


@dataclasses.dataclass(frozen=True)
class RunRequest:
    """Everything that identifies one evaluation cell."""

    algorithm: str
    graph_key: str
    #: (backend display name, backend config digest) pairs.
    backends: Tuple[Tuple[str, str], ...]
    source: int = 0
    #: Execution strategy, not content: storage backend and shard count
    #: change *how* the cell is computed, never its result (the
    #: byte-identical invariant), so they are deliberately excluded from
    #: :meth:`cache_key` — an mmap 4-shard run hits the cache entry a
    #: memory unsharded run wrote, and vice versa.
    storage: str = "memory"
    shards: int = 1
    #: Kernel tier request (``auto``/``scalar``/``vectorized``/
    #: ``compiled``) — execution strategy like ``storage``/``shards``:
    #: every tier is bit-identical under the equivalence oracle, so the
    #: tier is excluded from :meth:`cache_key` and compiled/interpreted
    #: runs share cache entries.  The tier that actually executed is
    #: recorded in the cache envelope's ``meta.kernel_tier`` for
    #: attribution.
    kernel_tier: str = "auto"

    def cache_key(self, dataset_fingerprint: str, package_version: str) -> str:
        """Content address of this request's result.

        Excludes ``storage``/``shards`` (see the field comment): the key
        addresses the *result*, which execution strategy cannot change.
        """
        payload = {
            "schema": SCHEMA_VERSION,
            "package_version": package_version,
            "algorithm": self.algorithm,
            "graph_key": self.graph_key,
            "dataset": dataset_fingerprint,
            "source": self.source,
            "backends": [list(pair) for pair in self.backends],
        }
        text = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]


class CacheStoreWarning(RuntimeWarning):
    """A persistent-cache write failed; the run continues uncached."""


class CellExecutionError(RuntimeError):
    """One (algorithm, graph) cell failed for good.

    Raised by :meth:`RunService.matrix` (and the resilience layer once
    its retries are exhausted) so callers always learn *which* cell of
    the matrix died, not just the underlying exception.
    """

    def __init__(
        self,
        algorithm: str,
        graph_key: str,
        detail: str = "",
        attempts: int = 1,
    ) -> None:
        self.algorithm = algorithm
        self.graph_key = graph_key
        self.attempts = attempts
        message = f"matrix cell ({algorithm}, {graph_key}) failed"
        if attempts > 1:
            message += f" after {attempts} attempts"
        if detail:
            message += f": {detail}"
        super().__init__(message)


def canonical_reports_json(cells: Sequence["CellResult"]) -> str:
    """Canonical JSON of every cell's reports.

    Sorted keys and a stable cell order make this byte-comparable: two
    runs of the same matrix agree iff their canonical JSON is equal
    (this is the equality the failure-mode battery asserts).
    """
    return json.dumps(
        [
            {
                "algorithm": cell.algorithm,
                "graph_key": cell.graph_key,
                "reports": {
                    name: report_to_dict(report)
                    for name, report in cell.reports.items()
                },
            }
            for cell in cells
        ],
        sort_keys=True,
        default=json_scalar_default,
    )


def _await_cell_futures(
    futures: "Dict[Future, Tuple[str, str]]",
    on_done: Optional[Callable[[Tuple[str, str]], None]] = None,
) -> None:
    """Drain cell futures; on failure cancel the rest and name the cell.

    Without the cancellation, an early ``future.result()`` raising would
    leak every queued cell: the pool's ``__exit__`` waits for them all
    to run to completion before the exception propagates.
    """
    for future in list(futures):
        try:
            future.result()
        except BaseException as exc:
            for pending in futures:
                pending.cancel()
            if isinstance(exc, CellExecutionError):
                raise
            algorithm, graph_key = futures[future]
            raise CellExecutionError(
                algorithm, graph_key, detail=repr(exc)
            ) from exc
        if on_done is not None:
            on_done(futures[future])


def _functional_to_dict(result: VCPMResult) -> Dict[str, object]:
    return {
        "algorithm": result.algorithm,
        "graph_name": result.graph_name,
        "source": result.source,
        "converged": result.converged,
        "properties": result.properties.tolist(),
        "iterations": [dataclasses.asdict(t) for t in result.iterations],
    }


def _functional_from_dict(data: Dict[str, object]) -> VCPMResult:
    return VCPMResult(
        algorithm=data["algorithm"],
        graph_name=data["graph_name"],
        properties=np.asarray(data["properties"], dtype=np.float64),
        iterations=[IterationTrace(**t) for t in data["iterations"]],
        converged=data["converged"],
        source=data["source"],
    )


class RunService:
    """Cached, parallel executor of the evaluation matrix.

    Args:
        backends: explicit backend instances; defaults to one instance of
            every registered backend (with ``backend_configs`` overrides).
        backend_configs: per-backend config overrides by name, used only
            when ``backends`` is not given.
        default_source: source vertex for source-based algorithms.
        cache_dir: directory for the persistent JSON result cache; no
            persistence when ``None``.
        use_cache: master switch for the persistent cache.
        jobs: default worker count for :meth:`matrix`.
        executor: ``"thread"`` (default) or ``"process"``; how
            :meth:`matrix` fans out cache-miss cells when ``jobs > 1``.
            Processes sidestep the GIL, so CPU-bound matrices scale with
            cores; results are bit-identical either way.
        storage: graph storage backend for cell execution — ``"memory"``
            (default) or ``"mmap"`` (out-of-core spills, required for the
            paper-scale ``*-FULL`` datasets under a memory budget).
        shards: destination-shard count for the functional run; with
            ``executor="process"`` shards of a parent-side cell fan out
            across a process pool.  Results are byte-identical for every
            storage × shards combination.
        kernel_tier: kernel tier request for cell execution —
            ``"auto"`` (default; best available), ``"scalar"``,
            ``"vectorized"`` or ``"compiled"``.  Execution strategy like
            ``storage``/``shards``: bit-identical results, excluded from
            cache keys.  Resolved at execution time (so process workers
            resolve against their own environment), with warn-once
            fallback when ``compiled`` has no provider.
    """

    def __init__(
        self,
        backends: Optional[Sequence[Backend]] = None,
        *,
        backend_configs: Optional[Mapping[str, object]] = None,
        default_source: int = 0,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        jobs: int = 1,
        executor: str = "thread",
        storage: str = "memory",
        shards: int = 1,
        kernel_tier: str = "auto",
    ) -> None:
        if executor not in ("thread", "process"):
            raise ValueError(
                f"unknown executor {executor!r}; expected 'thread' or 'process'"
            )
        if storage not in STORAGE_KINDS:
            raise ValueError(
                f"unknown storage kind {storage!r}; expected one of "
                f"{STORAGE_KINDS}"
            )
        if shards < 1:
            raise ValueError("shards must be >= 1")
        from ..kernels.tiers import normalize_tier

        # Validates eagerly (raises on unknown names); stored unresolved
        # so "auto" re-resolves wherever the cell actually executes.
        normalize_tier(kernel_tier)
        if backends is not None:
            self.backends: List[Backend] = list(backends)
        else:
            self.backends = default_backends(backend_configs)
        self.executor = executor
        self.storage = storage
        self.shards = int(shards)
        self.kernel_tier = kernel_tier
        self.default_source = default_source
        self.cache_dir = (
            os.path.abspath(os.path.expanduser(cache_dir))
            if cache_dir
            else None
        )
        self.use_cache = use_cache
        self.jobs = max(int(jobs), 1)
        self.stats = CacheStats()
        self._cells: Dict[Tuple[str, str], CellResult] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Request / key plumbing
    # ------------------------------------------------------------------
    @property
    def backend_names(self) -> List[str]:
        return [b.name for b in self.backends]

    @property
    def persistent(self) -> bool:
        return self.use_cache and self.cache_dir is not None

    def request_for(self, algorithm: str, graph_key: str) -> RunRequest:
        spec = get_algorithm(algorithm)
        return RunRequest(
            algorithm=spec.name,
            graph_key=graph_key,
            backends=tuple(
                (b.name, b.config_digest()) for b in self.backends
            ),
            source=self.default_source,
            storage=self.storage,
            shards=self.shards,
            kernel_tier=self.kernel_tier,
        )

    def cache_key(self, request: RunRequest) -> str:
        from .. import __version__

        return request.cache_key(
            datasets.fingerprint(request.graph_key), __version__
        )

    def _memo_key(self, algorithm: str, graph_key: str) -> Tuple[str, str]:
        """In-process memo key for one cell.

        Static datasets are immutable, so ``(algorithm, graph_key)``
        suffices.  Dynamic graphs mutate under a generation counter, so
        their memo key carries the content fingerprint: a post-mutation
        lookup misses (no stale-generation hit), while an apply+inverse
        round trip restores the fingerprint and legitimately re-hits.
        """
        if datasets.is_dynamic(graph_key):
            return (
                algorithm.upper(),
                f"{graph_key}@{datasets.fingerprint(graph_key)}",
            )
        return (algorithm.upper(), graph_key)

    def _cache_path(self, request: RunRequest) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, f"{self.cache_key(request)}.json")

    def probe(
        self, algorithm: str, graph_key: str
    ) -> Tuple[RunRequest, str, str]:
        """Classify one cell without executing it.

        Returns ``(request, cache_key, status)`` where ``status`` is
        ``"memo"`` (resolved in this process), ``"persistent"`` (a valid
        envelope is on disk — validated with the same ``_load_cached``
        checks ``cell()`` applies, so a stale or corrupt entry reads as
        a miss here exactly as it would there), or ``"miss"``.  This is
        the planner's read-only window into the cache: probing never
        loads datasets, never executes, and never mutates the memo.
        """
        request = self.request_for(algorithm, graph_key)
        key = self.cache_key(request)
        memo_key = self._memo_key(request.algorithm, graph_key)
        with self._lock:
            in_memo = memo_key in self._cells
        if in_memo:
            return request, key, "memo"
        if self.persistent:
            path = self._cache_path(request)
            if self._load_cached(path, request) is not None:
                return request, key, "persistent"
        return request, key, "miss"

    # ------------------------------------------------------------------
    # Persistent cache I/O
    # ------------------------------------------------------------------
    def _load_cached(
        self, path: str, request: RunRequest
    ) -> Optional[CellResult]:
        """A CellResult from disk, or None when absent/stale/corrupt."""
        try:
            with open(path) as handle:
                envelope = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        try:
            if envelope["schema"] != SCHEMA_VERSION:
                return None
            if envelope["key"] != self.cache_key(request):
                return None
            stored = envelope["reports"]
            if set(stored) != {name for name, _ in request.backends}:
                return None
            reports = {
                name: report_from_dict(data) for name, data in stored.items()
            }
            functional = _functional_from_dict(envelope["functional"])
        except (KeyError, TypeError, ValueError, SchemaMismatchError):
            return None
        by_name = {b.name: b for b in self.backends}
        energy = {
            name: by_name[name].energy(report)
            for name, report in reports.items()
        }
        return CellResult(
            algorithm=request.algorithm,
            graph_key=request.graph_key,
            functional=functional,
            reports=reports,
            energy=energy,
        )

    def _store_cached(
        self, path: str, request: RunRequest, cell: CellResult
    ) -> None:
        from ..kernels.tiers import resolve_tier

        envelope = {
            "schema": SCHEMA_VERSION,
            "key": self.cache_key(request),
            "request": dataclasses.asdict(request),
            # Attribution, not identity: which bit-identical execution
            # strategy produced this entry.  _load_cached ignores it.
            "meta": {"kernel_tier": resolve_tier(request.kernel_tier)},
            "functional": _functional_to_dict(cell.functional),
            "reports": {
                name: report_to_dict(report)
                for name, report in cell.reports.items()
            },
        }
        try:
            self._write_envelope(path, envelope)
        except OSError as exc:
            with self._lock:
                self.stats.store_failures += 1
            rec = get_recorder()
            if rec.enabled:
                rec.counter("service.store_failures").add()
                rec.event(
                    "service.store_failure",
                    track="service",
                    algorithm=request.algorithm,
                    graph=request.graph_key,
                )
            warnings.warn(
                f"failed to persist cache entry {path}: {exc!r}; "
                "the result is kept in memory but will be recomputed "
                "by future processes",
                CacheStoreWarning,
                stacklevel=2,
            )
        else:
            with self._lock:
                self.stats.stores += 1
            get_recorder().counter("service.stores").add()

    def _write_envelope(self, path: str, envelope: Dict[str, object]) -> None:
        """Atomically write one cache envelope; raises ``OSError``.

        Overridden by the resilience layer to add fault-injection hooks
        and bounded store retries.
        """
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(envelope, handle)
            os.replace(tmp_path, path)  # atomic under concurrent writers
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def cell(self, algorithm: str, graph_key: str) -> CellResult:
        """Run (or recall) one cell of the evaluation matrix."""
        rec = get_recorder()
        key = self._memo_key(algorithm, graph_key)
        with self._lock:
            cached = self._cells.get(key)
            if cached is not None:
                self.stats.memory_hits += 1
        if cached is not None:
            rec.counter("service.memory_hits").add()
            return cached

        request = self.request_for(algorithm, graph_key)
        path = self._cache_path(request) if self.persistent else None
        if path is not None:
            cell = self._load_cached(path, request)
            if cell is not None:
                if rec.enabled:
                    rec.counter("service.cache_hits").add()
                    rec.event(
                        "service.cache_hit",
                        track="service",
                        algorithm=request.algorithm,
                        graph=graph_key,
                    )
                with self._lock:
                    self.stats.hits += 1
                    return self._cells.setdefault(key, cell)

        with rec.span(
            "service.cell",
            track="service",
            algorithm=request.algorithm,
            graph=graph_key,
        ):
            cell = self._run_cell(request)
        rec.counter("service.misses").add()
        if path is not None:
            self._store_cached(path, request, cell)
        with self._lock:
            self.stats.misses += 1
            return self._cells.setdefault(key, cell)

    def _shard_runner_for(
        self, request: RunRequest, graph: CSRGraph
    ) -> Tuple[Optional[ShardRunner], Optional[Tuple[str, str]], Optional[
        Callable[[], None]
    ]]:
        """(runner, graph_ref, cleanup) for one cell's shard fan-out.

        Process fan-out only engages for parent-side cells under
        ``executor="process"``; otherwise shards run in-process (same
        reduction structure, same bytes).  The resilience layer wraps the
        returned runner to drop per-shard checkpoint breadcrumbs.
        """
        if (
            request.shards > 1
            and self.executor == "process"
            and not datasets.is_dynamic(request.graph_key)
        ):
            # Dynamic graphs live only in this process's registry, so
            # their shards stay in-process (same bytes either way).
            runner = _ProcessShardRunner(min(self.jobs, request.shards))
            return runner, (request.graph_key, request.storage), runner.close
        return None, None, None

    def _run_cell(self, request: RunRequest) -> CellResult:
        """Execute one genuine cache miss.

        The single seam every cell execution funnels through: the
        resilience layer overrides this to add fault hooks, per-attempt
        timeouts, and bounded retries around the same computation.
        """
        graph = datasets.load(request.graph_key, storage=request.storage)
        runner, graph_ref, cleanup = self._shard_runner_for(request, graph)
        try:
            return execute_cell(
                graph,
                request.algorithm,
                graph_key=request.graph_key,
                source=request.source,
                backends=self.backends,
                shards=request.shards,
                shard_runner=runner,
                graph_ref=graph_ref,
                kernel_tier=request.kernel_tier,
            )
        finally:
            if cleanup is not None:
                cleanup()

    def matrix(
        self,
        algorithms: Optional[Sequence[str]] = None,
        graph_keys: Optional[Sequence[str]] = None,
        jobs: Optional[int] = None,
        executor: Optional[str] = None,
    ) -> List[CellResult]:
        """All cells of the chosen sub-matrix, algorithm-major order.

        With ``jobs > 1``, unresolved cells fan out across a thread pool
        (or, with ``executor="process"``, a process pool that bypasses
        the GIL); results are identical to a serial run (cells are
        independent and deterministic), only wall-clock changes.
        """
        algorithms = list(algorithms or algorithm_names())
        graph_keys = list(graph_keys or REAL_WORLD_KEYS)
        pairs = [(a, g) for a in algorithms for g in graph_keys]
        workers = self.jobs if jobs is None else max(int(jobs), 1)
        executor = self.executor if executor is None else executor
        if workers > 1 and len(pairs) > 1:
            unique = list(dict.fromkeys(pairs))
            if executor == "process":
                self._resolve_in_processes(unique, workers)
            else:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        pool.submit(self.cell, algorithm, graph_key): (
                            algorithm,
                            graph_key,
                        )
                        for algorithm, graph_key in unique
                    }
                    _await_cell_futures(futures)
        return [self.cell(a, g) for a, g in pairs]

    #: The hand-coded matrix path under the name the planner-equivalence
    #: battery compares against (``spec path == run_matrix path``).
    run_matrix = matrix

    def _resolve_in_processes(
        self, pairs: Sequence[Tuple[str, str]], workers: int
    ) -> None:
        """Execute unresolved cells in a process pool, then memoize.

        The memo and persistent-cache tiers are consulted in the parent
        first, so worker processes only ever run genuine cache misses;
        finished cells are stored exactly as the serial path stores them.
        """
        pending: List[Tuple[Tuple[str, str], RunRequest, Optional[str]]] = []
        for algorithm, graph_key in pairs:
            if datasets.is_dynamic(graph_key):
                # A worker process cannot see this process's dynamic
                # registrations; the cell runs in-parent on the serial
                # pass that follows the fan-out.
                continue
            key = self._memo_key(algorithm, graph_key)
            with self._lock:
                if key in self._cells:
                    continue
            request = self.request_for(algorithm, graph_key)
            path = self._cache_path(request) if self.persistent else None
            if path is not None:
                cached = self._load_cached(path, request)
                if cached is not None:
                    with self._lock:
                        self.stats.hits += 1
                        self._cells.setdefault(key, cached)
                    continue
            pending.append((key, request, path))
        if not pending:
            return
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                (
                    pool.submit(
                        _cell_in_subprocess,
                        self.backends,
                        request.algorithm,
                        request.graph_key,
                        request.source,
                        request.storage,
                        request.shards,
                        request.kernel_tier,
                    ),
                    key,
                    request,
                    path,
                )
                for key, request, path in pending
            ]
            for future, key, request, path in futures:
                cell = future.result()
                if path is not None:
                    self._store_cached(path, request, cell)
                with self._lock:
                    self.stats.misses += 1
                    self._cells.setdefault(key, cell)
