"""Admission control for the simulation daemon: bound every resource.

The paper's premise — irregular workloads need explicit load management,
not best-effort execution — has a software twin in the serving layer: a
burst of thousands of concurrent matrix submissions must degrade
*gracefully* (bounded queue, explicit rejections with ``Retry-After``,
cheaper executors) instead of forking unbounded pools.  Three pieces:

``TokenBucket``
    Per-client rate limiter with an injectable monotonic clock, so tests
    drive it deterministically.  ``retry_after`` is the exact time until
    the next token, which becomes the HTTP ``Retry-After`` header.

``AdmissionController``
    A bounded priority queue with a deterministic shed policy: when the
    queue is full, a higher-priority submission evicts the *youngest of
    the lowest-priority* queued jobs (ties broken by submission order,
    so a given burst always sheds the same jobs in the same order);
    an equal-or-lower-priority submission is rejected outright.

``executor_for_load``
    The load-shedding half of graceful degradation: as queue depth
    climbs, new jobs run on progressively cheaper executor tiers
    (process → thread → serial), reusing the same tier ordering the
    resilience layer degrades through on failure.  Under overload the
    daemon stops forking process pools entirely.
"""

from __future__ import annotations

import dataclasses
import heapq
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "TokenBucket",
    "executor_for_load",
]

#: Cheapness ordering shared with the resilience layer's degradation.
_EXECUTOR_TIERS: Tuple[str, ...] = ("process", "thread", "serial")


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``rate=None`` disables limiting (every acquire succeeds), which is
    how the daemon spells "no per-client rate limit".
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive or None")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate = rate
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self, now: float) -> None:
        if self.rate is None:
            return
        elapsed = max(0.0, now - self._stamp)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    def try_acquire(self, amount: float = 1.0) -> bool:
        if self.rate is None:
            return True
        now = self._clock()
        self._refill(now)
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False

    def retry_after(self, amount: float = 1.0) -> float:
        """Seconds until ``amount`` tokens will be available (>= 0)."""
        if self.rate is None:
            return 0.0
        self._refill(self._clock())
        deficit = amount - self._tokens
        return max(0.0, deficit / self.rate)


@dataclasses.dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission attempt, ready to render as HTTP."""

    accepted: bool
    status: int  # 202 accepted / 400 invalid / 429 rate / 503 full|draining
    reason: str = ""
    retry_after: Optional[float] = None
    #: Job ids evicted (shed) to make room, in eviction order.
    shed: Tuple[str, ...] = ()


def executor_for_load(
    base: str, depth: int, capacity: int, running: int = 0
) -> str:
    """The executor tier a newly started job should run on.

    Below 50% queue occupancy jobs run on the configured ``base`` tier;
    from 50% they degrade to ``thread`` (no new process pools); from 85%
    they degrade to ``serial``.  A job never runs on a tier *more*
    expensive than ``base``, and the thresholds are computed over queued
    + running work so a single long job with a deep queue still sheds.
    """
    if base not in _EXECUTOR_TIERS:
        raise ValueError(
            f"unknown executor {base!r}; expected one of {_EXECUTOR_TIERS}"
        )
    if capacity <= 0:
        return base
    occupancy = (depth + running) / float(capacity)
    if occupancy >= 0.85:
        level = "serial"
    elif occupancy >= 0.50:
        level = "thread"
    else:
        level = base
    # Never upgrade past the configured base tier.
    base_rank = _EXECUTOR_TIERS.index(base)
    level_rank = _EXECUTOR_TIERS.index(level)
    return _EXECUTOR_TIERS[max(base_rank, level_rank)]


class AdmissionController:
    """Bounded priority queue + per-client token buckets.

    Thread-safe.  Queue entries are ``(-priority, seq, job)`` so higher
    priority pops first and FIFO order breaks ties; ``seq`` is assigned
    by the daemon and is strictly increasing, which is what makes the
    shed order deterministic.

    Args:
        capacity: maximum queued (not running) jobs.
        rate: per-client token-bucket rate (tokens/second); ``None``
            disables rate limiting.
        burst: per-client bucket capacity.
        retry_after_full: ``Retry-After`` hint for queue-full rejections.
        clock: injectable monotonic clock shared by all buckets.
    """

    def __init__(
        self,
        capacity: int = 64,
        rate: Optional[float] = None,
        burst: float = 10.0,
        retry_after_full: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.rate = rate
        self.burst = burst
        self.retry_after_full = retry_after_full
        self._clock = clock
        self._heap: List[Tuple[int, int, object]] = []
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    # ------------------------------------------------------------------
    # Rate limiting
    # ------------------------------------------------------------------
    def _bucket(self, client: str) -> TokenBucket:
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[client] = bucket
        return bucket

    def check_rate(self, client: str) -> Optional[AdmissionDecision]:
        """None when within budget, else a 429 decision with Retry-After."""
        with self._lock:
            bucket = self._bucket(client)
            if bucket.try_acquire():
                return None
            return AdmissionDecision(
                accepted=False,
                status=429,
                reason=f"client {client!r} over rate limit",
                retry_after=bucket.retry_after(),
            )

    # ------------------------------------------------------------------
    # Queue
    # ------------------------------------------------------------------
    def offer(self, job, priority: int, seq: int) -> AdmissionDecision:
        """Enqueue ``job``, shedding a cheaper one if full.

        The shed victim is the *youngest of the lowest-priority* queued
        jobs, and only when the newcomer's priority is strictly higher;
        otherwise the newcomer itself is rejected (503).  Either way the
        outcome for a given submission sequence is deterministic.
        """
        with self._not_empty:
            shed: Tuple[str, ...] = ()
            if len(self._heap) >= self.capacity:
                victim = self._shed_candidate(priority)
                if victim is None:
                    return AdmissionDecision(
                        accepted=False,
                        status=503,
                        reason=(
                            f"queue full ({self.capacity} jobs) and "
                            "priority does not preempt any queued job"
                        ),
                        retry_after=self.retry_after_full,
                    )
                self._heap.remove(victim)
                heapq.heapify(self._heap)
                shed = (victim[2].id,)  # type: ignore[attr-defined]
            heapq.heappush(self._heap, (-priority, seq, job))
            self._not_empty.notify()
            return AdmissionDecision(accepted=True, status=202, shed=shed)

    def _shed_candidate(self, priority: int):
        """Youngest entry of the lowest queued priority, if preemptable."""
        if not self._heap:
            return None
        lowest = max(entry[0] for entry in self._heap)  # -priority: max=lowest
        if -lowest >= priority:
            return None  # newcomer does not strictly outrank anyone
        return max(
            (entry for entry in self._heap if entry[0] == lowest),
            key=lambda entry: entry[1],
        )

    def pop(self, timeout: Optional[float] = None):
        """Next job by (priority desc, seq asc), or None on timeout."""
        with self._not_empty:
            if not self._heap and timeout:
                self._not_empty.wait(timeout)
            if not self._heap:
                return None
            return heapq.heappop(self._heap)[2]

    def remove(self, job_id: str) -> bool:
        """Drop one queued job by id (used by DELETE /v1/jobs/<id>)."""
        with self._lock:
            for entry in self._heap:
                if entry[2].id == job_id:  # type: ignore[attr-defined]
                    self._heap.remove(entry)
                    heapq.heapify(self._heap)
                    return True
            return False

    def depth(self) -> int:
        with self._lock:
            return len(self._heap)

    def queued_ids(self) -> List[str]:
        """Queued job ids in pop order (for introspection endpoints)."""
        with self._lock:
            return [
                entry[2].id  # type: ignore[attr-defined]
                for entry in sorted(self._heap)
            ]
