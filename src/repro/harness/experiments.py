"""Experiment suite: run the evaluation matrix once, reuse everywhere.

One functional run per (algorithm, graph) drives the three timing models
simultaneously (they are independent observers of the same data-dependent
behaviour), which both guarantees a fair comparison and keeps the whole
5 x 6 matrix fast enough for the benchmark harness.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..energy.model import (
    EnergyReport,
    graphdyns_energy,
    graphicionado_energy,
    gpu_energy_report,
)
from ..gpu.config import V100_GUNROCK
from ..gpu.gunrock import GunrockTimingModel
from ..graph import datasets
from ..graph.csr import CSRGraph
from ..graphdyns.config import DEFAULT_CONFIG, GraphDynSConfig
from ..graphdyns.timing import GraphDynSTimingModel
from ..graphicionado.timing import GraphicionadoTimingModel
from ..metrics.counters import RunReport
from ..vcpm.algorithms import algorithm_names, get_algorithm
from ..vcpm.engine import VCPMResult, run_vcpm

__all__ = ["CellResult", "ExperimentSuite", "REAL_WORLD_KEYS", "SYSTEMS"]

#: The six real-world columns of every evaluation figure.
REAL_WORLD_KEYS: Tuple[str, ...] = ("FR", "PK", "LJ", "HO", "IN", "OR")

#: System presentation order of the figures.
SYSTEMS: Tuple[str, ...] = ("Gunrock", "Graphicionado", "GraphDynS")


@dataclasses.dataclass
class CellResult:
    """All three systems' outcomes for one (algorithm, graph) cell."""

    algorithm: str
    graph_key: str
    functional: VCPMResult
    reports: Dict[str, RunReport]
    energy: Dict[str, EnergyReport]

    def speedup_over_gunrock(self, system: str) -> float:
        return self.reports[system].speedup_over(self.reports["Gunrock"])

    def energy_vs_gunrock(self, system: str) -> float:
        return self.energy[system].normalized_to(self.energy["Gunrock"])


class ExperimentSuite:
    """Lazily-evaluated, memoized (algorithm x graph) result matrix."""

    def __init__(
        self,
        graphdyns_config: GraphDynSConfig = DEFAULT_CONFIG,
        default_source: int = 0,
    ) -> None:
        self.graphdyns_config = graphdyns_config
        self.default_source = default_source
        self._cells: Dict[Tuple[str, str], CellResult] = {}

    def cell(self, algorithm: str, graph_key: str) -> CellResult:
        """Run (or recall) one cell of the evaluation matrix."""
        key = (algorithm.upper(), graph_key)
        if key in self._cells:
            return self._cells[key]
        spec = get_algorithm(algorithm)
        graph = datasets.load(graph_key)
        cell = run_cell(
            graph,
            algorithm,
            graph_key,
            source=self.default_source,
            graphdyns_config=self.graphdyns_config,
        )
        self._cells[key] = cell
        return cell

    def matrix(
        self,
        algorithms: Optional[Sequence[str]] = None,
        graph_keys: Optional[Sequence[str]] = None,
    ) -> List[CellResult]:
        """All cells of the chosen sub-matrix, algorithm-major order."""
        algorithms = list(algorithms or algorithm_names())
        graph_keys = list(graph_keys or REAL_WORLD_KEYS)
        return [
            self.cell(algorithm, graph_key)
            for algorithm in algorithms
            for graph_key in graph_keys
        ]


def run_cell(
    graph: CSRGraph,
    algorithm: str,
    graph_key: Optional[str] = None,
    source: int = 0,
    graphdyns_config: GraphDynSConfig = DEFAULT_CONFIG,
) -> CellResult:
    """Run all three systems on one (graph, algorithm) pair."""
    spec = get_algorithm(algorithm)
    models = {
        "GraphDynS": GraphDynSTimingModel(graph, spec, graphdyns_config),
        "Graphicionado": GraphicionadoTimingModel(graph, spec),
        "Gunrock": GunrockTimingModel(graph, spec),
    }
    functional = run_vcpm(
        graph, spec, source=source, observers=list(models.values())
    )
    reports = {name: model.report() for name, model in models.items()}
    energy = {
        "GraphDynS": graphdyns_energy(reports["GraphDynS"]),
        "Graphicionado": graphicionado_energy(reports["Graphicionado"]),
        "Gunrock": gpu_energy_report(
            reports["Gunrock"], V100_GUNROCK.average_power_w
        ),
    }
    return CellResult(
        algorithm=spec.name,
        graph_key=graph_key or graph.name,
        functional=functional,
        reports=reports,
        energy=energy,
    )
