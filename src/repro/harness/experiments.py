"""Experiment suite: run the evaluation matrix once, reuse everywhere.

Since the backend-registry refactor this module is a thin compatibility
layer over :mod:`repro.harness.service`: systems are resolved through
:mod:`repro.backends` instead of being hard-coded, and the heavy lifting
(memoization, persistent caching, parallel fan-out) lives in
:class:`~repro.harness.service.RunService`.  One functional run per
(algorithm, graph) still drives every backend's timing model
simultaneously, which both guarantees a fair comparison and keeps the
whole 5 x 6 matrix fast enough for the benchmark harness.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..backends.base import Backend
from ..graph.csr import CSRGraph
from ..graphdyns.config import DEFAULT_CONFIG, GraphDynSConfig
from .faults import FaultInjector
from .resilience import ResilientRunService, RetryPolicy
from .service import (
    REAL_WORLD_KEYS,
    CellResult,
    RunService,
    default_backends,
    execute_cell,
)

__all__ = [
    "CellResult",
    "ExperimentSuite",
    "REAL_WORLD_KEYS",
    "SYSTEMS",
    "run_cell",
]

#: System presentation order of the figures.
SYSTEMS: Tuple[str, ...] = ("Gunrock", "Graphicionado", "GraphDynS")


class ExperimentSuite:
    """Lazily-evaluated, memoized (algorithm x graph) result matrix.

    A facade over :class:`RunService` keeping the historical constructor
    while exposing the new caching/parallelism knobs.  Passing any of
    ``resilience`` / ``faults`` / ``manifest_path`` upgrades the backing
    service to a :class:`ResilientRunService` (retries, timeouts,
    executor degradation, checkpoint/resume).
    """

    def __init__(
        self,
        graphdyns_config: GraphDynSConfig = DEFAULT_CONFIG,
        default_source: int = 0,
        *,
        backends: Optional[Sequence[Backend]] = None,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        jobs: int = 1,
        executor: str = "thread",
        storage: str = "memory",
        shards: int = 1,
        kernel_tier: str = "auto",
        resilience: Optional[RetryPolicy] = None,
        faults: Optional[FaultInjector] = None,
        manifest_path: Optional[str] = None,
        resume: bool = False,
    ) -> None:
        self.graphdyns_config = graphdyns_config
        self.default_source = default_source
        common = dict(
            backends=backends,
            backend_configs={"graphdyns": graphdyns_config},
            default_source=default_source,
            cache_dir=cache_dir,
            use_cache=use_cache,
            jobs=jobs,
            executor=executor,
            storage=storage,
            shards=shards,
            kernel_tier=kernel_tier,
        )
        if (
            resilience is not None
            or faults is not None
            or manifest_path is not None
        ):
            self.service: RunService = ResilientRunService(
                policy=resilience,
                faults=faults,
                manifest_path=manifest_path,
                resume=resume,
                **common,
            )
        else:
            self.service = RunService(**common)

    def cell(self, algorithm: str, graph_key: str) -> CellResult:
        """Run (or recall) one cell of the evaluation matrix."""
        return self.service.cell(algorithm, graph_key)

    def matrix(
        self,
        algorithms: Optional[Sequence[str]] = None,
        graph_keys: Optional[Sequence[str]] = None,
        jobs: Optional[int] = None,
    ) -> List[CellResult]:
        """All cells of the chosen sub-matrix, algorithm-major order."""
        return self.service.matrix(algorithms, graph_keys, jobs=jobs)


def run_cell(
    graph: CSRGraph,
    algorithm: str,
    graph_key: Optional[str] = None,
    source: int = 0,
    graphdyns_config: GraphDynSConfig = DEFAULT_CONFIG,
    backends: Optional[Sequence[Backend]] = None,
) -> CellResult:
    """Run every registered backend on one (graph, algorithm) pair."""
    if backends is None:
        backends = default_backends({"graphdyns": graphdyns_config})
    return execute_cell(
        graph, algorithm, graph_key=graph_key, source=source, backends=backends
    )
