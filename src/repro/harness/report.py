"""EXPERIMENTS.md generator: paper-reported vs measured, per table/figure.

Runs the complete evaluation (the 5x6 matrix, the ablations, the scaling
studies) and emits a markdown report with one section per paper artifact.
Regenerate with::

    python -m repro report -o EXPERIMENTS.md
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from .experiments import ExperimentSuite
from .figures import (
    FigureResult,
    figure2,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14a,
    figure14b,
    figure14c,
    figure14d,
    figure14e,
    figure14f,
)
from .tables import table1, table2, table3, table4

__all__ = ["ExperimentRecord", "build_report", "generate_experiments_md"]


@dataclasses.dataclass
class ExperimentRecord:
    """One paper artifact: what the paper reports vs what this repo measures."""

    artifact: str
    paper_claim: str
    measured: str
    verdict: str
    figure: Optional[FigureResult] = None

    def to_markdown(self) -> str:
        lines = [
            f"### {self.artifact}",
            "",
            f"* **Paper:** {self.paper_claim}",
            f"* **Measured (proxy scale):** {self.measured}",
            f"* **Shape verdict:** {self.verdict}",
        ]
        if self.figure is not None:
            lines += ["", "```", self.figure.render(), "```"]
        return "\n".join(lines)


def _gm_row(result: FigureResult) -> List[object]:
    return result.rows[-1]


def build_report(suite: Optional[ExperimentSuite] = None) -> List[ExperimentRecord]:
    """Run everything and produce the record list (slow: several minutes)."""
    suite = suite or ExperimentSuite()
    records: List[ExperimentRecord] = []

    records.append(
        ExperimentRecord(
            artifact="Table 1 — irregularity coverage",
            paper_claim="GraphDynS alleviates all three irregularities; "
            "Graphicionado only traversal; GPUs need preprocessing.",
            measured="Reproduced structurally: WB/EP+AO/US switches in the "
            "model map one-to-one onto the three irregularities "
            "(see Fig. 14 records below for their measured effects).",
            verdict="HOLDS",
            figure=table1(),
        )
    )
    records.append(
        ExperimentRecord(
            artifact="Table 2 — algorithm functions",
            paper_claim="Five algorithms expressible as "
            "Process_Edge/Reduce/Apply.",
            measured="All five implemented and bit-exact against textbook "
            "references (deque BFS, Dijkstra, label propagation, widest "
            "path, power iteration).",
            verdict="HOLDS",
            figure=table2(),
        )
    )
    records.append(
        ExperimentRecord(
            artifact="Table 3 — system configurations",
            paper_claim="GraphDynS 1GHz/16xSIMT8/32MB; Graphicionado "
            "1GHz/128 streams/64MB; Gunrock V100 1.25GHz/5120 cores; "
            "512 vs 900 GB/s HBM.",
            measured="Encoded verbatim in the three config modules.",
            verdict="HOLDS",
            figure=table3(),
        )
    )
    records.append(
        ExperimentRecord(
            artifact="Table 4 — datasets",
            paper_claim="Six real-world graphs (0.8-7.4M vertices) and RMAT "
            "22-26.",
            measured="64x-scale proxies preserving edge/vertex ratio and "
            "degree skew; RMAT proxies at scales 12-16 with "
            "skew-matched quadrant probabilities (see DESIGN.md).",
            verdict="SUBSTITUTED (documented)",
            figure=table4(),
        )
    )

    from ..graph import datasets

    fig2 = figure2("FR", "SSSP", 25)
    fr_vertices = datasets.load("FR").num_vertices
    sparse = sum(
        1 for row in fig2.rows if row[-1] < 0.10 * fr_vertices
    )
    records.append(
        ExperimentRecord(
            artifact="Fig. 2 — irregularity characterization",
            paper_claim="Active degrees span 1 to >64 within iterations; "
            "76% of iterations update <10% of vertices.",
            measured=f"Degree spread reproduced; {sparse}/{len(fig2.rows)} "
            "iterations update <10% of the proxy's vertices (the 64x "
            "proxy has a relatively wider mid-run frontier).",
            verdict="HOLDS (weaker sparsity at proxy scale)",
            figure=fig2,
        )
    )

    fig6 = figure6(suite)
    gm6 = _gm_row(fig6)
    records.append(
        ExperimentRecord(
            artifact="Fig. 6 — speedup over Gunrock",
            paper_claim="GM 4.4x (GraphDynS), Graphicionado lower; CC lowest "
            "(Gunrock filtering), PR highest.",
            measured=f"GM {gm6[3]:.2f}x GraphDynS, {gm6[2]:.2f}x "
            "Graphicionado; CC lowest, PR among the highest.",
            verdict="HOLDS",
            figure=fig6,
        )
    )

    fig7 = figure7(suite)
    gm7 = _gm_row(fig7)
    records.append(
        ExperimentRecord(
            artifact="Fig. 7 — throughput",
            paper_claim="GM 8 / 21 / 43 GTEPS (Gunrock / Graphicionado / "
            "GraphDynS); 128 GTEPS peak never reached; GraphDynS PR ~87.5.",
            measured=f"GM {gm7[2]:.1f} / {gm7[3]:.1f} / {gm7[4]:.1f} GTEPS; "
            "PR is GraphDynS's best algorithm; all cells below 128.",
            verdict="HOLDS",
            figure=fig7,
        )
    )

    records.append(
        ExperimentRecord(
            artifact="Fig. 8 — power/area breakdown",
            paper_claim="3.38 W, 12.08 mm^2; Processor 59% power; Updater "
            "90% area; 68%/57% of Graphicionado's power/area.",
            measured="Encoded from the paper's synthesis results and used "
            "by the energy model; ratios preserved exactly.",
            verdict="HOLDS (by construction)",
            figure=figure8(),
        )
    )

    fig9 = figure9(suite)
    gm9 = _gm_row(fig9)
    records.append(
        ExperimentRecord(
            artifact="Fig. 9 — energy vs Gunrock",
            paper_claim="GraphDynS uses 8.6% of Gunrock's energy (91.4% "
            "reduction) and 55% of Graphicionado's.",
            measured=f"GraphDynS {gm9[3]:.1f}% of Gunrock "
            f"({100 - gm9[3]:.1f}% reduction); "
            f"{100 * gm9[3] / gm9[2]:.0f}% of Graphicionado.",
            verdict="HOLDS",
            figure=fig9,
        )
    )

    fig10 = figure10(suite)
    mean10 = _gm_row(fig10)
    records.append(
        ExperimentRecord(
            artifact="Fig. 10 — energy breakdown",
            paper_claim="92.2% of GraphDynS energy is HBM; Processor 4.0%, "
            "Updater 3.0%, rest <0.8%.",
            measured=f"HBM {mean10[6]:.1f}%, Processor {mean10[4]:.1f}%, "
            f"Updater {mean10[5]:.1f}% (means across the matrix).",
            verdict="HOLDS (HBM-dominated)",
            figure=fig10,
        )
    )

    fig11 = figure11(suite)
    gm11 = _gm_row(fig11)
    records.append(
        ExperimentRecord(
            artifact="Fig. 11 — off-chip storage",
            paper_claim="GraphDynS 35% of Gunrock, Graphicionado 63% "
            "(src_vid per edge; Gunrock stores >2x metadata).",
            measured=f"GraphDynS {gm11[3]:.0f}%, Graphicionado {gm11[2]:.0f}%.",
            verdict="HOLDS",
            figure=fig11,
        )
    )

    fig12 = figure12(suite)
    gm12 = _gm_row(fig12)
    records.append(
        ExperimentRecord(
            artifact="Fig. 12 — memory accesses",
            paper_claim="GraphDynS 36% of Gunrock (64% reduction), "
            "Graphicionado 53%.",
            measured=f"GraphDynS {gm12[3]:.0f}%, Graphicionado {gm12[2]:.0f}%.",
            verdict="HOLDS",
            figure=fig12,
        )
    )

    fig13 = figure13(suite)
    gm13 = _gm_row(fig13)
    records.append(
        ExperimentRecord(
            artifact="Fig. 13 — bandwidth utilization",
            paper_claim="Gunrock 31%; Graphicionado ~= GraphDynS ~= 56%.",
            measured=f"Gunrock {gm13[2]:.0f}%, Graphicionado {gm13[3]:.0f}%, "
            f"GraphDynS {gm13[4]:.0f}% (accelerators run somewhat hotter "
            "at proxy scale; ordering and GPU gap preserved).",
            verdict="HOLDS (accelerator utilization high-biased)",
            figure=fig13,
        )
    )

    fig14a = figure14a("LJ")
    records.append(
        ExperimentRecord(
            artifact="Fig. 14a — scheduling reduction",
            paper_claim="~94% fewer scheduling operations on LJ.",
            measured=f"{_gm_row(fig14a)[3]:.1f}% GM reduction.",
            verdict="HOLDS",
            figure=fig14a,
        )
    )

    fig14b = figure14b("LJ", "SSWP")
    loads = [v for row in fig14b.rows for v in row[1:]]
    records.append(
        ExperimentRecord(
            artifact="Fig. 14b — per-PE balance",
            paper_claim="Normalized loads ~1.0 in the heaviest iterations.",
            measured=f"Loads within [{min(loads):.2f}, {max(loads):.2f}].",
            verdict="HOLDS",
            figure=fig14b,
        )
    )

    fig14c = figure14c("LJ")
    gm14c = _gm_row(fig14c)
    records.append(
        ExperimentRecord(
            artifact="Fig. 14c — ablation speedups",
            paper_claim="WE 1.39x, WEA 1.57x, WEAU 1.8x vs Graphicionado; "
            "monotone; AO biggest for PR (+20%) and CC (+5%); US nothing "
            "for PR.",
            measured=f"WB {gm14c[1]:.2f}, WE {gm14c[2]:.2f}, "
            f"WEA {gm14c[3]:.2f}, WEAU {gm14c[4]:.2f}; monotone; AO biggest "
            "for PR/CC; US flat for PR.",
            verdict="HOLDS (curve slightly compressed/elevated)",
            figure=fig14c,
        )
    )

    fig14d = figure14d("LJ")
    mean14d = _gm_row(fig14d)
    records.append(
        ExperimentRecord(
            artifact="Fig. 14d — access reduction",
            paper_claim="EP removes ~30% of HBM traffic; US ~18% more "
            "(BFS 55%, PR 0%).",
            measured=f"EP {mean14d[1]:.1f}%, US {mean14d[2]:.1f}% mean; "
            "BFS largest US win; PR exactly 0.",
            verdict="HOLDS (EP magnitude smaller at proxy scale)",
            figure=fig14d,
        )
    )

    fig14e = figure14e("LJ")
    records.append(
        ExperimentRecord(
            artifact="Fig. 14e — UE scaling",
            paper_claim="PR and CC slow 53%/20% from 128 to 32 UEs; others "
            "insensitive.",
            measured="PR/CC degrade most at 32 UEs; BFS/SSSP/SSWP nearly "
            "flat (see rows).",
            verdict="HOLDS",
            figure=fig14e,
        )
    )

    fig14f = figure14f()
    records.append(
        ExperimentRecord(
            artifact="Fig. 14f — RMAT scaling",
            paper_claim="Both systems scale well; GraphDynS declines "
            "slightly once sliced; Graphicionado declines later (2x eDRAM).",
            measured="Slicing starts one scale later for Graphicionado; "
            "GraphDynS declines from its unsliced peak but stays faster "
            "throughout.",
            verdict="HOLDS",
            figure=fig14f,
        )
    )

    return records


def generate_experiments_md(
    suite: Optional[ExperimentSuite] = None,
) -> str:
    """The full EXPERIMENTS.md content."""
    records = build_report(suite)
    head = (
        "# EXPERIMENTS — paper vs measured\n\n"
        "Regenerated by `python -m repro report` (see also "
        "`pytest benchmarks/ --benchmark-only -s`).  All measurements run "
        "on the Table 4 *proxy* graphs (DESIGN.md documents the "
        "substitutions); the claims checked are therefore the paper's "
        "*shapes* — orderings, ratios, crossover points — not absolute "
        "cycle counts.\n"
    )
    body = "\n\n".join(record.to_markdown() for record in records)
    summary_lines = ["\n## Summary\n", "| Artifact | Verdict |", "|---|---|"]
    for record in records:
        summary_lines.append(f"| {record.artifact} | {record.verdict} |")
    return head + "\n" + body + "\n" + "\n".join(summary_lines) + "\n"
