"""Cache-aware compilation of experiment specs onto the run service.

:mod:`repro.harness.specs` says *what* to run; this module decides *what
is left to run* and *in which order*.  :func:`build_plan` expands a
spec's override × algorithm × graph grid into :class:`PlanCell`\\ s and
classifies each one by probing the run service's reuse tiers — the
in-process memo, the persistent content-addressed cache — plus the
daemon's in-flight coalescing keys, **before** anything is scheduled.
The resulting :class:`Plan` is the unit the CLI prints (``repro plan``,
``--dry-run``), the goldens pin, and :func:`execute_plan` runs.

Planning guarantees, each load-bearing for a test battery:

**Cached cells never schedule.**
    A cell whose content-addressed key resolves in the memo or as a
    valid persistent envelope lands in the plan's *cached* set and is
    excluded from the schedule; a ``--dry-run`` against a fully warmed
    cache schedules zero work.  Classification reuses the *same*
    validation path ``RunService.cell`` uses (via ``probe``), so a
    stale or corrupt envelope reads as a miss here exactly as it would
    at execution time.

**Deterministic cost and bytes.**
    The cost model is integer arithmetic over registry metadata
    (``proxy_vertices + proxy_edges`` per graph, times participating
    backends) — no timing, no floats — and :func:`canonical_plan_json`
    is sorted-key JSON, so plan snapshots are byte-stable across
    interpreters (Python 3.9–3.12 in CI).

**Schedule order maximizes reuse.**
    Pending cells are grouped by ``(graph, storage)`` so each dataset —
    and, out-of-core, each spill/memmap — loads once per worker instead
    of once per cell, then by override and algorithm in grid order.

**Execution is the run service, not a parallel implementation.**
    :func:`execute_plan` drives pending groups through
    ``RunService.matrix`` (inheriting thread/process fan-out, retries,
    and caching) and then collects every grid cell from the memo, so
    the spec path produces byte-identical ``canonical_reports_json`` to
    the hand-coded ``run_matrix`` path — the equivalence the plan
    battery in ``tests/test_planner_identity.py`` asserts.
"""

from __future__ import annotations

import dataclasses
import json
from collections import OrderedDict
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
)

from .. import backends as backend_registry
from ..graph import datasets
from ..metrics.serialize import json_scalar_default
from ..obs import get_recorder
from .service import CellResult, RunService
from .specs import ExperimentSpec, OverrideSpec, spec_digest, spec_to_dict

__all__ = [
    "PLAN_SCHEMA",
    "Plan",
    "PlanCell",
    "backends_for_override",
    "build_outputs",
    "build_plan",
    "canonical_plan_json",
    "estimate_cost",
    "execute_plan",
    "plan_to_dict",
    "render_plan_table",
    "services_for_spec",
    "summarize",
]

#: Version stamp written into every serialized plan (bump on layout
#: change; the golden comparator then fails loudly instead of drifting).
PLAN_SCHEMA = 1

#: PlanCell statuses.
CACHED_MEMO = "cached-memo"
CACHED_PERSISTENT = "cached-persistent"
INFLIGHT = "inflight"
PENDING = "pending"

_CACHED_STATUSES = (CACHED_MEMO, CACHED_PERSISTENT)


@dataclasses.dataclass(frozen=True)
class PlanCell:
    """One classified cell of a plan."""

    override: str
    algorithm: str
    graph: str
    cache_key: str
    status: str
    #: Deterministic work estimate (dimensionless units; see
    #: :func:`estimate_cost`).
    cost: int

    @property
    def cached(self) -> bool:
        return self.status in _CACHED_STATUSES


@dataclasses.dataclass
class Plan:
    """A classified, ordered compilation of one spec.

    ``cells`` is the full grid in canonical (override-major,
    algorithm-major, graph-minor) order; ``schedule`` is the subset that
    actually needs execution, in reuse-maximizing order.
    """

    spec: ExperimentSpec
    cells: List[PlanCell]
    schedule: List[PlanCell]

    @property
    def cached(self) -> List[PlanCell]:
        return [c for c in self.cells if c.cached]

    @property
    def inflight(self) -> List[PlanCell]:
        return [c for c in self.cells if c.status == INFLIGHT]

    @property
    def pending(self) -> List[PlanCell]:
        return [c for c in self.cells if c.status == PENDING]

    @property
    def total_cost(self) -> int:
        return sum(c.cost for c in self.cells)

    @property
    def pending_cost(self) -> int:
        return sum(c.cost for c in self.pending)

    @property
    def saved_cost(self) -> int:
        """Work avoided by cache hits and in-flight coalescing."""
        return self.total_cost - self.pending_cost


# ======================================================================
# Spec -> services
# ======================================================================


def backends_for_override(
    spec: ExperimentSpec, override: OverrideSpec
) -> List[object]:
    """Backend instances for one override point of the grid.

    Overridden fields are applied to the backend's *default* config with
    :func:`dataclasses.replace`, so an override names only what changes.
    """
    names = spec.backends or tuple(
        name.lower() for name in backend_registry.available()
    )
    configured = override.config_mapping()
    built: List[object] = []
    for name in names:
        fields = configured.get(name)
        if fields:
            default = backend_registry.create(name)
            config = dataclasses.replace(default.config, **fields)
            built.append(backend_registry.create(name, config))
        else:
            built.append(backend_registry.create(name))
    return built


def services_for_spec(
    spec: ExperimentSpec,
    *,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    jobs: int = 1,
    executor: str = "thread",
    resilience: Optional[object] = None,
    faults: Optional[object] = None,
    manifest_path: Optional[str] = None,
    resume: bool = False,
) -> "OrderedDict[str, RunService]":
    """One run service per override point, in grid order.

    Each override gets its own service because the backend set (and
    hence every cell's content-addressed key) differs per override;
    services share the persistent ``cache_dir``, so identical cells
    across plans still deduplicate on disk.  Passing any resilience
    kwarg upgrades every service to ``ResilientRunService``.
    """
    common = dict(
        default_source=spec.source,
        cache_dir=cache_dir,
        use_cache=use_cache,
        jobs=jobs,
        executor=executor,
        storage=spec.storage,
        shards=spec.shards,
        kernel_tier=spec.kernel_tier,
    )
    resilient = (
        resilience is not None
        or faults is not None
        or manifest_path is not None
    )
    services: "OrderedDict[str, RunService]" = OrderedDict()
    for override in spec.effective_overrides():
        backends = backends_for_override(spec, override)
        if resilient:
            from .resilience import ResilientRunService

            services[override.name] = ResilientRunService(
                backends,
                policy=resilience,  # type: ignore[arg-type]
                faults=faults,  # type: ignore[arg-type]
                manifest_path=manifest_path,
                resume=resume,
                **common,
            )
        else:
            services[override.name] = RunService(backends, **common)
    return services


# ======================================================================
# Planning
# ======================================================================


def estimate_cost(graph_key: str, n_backends: int) -> int:
    """Deterministic work estimate for one cell: graph size × backends.

    ``proxy_vertices + proxy_edges`` is proportional to per-iteration
    Scatter/Apply work, and every participating backend simulates the
    same traversal; integer registry arithmetic keeps the estimate
    byte-stable across platforms (no floats, no timing).
    """
    spec = datasets.get_spec(graph_key)
    return int(spec.proxy_vertices + spec.proxy_edges) * int(n_backends)


def build_plan(
    spec: ExperimentSpec,
    services: Mapping[str, RunService],
    inflight_keys: FrozenSet[str] = frozenset(),
) -> Plan:
    """Expand, classify, and order the spec's grid.

    Args:
        spec: the validated experiment spec.
        services: per-override services from :func:`services_for_spec`.
        inflight_keys: content-addressed cell keys the daemon is already
            executing (from ``SimulationDaemon.inflight_cell_keys``);
            matching cells classify as *inflight* — they will be served
            by coalescing onto the running job, not scheduled again.

    Probing is read-only: building a plan never loads datasets, never
    executes cells, and never mutates the services' memos.
    """
    cells: List[PlanCell] = []
    for grid_cell in spec.grid():
        service = services[grid_cell.override]
        _, key, probe_status = service.probe(
            grid_cell.algorithm, grid_cell.graph
        )
        if probe_status == "memo":
            status = CACHED_MEMO
        elif probe_status == "persistent":
            status = CACHED_PERSISTENT
        elif key in inflight_keys:
            status = INFLIGHT
        else:
            status = PENDING
        cells.append(
            PlanCell(
                override=grid_cell.override,
                algorithm=grid_cell.algorithm,
                graph=grid_cell.graph,
                cache_key=key,
                status=status,
                cost=estimate_cost(
                    grid_cell.graph, len(service.backends)
                ),
            )
        )

    # Reuse-maximizing order: all of a graph's pending cells run
    # back-to-back (the dataset — and its spill, out-of-core — loads
    # once), then override and algorithm in grid order.
    graph_order = {g: i for i, g in enumerate(spec.effective_graphs())}
    override_order = {
        o.name: i for i, o in enumerate(spec.effective_overrides())
    }
    algo_order = {a: i for i, a in enumerate(spec.effective_algorithms())}
    schedule = sorted(
        (c for c in cells if c.status == PENDING),
        key=lambda c: (
            graph_order[c.graph],
            override_order[c.override],
            algo_order[c.algorithm],
        ),
    )

    plan = Plan(spec=spec, cells=cells, schedule=schedule)
    rec = get_recorder()
    if rec.enabled:
        rec.counter("planner.cells.cached").add(len(plan.cached))
        rec.counter("planner.cells.pending").add(len(plan.pending))
        rec.counter("planner.cells.inflight").add(len(plan.inflight))
    return plan


# ======================================================================
# Execution
# ======================================================================


def execute_plan(
    plan: Plan, services: Mapping[str, RunService]
) -> List[CellResult]:
    """Run the schedule, then collect the full grid in canonical order.

    Pending cells are driven through ``RunService.matrix`` one
    ``(override, graph)`` group at a time — inheriting the service's
    thread/process fan-out, retries, and cache writes — and cached
    cells replay from the memo/persistent tiers during collection.
    Because cells are independent and deterministic, the returned list
    is byte-identical (under ``canonical_reports_json``) to running the
    same grid through the hand-coded ``run_matrix`` path.
    """
    groups: "OrderedDict[Tuple[str, str], List[str]]" = OrderedDict()
    for cell in plan.schedule:
        groups.setdefault((cell.override, cell.graph), []).append(
            cell.algorithm
        )
    for (override, graph), algorithms in groups.items():
        services[override].matrix(
            algorithms=algorithms, graph_keys=[graph]
        )
    return [
        services[cell.override].cell(cell.algorithm, cell.graph)
        for cell in plan.cells
    ]


def build_outputs(
    spec: ExperimentSpec, services: Mapping[str, RunService]
) -> "OrderedDict[str, object]":
    """The spec's named outputs, rendered from the *base* override.

    Matrix-consuming builders read cells through an
    :class:`~repro.harness.experiments.ExperimentSuite` facade bound to
    the first override's (already executed) service; static builders
    that take no suite are called bare, mirroring the CLI's dispatch.
    """
    from .experiments import ExperimentSuite
    from .specs import OUTPUT_BUILDERS

    results: "OrderedDict[str, object]" = OrderedDict()
    if not spec.outputs:
        return results
    first = next(iter(services))
    suite = ExperimentSuite(use_cache=False)
    suite.service = services[first]
    for output in spec.outputs:
        builder = OUTPUT_BUILDERS[output.builder]
        try:
            results[output.name] = builder(suite)  # type: ignore[call-arg]
        except TypeError:
            results[output.name] = builder()
    return results


def summarize(
    spec: ExperimentSpec,
    plan: Plan,
    results: Sequence[CellResult],
) -> List[Dict[str, object]]:
    """Project ``select`` fields into flat per-(cell, backend) rows.

    Row order follows the plan's canonical cell order, then backend
    report-name order within a cell; with no ``select`` clause every
    selectable field is emitted.
    """
    from .specs import SELECTABLE_FIELDS

    fields = spec.select or SELECTABLE_FIELDS
    rows: List[Dict[str, object]] = []
    for plan_cell, cell in zip(plan.cells, results):
        for system in sorted(cell.reports):
            report = cell.reports[system]
            row: Dict[str, object] = {
                "override": plan_cell.override,
                "algorithm": cell.algorithm,
                "graph": cell.graph_key,
                "system": system,
            }
            for field in fields:
                row[field] = _project_field(cell, system, report, field)
            rows.append(row)
    return rows


def _project_field(
    cell: CellResult, system: str, report: object, field: str
) -> Optional[float]:
    if field == "speedup":
        if system == "Gunrock" or "Gunrock" not in cell.reports:
            return None
        return float(cell.speedup_over_gunrock(system))
    if field == "traffic_mb":
        return float(report.total_traffic_bytes) / 1e6
    if field == "energy_mj":
        energy = cell.energy.get(system)
        return None if energy is None else float(energy.total_j) * 1e3
    return float(getattr(report, field))


# ======================================================================
# Serialization / rendering
# ======================================================================


def plan_to_dict(plan: Plan) -> Dict[str, object]:
    """Canonical plain-dict form of a plan (what the goldens pin)."""
    return {
        "schema": PLAN_SCHEMA,
        "spec": spec_to_dict(plan.spec),
        "spec_digest": spec_digest(plan.spec),
        "storage": plan.spec.storage,
        "cells": [dataclasses.asdict(cell) for cell in plan.cells],
        "schedule": [
            [cell.override, cell.algorithm, cell.graph]
            for cell in plan.schedule
        ],
        "totals": {
            "cells": len(plan.cells),
            "cached": len(plan.cached),
            "inflight": len(plan.inflight),
            "pending": len(plan.pending),
            "total_cost": plan.total_cost,
            "pending_cost": plan.pending_cost,
            "saved_cost": plan.saved_cost,
        },
    }


def canonical_plan_json(plan: Plan) -> str:
    """Byte-stable JSON of :func:`plan_to_dict` (sorted keys)."""
    return json.dumps(
        plan_to_dict(plan), sort_keys=True, default=json_scalar_default
    )


def render_plan_table(plan: Plan) -> str:
    """The ``--dry-run`` plan table: one row per cell plus totals."""
    headers = ["override", "algorithm", "graph", "status", "cost"]
    rows = [
        [c.override, c.algorithm, c.graph, c.status, str(c.cost)]
        for c in plan.cells
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]

    def fmt(row: Iterable[str]) -> str:
        return "  ".join(
            str(v).ljust(widths[i]) for i, v in enumerate(row)
        ).rstrip()

    lines = [fmt(headers), fmt("-" * w for w in widths)]
    lines.extend(fmt(r) for r in rows)
    lines.append("")
    lines.append(
        f"{len(plan.cells)} cells: {len(plan.cached)} cached, "
        f"{len(plan.inflight)} in-flight, {len(plan.pending)} pending "
        f"| cost {plan.pending_cost}/{plan.total_cost} "
        f"({plan.saved_cost} saved)"
    )
    return "\n".join(lines)
